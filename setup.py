"""Setup shim so that ``pip install -e .`` works without the ``wheel`` package.

Project metadata lives in ``pyproject.toml``; this file only enables the
legacy editable-install path on environments lacking PEP 517 build tooling.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "Reproduction of MCBP: a memory-compute efficient LLM inference "
        "accelerator leveraging bit-slice-enabled sparsity and repetitiveness"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.22"],
)
