"""Serving simulation: policy-driven continuous batching over one MCBP engine.

Demonstrates the batched serving layer end to end:

1. sample a mixed request stream (Poisson arrivals over the paper's task mix,
   scaled down for the NumPy model) and run it through the
   :class:`ServingEngine` with >= 8 concurrent sessions, printing
   per-request latency/traffic and aggregate throughput;
2. replay one bursty heavy-tail (Pareto) trace with an 80/20 low/high
   priority mix under the shipped policy pairs -- FCFS, priority, deadline
   and aging (anti-starvation effective priorities) -- showing how priority
   admission + preemption cut the high-priority p95 latency while FCFS
   makes urgent requests wait behind the burst, with identical tokens
   everywhere;
3. run the same stream through a quantised model bound to an
   :class:`MCBPEngine` with **fused batched decode** over a shared
   **paged KV arena**: every engine step is a single quantised forward pass
   over the whole active batch -- admissions ride the **chunked batched
   prefill pipeline**, so burst prompts prefill as ragged chunks inside the
   same fused pass as the decode tokens -- each layer's BSTC planes are
   decoded exactly once, session KV lives as fixed-size pages in one pool
   (freed pages recycle as requests finish), and the emitted tokens are
   bit-identical to per-session stepping over standalone caches;
4. run a steady-state decode loop through an :class:`MCBPEngine` with the
   decoded-plane LRU cache and show that every layer is BSTC-decoded exactly
   once, no matter how many decode steps (or co-resident sessions) reuse it;
5. print the analytical serving breakdown: how sharing decoded planes across
   sessions shrinks the decode-stage weight-loading component.

Usage::

    python examples/serving_simulation.py                    # full demo
    python examples/serving_simulation.py --policy priority  # one policy
    python examples/serving_simulation.py --prefix-cache     # KV reuse demo
    python examples/serving_simulation.py --chaos            # fault demo
    python examples/serving_simulation.py --snapshot         # KV snapshots
    python examples/serving_simulation.py --speculative 4    # draft + verify
    python examples/serving_simulation.py --json             # report JSON
    python examples/serving_simulation.py --cluster 2 \
        --routing affinity                                   # replica fleet

``--policy {fcfs,priority,deadline,aging}`` runs only the policy comparison
and prints the chosen policy's full per-request report.  ``--chaos`` replays
one stream fault-free and again under a seeded 2% fault plan, showing
per-request retries, failure containment, bit-identical recovered tokens and
balanced arena books.  ``--json`` emits only the scheduler report of step 1
in the JSON schema shared with
``benchmarks/test_batched_decode_throughput.py`` (``ServingReport.to_json``),
so scripts can consume either artefact uniformly.  ``--speculative K``
decodes one mixed (cyclic + random prompt) stream plainly and again with up
to ``K`` drafted tokens verified per session per fused step, printing the
step-count win, the draft acceptance rate and the arena rollback books --
tokens stay bit-identical.  ``--cluster N`` runs one
shared-prefix traffic stream over N data-parallel engine replicas behind the
``--routing`` policy (round-robin / least-loaded / prefix-affinity), with
seeded chaos driving replica failover -- queued work re-routes to healthy
replicas and finished tokens stay bit-identical to a single engine.
"""

import argparse
import json

import numpy as np

from repro.core import BGPPConfig, MCBPEngine
from repro.core.bgpp import make_bgpp_predictor
from repro.eval import serving_breakdown_vs_sessions
from repro.eval.reporting import format_table
from repro.model import (
    QuantizedTransformer,
    TransformerModel,
    get_model_config,
)
from repro.serve import (
    ClusterEngine,
    FaultPlan,
    Request,
    ServingEngine,
    SpeculationConfig,
    make_policies,
)
from repro.workloads import sample_requests

POLICY_NAMES = ("fcfs", "priority", "deadline", "aging")
ROUTING_NAMES = ("rr", "least-loaded", "affinity")


def simulate_traffic(n_requests: int = 24, max_active: int = 8, quiet: bool = False):
    config = get_model_config("tiny")
    model = TransformerModel(config, seed=0)
    predictor = make_bgpp_predictor(alpha=0.7, rounds=3)
    requests = sample_requests(
        n_requests,
        vocab_size=config.vocab_size,
        mean_interarrival=1.5,
        seed=11,
    )
    engine = ServingEngine(model, max_active=max_active, predictor=predictor)
    engine.submit_many(requests)
    report = engine.run()
    if not quiet:
        print(f"--- continuous batching: {n_requests} requests, "
              f"{max_active} slots, BGPP attention ---")
        print(report.summary())
    return report


def _bursty_prioritized_requests(vocab_size: int, n_requests: int = 32):
    """One heavy-tail trace shared by every policy run: 80% bulk priority-0
    requests, 20% interactive priority-2 requests with tight deadlines."""
    return sample_requests(
        n_requests,
        vocab_size=vocab_size,
        mean_interarrival=0.4,
        arrival_process="pareto",
        arrival_shape=1.5,  # heavy tail: dense bursts, long quiet stretches
        priority_levels=(0, 2),
        priority_weights=(0.8, 0.2),
        deadline_slack=(2, 8),
        seed=29,
    )


def policy_comparison(policy: str = None, n_requests: int = 32,
                      max_active: int = 4) -> None:
    """The same bursty trace under FCFS vs priority vs deadline policies."""
    config = get_model_config("tiny")
    model = TransformerModel(config, seed=0)
    requests = _bursty_prioritized_requests(config.vocab_size, n_requests)
    n_high = sum(1 for r in requests if r.priority > 0)

    print(f"\n--- policy comparison: {n_requests} requests "
          f"({n_high} high-priority), Pareto bursts, {max_active} slots ---")
    header = (f"{'policy':>10} {'steps':>6} {'tok/step':>9} {'p95 all':>8} "
              f"{'p95 hi':>7} {'p95 lo':>7} {'preempt':>8} {'misses':>7}")
    print(header)
    names = POLICY_NAMES if policy is None else (policy,)
    baseline_tokens = None
    chosen_report = None
    for name in names:
        admission, scheduling = make_policies(name)
        engine = ServingEngine(
            model, max_active=max_active,
            admission=admission, scheduling=scheduling,
        )
        handles = engine.submit_many(requests)
        report = engine.run()
        tokens = [h.generated_tokens for h in handles]
        if baseline_tokens is None:
            baseline_tokens = tokens
        else:
            # policies reorder *service*, never change *content*
            assert tokens == baseline_tokens, "policies must not change tokens"
        print(f"{name:>10} {report.steps:>6} "
              f"{report.throughput_tokens_per_step:>9.2f} "
              f"{report.latency_percentile(95):>8.1f} "
              f"{report.latency_percentile(95, priority=2):>7.1f} "
              f"{report.latency_percentile(95, priority=0):>7.1f} "
              f"{report.total_preemptions:>8} "
              f"{report.total_deadline_misses:>7}")
        chosen_report = report
    if policy is not None:
        print(f"\nfull report for --policy {policy}:")
        print(chosen_report.summary())
    else:
        print("(preemption evicts a session's KV pages; it resumes later by "
              "re-prefilling its tokens, bit-identical to an unpreempted run)")


def fused_decode_demo(n_requests: int = 16, max_active: int = 8) -> None:
    """Fused batched decode: one quantised forward per engine step."""
    config = get_model_config("tiny")
    model = QuantizedTransformer(TransformerModel(config, seed=0), seed=1)
    engine = MCBPEngine(group_size=4, weight_bits=8)
    model.bind_engine(engine)
    engine.codec.reset_counters()
    requests = sample_requests(
        n_requests, vocab_size=config.vocab_size, mean_interarrival=0.5, seed=11
    )

    def run(fused: bool, arena: bool):
        serving = ServingEngine(
            model, max_active=max_active, fused=fused, arena=arena
        )
        handles = serving.submit_many(requests)
        report = serving.run()
        return report, handles

    fused_report, fused_handles = run(fused=True, arena=True)
    seq_report, seq_handles = run(fused=False, arena=False)
    for a, b in zip(fused_handles, seq_handles):
        assert a.generated_tokens == b.generated_tokens, "fused decode must be bit-exact"
    n_matrices = len(model.quantized_weight_matrices())
    assert engine.codec.decode_calls == n_matrices, "planes must decode once per layer"

    # the example stays byte-deterministic, so it reports step-based metrics;
    # wall-clock tokens/sec live in benchmarks/test_batched_decode_throughput.py
    forwards_per_step = fused_report.max_concurrency
    arena_stats = fused_report.arena
    print(f"\n--- fused batched decode: {n_requests} quantised requests, "
          f"{max_active} slots, paged KV arena ---")
    print(f"tokens              : {fused_report.total_tokens} in "
          f"{fused_report.steps} steps "
          f"({fused_report.throughput_tokens_per_step:.2f} tok/step, "
          f"bit-exact vs per-session stepping over standalone caches)")
    print(f"forward passes/step : 1 fused (vs up to {forwards_per_step} "
          f"per-session calls on the sequential path)")
    print(f"BSTC decodes        : {engine.codec.decode_calls} "
          f"(= {n_matrices} weight matrices, decoded once each; "
          f"plane-cache hit rate {engine.stats.cache_hit_rate:.1%})")
    print(f"KV arena            : {arena_stats['page_size']}-token pages, "
          f"peak {arena_stats['peak_pages_in_use']}/{arena_stats['n_pages']} "
          f"pages, {arena_stats['page_faults']} faults, all "
          f"{arena_stats['pages_freed']} freed at drain "
          f"({arena_stats['pages_in_use']} still in use)")
    print(f"gather traffic      : "
          f"{arena_stats['gather_bytes_copied'] / 1024.0:.1f} KiB "
          f"({arena_stats['gather_incremental']} incremental refreshes, "
          f"{arena_stats['gather_rebuilds']} rebuilds)")


def prefix_cache_demo(n_requests: int = 16, max_active: int = 8) -> None:
    """Cross-request KV reuse: one shared system prompt, many novel tails."""
    config = get_model_config("tiny")
    model = QuantizedTransformer(TransformerModel(config, seed=0), seed=1)
    rng = np.random.default_rng(7)
    system_prompt = rng.integers(0, config.vocab_size, size=40).tolist()
    from repro.serve import Request

    requests = [
        Request(
            f"chat{i:02d}",
            prompt_tokens=system_prompt
            + rng.integers(0, config.vocab_size, size=int(rng.integers(0, 8))).tolist(),
            max_new_tokens=int(rng.integers(2, 6)),
            arrival_step=int(i // 2),
        )
        for i in range(n_requests)
    ]

    def run(prefix_cache: bool):
        serving = ServingEngine(
            model, max_active=max_active, page_size=8, prefix_cache=prefix_cache
        )
        handles = serving.submit_many(requests)
        report = serving.run()
        return report, [h.generated_tokens for h in handles]

    cold_report, cold_tokens = run(prefix_cache=False)
    warm_report, warm_tokens = run(prefix_cache=True)
    assert warm_tokens == cold_tokens, "prefix cache must not change tokens"
    cold, warm = cold_report.arena, warm_report.arena
    print(f"\n--- prefix cache: {n_requests} requests sharing a "
          f"{len(system_prompt)}-token system prompt ---")
    print(f"tokens              : bit-identical with the cache off and on")
    print(f"page faults         : {cold['page_faults']} cold -> "
          f"{warm['page_faults']} warm "
          f"({cold['page_faults'] / warm['page_faults']:.1f}x fewer KV pages "
          f"materialised)")
    print(f"peak pages in use   : {cold['peak_pages_in_use']} -> "
          f"{warm['peak_pages_in_use']}")
    print(f"prompt rows reused  : {warm['prefix_tokens_reused']} across "
          f"{warm['prefix_hits']} cache hits "
          f"({warm['prefix_pages_shared']} shared page mappings, "
          f"{warm['cow_copies']} copy-on-writes)")
    print("(a request whose prompt head matches a registered prefix maps "
          "those pages read-only and prefills only its novel tail)")


def snapshot_demo(n_requests: int = 24, max_active: int = 4) -> None:
    """Snapshot preemption + int8 KV: resume without re-prefilling."""
    config = get_model_config("tiny")
    model = QuantizedTransformer(TransformerModel(config, seed=0), seed=1)
    requests = sample_requests(
        n_requests,
        vocab_size=config.vocab_size,
        mean_interarrival=0.25,
        arrival_process="pareto",
        arrival_shape=1.5,
        priority_levels=(0, 2),
        priority_weights=(0.75, 0.25),
        seed=29,
    )

    def run(kv_snapshots: bool, kv_dtype=None):
        admission, scheduling = make_policies("priority")
        serving = ServingEngine(
            model,
            max_active=max_active,
            admission=admission,
            scheduling=scheduling,
            page_size=8,
            kv_snapshots=kv_snapshots,
            kv_dtype=kv_dtype,
        )
        handles = serving.submit_many(requests)
        report = serving.run()
        return report, [h.generated_tokens for h in handles]

    replay_report, replay_tokens = run(kv_snapshots=False)
    snap_report, snap_tokens = run(kv_snapshots=True)
    assert snap_tokens == replay_tokens, "snapshots must not change tokens"
    int8_report, _ = run(kv_snapshots=True, kv_dtype="int8")
    replay, snap = replay_report.arena, snap_report.arena
    print(f"\n--- snapshot preemption: {n_requests} prioritized requests, "
          f"{max_active} slots ---")
    print(f"tokens              : bit-identical with snapshots off and on")
    print(f"preemptions         : {snap_report.total_preemptions} "
          f"({snap['snapshots_taken']} snapshots taken, "
          f"{snap['snapshots_restored']} restored)")
    print(f"KV rows appended    : {replay['tokens_appended']} re-prefill -> "
          f"{snap['tokens_appended']} snapshot "
          f"(every resume replays zero prompt rows)")
    print(f"snapshot traffic    : {snap['snapshot_bytes'] / 1024.0:.1f} KiB fp "
          f"-> {int8_report.arena['snapshot_bytes'] / 1024.0:.1f} KiB int8 "
          f"(pool dtype {int8_report.arena['kv_dtype']}, ~8x smaller pages)")
    print("(a preempted session's owned pages are copied off-arena and "
          "faulted back on resume; prefix-shared pages transfer by "
          "reference and stay hittable)")


def chaos_demo(n_requests: int = 16, max_active: int = 8) -> None:
    """Deterministic fault injection: the same stream, clean vs 2% chaos."""
    config = get_model_config("tiny")
    model = QuantizedTransformer(TransformerModel(config, seed=0), seed=1)
    model.bind_engine(MCBPEngine(group_size=4, weight_bits=8))
    requests = sample_requests(
        n_requests, vocab_size=config.vocab_size, mean_interarrival=0.5, seed=11
    )

    def run(faults):
        serving = ServingEngine(
            model, max_active=max_active, faults=faults, max_retries=3
        )
        handles = serving.submit_many(requests)
        report = serving.run(max_steps=2000)
        return serving, report, handles

    _, clean_report, clean_handles = run(faults=None)
    plan = FaultPlan.uniform(
        0.02, seed=17, sites=("arena.alloc", "session.compute", "session.append")
    )
    chaos_engine, chaos_report, chaos_handles = run(faults=plan)
    injector = chaos_engine.fault_injector

    # every request that survived its faults recovered bit-identically
    outcomes = {m.request_id: m.outcome for m in chaos_report.requests}
    for clean, dirty in zip(clean_handles, chaos_handles):
        if outcomes[dirty.request_id] == "finished":
            assert dirty.generated_tokens == clean.generated_tokens, (
                "recovered tokens must match the fault-free run"
            )
    arena = chaos_report.arena
    assert arena["pages_in_use"] == 0 and (
        arena["page_faults"] == arena["pages_freed"]
    ), "arena books must balance after the chaos run"

    by_outcome = {}
    for metrics in chaos_report.requests:
        by_outcome[metrics.outcome] = by_outcome.get(metrics.outcome, 0) + 1
    retried = [m for m in chaos_report.requests if m.retries > 0]
    print(f"\n--- chaos: {n_requests} requests, seeded 2% fault plan, "
          f"{max_active} slots ---")
    print(f"clean run           : {clean_report.total_tokens} tokens in "
          f"{clean_report.steps} steps")
    print(f"chaos run           : {chaos_report.total_tokens} tokens in "
          f"{chaos_report.steps} steps "
          f"({injector.total_fires} fires / {injector.opportunities} "
          f"opportunities)")
    print(f"fires by site       : "
          + ", ".join(f"{site}={n}" for site, n in injector.fires_by_site.items()
                      if n))
    print(f"outcomes            : "
          + ", ".join(f"{k}={v}" for k, v in sorted(by_outcome.items())))
    print(f"recoveries          : {len(retried)} requests retried "
          f"(tokens bit-identical to the fault-free run)")
    for metrics in retried:
        failure = f", post-mortem: {metrics.failure}" if metrics.failure else ""
        print(f"  {metrics.request_id}: retries={metrics.retries} "
              f"outcome={metrics.outcome}{failure}")
    print(f"arena               : {arena['page_faults']} faults == "
          f"{arena['pages_freed']} freed, {arena['pages_in_use']} in use")
    print("(faults quarantine one request per step; surviving batch rows "
          "commit, the victim re-prefills after backoff, bit-identical)")


def speculative_demo(k: int = 4, n_requests: int = 6, decode_len: int = 32) -> None:
    """Speculative multi-token decode: draft, verify fused, accept or roll back."""
    config = get_model_config("tiny")
    model = QuantizedTransformer(TransformerModel(config, seed=0), seed=1)
    rng = np.random.default_rng(43)
    # half the trace is cyclic motif prompts (the n-gram drafter's best
    # case), half is random prompts (its worst case, where the adaptive
    # throttle backs off) -- both must decode identically with spec on
    requests = []
    for i in range(n_requests):
        if i % 2 == 0:
            prompt = [3 + i, 17, 5, 9 + i] * 3
        else:
            prompt = rng.integers(0, config.vocab_size, size=12).tolist()
        requests.append(
            Request(
                f"spec{i:02d}",
                prompt_tokens=prompt,
                max_new_tokens=decode_len,
                arrival_step=0,
            )
        )

    def run(speculative):
        serving = ServingEngine(
            model, max_active=n_requests, speculative=speculative
        )
        handles = serving.submit_many(requests)
        report = serving.run()
        return report, [h.generated_tokens for h in handles]

    plain_report, plain_tokens = run(speculative=None)
    spec_report, spec_tokens = run(SpeculationConfig(k=k, adaptive=True))
    assert spec_tokens == plain_tokens, "speculation must not change tokens"
    policy = spec_report.to_json()["policy"]
    arena = spec_report.arena
    print(f"\n--- speculative decode: {n_requests} requests, k={k}, "
          f"ngram drafter, adaptive throttle ---")
    print(f"tokens              : bit-identical with speculation off and on")
    print(f"steps               : {plain_report.steps} plain -> "
          f"{spec_report.steps} speculative "
          f"({plain_report.steps / spec_report.steps:.2f}x fewer, "
          f"{spec_report.throughput_tokens_per_step:.2f} tok/step)")
    print(f"drafts              : {policy['draft_accepted']}/"
          f"{policy['draft_proposed']} accepted "
          f"(mean run {policy['mean_accepted_len']:.2f} tokens/spec step)")
    print(f"arena rollback      : {arena['draft_rows_appended']} draft rows "
          f"appended, {arena['rows_rolled_back']} rolled back, "
          f"{arena['pages_in_use']} pages in use at drain")
    print("(each decoding session verifies its committed token plus up to k "
          "drafts as one ragged chunk in the fused pass; the first mismatch "
          "emits the corrected token and truncates the rejected KV rows)")


def cluster_demo(
    n_replicas: int = 2, routing: str = "affinity", n_requests: int = 24
) -> None:
    """One traffic stream over a D-replica fleet: routing, affinity, failover."""
    config = get_model_config("tiny")
    model = QuantizedTransformer(TransformerModel(config, seed=0), seed=1)
    rng = np.random.default_rng(13)
    # four shared-prefix groups (think: four system prompts) so prefix-affinity
    # routing has locality to exploit, plus per-request unique tails
    heads = [rng.integers(0, config.vocab_size, size=12).tolist() for _ in range(4)]
    requests = []
    for i in range(n_requests):
        head = heads[i % len(heads)]
        tail = rng.integers(0, config.vocab_size, size=4).tolist()
        requests.append(
            Request(
                request_id=f"c{i:02d}",
                prompt_tokens=head + tail,
                max_new_tokens=int(rng.integers(2, 7)),
                arrival_step=i // 3,
            )
        )

    bare = ServingEngine(model, max_active=4, page_size=8, prefix_cache=True)
    bare_handles = bare.submit_many(requests)
    bare_report = bare.run()

    plan = FaultPlan.uniform(0.02, seed=23, sites=("session.compute",))
    cluster = ClusterEngine(
        model,
        n_replicas=n_replicas,
        routing=routing,
        max_active=4,
        page_size=8,
        prefix_cache=True,
        faults=plan,
        seed=7,
        failover_threshold=2,
        failover_window=6,
        failover_cooldown=8,
    )
    handles = cluster.submit_many(requests)
    report = cluster.run()

    print(f"\n--- cluster: {n_requests} shared-prefix requests over "
          f"{n_replicas} replica(s), routing={routing}, seeded 2% chaos ---")
    print(f"single engine       : {bare_report.total_tokens} tokens in "
          f"{bare_report.steps} steps "
          f"({bare_report.throughput_tokens_per_step:.2f} tok/step)")
    print(f"fleet               : {report.total_tokens} tokens in "
          f"{report.steps} steps "
          f"({report.throughput_tokens_per_step:.2f} tok/step), "
          f"imbalance CV {report.load_imbalance:.3f}")
    rows = []
    for idx, rep in enumerate(report.replicas):
        arena = rep.arena or {}
        rows.append({
            "replica": idx,
            "requests": len(rep.requests),
            "tokens": rep.total_tokens,
            "p95_lat": rep.latency_percentile(95),
            "prefix_hits": arena.get("prefix_hits"),
            "pages_in_use": arena.get("pages_in_use"),
        })
    print(format_table(rows, precision=1))
    if report.failover_events:
        downs = sum(1 for e in report.failover_events if e["event"] == "down")
        print(f"failover            : {downs} down event(s), "
              f"{report.rerouted} request(s) re-routed, history: "
              + ", ".join(f"step {e['step']} r{e['replica']} {e['event']}"
                          for e in report.failover_events))
    # finished requests decode the same tokens the single engine produced
    for bare_h, fleet_h in zip(bare_handles, handles):
        if fleet_h.metrics().outcome == "finished":
            assert fleet_h.generated_tokens == bare_h.generated_tokens, (
                "fleet tokens must match the single-engine run"
            )
    for rep in report.replicas:
        assert rep.arena["pages_in_use"] == 0, "every replica arena must drain"
    print("(every finished request's tokens are bit-identical to the "
          "single-engine run; D=1 round-robin reproduces it exactly)")


def steady_state_cache_demo(n_layers: int = 6, decode_steps: int = 32) -> None:
    rng = np.random.default_rng(0)
    engine = MCBPEngine(group_size=4, weight_bits=8,
                        bgpp_config=BGPPConfig(rounds=3, score_scale=0.05))
    hidden = 128
    for i in range(n_layers):
        weight = np.clip(
            np.round(rng.normal(scale=30.0, size=(hidden, hidden))), -127, 127
        ).astype(np.int64)
        engine.register_weight(f"layer{i}", weight)
    engine.codec.reset_counters()

    for _ in range(decode_steps):
        x = rng.integers(-128, 128, size=hidden)
        for i in range(n_layers):
            x = np.clip(engine.gemm(f"layer{i}", x) >> 8, -128, 127)

    stats = engine.stats
    print(f"\n--- steady-state decode loop: {n_layers} layers x "
          f"{decode_steps} steps ---")
    print(f"gemm calls     : {stats.gemm_calls}")
    print(f"BSTC decodes   : {engine.codec.decode_calls} "
          f"(cache misses: {stats.cache_misses}, hits: {stats.cache_hits}, "
          f"hit rate {stats.cache_hit_rate:.1%})")
    print(f"compute red.   : {stats.compute_reduction:.2f}x, "
          f"weight compression {stats.weight_compression_ratio:.2f}x")
    assert engine.codec.decode_calls == n_layers, "plane cache must decode once per layer"


def analytical_breakdown() -> None:
    print("\n--- analytical serving breakdown (Llama7B, 2k prompt) ---")
    header = f"{'sessions':>8} {'speedup':>8} {'gemm%':>7} {'weight%':>8} {'kv%':>6} {'other%':>7}"
    print(header)
    for row in serving_breakdown_vs_sessions(session_counts=(1, 2, 4, 8, 16, 32)):
        print(f"{int(row['shared_sessions']):>8} {row['speedup']:>7.2f}x "
              f"{row['gemm']:>6.1f} {row['weight_load']:>8.1f} "
              f"{row['kv_load']:>6.1f} {row['others']:>7.1f}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit only the traffic simulation's ServingReport as JSON "
        "(the schema shared with BENCH_serving.json)",
    )
    parser.add_argument(
        "--policy",
        choices=POLICY_NAMES,
        help="run only the policy comparison and print this policy's "
        "full per-request report",
    )
    parser.add_argument(
        "--prefix-cache",
        action="store_true",
        help="run only the cross-request KV prefix-cache demo (shared "
        "system prompt, cache off vs on)",
    )
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="run only the fault-injection demo (one stream fault-free vs "
        "under a seeded 2%% fault plan, with bit-identical recovery)",
    )
    parser.add_argument(
        "--snapshot",
        action="store_true",
        help="run only the snapshot-preemption demo (preemptive priority "
        "trace with kv_snapshots off vs on, plus int8 KV pages)",
    )
    parser.add_argument(
        "--speculative",
        type=int,
        metavar="K",
        help="run only the speculative-decode demo: draft up to K tokens "
        "per session, verify in the fused pass, bit-identical tokens",
    )
    parser.add_argument(
        "--cluster",
        type=int,
        metavar="N",
        help="run only the multi-replica cluster demo with N ServingEngine "
        "replicas behind the router (routing, affinity, failover)",
    )
    parser.add_argument(
        "--routing",
        choices=ROUTING_NAMES,
        default="affinity",
        help="routing policy for --cluster (default: affinity)",
    )
    args = parser.parse_args()
    if args.json:
        report = simulate_traffic(quiet=True)
        print(json.dumps(report.to_json(), indent=2))
        return
    if args.policy:
        policy_comparison(policy=args.policy)
        return
    if args.prefix_cache:
        prefix_cache_demo()
        return
    if args.chaos:
        chaos_demo()
        return
    if args.snapshot:
        snapshot_demo()
        return
    if args.speculative is not None:
        speculative_demo(k=args.speculative)
        return
    if args.cluster is not None:
        cluster_demo(n_replicas=args.cluster, routing=args.routing)
        return
    simulate_traffic()
    policy_comparison()
    fused_decode_demo()
    prefix_cache_demo()
    chaos_demo()
    snapshot_demo()
    speculative_demo()
    cluster_demo()
    steady_state_cache_demo()
    analytical_breakdown()


if __name__ == "__main__":
    main()
