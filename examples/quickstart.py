"""Quickstart: MCBP's three optimisations on a single quantised linear layer.

Runs in a few seconds and shows the public API end to end:

1. quantise a float weight matrix to INT8 (per-channel symmetric);
2. compress it with BSTC and execute the GEMV through BRCR (bit-exact);
3. run BGPP progressive top-k prediction on a synthetic attention row;
4. print the measured compute / weight-traffic / KV-traffic savings.

Usage::

    python examples/quickstart.py
"""

import numpy as np

from repro.core import BGPPConfig
from repro.core.engine import MCBPEngine
from repro.quant import quantize_weight_per_channel, quantize_activation_per_tensor
from repro.sparsity import gaussian_weights, sparsity_report
from repro.workloads.profile import synthetic_attention_tensors


def main() -> None:
    rng = np.random.default_rng(0)

    # --- 1. quantise a float projection matrix -----------------------------
    weights_f = gaussian_weights((256, 1024), seed=1)
    weights_q, w_params = quantize_weight_per_channel(weights_f, bits=8)
    report = sparsity_report(weights_q)
    print("Weight sparsity  : value = {:.1%}, bit (mean over planes) = {:.1%}".format(
        report.value_sparsity, report.bit_sparsity))

    # --- 2. BSTC compression + BRCR execution ------------------------------
    engine = MCBPEngine(group_size=4, weight_bits=8)
    engine.register_weight("proj", weights_q)

    activations_f = rng.normal(size=1024)
    activations_q, _ = quantize_activation_per_tensor(activations_f, bits=8)
    out = engine.gemm("proj", activations_q)
    reference = weights_q.astype(np.int64) @ activations_q
    assert np.array_equal(out, reference), "BRCR must be bit-exact"

    print("BRCR             : {:.2f}x fewer additions than dense bit-serial".format(
        engine.stats.compute_reduction))
    print("BSTC             : {:.2f}x lossless weight compression".format(
        engine.stats.weight_compression_ratio))

    # --- 3. BGPP progressive prediction -------------------------------------
    queries, keys, score_scale = synthetic_attention_tensors(512, 128, seed=2)
    engine.bgpp_config = BGPPConfig(rounds=3, alpha=0.55, score_scale=score_scale)
    result = engine.select_keys(queries[0], keys)
    print("BGPP             : kept {} / {} keys, loaded {:.1%} of the key bits".format(
        result.selected.size, keys.shape[0],
        result.kv_bits_loaded / (keys.size * 8)))
    print("                   early terminated: {}".format(result.early_terminated))


if __name__ == "__main__":
    main()
