"""Code-generation scenario (MBPP-like, decode-heavy; paper Fig. 19b).

A short ~48-token prompt followed by a long autoregressive completion: every
generated token re-streams the full weights, so the decode stage is
weight-traffic bound and BSTC (weight compression) is the dominant
optimisation, with BGPP helping more as the KV cache grows.  The script sweeps
the decode length, prints the per-technique speedups, and demonstrates the
BSTC codec + quantised execution on a real (tiny) model's weights.

Usage::

    python examples/code_generation_decode.py
"""

import numpy as np

from repro.core.bstc import BSTCCodec
from repro.eval import format_table, separate_technique_effects
from repro.hw import MCBPAccelerator
from repro.model import QuantizedTransformer, TransformerModel, get_model_config
from repro.workloads import make_workload, profile_model


def decode_length_sweep() -> None:
    profile = profile_model("Llama7B")
    rows = []
    for decode_len in (256, 1024, 4096):
        workload = make_workload("Llama7B", "MBPP", batch=8, decode_len=decode_len)
        base = MCBPAccelerator(use_brcr=False, use_bstc=False, use_bgpp=False).evaluate(
            workload, profile
        )
        full = MCBPAccelerator().evaluate(workload, profile)
        rows.append(
            {
                "decode_len": decode_len,
                "baseline_ms_per_token": base.decode_latency_s / decode_len * 1e3,
                "mcbp_ms_per_token": full.decode_latency_s / decode_len * 1e3,
                "speedup": base.total_latency_s / full.total_latency_s,
            }
        )
    print(format_table(rows, title="Llama7B / MBPP decode-length sweep (single MCBP processor)"))

    effects = separate_technique_effects(mbpp_decodes=(1024, 4096), dolly_prompts=())
    rows = [{"scenario": k, **v} for k, v in effects.items()]
    print(format_table(rows, title="\nPer-technique speedup (decode-heavy scenarios)"))


def weight_compression_demo() -> None:
    """Compress a real (tiny) model's quantised weights with BSTC."""
    model = TransformerModel(get_model_config("small"), seed=0)
    quantized = QuantizedTransformer(model, weight_bits=8)
    codec = BSTCCodec()

    total_raw, total_encoded = 0, 0
    for name, weight_q in quantized.quantized_weight_matrices().items():
        encoded = codec.encode(weight_q)
        total_raw += encoded.raw_bits
        total_encoded += encoded.encoded_bits
    print(
        "\nBSTC on the quantised 'small' model: {:.2f} MB -> {:.2f} MB "
        "(compression ratio {:.2f}x, lossless)".format(
            total_raw / 8e6, total_encoded / 8e6, total_raw / total_encoded
        )
    )


if __name__ == "__main__":
    decode_length_sweep()
    weight_compression_demo()
