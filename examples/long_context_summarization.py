"""Long-context summarisation scenario (Dolly-like, paper Figs. 19/23).

A prompt-heavy workload: an 8k-token prompt followed by a short ~48-token
summary.  The prefill GEMMs dominate, so BRCR contributes most of the benefit,
while BGPP trims the KV-cache reads of the decode steps.  The script evaluates
Llama-7B on the analytical MCBP accelerator and the A100 baseline, prints the
stage-level latency/energy, and runs a miniature end-to-end functional check
with the BGPP predictor on a scaled-down model.

Usage::

    python examples/long_context_summarization.py
"""

import numpy as np

from repro.baselines import GPUAccelerator
from repro.core.bgpp import make_bgpp_predictor
from repro.eval import format_table
from repro.hw import MCBPAccelerator
from repro.model import TransformerModel, generate, scaled_down_config
from repro.workloads import make_workload, profile_model


def accelerator_study() -> None:
    workload = make_workload("Llama7B", "Dolly", batch=8, decode_len=48)
    profile = profile_model("Llama7B")

    mcbp = MCBPAccelerator().evaluate(workload, profile, n_processors=148)
    gpu = GPUAccelerator().evaluate(workload, profile)

    rows = []
    for name, report in (("A100", gpu), ("MCBP x148", mcbp)):
        rows.append(
            {
                "system": name,
                "prefill_ms": report.prefill_latency_s * 1e3,
                "decode_ms": report.decode_latency_s * 1e3,
                "total_ms": report.total_latency_s * 1e3,
                "energy_J": report.total_energy_j,
                "GOPS/W": report.energy_efficiency_gops_per_w,
            }
        )
    print(format_table(rows, title="Llama7B / Dolly (8k prompt, 48 decode, batch 8)"))
    print(
        "Speedup {:.1f}x, efficiency gain {:.1f}x".format(
            gpu.total_latency_s / mcbp.total_latency_s,
            mcbp.energy_efficiency_gops_per_w / gpu.energy_efficiency_gops_per_w,
        )
    )


def functional_check() -> None:
    """Tiny end-to-end run: sparse BGPP attention vs dense attention."""
    config = scaled_down_config("Llama7B", scale=64)
    model = TransformerModel(config, seed=0)
    prompt = list(np.random.default_rng(1).integers(1, config.vocab_size, size=96))

    dense = generate(model, prompt, max_new_tokens=8)
    sparse = generate(
        model, prompt, max_new_tokens=8, predictor=make_bgpp_predictor(alpha=0.6)
    )
    agreement = np.mean(
        [a == b for a, b in zip(dense.generated_tokens, sparse.generated_tokens)]
    )
    print(
        "\nFunctional check on {} ({} layers, hidden {}):".format(
            config.name, config.n_layers, config.hidden_size
        )
    )
    print("  dense  decode attention density : {:.1%}".format(dense.decode_attention_density))
    print("  sparse decode attention density : {:.1%}".format(sparse.decode_attention_density))
    print("  token agreement dense vs sparse : {:.1%}".format(agreement))


if __name__ == "__main__":
    accelerator_study()
    functional_check()
