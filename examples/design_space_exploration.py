"""Design-space exploration: choosing the group size m and the BGPP alpha.

Reproduces the two tuning studies behind MCBP's default configuration:

* Fig. 18 -- the group size ``m`` trades BRCR computation reduction against
  BSTC compression ratio; the balanced choice is ``m = 4``.
* Fig. 24(a) -- the BGPP threshold parameter ``alpha`` trades attention
  sparsity against output fidelity; the paper operates at 0.5-0.6.

Usage::

    python examples/design_space_exploration.py
"""

from repro.eval import (
    alpha_sweep,
    format_nested_table,
    group_size_dse,
    optimal_group_size,
)


def main() -> None:
    dse = group_size_dse()
    table = {f"m={m}": row for m, row in dse.items()}
    print(
        format_nested_table(
            table,
            row_label="group size",
            title="Group-size DSE (computation reduction band + compression ratio)",
            precision=2,
        )
    )
    print(f"\nBalanced choice of m: {optimal_group_size(dse)} (paper picks 4)\n")

    sweep = alpha_sweep(alphas=(0.8, 0.7, 0.6, 0.5, 0.4, 0.3))
    table = {f"alpha={a}": row for a, row in sweep.items()}
    print(
        format_nested_table(
            table,
            row_label="setting",
            title="BGPP alpha sweep (accuracy proxy vs attention sparsity)",
            precision=1,
        )
    )
    print("\nPaper operating range: alpha in [0.5, 0.6] balances both objectives.")


if __name__ == "__main__":
    main()
