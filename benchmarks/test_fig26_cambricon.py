"""E16 / Fig. 26: comparison with the Cambricon-C INT4 accelerator (W4A8)."""

from repro.eval import cambricon_comparison, format_nested_table

from .conftest import print_result


def test_fig26_cambricon(benchmark):
    table = benchmark(lambda: cambricon_comparison())
    flattened = {
        f"{stage}/{model}": metrics
        for stage, per_model in table.items()
        for model, metrics in per_model.items()
    }
    print_result(
        "Fig. 26 -- MCBP vs Cambricon-C (W4A8) on the Dolly task",
        format_nested_table(flattened, row_label="stage/model", precision=2),
    )
    # MCBP wins both stages on every model: Cambricon-C's lookup GEMM has no
    # sparsity exploitation in prefill and no traffic optimisation in decode.
    for stage in ("prefill", "decode"):
        for model, metrics in table[stage].items():
            assert metrics["speedup"] > 1.0, (stage, model)
            assert metrics["energy_ratio"] < 1.0, (stage, model)
