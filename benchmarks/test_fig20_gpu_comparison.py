"""E9 / Fig. 20: throughput and energy-efficiency gain over the A100 GPU."""

from repro.eval import (
    bit_shift_overhead,
    format_nested_table,
    throughput_and_efficiency_vs_gpu,
)

from .conftest import print_result


def test_fig20ab_throughput_efficiency(benchmark):
    table = benchmark(
        lambda: throughput_and_efficiency_vs_gpu(
            models=("Llama7B", "Llama13B", "OPT1B3", "Bloom1B7", "Qwen7B")
        )
    )
    print_result(
        "Fig. 20(a,b) -- MCBP (148 processors) vs A100: speedup and efficiency gain",
        format_nested_table(table, row_label="model", precision=2),
    )
    mean = table["Mean"]
    # paper: 8.72x / 9.43x speedup and 29.2x / 31.1x efficiency gain on average
    assert mean["speedup_standard"] > 3.0
    assert mean["speedup_aggressive"] >= mean["speedup_standard"]
    assert mean["efficiency_gain_standard"] > 10.0
    assert mean["efficiency_gain_aggressive"] >= mean["efficiency_gain_standard"]
    # larger GPU batches amortise weight traffic but saturate
    assert mean["gpu_throughput_b128"] > mean["gpu_throughput_b8"]


def test_fig20c_bit_shift_overhead(benchmark):
    table = benchmark(lambda: bit_shift_overhead())
    print_result(
        "Fig. 20(c) -- bit-shift overhead vs value-level execution (Llama7B)",
        format_nested_table(table, row_label="task"),
    )
    geo = table["GeoMean"]
    # the shift overhead stays small and is far outweighed by the overall gain
    assert geo["bit_shift_fraction"] < 0.3
    assert geo["latency_reduction"] > 1.5
