"""E15 / Fig. 25: bit-level sparsity and BRCR/BSTC gains across quantisation schemes."""

from repro.eval import format_nested_table, quantization_sparsity_study

from .conftest import print_result


def test_fig25_quant_sparsity(benchmark):
    study = benchmark(lambda: quantization_sparsity_study())
    table = {
        name: {
            "bits": entry["bits"],
            "value_sparsity": entry["value_sparsity"],
            "bit_sparsity": entry["bit_sparsity"],
            "norm_computation_brcr": entry["norm_computation_brcr"],
            "norm_memory_bstc": entry["norm_memory_bstc"],
        }
        for name, entry in study.items()
    }
    print_result(
        "Fig. 25 -- Llama13B: sparsity and BRCR/BSTC gains under PTQ-INT8 / QAT-INT8 / PTQ-INT4",
        format_nested_table(table, row_label="scheme"),
    )
    # INT8 PTQ/QAT behave similarly; INT4 has much higher value sparsity but
    # lower bit sparsity, and both BRCR and BSTC still deliver gains.
    assert abs(study["ptq_int8"]["bit_sparsity"] - study["qat_int8"]["bit_sparsity"]) < 0.25
    assert study["ptq_int4"]["value_sparsity"] > study["ptq_int8"]["value_sparsity"]
    assert study["ptq_int4"]["bit_sparsity"] < study["ptq_int8"]["bit_sparsity"]
    for entry in study.values():
        assert entry["norm_computation_brcr"] < 1.0
        assert entry["norm_memory_bstc"] <= 1.0
