"""E1 / Fig. 1(a): end-to-end latency breakdown on the GPU vs prompt length."""

from repro.eval import format_table, latency_breakdown_vs_prompt

from .conftest import print_result

PROMPT_LENS = (1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072)


def test_fig01_latency_breakdown(benchmark):
    rows = benchmark(lambda: latency_breakdown_vs_prompt(prompt_lens=PROMPT_LENS))
    print_result(
        "Fig. 1(a) -- Llama7B end-to-end latency breakdown (%) on A100, decode=16, batch=4",
        format_table(rows, precision=1),
    )
    short, long = rows[0], rows[-1]
    # short prompts are weight-load bound, long prompts are GEMM/KV bound
    assert short["weight_load"] > 35.0
    assert long["gemm"] > short["gemm"]
    assert long["kv_load"] > short["kv_load"]
