"""E8 / Fig. 19: latency reduction of BRCR, BSTC and BGPP (union and separate)."""

from repro.eval import (
    format_nested_table,
    separate_technique_effects,
    technique_latency_ablation,
)

from .conftest import print_result


def test_fig19a_union_ablation(benchmark):
    table = benchmark(lambda: technique_latency_ablation())
    print_result(
        "Fig. 19(a) -- normalised latency as BRCR/BSTC/BGPP are enabled (baseline = 1.0)",
        format_nested_table(table, row_label="model"),
    )
    mean = table["Mean"]
    assert mean["+BRCR"] < mean["Baseline"]
    assert mean["+BSTC"] < mean["+BRCR"]
    assert mean["+BGPP"] <= mean["+BSTC"]


def test_fig19b_separate_effects(benchmark):
    effects = benchmark(
        lambda: separate_technique_effects(
            dolly_prompts=(1024, 4096), mbpp_decodes=(1024, 4096)
        )
    )
    print_result(
        "Fig. 19(b) -- per-technique speedup on prompt-heavy (Dolly) and decode-heavy (MBPP) workloads",
        format_nested_table(effects, row_label="scenario"),
    )
    # GEMM-bound summarisation benefits most from BRCR; decode-bound code
    # generation benefits most from the traffic optimisations.
    assert effects["Dolly-prompt1024"]["BRCR"] > effects["Dolly-prompt1024"]["BSTC"]
    assert effects["MBPP-decode1024"]["BSTC"] > effects["MBPP-decode1024"]["BRCR"]
    # longer decodes shift more benefit toward the KV-cache optimisation
    assert (
        effects["MBPP-decode4096"]["BGPP"] >= effects["MBPP-decode1024"]["BGPP"] * 0.95
    )
