"""Shared fixtures for the per-figure benchmark harness.

Each benchmark module regenerates one table or figure of the paper: it runs
the corresponding experiment driver under pytest-benchmark and prints the rows
/ series the paper reports, so `pytest benchmarks/ --benchmark-only -s` doubles
as the reproduction script.
"""

import pytest


def print_result(title: str, text: str) -> None:
    """Print a reproduction table beneath a recognisable banner."""
    banner = "=" * len(title)
    print(f"\n{banner}\n{title}\n{banner}\n{text}")


@pytest.fixture(scope="session")
def llama_profile():
    from repro.workloads import profile_model

    return profile_model("Llama7B")
