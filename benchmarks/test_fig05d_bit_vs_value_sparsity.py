"""E3 / Fig. 5(d): value sparsity vs bit sparsity across the five LLMs."""

from repro.eval import bit_vs_value_sparsity, format_nested_table

from .conftest import print_result


def test_fig05d_bit_vs_value_sparsity(benchmark):
    table = benchmark(lambda: bit_vs_value_sparsity(rows=128))
    print_result(
        "Fig. 5(d) -- value sparsity vs mean bit sparsity (sign-magnitude INT8)",
        format_nested_table(table, row_label="model"),
    )
    # paper: bit sparsity is ~10x higher than value sparsity on average
    assert table["Mean"]["ratio"] > 4.0
    assert table["Mean"]["bit_sparsity"] > 0.6
