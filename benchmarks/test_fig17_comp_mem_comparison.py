"""E7 / Fig. 17: normalised computation (prefill) and memory access (decoding)."""

from repro.eval import (
    format_nested_table,
    normalized_computation_prefill,
    normalized_memory_access_decoding,
)

from .conftest import print_result

MODELS = ("Llama7B", "Llama13B", "OPT1B3", "Bloom1B7", "Qwen7B")


def test_fig17_normalized_computation(benchmark):
    table = benchmark(lambda: normalized_computation_prefill(models=MODELS))
    print_result(
        "Fig. 17 (left) -- normalised prefill computation (SOFA = 1.0)",
        format_nested_table(table, row_label="accelerator"),
    )
    assert table["MCBP"]["Mean"] == min(t["Mean"] for t in table.values())
    assert table["Bitwave"]["Mean"] < table["FACT"]["Mean"]  # bit sparsity beats value sparsity


def test_fig17_normalized_memory_access(benchmark):
    table = benchmark(lambda: normalized_memory_access_decoding(models=MODELS))
    print_result(
        "Fig. 17 (right) -- normalised decoding memory access (FuseKNA = 1.0)",
        format_nested_table(table, row_label="accelerator"),
    )
    assert table["MCBP"]["Mean"] == min(t["Mean"] for t in table.values())
