"""E6 / Fig. 18: design-space exploration of the group size m."""

from repro.eval import format_nested_table, group_size_dse, optimal_group_size

from .conftest import print_result


def test_fig18_group_size_dse(benchmark):
    dse = benchmark(lambda: group_size_dse())
    table = {f"m={m}": row for m, row in dse.items()}
    print_result(
        "Fig. 18 -- computation reduction (min/max) and compression ratio vs group size",
        format_nested_table(table, row_label="group size", precision=2),
    )
    reductions = [dse[m]["comp_reduction_min"] for m in sorted(dse)]
    peak = reductions.index(max(reductions)) + 1
    # the paper's sweet spot: reduction peaks around m=5 and the balanced
    # choice (including compression and divisibility) is m=4
    assert 3 <= peak <= 6
    assert optimal_group_size(dse) == 4
