"""E18 / Table 4: specification comparison with SpAtten, FACT and SOFA."""

from repro.eval import format_nested_table, sota_spec_table

from .conftest import print_result


def test_table4_sota_specs(benchmark):
    table = benchmark(lambda: sota_spec_table())
    print_result(
        "Table 4 -- published specs plus same-workload efficiency ratios measured here",
        format_nested_table(table, row_label="accelerator", precision=2),
    )
    # published headline numbers
    assert table["MCBP"]["throughput_gops"] == 54463.0
    assert table["MCBP"]["efficiency_gops_w"] == 22740.0
    # published efficiency ratios: 35x / 5.2x / 3.2x vs SpAtten / FACT / SOFA
    assert table["MCBP"]["efficiency_gops_w"] / table["SpAtten"]["efficiency_gops_w"] > 30
    assert table["MCBP"]["efficiency_gops_w"] / table["FACT"]["efficiency_gops_w"] > 4
    assert table["MCBP"]["efficiency_gops_w"] / table["SOFA"]["efficiency_gops_w"] > 2.5
    # on identical workloads with identical memory systems the measured gap is
    # smaller but MCBP still leads every design
    for name in ("SpAtten", "FACT", "SOFA"):
        assert table[name]["measured_efficiency_ratio_vs_mcbp"] > 1.0
