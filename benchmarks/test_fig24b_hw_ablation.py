"""E14 / Fig. 24(b): hardware overhead vs benefit of BRCR, BSTC and BGPP."""

from repro.eval import format_nested_table, hardware_ablation

from .conftest import print_result


def test_fig24b_hardware_ablation(benchmark):
    table = benchmark(lambda: hardware_ablation())
    print_result(
        "Fig. 24(b) -- area/power/throughput/efficiency vs a same-throughput systolic array",
        format_nested_table(table, row_label="step", precision=2),
    )
    assert table["SystolicArray"]["throughput"] == 1.0
    # each engine adds a modest area/power increment but a larger benefit
    assert table["BRCR"]["throughput"] > 1.5
    assert table["+BSTC"]["throughput"] >= table["BRCR"]["throughput"]
    assert table["+BGPP"]["throughput"] >= table["+BSTC"]["throughput"]
    assert table["+BGPP"]["energy_efficiency"] > 2.0
    assert table["+BGPP"]["area"] < 1.5  # within the same silicon budget ballpark
