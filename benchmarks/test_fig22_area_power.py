"""E11 / Fig. 22 + Table 3: area and power breakdown of the MCBP prototype."""

from repro.eval import format_nested_table
from repro.hw import MCBP_HW_CONFIG, mcbp_area_breakdown, mcbp_power_breakdown

from .conftest import print_result


def test_fig22_area_power_breakdown(benchmark):
    area, power = benchmark(lambda: (mcbp_area_breakdown(), mcbp_power_breakdown()))
    table = {
        name: {
            "area_mm2": area.components.get(name, 0.0),
            "area_frac": area.components.get(name, 0.0) / area.total_mm2,
            "power_w": power.components.get(name, 0.0),
            "power_frac": power.components.get(name, 0.0) / power.total_w,
        }
        for name in sorted(set(area.components) | set(power.components))
    }
    print_result(
        "Fig. 22 / Table 3 -- MCBP area (9.52 mm^2) and power (2.395 W) breakdown",
        format_nested_table(table, row_label="component"),
    )
    assert area.total_mm2 == MCBP_HW_CONFIG.area_mm2
    assert abs(sum(power.components.values()) - power.total_w) / power.total_w < 0.01
    # headline fractions from the paper
    assert abs(area.fraction("brcr_unit") - 0.382) < 0.01
    assert abs(power.fraction("dram") - 0.476) < 0.01
    assert area.fraction("bstc_unit") < 0.07  # lightweight CODEC
    # Table 3 structural parameters
    assert MCBP_HW_CONFIG.n_pes == 160
    assert MCBP_HW_CONFIG.total_sram_kb == 1248
