"""E12 / Fig. 23: per-stage speedup and energy vs SOTA accelerators (Llama7B)."""

import pytest

from repro.eval import format_nested_table, sota_stage_comparison

from .conftest import print_result


@pytest.mark.parametrize("stage", ["prefill", "decode"])
def test_fig23_sota_comparison(benchmark, stage):
    table = benchmark(lambda: sota_stage_comparison(stage=stage))
    flattened = {
        f"{task}/{acc}": metrics
        for task, per_acc in table.items()
        for acc, metrics in per_acc.items()
    }
    print_result(
        f"Fig. 23 -- {stage} stage: speedup and normalised energy vs SOTA (SOFA = 1.0)",
        format_nested_table(flattened, row_label="task/accelerator", precision=2),
    )
    mean = table["Mean"]
    # MCBP achieves the best speedup and the lowest energy in both stages
    assert mean["MCBP"]["speedup"] == max(m["speedup"] for m in mean.values())
    assert mean["MCBP"]["energy_total"] == min(m["energy_total"] for m in mean.values())
    # MCBP's bit-reorder energy share stays small (bit-slice-first layout)
    assert mean["MCBP"]["energy_bit_reorder"] < 0.1 * mean["MCBP"]["energy_total"] + 1e-9
    # FuseKNA / Bitwave pay noticeable reorder energy
    assert mean["FuseKNA"]["energy_bit_reorder"] > mean["MCBP"]["energy_bit_reorder"]
