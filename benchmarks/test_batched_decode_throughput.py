"""Benchmark: fused batched decode vs the per-session loop, arena vs stacking.

For each batch size ``B`` in {1, 4, 8, 16} the same ``B`` prefilled decode
streams advance ``N_STEPS`` tokens two ways:

* **per-session loop** -- one ``model.forward`` call per stream per step
  (what the PR-1 scheduler did);
* **fused batched step** -- ``IncrementalDecoder.step_batch`` stacks the
  streams into one ``(B, hidden)`` batch and runs a single quantised forward
  per step, with the model bound to an :class:`MCBPEngine` so each weight
  matrix's BSTC planes are decoded at most once per step (in steady state:
  once overall, via the decoded-plane cache).

A second grid pits the fused path's two KV layouts against each other at
long context (``ARENA_CONTEXT`` tokens, ``B`` in {8, 16}):

* **re-stacking** -- standalone per-stream caches, each step copies every
  stream's full history into a fresh padded tensor
  (``MultiHeadAttention.stack_copy_bytes``);
* **paged arena** -- one shared :class:`PagedKVArena`, each step refreshes
  an incrementally maintained batch view with only the ``B`` new rows
  (``ArenaStats.gather_bytes_copied``).

CI gates: tokens bit-identical everywhere, fused >= per-session at
``B = 8``, arena >= stacking at ``B = 8``, exactly one BSTC decode per
weight matrix, and the arena must copy >= ``ARENA_BYTES_GATE``x fewer KV
bytes per step at the long context (per-step copy traffic no longer scales
with context length).  Results are written to ``BENCH_serving.json`` at the
repo root -- including a full scheduler run in the ``ServingReport.to_json``
schema shared with ``examples/serving_simulation.py --json`` -- so the
serving-performance trajectory is tracked from this PR on.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.core.engine import MCBPEngine
from repro.model import QuantizedTransformer, TransformerModel, get_model_config
from repro.model.generation import IncrementalDecoder
from repro.serve import ContinuousBatchingScheduler, PagedKVArena
from repro.workloads import sample_requests

from .conftest import print_result

BATCH_SIZES = (1, 4, 8, 16)
GATED_BATCH = 8  # the CI gates compare paths at this batch size
N_STEPS = 24
PROMPT_LEN = 12
REPEATS = 3

# long-context arena grid: prompt + decode steps add up to ARENA_CONTEXT
ARENA_BATCHES = (8, 16)
ARENA_CONTEXT = 512
ARENA_STEPS = 16
ARENA_BYTES_GATE = 5.0  # arena must copy >= 5x fewer KV bytes per step

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_serving.json"


def _build_model() -> QuantizedTransformer:
    config = get_model_config("tiny")
    return QuantizedTransformer(TransformerModel(config, seed=0), seed=1)


def _prefilled_decoders(model, batch, prompt_len=PROMPT_LEN, arena=None):
    rng = np.random.default_rng(42)
    vocab = model.config.vocab_size
    decoders, tokens = [], []
    for _ in range(batch):
        decoder = IncrementalDecoder(model, arena=arena)
        tokens.append(
            decoder.prefill(rng.integers(0, vocab, size=prompt_len).tolist())
        )
        decoders.append(decoder)
    return decoders, tokens


def _decode_tokens_per_sec(model, batch, fused):
    """Best-of-REPEATS tokens/sec of the decode loop; returns (tps, tokens)."""
    best = float("inf")
    final_tokens = None
    for _ in range(REPEATS):
        decoders, tokens = _prefilled_decoders(model, batch)
        start = time.perf_counter()
        for _ in range(N_STEPS):
            if fused:
                tokens = IncrementalDecoder.step_batch(decoders, tokens)
            else:
                tokens = [d.step(t) for d, t in zip(decoders, tokens)]
        best = min(best, time.perf_counter() - start)
        final_tokens = list(tokens)
    return batch * N_STEPS / best, final_tokens


def _stack_copy_bytes(model) -> int:
    return sum(layer.attention.stack_copy_bytes for layer in model.model.layers)


def _reset_stack_copy_bytes(model) -> None:
    for layer in model.model.layers:
        layer.attention.stack_copy_bytes = 0


def _arena_vs_stacking_row(model, batch):
    """Fused decode at long context: paged arena vs per-stream re-stacking."""
    config = model.config
    prompt_len = ARENA_CONTEXT - ARENA_STEPS
    row = {
        "batch": batch,
        "context_tokens": ARENA_CONTEXT,
        "decode_steps": ARENA_STEPS,
    }
    final_tokens = {}
    for mode in ("stacking", "arena"):
        best = float("inf")
        for _ in range(REPEATS):
            arena = None
            if mode == "arena":
                arena = PagedKVArena(
                    config.n_layers, config.hidden_size, page_size=32
                )
            decoders, tokens = _prefilled_decoders(
                model, batch, prompt_len=prompt_len, arena=arena
            )
            # count only decode-step copy traffic, not the prefill
            _reset_stack_copy_bytes(model)
            gather_base = arena.stats.gather_bytes_copied if arena else 0
            start = time.perf_counter()
            for _ in range(ARENA_STEPS):
                tokens = IncrementalDecoder.step_batch(decoders, tokens)
            best = min(best, time.perf_counter() - start)
            final_tokens[mode] = list(tokens)
            copied = (
                arena.stats.gather_bytes_copied - gather_base
                if arena
                else _stack_copy_bytes(model)
            )
        row[f"{mode}_tokens_per_sec"] = batch * ARENA_STEPS / best
        row[f"{mode}_kv_bytes_per_step"] = copied / ARENA_STEPS
    assert final_tokens["arena"] == final_tokens["stacking"], (
        f"arena decode diverged from stacking at B={batch}"
    )
    row["speedup"] = row["arena_tokens_per_sec"] / row["stacking_tokens_per_sec"]
    row["kv_bytes_ratio"] = (
        row["stacking_kv_bytes_per_step"] / row["arena_kv_bytes_per_step"]
    )
    return row


def test_batched_decode_throughput(benchmark):
    model = _build_model()
    engine = MCBPEngine(group_size=4, weight_bits=8)
    model.bind_engine(engine)
    engine.codec.reset_counters()

    rows = []
    for batch in BATCH_SIZES:
        sequential_tps, sequential_tokens = _decode_tokens_per_sec(
            model, batch, fused=False
        )
        fused_tps, fused_tokens = _decode_tokens_per_sec(model, batch, fused=True)
        assert fused_tokens == sequential_tokens, f"fused decode diverged at B={batch}"
        rows.append(
            {
                "batch": batch,
                "decode_steps": N_STEPS,
                "sequential_tokens_per_sec": sequential_tps,
                "batched_tokens_per_sec": fused_tps,
                "speedup": fused_tps / sequential_tps,
            }
        )

    # steady state: each of the model's weight matrices was BSTC-decoded
    # exactly once for the entire grid (<= one decode per layer per step)
    n_matrices = len(model.quantized_weight_matrices())
    assert engine.codec.decode_calls == n_matrices
    assert engine.stats.cache_misses == n_matrices

    # headline number under pytest-benchmark: the fused decode loop at B=8
    def fused_gated_batch():
        decoders, tokens = _prefilled_decoders(model, GATED_BATCH)
        for _ in range(N_STEPS):
            tokens = IncrementalDecoder.step_batch(decoders, tokens)
        return tokens

    benchmark.pedantic(fused_gated_batch, rounds=3, iterations=1)

    # long-context KV layout grid: paged arena vs per-stream re-stacking
    arena_rows = [_arena_vs_stacking_row(model, batch) for batch in ARENA_BATCHES]

    # shared-format serving report: one fused scheduler run over a sampled
    # request stream (the same schema serving_simulation.py --json emits)
    config = model.config
    scheduler = ContinuousBatchingScheduler(model, max_active=GATED_BATCH)
    scheduler.submit_many(
        sample_requests(
            16, vocab_size=config.vocab_size, mean_interarrival=0.5, seed=11
        )
    )
    report = scheduler.run()

    payload = {
        "benchmark": "batched_decode_throughput",
        "model": config.name,
        "prompt_len": PROMPT_LEN,
        "results": rows,
        "arena_vs_stacking": arena_rows,
        "bstc_decode_calls": int(engine.codec.decode_calls),
        "weight_matrices": n_matrices,
        "serving_report": report.to_json(),
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    gated = next(r for r in rows if r["batch"] == GATED_BATCH)
    gated_arena = next(r for r in arena_rows if r["batch"] == GATED_BATCH)
    print_result(
        "Fused batched decode -- tokens/sec vs per-session loop",
        "\n".join(
            f"B={r['batch']:>2}: per-session {r['sequential_tokens_per_sec']:9.1f} "
            f"tok/s   fused {r['batched_tokens_per_sec']:9.1f} tok/s   "
            f"speedup {r['speedup']:5.2f}x"
            for r in rows
        )
        + "\n"
        + "\n".join(
            f"B={r['batch']:>2} ctx={r['context_tokens']}: "
            f"stacking {r['stacking_kv_bytes_per_step'] / 1024.0:8.1f} KiB/step "
            f"{r['stacking_tokens_per_sec']:7.1f} tok/s   "
            f"arena {r['arena_kv_bytes_per_step'] / 1024.0:6.1f} KiB/step "
            f"{r['arena_tokens_per_sec']:7.1f} tok/s   "
            f"bytes {r['kv_bytes_ratio']:5.1f}x  speed {r['speedup']:4.2f}x"
            for r in arena_rows
        )
        + f"\nBSTC decodes: {engine.codec.decode_calls} "
        f"(= {n_matrices} weight matrices)\nreport -> {BENCH_PATH.name}",
    )

    # CI gate: the fused path must never lose to the per-session loop at the
    # gated batch size (it sits ~3-4x above it; 1.0 keeps noise out of CI)
    assert gated["speedup"] >= 1.0, (
        f"fused decode slower than per-session loop at B={GATED_BATCH}: "
        f"{gated['speedup']:.2f}x"
    )
    # CI gate: the paged arena must not lose to re-stacking at B=8, and its
    # per-step KV copy traffic must no longer scale with context length
    assert gated_arena["speedup"] >= 1.0, (
        f"arena decode slower than re-stacking at B={GATED_BATCH}: "
        f"{gated_arena['speedup']:.2f}x"
    )
    for row in arena_rows:
        assert row["kv_bytes_ratio"] >= ARENA_BYTES_GATE, (
            f"arena copies too many KV bytes at B={row['batch']}: only "
            f"{row['kv_bytes_ratio']:.1f}x below stacking "
            f"(gate {ARENA_BYTES_GATE}x)"
        )
