"""Benchmark: fused batched decode vs the per-session loop, arena vs stacking.

For each batch size ``B`` in {1, 4, 8, 16} the same ``B`` prefilled decode
streams advance ``N_STEPS`` tokens two ways:

* **per-session loop** -- one ``model.forward`` call per stream per step
  (what the PR-1 scheduler did);
* **fused batched step** -- ``IncrementalDecoder.step_batch`` stacks the
  streams into one ``(B, hidden)`` batch and runs a single quantised forward
  per step, with the model bound to an :class:`MCBPEngine` so each weight
  matrix's BSTC planes are decoded at most once per step (in steady state:
  once overall, via the decoded-plane cache).

A second grid pits the fused path's two KV layouts against each other at
long context (``ARENA_CONTEXT`` tokens, ``B`` in {8, 16}):

* **re-stacking** -- standalone per-stream caches, each step copies every
  stream's full history into a fresh padded tensor
  (``MultiHeadAttention.stack_copy_bytes``);
* **paged arena** -- one shared :class:`PagedKVArena`, each step refreshes
  an incrementally maintained batch view with only the ``B`` new rows
  (``ArenaStats.gather_bytes_copied``).

A third grid replays one bursty prioritized heavy-tail trace through the
policy-driven :class:`ServingEngine` under the shipped policy pairs
(FCFS, priority, deadline, aging) at ``B = 8`` slots, recording per-class
p95 latency, preemption and deadline-miss counts, and wall-clock tokens/sec.

A fourth grid measures the **chunked batched prefill pipeline**: one
prefill-heavy bursty (Pareto) trace at ``B = 8`` runs with one-shot serial
prefill vs batched prefill, recording per-request *wall-clock* TTFT p50/p95
(queue delay in steps is identical by construction, so wall time isolates
the prefill execution strategy) plus a ``prefill_token_budget`` sweep
showing the TTFT-vs-decode-throughput trade.

A fifth grid measures the **cross-request prefix cache**: a shared-prefix
trace (every prompt opens with the same long head) runs with
``prefix_cache`` off and on, recording wall-clock TTFT p95, page faults,
reused prompt rows and shared pages; a divergent-prompt trace (no two
prompts share a full page) pins the cache as a strict no-op.

CI gates: tokens bit-identical everywhere (including the preemption-heavy
policy runs, whose evicted sessions must resume bit-identically to their
solo decode, and every chunked/mixed prefill step), fused >= per-session at
``B = 8``, arena >= stacking at ``B = 8``, exactly one BSTC decode per
weight matrix, the arena must copy >= ``ARENA_BYTES_GATE``x fewer KV bytes
per step at the long context, ``ServingEngine`` at FCFS must match the
pre-policy scheduler's report bit-exactly and keep >= 0.8x of its
wall-clock throughput, the priority policy must cut high-priority p95
latency strictly below FCFS on the bursty trace (with real preemptions),
the deadline policy must not miss more deadlines than FCFS, batched
prefill must not lose to serial prefill on wall-clock TTFT p95 (its
step-domain report must be bit-identical), and the prefix cache must
allocate strictly fewer pages on the shared-prefix trace without losing
the cache-off TTFT p95 (tokens, per-request metrics and -- on the
divergent trace -- page faults all bit-identical).  Results are written to
``BENCH_serving.json`` at the repo root -- including a full engine run in
the ``ServingReport.to_json`` schema shared with
``examples/serving_simulation.py --json`` -- so the serving-performance
trajectory is tracked from this PR on.
"""

import gc
import json
import time
import warnings
from pathlib import Path

import numpy as np

from repro.core.engine import MCBPEngine
from repro.model import QuantizedTransformer, TransformerModel, generate, get_model_config
from repro.model.generation import IncrementalDecoder
from repro.serve import (
    ClusterEngine,
    ContinuousBatchingScheduler,
    FaultPlan,
    FaultSpec,
    PagedKVArena,
    Request,
    ServingEngine,
    SpeculationConfig,
    make_policies,
)
from repro.workloads import sample_requests

from .conftest import print_result

BATCH_SIZES = (1, 4, 8, 16)
GATED_BATCH = 8  # the CI gates compare paths at this batch size
N_STEPS = 24
PROMPT_LEN = 12
REPEATS = 3

# long-context arena grid: prompt + decode steps add up to ARENA_CONTEXT
ARENA_BATCHES = (8, 16)
ARENA_CONTEXT = 512
ARENA_STEPS = 16
ARENA_BYTES_GATE = 5.0  # arena must copy >= 5x fewer KV bytes per step

# policy grid: one bursty prioritized heavy-tail trace, replayed under the
# shipped policy pairs at B = GATED_BATCH slots
POLICY_NAMES = ("fcfs", "priority", "deadline", "aging")
POLICY_REQUESTS = 48
POLICY_SEED = 29
HIGH_PRIORITY = 2

# prefill grid: one prefill-heavy bursty trace (long prompts, short decodes,
# dense Pareto bursts -- the regime where admissions dominate each step) at
# B = GATED_BATCH, serial vs chunked batched prefill + a chunk-budget sweep
PREFILL_REQUESTS = 32
PREFILL_BUDGETS = (16, 32, 64, None)
# batched prefill sits ~1.2-1.4x under serial TTFT p95; the gate allows a
# 10% excursion so one noisy best-of-3 sample on a loaded CI runner cannot
# flip an unrelated PR red (the recorded numbers still track the trajectory)
PREFILL_TTFT_GATE = 1.1

# prefix-cache grid: one shared-prefix trace (a long common prompt head,
# ragged novel tails) and one divergent trace (distinct leading token, so no
# full page is ever shared) at B = GATED_BATCH over small pages
PREFIX_REQUESTS = 24
PREFIX_BASE_LEN = 48
PREFIX_PAGE_SIZE = 8
PREFIX_SEED = 31
# cache-on must not lose cache-off on TTFT p95; it skips most prefill rows
# on the shared trace, so 1.1 only absorbs best-of-3 timer noise
PREFIX_TTFT_GATE = 1.1

# fault-injection hooks (PR 7): the acceptance gate says the hook points
# cost nothing measurable when no FaultInjector is installed, within 2%.
# A 2% comparison is only statistically meaningful same-process, so the
# gate pairs the hooks-disabled engine run against an armed-but-idle
# injector (a spec that can never match) over the identical stream -- the
# armed run exercises every live hook (arena probes, per-commit fires,
# commit-fault routing), so it upper-bounds the disabled-hook overhead vs
# the pre-faults engine.
FAULT_HOOK_GATE = 0.98
# odd: the gate rides the median of per-round pair ratios.  21 rounds puts
# the median's spread near 1% on a noisy shared box (single ~300ms runs
# carry +-5% CPU-time noise), leaving ~3 sigma of margin to the 2% gate
FAULT_REPEATS = 21
FAULT_PROBABILITY = 0.01  # per-opportunity rate of the recovery chaos trace
FAULT_SEED = 23

# snapshot grid (PR 8): the preemption-heavy priority trace replayed with
# kv_snapshots on/off (fp, then int8), plus a 512-token-context resume leg
# and an arena-level snapshot/restore micro-timing at the same context.
# int8 pages are 1 byte + one float64 scale per 64-wide row, so peak KV
# bytes must land near (1 + 8/64)/8 ~ 0.14x of fp; 0.2 leaves margin for
# small schedule drift from quantised argmax flips.
SNAPSHOT_INT8_BYTES_GATE = 0.2
SNAPSHOT_LONG_PROMPT = 480
SNAPSHOT_LONG_DECODE = 32  # prompt + decode = a 512-token context at resume

# cluster grid (PR 9): the bursty policy trace fanned over D data-parallel
# ServingEngine replicas behind the cluster router.  Step-domain metrics
# (steps, tokens/step, load-imbalance CV, prefix hits) are deterministic, so
# the routing gates never ride a timer; wall tokens/sec is recorded for the
# trajectory only.  D=1 round-robin must reproduce the bare engine's report
# bit-for-bit -- the anchor that makes every fleet number trustworthy.
CLUSTER_SIZES = (1, 2, 4)
BALANCE_REQUESTS = 24
BALANCE_SEED = 37
LOCALITY_GROUPS = 4
LOCALITY_SEED = 41

# speculative grid (PR 10): the fused draft-then-verify decode path.  The
# friendly trace uses cyclic motif prompts the (self-extending) n-gram
# drafter echoes almost perfectly, so spec-on must finish the same token
# volume in >= SPEC_STEP_GATE x fewer steps (step-domain, deterministic --
# the gate never rides a timer; measured ~1.4x at k=8).  The adversarial
# trace is uniform-random prompts where drafts rarely survive: with the
# adaptive throttle, spec-on must take no MORE steps than spec-off (the
# committed row of every chunk always emits, so speculation can only tie
# or win in the step domain).
SPEC_K = 8
SPEC_REQUESTS = 6
SPEC_DECODE = 48
SPEC_STEP_GATE = 1.3
SPEC_SEED = 43

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_serving.json"


def _build_model() -> QuantizedTransformer:
    config = get_model_config("tiny")
    return QuantizedTransformer(TransformerModel(config, seed=0), seed=1)


def _prefilled_decoders(model, batch, prompt_len=PROMPT_LEN, arena=None):
    rng = np.random.default_rng(42)
    vocab = model.config.vocab_size
    decoders, tokens = [], []
    for _ in range(batch):
        decoder = IncrementalDecoder(model, arena=arena)
        tokens.append(
            decoder.prefill(rng.integers(0, vocab, size=prompt_len).tolist())
        )
        decoders.append(decoder)
    return decoders, tokens


def _decode_tokens_per_sec(model, batch, fused):
    """Best-of-REPEATS tokens/sec of the decode loop; returns (tps, tokens)."""
    best = float("inf")
    final_tokens = None
    for _ in range(REPEATS):
        decoders, tokens = _prefilled_decoders(model, batch)
        start = time.perf_counter()
        for _ in range(N_STEPS):
            if fused:
                tokens = IncrementalDecoder.step_batch(decoders, tokens)
            else:
                tokens = [d.step(t) for d, t in zip(decoders, tokens)]
        best = min(best, time.perf_counter() - start)
        final_tokens = list(tokens)
    return batch * N_STEPS / best, final_tokens


def _stack_copy_bytes(model) -> int:
    return sum(layer.attention.stack_copy_bytes for layer in model.model.layers)


def _reset_stack_copy_bytes(model) -> None:
    for layer in model.model.layers:
        layer.attention.stack_copy_bytes = 0


def _arena_vs_stacking_row(model, batch):
    """Fused decode at long context: paged arena vs per-stream re-stacking."""
    config = model.config
    prompt_len = ARENA_CONTEXT - ARENA_STEPS
    row = {
        "batch": batch,
        "context_tokens": ARENA_CONTEXT,
        "decode_steps": ARENA_STEPS,
    }
    final_tokens = {}
    for mode in ("stacking", "arena"):
        best = float("inf")
        for _ in range(REPEATS):
            arena = None
            if mode == "arena":
                arena = PagedKVArena(
                    config.n_layers, config.hidden_size, page_size=32
                )
            decoders, tokens = _prefilled_decoders(
                model, batch, prompt_len=prompt_len, arena=arena
            )
            # count only decode-step copy traffic, not the prefill
            _reset_stack_copy_bytes(model)
            gather_base = arena.stats.gather_bytes_copied if arena else 0
            start = time.perf_counter()
            for _ in range(ARENA_STEPS):
                tokens = IncrementalDecoder.step_batch(decoders, tokens)
            best = min(best, time.perf_counter() - start)
            final_tokens[mode] = list(tokens)
            copied = (
                arena.stats.gather_bytes_copied - gather_base
                if arena
                else _stack_copy_bytes(model)
            )
        row[f"{mode}_tokens_per_sec"] = batch * ARENA_STEPS / best
        row[f"{mode}_kv_bytes_per_step"] = copied / ARENA_STEPS
    assert final_tokens["arena"] == final_tokens["stacking"], (
        f"arena decode diverged from stacking at B={batch}"
    )
    row["speedup"] = row["arena_tokens_per_sec"] / row["stacking_tokens_per_sec"]
    row["kv_bytes_ratio"] = (
        row["stacking_kv_bytes_per_step"] / row["arena_kv_bytes_per_step"]
    )
    return row


def _policy_trace(config):
    """Bursty Pareto arrivals, 75/25 low/high priority, tight deadlines."""
    return sample_requests(
        POLICY_REQUESTS,
        vocab_size=config.vocab_size,
        mean_interarrival=0.25,
        arrival_process="pareto",
        arrival_shape=1.5,
        priority_levels=(0, HIGH_PRIORITY),
        priority_weights=(0.75, 0.25),
        deadline_slack=(2, 8),
        seed=POLICY_SEED,
    )


def _policy_rows(model):
    """Replay one prioritized trace under fcfs/priority/deadline policies.

    Latency metrics are step-based (deterministic); wall-clock tokens/sec is
    recorded per policy for the trajectory.  Every run -- including the
    preemption-heavy priority/deadline ones -- must reproduce each request's
    solo-decode tokens exactly, which is the CI gate pinning that preempted
    sessions resume bit-identically.
    """
    config = model.config
    requests = _policy_trace(config)
    reference = {
        r.request_id: generate(
            model, r.prompt_tokens, max_new_tokens=r.max_new_tokens
        ).generated_tokens
        for r in requests
    }
    rows = {}
    for name in POLICY_NAMES:
        admission, scheduling = make_policies(name)
        engine = ServingEngine(
            model,
            max_active=GATED_BATCH,
            admission=admission,
            scheduling=scheduling,
        )
        handles = engine.submit_many(requests)
        start = time.perf_counter()
        report = engine.run()
        elapsed = time.perf_counter() - start
        for handle in handles:
            assert handle.generated_tokens == reference[handle.request_id], (
                f"{name} policy diverged from the solo reference for "
                f"{handle.request_id} (preempted trace must be bit-identical)"
            )
        rows[name] = {
            "steps": report.steps,
            "throughput_tokens_per_step": report.throughput_tokens_per_step,
            "wall_tokens_per_sec": report.total_tokens / elapsed,
            "p95_latency_steps": report.latency_percentile(95),
            "p95_high_priority": report.latency_percentile(
                95, priority=HIGH_PRIORITY
            ),
            "p95_low_priority": report.latency_percentile(95, priority=0),
            "preemptions": report.total_preemptions,
            "deadline_misses": report.total_deadline_misses,
        }
    return rows


def _prefill_trace(config):
    """Prefill-heavy bursty trace: long prompts, short decodes, Pareto bursts."""
    return sample_requests(
        PREFILL_REQUESTS,
        vocab_size=config.vocab_size,
        mean_interarrival=0.3,
        arrival_process="pareto",
        arrival_shape=1.5,
        prompt_divisor=24,
        max_prompt_len=48,
        decode_divisor=16,
        max_decode_len=8,
        seed=POLICY_SEED,
    )


def _ttft_wall_run(
    model, requests, batched, budget=None, page_size=32, prefix_cache=False
):
    """One engine run recording per-request wall-clock TTFT.

    A request's wall TTFT is the time from the start of its arrival step to
    the emission of its first token -- the wall-clock shadow of the
    step-domain ``time_to_first_token_steps``, so the serial and batched
    runs (whose step schedules are identical when ``budget`` is ``None``)
    differ only by how fast each step executes its prefill work.
    """
    engine = ServingEngine(
        model,
        max_active=GATED_BATCH,
        batched_prefill=batched,
        prefill_token_budget=budget,
        page_size=page_size,
        prefix_cache=prefix_cache,
    )
    first_token_wall = {}

    def on_token(handle, token, step):
        first_token_wall.setdefault(handle.request_id, time.perf_counter())

    handles = [engine.submit(r, on_token=on_token) for r in requests]
    step_wall = []
    while engine.has_work:
        step_wall.append(time.perf_counter())
        engine.step()
    ttfts = np.array(
        [
            first_token_wall[r.request_id] - step_wall[r.arrival_step]
            for r in requests
        ]
    )
    return engine.report(), handles, ttfts


def _prefill_rows(model):
    """Serial vs chunked batched prefill TTFT, plus the chunk-budget sweep.

    Every run -- any budget, any mixed decode+prefill step, including the
    budget-stretched multi-step prefills -- must reproduce each request's
    solo-decode tokens exactly; that is the CI gate pinning that the chunked
    pipeline never changes content.  Preemption resumes ride the same
    batched path (see the policy grid's priority/deadline runs).
    """
    config = model.config
    requests = _prefill_trace(config)
    reference = {
        r.request_id: generate(
            model, r.prompt_tokens, max_new_tokens=r.max_new_tokens
        ).generated_tokens
        for r in requests
    }
    rows = {}
    reports = {}
    for mode, batched in (("serial", False), ("batched", True)):
        best_p95 = best_p50 = float("inf")
        for _ in range(REPEATS):
            report, handles, ttfts = _ttft_wall_run(model, requests, batched)
            for handle in handles:
                assert handle.generated_tokens == reference[handle.request_id], (
                    f"{mode} prefill diverged from the solo reference for "
                    f"{handle.request_id}"
                )
            best_p95 = min(best_p95, float(np.percentile(ttfts, 95)))
            best_p50 = min(best_p50, float(np.percentile(ttfts, 50)))
        reports[mode] = report
        rows[mode] = {
            "ttft_wall_p50_ms": best_p50 * 1e3,
            "ttft_wall_p95_ms": best_p95 * 1e3,
            "steps": report.steps,
            "ttft_steps_p95": float(
                np.percentile(
                    [m.time_to_first_token_steps for m in report.requests], 95
                )
            ),
        }
    # with no budget cap the batched pipeline must not perturb the
    # step-domain schedule at all: the whole report is bit-identical
    assert (
        reports["batched"].requests == reports["serial"].requests
    ), "chunked prefill changed the step-domain schedule at unlimited budget"

    sweep = []
    for budget in PREFILL_BUDGETS:
        report, handles, ttfts = _ttft_wall_run(
            model, requests, batched=True, budget=budget
        )
        for handle in handles:
            assert handle.generated_tokens == reference[handle.request_id], (
                f"budget={budget} prefill diverged for {handle.request_id}"
            )
        metrics = report.requests
        sweep.append(
            {
                "prefill_token_budget": budget,
                "steps": report.steps,
                "throughput_tokens_per_step": report.throughput_tokens_per_step,
                "ttft_steps_p50": float(
                    np.percentile(
                        [m.time_to_first_token_steps for m in metrics], 50
                    )
                ),
                "ttft_steps_p95": float(
                    np.percentile(
                        [m.time_to_first_token_steps for m in metrics], 95
                    )
                ),
                "prefill_steps_p95": float(
                    np.percentile([m.prefill_steps for m in metrics], 95)
                ),
                "ttft_wall_p95_ms": float(np.percentile(ttfts, 95)) * 1e3,
            }
        )
    return {
        "batch": GATED_BATCH,
        "requests": PREFILL_REQUESTS,
        "serial": rows["serial"],
        "batched": rows["batched"],
        "ttft_p95_speedup": (
            rows["serial"]["ttft_wall_p95_ms"] / rows["batched"]["ttft_wall_p95_ms"]
        ),
        "budget_sweep": sweep,
    }


def _prefix_traces(config):
    """Shared-head and divergent request streams for the prefix-cache grid."""
    rng = np.random.default_rng(PREFIX_SEED)
    vocab = config.vocab_size
    base = rng.integers(0, vocab, size=PREFIX_BASE_LEN).tolist()
    arrivals = np.sort(rng.integers(0, 12, size=PREFIX_REQUESTS))
    shared, divergent = [], []
    for i in range(PREFIX_REQUESTS):
        tail = rng.integers(0, vocab, size=int(rng.integers(0, 9))).tolist()
        new_tokens = int(rng.integers(2, 7))
        shared.append(
            Request(
                f"s{i:02d}",
                prompt_tokens=base + tail,
                max_new_tokens=new_tokens,
                arrival_step=int(arrivals[i]),
            )
        )
        # a distinct leading token guarantees no full-page prefix is ever
        # shared, so the cache must behave as a strict no-op on this trace
        divergent.append(
            Request(
                f"d{i:02d}",
                prompt_tokens=[i % vocab]
                + rng.integers(0, vocab, size=int(rng.integers(4, 16))).tolist(),
                max_new_tokens=new_tokens,
                arrival_step=int(arrivals[i]),
            )
        )
    return shared, divergent


def _prefix_cache_block(model):
    """Cache on/off over shared-prefix and divergent traces, plus invariants.

    Correctness asserts here (bit-identical tokens and per-request step
    metrics, zero hits on the divergent trace, balanced books on drain)
    never ride on a timer; the TTFT/page gates live in the main test.
    """
    config = model.config
    shared, divergent = _prefix_traces(config)
    page_bytes = (
        PREFIX_PAGE_SIZE * config.hidden_size * config.n_layers * 2 * 8
    )
    runs, reports, tokens = {}, {}, {}
    for mode, cache in (("off", False), ("on", True)):
        best_p95 = float("inf")
        for _ in range(REPEATS):
            report, handles, ttfts = _ttft_wall_run(
                model,
                shared,
                batched=True,
                page_size=PREFIX_PAGE_SIZE,
                prefix_cache=cache,
            )
            best_p95 = min(best_p95, float(np.percentile(ttfts, 95)))
        reports[mode] = report
        tokens[mode] = {h.request_id: h.generated_tokens for h in handles}
        arena = report.arena
        runs[mode] = {
            "ttft_wall_p95_ms": best_p95 * 1e3,
            "steps": report.steps,
            "page_faults": arena["page_faults"],
            "peak_pages_in_use": arena["peak_pages_in_use"],
            "kv_fault_bytes": arena["page_faults"] * page_bytes,
            "prefix_hits": arena["prefix_hits"],
            "prefix_tokens_reused": arena["prefix_tokens_reused"],
            "prefix_pages_shared": arena["prefix_pages_shared"],
            "cow_copies": arena["cow_copies"],
        }
    # sharing is an execution detail: tokens and the whole step-domain
    # per-request schedule are bit-identical to the cache-off run
    assert tokens["on"] == tokens["off"], "prefix cache changed tokens"
    assert reports["on"].requests == reports["off"].requests, (
        "prefix cache perturbed the step-domain schedule"
    )
    arena_on = reports["on"].arena
    assert (
        arena_on["page_faults"]
        == arena_on["pages_freed"] + arena_on["cached_idle_pages"]
    ), "prefix-cache refcount books unbalanced after drain"

    div = {}
    for mode, cache in (("off", False), ("on", True)):
        report, handles, _ = _ttft_wall_run(
            model,
            divergent,
            batched=True,
            page_size=PREFIX_PAGE_SIZE,
            prefix_cache=cache,
        )
        div[mode] = report
        tokens[f"div_{mode}"] = {
            h.request_id: h.generated_tokens for h in handles
        }
    assert tokens["div_on"] == tokens["div_off"], (
        "prefix cache changed tokens on the divergent trace"
    )
    assert div["on"].requests == div["off"].requests
    # no full page is shared, so the cache allocates exactly like no-cache
    assert div["on"].arena["prefix_hits"] == 0
    assert div["on"].arena["page_faults"] == div["off"].arena["page_faults"]

    return {
        "batch": GATED_BATCH,
        "requests": PREFIX_REQUESTS,
        "base_prompt_len": PREFIX_BASE_LEN,
        "page_size": PREFIX_PAGE_SIZE,
        "shared_trace": runs,
        "page_fault_reduction": (
            runs["off"]["page_faults"] / runs["on"]["page_faults"]
        ),
        "divergent_trace": {
            "cache_on_page_faults": div["on"].arena["page_faults"],
            "cache_off_page_faults": div["off"].arena["page_faults"],
            "prefix_hits": div["on"].arena["prefix_hits"],
        },
    }


def _faults_block(model, stream):
    """Fault-hook overhead pair + 1%-fault recovery trace on one stream.

    The overhead gate compares two engines timed in interleaved rounds in
    this process: hooks disabled (``faults=None``) versus an armed-but-idle
    injector whose only spec can never match (probability 0, scheduled past
    any reachable step).  The armed engine keeps every engine-side hook
    live -- arena probes, per-commit fire checks, commit-fault routing --
    so its throughput upper-bounds the cost of the disabled hooks, and its
    report must be bit-identical to the baseline's.  The chaos leg then
    reruns the stream under a 1% uniform fault plan and records recovery
    behaviour (all step-domain, so only the timing pair rides on a clock).
    """
    idle_plan = FaultPlan(
        specs=(
            FaultSpec(site="session.compute", probability=0.0, at_step=10**9),
        )
    )
    # the timing pair runs a 3x longer stream than the serving report so a
    # single sample is ~300ms of work (the chaos leg below stays on the
    # shared 16-request stream so its counters remain comparable to
    # serving_report)
    pair_stream = sample_requests(
        48,
        vocab_size=model.config.vocab_size,
        mean_interarrival=0.5,
        seed=11,
    )

    def _one_run(make_engine):
        # process CPU time, not wall-clock: the pair gate is about compute
        # overhead, and CPU time is immune to the container scheduler
        # preempting one run but not its partner
        serving = make_engine()
        serving.submit_many(pair_stream)
        start = time.process_time()
        report = serving.run()
        return report, time.process_time() - start

    # a single ~100ms run carries +-3% timer noise, too much for a 2% gate
    # on one best-of pair -- so each round times the two engines adjacent
    # in time (alternating order to cancel ordering bias) and the gate
    # rides the MEDIAN of the per-round elapsed ratios: drift cancels
    # within a pair, outlier rounds cancel in the median.  Best-of
    # tokens/sec is still reported for display.
    makers = {
        "base": lambda: ServingEngine(model, max_active=GATED_BATCH),
        "armed": lambda: ServingEngine(
            model, max_active=GATED_BATCH, faults=idle_plan
        ),
    }
    best = {"base": float("inf"), "armed": float("inf")}
    reports, round_ratios = {}, []
    for which in ("base", "armed"):  # warmup: fault caches, allocator state
        _one_run(makers[which])
    # cyclic GC pauses land on whichever engine happens to cross the
    # allocation threshold -- under a full-suite heap that skew exceeds
    # the 2% gate, so the timed pair runs with the collector off
    gc.collect()
    gc.disable()
    try:
        for round_index in range(FAULT_REPEATS):
            order = (
                ("base", "armed") if round_index % 2 == 0 else ("armed", "base")
            )
            elapsed = {}
            for which in order:
                reports[which], elapsed[which] = _one_run(makers[which])
                best[which] = min(best[which], elapsed[which])
            round_ratios.append(elapsed["base"] / elapsed["armed"])
    finally:
        gc.enable()
    hook_ratio = sorted(round_ratios)[len(round_ratios) // 2]
    base_report, armed_report = reports["base"], reports["armed"]
    base_tps = base_report.total_tokens / best["base"]
    armed_tps = armed_report.total_tokens / best["armed"]
    assert armed_report.to_json() == base_report.to_json(), (
        "armed-but-idle fault injector perturbed the serving trace"
    )

    chaos_plan = FaultPlan.uniform(
        FAULT_PROBABILITY,
        seed=FAULT_SEED,
        sites=("arena.alloc", "session.compute", "session.append"),
    )
    chaos = ServingEngine(
        model, max_active=GATED_BATCH, faults=chaos_plan, max_retries=3
    )
    chaos.submit_many(stream)
    chaos_report = chaos.run(max_steps=5000)
    assert not chaos_report.truncated, "chaos trace failed to drain"
    arena = chaos_report.arena
    assert arena["pages_in_use"] == 0, "chaos trace leaked arena pages"
    assert arena["page_faults"] == arena["pages_freed"], (
        "chaos trace arena books unbalanced"
    )
    injector = chaos.fault_injector
    assert injector.total_fires > 0, (
        "the 1% chaos plan never fired -- the recovery leg measured nothing"
    )

    recovered = [
        m
        for m in chaos_report.requests
        if m.retries > 0 and m.outcome == "finished"
    ]
    recovery_ttfts = sorted(
        m.first_token_step - m.arrival_step
        for m in recovered
        if m.first_token_step is not None
    )
    recovery_ttft_p95 = (
        float(
            recovery_ttfts[
                min(len(recovery_ttfts) - 1, int(0.95 * len(recovery_ttfts)))
            ]
        )
        if recovery_ttfts
        else None
    )
    policy = chaos_report.to_json()["policy"]
    return {
        "hooks_disabled_tokens_per_sec": base_tps,
        "hooks_armed_idle_tokens_per_sec": armed_tps,
        "hook_overhead_ratio": hook_ratio,
        "chaos": {
            "fault_probability": FAULT_PROBABILITY,
            "seed": FAULT_SEED,
            "steps": chaos_report.steps,
            "fires_by_site": dict(injector.fires_by_site),
            "opportunities": int(injector.opportunities),
            "total_fires": int(injector.total_fires),
            "retries": policy["retries"],
            "failed": policy["failed"],
            "finished_with_retries": len(recovered),
            "recovery_ttft_p95_steps": recovery_ttft_p95,
        },
    }


def _snapshot_page_bytes(config, page_size, int8):
    """Resident bytes of one arena page (K+V, all layers) per pool dtype."""
    rows = page_size * config.n_layers * 2
    if int8:
        return rows * config.hidden_size + rows * 8  # int8 rows + f64 scales
    return rows * config.hidden_size * 8


def _snapshot_block(model):
    """Snapshot preemption on/off over the preemption-heavy priority trace.

    Correctness asserts here are all step-domain (bit-identical tokens,
    bit-equal schedule, strictly fewer KV appends, balanced books); only the
    512-token snapshot/restore micro-timing rides a clock, and it is
    recorded for the trajectory, never gated.
    """
    config = model.config
    requests = _policy_trace(config)
    reference = {
        r.request_id: generate(
            model, r.prompt_tokens, max_new_tokens=r.max_new_tokens
        ).generated_tokens
        for r in requests
    }

    def _run(kv_snapshots, kv_dtype=None):
        admission, scheduling = make_policies("priority")
        engine = ServingEngine(
            model,
            max_active=GATED_BATCH,
            admission=admission,
            scheduling=scheduling,
            kv_snapshots=kv_snapshots,
            kv_dtype=kv_dtype,
        )
        handles = engine.submit_many(requests)
        report = engine.run()
        return report, {h.request_id: h.generated_tokens for h in handles}

    reports, tokens = {}, {}
    for mode, snap in (("off", False), ("on", True)):
        reports[mode], tokens[mode] = _run(snap)
    # snapshots are an execution detail: the fp engine must reproduce every
    # solo stream and the exact snapshot-off (= pre-PR) step schedule
    assert tokens["on"] == tokens["off"] == reference, (
        "kv_snapshots changed the token streams"
    )
    schedule = {
        mode: [
            (m.request_id, m.admitted_step, m.first_token_step, m.finished_step)
            for m in reports[mode].requests
        ]
        for mode in ("off", "on")
    }
    assert schedule["on"] == schedule["off"], (
        "kv_snapshots perturbed the step-domain schedule"
    )
    arena_on, arena_off = reports["on"].arena, reports["off"].arena
    assert reports["on"].total_preemptions > 0, (
        "the snapshot trace no longer exercises preemption"
    )
    assert arena_on["snapshots_taken"] >= reports["on"].total_preemptions
    assert arena_on["pages_in_use"] == 0, "snapshot trace leaked arena pages"

    # int8 leg: same trace, quantised pool, snapshots on.  Tokens may
    # legitimately drift from fp (documented tolerance), so only the
    # capacity counters are compared.
    int8_report, _ = _run(True, kv_dtype="int8")
    assert int8_report.arena["pages_in_use"] == 0
    page_size = int(arena_on["page_size"])
    peak_bytes = {
        "fp": arena_on["peak_pages_in_use"]
        * _snapshot_page_bytes(config, page_size, int8=False),
        "int8": int8_report.arena["peak_pages_in_use"]
        * _snapshot_page_bytes(config, page_size, int8=True),
    }

    # 512-token-context resume leg: one long low-priority session is
    # preempted mid-decode by a burst of high-priority work on a single
    # slot, then resumes.  Snapshot-off replays the whole context through
    # prefill; snapshot-on faults the pages back and replays nothing.
    rng = np.random.default_rng(FAULT_SEED)
    long_requests = [
        Request(
            "long",
            prompt_tokens=rng.integers(
                0, config.vocab_size, size=SNAPSHOT_LONG_PROMPT
            ).tolist(),
            max_new_tokens=SNAPSHOT_LONG_DECODE,
            priority=0,
            arrival_step=0,
        ),
        Request(
            "rush",
            prompt_tokens=rng.integers(0, config.vocab_size, size=6).tolist(),
            max_new_tokens=4,
            priority=2,
            arrival_step=SNAPSHOT_LONG_PROMPT // 32 + 8,  # mid-decode
        ),
    ]
    long_runs = {}
    for mode, snap in (("off", False), ("on", True)):
        admission, scheduling = make_policies("priority")
        engine = ServingEngine(
            model,
            max_active=1,
            admission=admission,
            scheduling=scheduling,
            kv_snapshots=snap,
        )
        handles = engine.submit_many(long_requests)
        report = engine.run()
        long_runs[mode] = report
        for handle in handles:
            solo = generate(
                model,
                handle.request.prompt_tokens,
                max_new_tokens=handle.request.max_new_tokens,
            )
            assert handle.generated_tokens == solo.generated_tokens, (
                f"long-context {mode} run diverged for {handle.request_id}"
            )
    assert long_runs["on"].total_preemptions > 0, (
        "the long-context leg never preempted the 512-token session"
    )
    reprefill_rows_avoided = (
        long_runs["off"].arena["tokens_appended"]
        - long_runs["on"].arena["tokens_appended"]
    )

    # arena-level micro-timing: snapshot + restore of a full 512-token
    # session, per pool dtype (page copies only -- no model compute)
    micro = {}
    context = SNAPSHOT_LONG_PROMPT + SNAPSHOT_LONG_DECODE
    k = rng.normal(size=(context, config.hidden_size))
    v = rng.normal(size=(context, config.hidden_size))
    for dtype_name, kv_dtype in (("fp", None), ("int8", "int8")):
        arena = PagedKVArena(
            n_layers=config.n_layers,
            page_size=page_size,
            hidden_size=config.hidden_size,
            kv_dtype=kv_dtype,
        )
        sid = arena.create_session()
        for layer in range(config.n_layers):
            arena.append(sid, layer, k, v)
        best, snapshot_bytes = float("inf"), 0
        for _ in range(REPEATS):
            start = time.perf_counter()
            snapshot = arena.snapshot_session(sid)
            arena.restore_session(sid, snapshot)
            best = min(best, time.perf_counter() - start)
            snapshot_bytes = arena.stats.snapshot_bytes // arena.stats.snapshots_taken
        micro[dtype_name] = {
            "roundtrip_ms": best * 1e3,
            "snapshot_bytes": int(snapshot_bytes),
        }

    return {
        "batch": GATED_BATCH,
        "requests": POLICY_REQUESTS,
        "policy": "priority",
        "preemptions": reports["on"].total_preemptions,
        "snapshots_taken": arena_on["snapshots_taken"],
        "snapshots_restored": arena_on["snapshots_restored"],
        "kv_appends_reprefill": arena_off["tokens_appended"],
        "kv_appends_snapshot": arena_on["tokens_appended"],
        "int8": {
            "peak_kv_bytes_fp": peak_bytes["fp"],
            "peak_kv_bytes_int8": peak_bytes["int8"],
            "peak_kv_bytes_ratio": peak_bytes["int8"] / peak_bytes["fp"],
            "dequant_bytes": int8_report.arena["dequant_bytes"],
        },
        "long_context": {
            "context_tokens": context,
            "preemptions": long_runs["on"].total_preemptions,
            "kv_appends_reprefill": long_runs["off"].arena["tokens_appended"],
            "kv_appends_snapshot": long_runs["on"].arena["tokens_appended"],
            "reprefill_rows_avoided": int(reprefill_rows_avoided),
            "snapshot_roundtrip": micro,
        },
    }


def _cluster_block(model):
    """Fleet scaling + routing comparison over D ServingEngine replicas.

    Three legs, all sharing the bursty policy trace unless noted:

    * scaling -- round-robin fleets at D in CLUSTER_SIZES over the bursty
      policy trace: steps shrink and tokens/step grow with D (each replica
      runs its own fused batch), with wall tokens/sec recorded for the
      trajectory;
    * balance -- least-loaded vs round-robin load-imbalance CV at D >= 2 on
      a bimodal trace (alternating long/short requests, spaced arrivals).
      Round-robin parity-partitions every long request onto the same
      replicas; least-loaded routes to whichever replica drained, so its CV
      must not exceed round-robin's;
    * locality -- affinity vs round-robin prefix hits with per-replica
      prefix caches at D=2 on a four-group shared-prefix trace (hashing the
      prompt head keeps each prefix group on one replica, so the fleet pays
      each group's prefix miss once; round-robin splits every group across
      both replicas and registers every prefix twice).

    The D=1 anchor asserts here (cluster report vs bare-engine report, whole
    JSON: tokens, metrics, arena counters) so the routing gates in the main
    test never ride on a timer.
    """
    config = model.config
    requests = _policy_trace(config)

    def timed(make_cluster):
        best, report = float("inf"), None
        for _ in range(REPEATS):
            cluster = make_cluster()
            cluster.submit_many(requests)
            start = time.perf_counter()
            report = cluster.run()
            best = min(best, time.perf_counter() - start)
        return report, report.total_tokens / best

    bare = ServingEngine(model, max_active=GATED_BATCH)
    bare.submit_many(requests)
    start = time.perf_counter()
    bare_report = bare.run()
    bare_elapsed = time.perf_counter() - start

    scaling = {}
    rr_reports = {}
    for d in CLUSTER_SIZES:
        report, wall_tps = timed(
            lambda d=d: ClusterEngine(
                model, n_replicas=d, routing="rr", max_active=GATED_BATCH
            )
        )
        assert report.total_tokens == bare_report.total_tokens, (
            f"rr fleet at D={d} served different token volume than the "
            "single engine"
        )
        rr_reports[d] = report
        if d == 1:
            # D=1 anchor: the trivial fleet must *be* the bare engine --
            # the entire per-replica report is bit-identical, so every
            # fleet-level number below inherits the single-engine goldens
            assert report.replicas[0].to_json() == bare_report.to_json(), (
                "ClusterEngine(D=1, rr) diverged from the bare ServingEngine"
            )
            assert report.load_imbalance == 0.0
        scaling[str(d)] = {
            "steps": report.steps,
            "throughput_tokens_per_step": report.throughput_tokens_per_step,
            "wall_tokens_per_sec": wall_tps,
            "load_imbalance": report.load_imbalance,
            "step_speedup_vs_single": bare_report.steps / report.steps,
        }

    # bimodal balance trace: even submissions are long (16 new tokens), odd
    # ones short (2), two steps apart -- the adversarial-for-rr shape that
    # motivates load-aware routing in the first place
    rng = np.random.default_rng(BALANCE_SEED)
    vocab = config.vocab_size
    bimodal = [
        Request(
            f"b{i:02d}",
            prompt_tokens=rng.integers(0, vocab, size=6).tolist(),
            max_new_tokens=16 if i % 2 == 0 else 2,
            arrival_step=2 * i,
        )
        for i in range(BALANCE_REQUESTS)
    ]
    balance = {}
    for d in (2, 4):
        reports = {}
        for routing in ("rr", "least-loaded"):
            cluster = ClusterEngine(
                model, n_replicas=d, routing=routing, max_active=GATED_BATCH
            )
            cluster.submit_many(bimodal)
            reports[routing] = cluster.run()
        assert (
            reports["rr"].total_tokens == reports["least-loaded"].total_tokens
        ), f"routing changed the bimodal trace's token volume at D={d}"
        balance[str(d)] = {
            "rr_load_imbalance": reports["rr"].load_imbalance,
            "least_loaded_imbalance": reports["least-loaded"].load_imbalance,
        }

    # four prefix groups arriving as consecutive tenant bursts: round-robin
    # alternates inside each burst and lands every group on both replicas
    # (registering every prefix twice), the multi-tenant shape where
    # locality-aware routing actually pays off
    rng = np.random.default_rng(LOCALITY_SEED)
    group_size = PREFIX_REQUESTS // LOCALITY_GROUPS
    heads = [
        rng.integers(0, vocab, size=PREFIX_BASE_LEN).tolist()
        for _ in range(LOCALITY_GROUPS)
    ]
    shared = [
        Request(
            f"g{i // group_size}r{i % group_size}",
            prompt_tokens=heads[i // group_size]
            + rng.integers(0, vocab, size=int(rng.integers(0, 9))).tolist(),
            max_new_tokens=int(rng.integers(2, 7)),
            arrival_step=i,
        )
        for i in range(PREFIX_REQUESTS)
    ]
    locality = {}
    for routing in ("rr", "affinity"):
        cluster = ClusterEngine(
            model,
            n_replicas=2,
            routing=routing,
            max_active=GATED_BATCH,
            page_size=PREFIX_PAGE_SIZE,
            prefix_cache=True,
        )
        cluster.submit_many(shared)
        report = cluster.run()
        for rep in report.replicas:
            assert rep.arena["pages_in_use"] == 0, (
                f"{routing} replica arena failed to drain on the shared trace"
            )
        locality[routing] = {
            "prefix_hits": report.prefix_hits,
            "prefix_hit_rate": report.prefix_hit_rate,
            "tokens_by_replica": report.tokens_by_replica,
        }

    return {
        "batch": GATED_BATCH,
        "requests": POLICY_REQUESTS,
        "single_engine": {
            "steps": bare_report.steps,
            "throughput_tokens_per_step": bare_report.throughput_tokens_per_step,
            "wall_tokens_per_sec": bare_report.total_tokens / bare_elapsed,
        },
        "scaling": scaling,
        "balance": balance,
        "affinity_vs_rr": locality,
    }


def _speculative_block(model):
    """Spec-on vs spec-off over a friendly and an adversarial decode trace.

    Both legs assert bit-identical token streams (the speculative contract)
    and report step-domain throughput, which is deterministic -- wall
    tokens/sec is recorded for the trajectory only.  The spec-off leg also
    anchors ``speculative=None`` against a default-constructed engine:
    whole-report JSON equality, so the knob is provably a no-op when off.
    """
    config = model.config
    vocab = config.vocab_size
    # cyclic motif prompts: greedy tiny-model decode settles into the
    # prompt's cycle, which the self-extending n-gram drafter echoes
    friendly = [
        Request(
            f"f{i}",
            prompt_tokens=[3 + i, 17, 5, 9 + i] * 3,
            max_new_tokens=SPEC_DECODE,
            arrival_step=0,
        )
        for i in range(SPEC_REQUESTS)
    ]
    rng = np.random.default_rng(SPEC_SEED)
    adversarial = [
        Request(
            f"a{i}",
            prompt_tokens=rng.integers(0, vocab, size=12).tolist(),
            max_new_tokens=16,
            arrival_step=0,
        )
        for i in range(SPEC_REQUESTS)
    ]

    def _run(requests, speculative):
        engine = ServingEngine(
            model, max_active=SPEC_REQUESTS, speculative=speculative
        )
        handles = engine.submit_many(requests)
        start = time.perf_counter()
        report = engine.run()
        elapsed = time.perf_counter() - start
        tokens = {h.request_id: h.generated_tokens for h in handles}
        return report, tokens, elapsed

    spec_config = SpeculationConfig(k=SPEC_K, adaptive=True)
    rows = {}
    for trace_name, requests in (
        ("friendly", friendly),
        ("adversarial", adversarial),
    ):
        off_report, off_tokens, off_elapsed = _run(requests, None)
        on_report, on_tokens, on_elapsed = _run(requests, spec_config)
        assert on_tokens == off_tokens, (
            f"speculative decode changed tokens on the {trace_name} trace"
        )
        assert on_report.arena["pages_in_use"] == 0, (
            f"speculative {trace_name} run leaked arena pages"
        )
        policy = on_report.to_json()["policy"]
        rows[trace_name] = {
            "steps_off": off_report.steps,
            "steps_on": on_report.steps,
            "tokens_per_step_off": off_report.throughput_tokens_per_step,
            "tokens_per_step_on": on_report.throughput_tokens_per_step,
            "step_speedup": off_report.steps / on_report.steps,
            "wall_tokens_per_sec_off": off_report.total_tokens / off_elapsed,
            "wall_tokens_per_sec_on": on_report.total_tokens / on_elapsed,
            "draft_proposed": policy["draft_proposed"],
            "draft_accepted": policy["draft_accepted"],
            "mean_accepted_len": policy["mean_accepted_len"],
            "rows_rolled_back": on_report.arena["rows_rolled_back"],
        }

    # the off-default anchor: an engine built with speculative=None is the
    # default engine, whole report included
    explicit_off, _, _ = _run(friendly, None)
    default_engine = ServingEngine(model, max_active=SPEC_REQUESTS)
    default_engine.submit_many(friendly)
    default_report = default_engine.run()
    assert explicit_off.to_json() == default_report.to_json(), (
        "speculative=None diverged from the default engine"
    )

    return {
        "batch": SPEC_REQUESTS,
        "k": SPEC_K,
        "adaptive": True,
        "drafter": "ngram(3)",
        "friendly": rows["friendly"],
        "adversarial": rows["adversarial"],
    }


def test_batched_decode_throughput(benchmark):
    model = _build_model()
    engine = MCBPEngine(group_size=4, weight_bits=8)
    model.bind_engine(engine)
    engine.codec.reset_counters()

    rows = []
    for batch in BATCH_SIZES:
        sequential_tps, sequential_tokens = _decode_tokens_per_sec(
            model, batch, fused=False
        )
        fused_tps, fused_tokens = _decode_tokens_per_sec(model, batch, fused=True)
        assert fused_tokens == sequential_tokens, f"fused decode diverged at B={batch}"
        rows.append(
            {
                "batch": batch,
                "decode_steps": N_STEPS,
                "sequential_tokens_per_sec": sequential_tps,
                "batched_tokens_per_sec": fused_tps,
                "speedup": fused_tps / sequential_tps,
            }
        )

    # steady state: each of the model's weight matrices was BSTC-decoded
    # exactly once for the entire grid (<= one decode per layer per step)
    n_matrices = len(model.quantized_weight_matrices())
    assert engine.codec.decode_calls == n_matrices
    assert engine.stats.cache_misses == n_matrices

    # headline number under pytest-benchmark: the fused decode loop at B=8
    def fused_gated_batch():
        decoders, tokens = _prefilled_decoders(model, GATED_BATCH)
        for _ in range(N_STEPS):
            tokens = IncrementalDecoder.step_batch(decoders, tokens)
        return tokens

    benchmark.pedantic(fused_gated_batch, rounds=3, iterations=1)

    # long-context KV layout grid: paged arena vs per-stream re-stacking
    arena_rows = [_arena_vs_stacking_row(model, batch) for batch in ARENA_BATCHES]

    # shared-format serving report: one fused engine run over a sampled
    # request stream (the same schema serving_simulation.py --json emits),
    # timed against the deprecated pre-policy front end on the same stream
    config = model.config
    stream = sample_requests(
        16, vocab_size=config.vocab_size, mean_interarrival=0.5, seed=11
    )

    def _timed_run(make_engine):
        best, report = float("inf"), None
        for _ in range(REPEATS):
            serving = make_engine()
            serving.submit_many(stream)
            start = time.perf_counter()
            report = serving.run()
            best = min(best, time.perf_counter() - start)
        return report, report.total_tokens / best

    report, fcfs_tps = _timed_run(
        lambda: ServingEngine(model, max_active=GATED_BATCH)
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        legacy_report, legacy_tps = _timed_run(
            lambda: ContinuousBatchingScheduler(model, max_active=GATED_BATCH)
        )
    # the policy-driven engine at FCFS must *be* the old scheduler: the whole
    # report (tokens, steps, metrics, arena counters) is bit-identical, so
    # step-domain throughput cannot regress by construction
    assert report.to_json() == legacy_report.to_json(), (
        "ServingEngine(FCFS) diverged from ContinuousBatchingScheduler"
    )

    # fault hooks: disabled-vs-armed-idle overhead pair + 1% recovery trace
    faults_block = _faults_block(model, stream)

    # policy grid: priority/deadline/aging service under one bursty trace
    policy_rows = _policy_rows(model)

    # prefill grid: chunked batched prefill vs serial, wall-clock TTFT
    prefill_block = _prefill_rows(model)

    # prefix-cache grid: shared-head trace cache on/off + divergent no-op
    prefix_block = _prefix_cache_block(model)

    # snapshot grid: kv_snapshots on/off + int8 pool + 512-token resume leg
    snapshot_block = _snapshot_block(model)

    # cluster grid: rr fleet scaling at D in CLUSTER_SIZES + routing duels
    cluster_block = _cluster_block(model)

    # speculative grid: fused draft-then-verify decode, friendly + adversarial
    speculative_block = _speculative_block(model)

    payload = {
        "benchmark": "batched_decode_throughput",
        "model": config.name,
        "prompt_len": PROMPT_LEN,
        "results": rows,
        "arena_vs_stacking": arena_rows,
        "bstc_decode_calls": int(engine.codec.decode_calls),
        "weight_matrices": n_matrices,
        "serving_report": report.to_json(),
        "fcfs_engine_tokens_per_sec": fcfs_tps,
        "old_scheduler_tokens_per_sec": legacy_tps,
        "policies": {
            "batch": GATED_BATCH,
            "requests": POLICY_REQUESTS,
            "high_priority_level": HIGH_PRIORITY,
            "results": policy_rows,
        },
        "prefill": prefill_block,
        "prefix_cache": prefix_block,
        "faults": faults_block,
        "snapshot": snapshot_block,
        "cluster": cluster_block,
        "speculative": speculative_block,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    gated = next(r for r in rows if r["batch"] == GATED_BATCH)
    gated_arena = next(r for r in arena_rows if r["batch"] == GATED_BATCH)
    print_result(
        "Fused batched decode -- tokens/sec vs per-session loop",
        "\n".join(
            f"B={r['batch']:>2}: per-session {r['sequential_tokens_per_sec']:9.1f} "
            f"tok/s   fused {r['batched_tokens_per_sec']:9.1f} tok/s   "
            f"speedup {r['speedup']:5.2f}x"
            for r in rows
        )
        + "\n"
        + "\n".join(
            f"B={r['batch']:>2} ctx={r['context_tokens']}: "
            f"stacking {r['stacking_kv_bytes_per_step'] / 1024.0:8.1f} KiB/step "
            f"{r['stacking_tokens_per_sec']:7.1f} tok/s   "
            f"arena {r['arena_kv_bytes_per_step'] / 1024.0:6.1f} KiB/step "
            f"{r['arena_tokens_per_sec']:7.1f} tok/s   "
            f"bytes {r['kv_bytes_ratio']:5.1f}x  speed {r['speedup']:4.2f}x"
            for r in arena_rows
        )
        + "\n".join(
            [""]
            + [
                f"{name:>9}: {r['steps']:>4} steps  "
                f"{r['throughput_tokens_per_step']:5.2f} tok/step  "
                f"p95 hi {r['p95_high_priority']:6.1f}  "
                f"lo {r['p95_low_priority']:6.1f}  "
                f"preempt {r['preemptions']:>3}  "
                f"misses {r['deadline_misses']:>3}"
                for name, r in policy_rows.items()
            ]
        )
        + f"\nFCFS engine {fcfs_tps:.1f} tok/s vs old scheduler "
        f"{legacy_tps:.1f} tok/s"
        + "\nprefill TTFT (wall): serial p95 "
        f"{prefill_block['serial']['ttft_wall_p95_ms']:.2f} ms   batched p95 "
        f"{prefill_block['batched']['ttft_wall_p95_ms']:.2f} ms   "
        f"({prefill_block['ttft_p95_speedup']:.2f}x)"
        + "\n"
        + "\n".join(
            f"  budget={str(r['prefill_token_budget']):>4}: "
            f"{r['steps']:>3} steps  ttft p95 {r['ttft_steps_p95']:5.1f} steps"
            f" / {r['ttft_wall_p95_ms']:7.2f} ms  "
            f"prefill p95 {r['prefill_steps_p95']:4.1f} steps  "
            f"{r['throughput_tokens_per_step']:.2f} tok/step"
            for r in prefill_block["budget_sweep"]
        )
        + "\nprefix cache (shared trace): off "
        f"{prefix_block['shared_trace']['off']['page_faults']} faults / "
        f"p95 {prefix_block['shared_trace']['off']['ttft_wall_p95_ms']:.2f} ms"
        "   on "
        f"{prefix_block['shared_trace']['on']['page_faults']} faults / "
        f"p95 {prefix_block['shared_trace']['on']['ttft_wall_p95_ms']:.2f} ms"
        f"   ({prefix_block['page_fault_reduction']:.2f}x fewer faults, "
        f"{prefix_block['shared_trace']['on']['prefix_tokens_reused']} rows "
        "reused)"
        + "\nfault hooks: disabled "
        f"{faults_block['hooks_disabled_tokens_per_sec']:.1f} tok/s   "
        f"armed-idle {faults_block['hooks_armed_idle_tokens_per_sec']:.1f} "
        f"tok/s   ({faults_block['hook_overhead_ratio']:.3f}x)"
        + "\nchaos @1%: "
        f"{faults_block['chaos']['total_fires']} fires / "
        f"{faults_block['chaos']['opportunities']} opportunities   "
        f"retries {faults_block['chaos']['retries']}  "
        f"failed {faults_block['chaos']['failed']}  "
        "recovery ttft p95 "
        f"{faults_block['chaos']['recovery_ttft_p95_steps']} steps"
        + "\nsnapshots (priority trace): "
        f"{snapshot_block['preemptions']} preemptions   KV appends "
        f"{snapshot_block['kv_appends_reprefill']} reprefill -> "
        f"{snapshot_block['kv_appends_snapshot']} snapshot   int8 peak KV "
        f"{snapshot_block['int8']['peak_kv_bytes_ratio']:.3f}x of fp"
        + "\nsnapshot @512 ctx: "
        f"{snapshot_block['long_context']['reprefill_rows_avoided']} "
        "reprefill rows avoided   roundtrip fp "
        f"{snapshot_block['long_context']['snapshot_roundtrip']['fp']['roundtrip_ms']:.2f} ms"
        "   int8 "
        f"{snapshot_block['long_context']['snapshot_roundtrip']['int8']['roundtrip_ms']:.2f} ms"
        + "\ncluster (rr fleet): "
        + "   ".join(
            f"D={d}: {cluster_block['scaling'][str(d)]['steps']} steps "
            f"({cluster_block['scaling'][str(d)]['step_speedup_vs_single']:.2f}x) "
            f"CV {cluster_block['scaling'][str(d)]['load_imbalance']:.3f}"
            for d in CLUSTER_SIZES
        )
        + "\ncluster routing: least-loaded CV "
        f"{cluster_block['balance']['2']['least_loaded_imbalance']:.3f} vs rr "
        f"{cluster_block['balance']['2']['rr_load_imbalance']:.3f} @D=2   "
        "affinity prefix hits "
        f"{cluster_block['affinity_vs_rr']['affinity']['prefix_hits']} vs rr "
        f"{cluster_block['affinity_vs_rr']['rr']['prefix_hits']}"
        + "\nspeculative (k=8 ngram): friendly "
        f"{speculative_block['friendly']['steps_off']} -> "
        f"{speculative_block['friendly']['steps_on']} steps "
        f"({speculative_block['friendly']['step_speedup']:.2f}x, accept "
        f"{speculative_block['friendly']['draft_accepted']}/"
        f"{speculative_block['friendly']['draft_proposed']})   adversarial "
        f"{speculative_block['adversarial']['steps_off']} -> "
        f"{speculative_block['adversarial']['steps_on']} steps "
        f"({speculative_block['adversarial']['step_speedup']:.2f}x)"
        + f"\nBSTC decodes: {engine.codec.decode_calls} "
        f"(= {n_matrices} weight matrices)\nreport -> {BENCH_PATH.name}",
    )

    # CI gate: the fused path must never lose to the per-session loop at the
    # gated batch size (it sits ~3-4x above it; 1.0 keeps noise out of CI)
    assert gated["speedup"] >= 1.0, (
        f"fused decode slower than per-session loop at B={GATED_BATCH}: "
        f"{gated['speedup']:.2f}x"
    )
    # CI gate: the paged arena must not lose to re-stacking at B=8, and its
    # per-step KV copy traffic must no longer scale with context length
    assert gated_arena["speedup"] >= 1.0, (
        f"arena decode slower than re-stacking at B={GATED_BATCH}: "
        f"{gated_arena['speedup']:.2f}x"
    )
    for row in arena_rows:
        assert row["kv_bytes_ratio"] >= ARENA_BYTES_GATE, (
            f"arena copies too many KV bytes at B={row['batch']}: only "
            f"{row['kv_bytes_ratio']:.1f}x below stacking "
            f"(gate {ARENA_BYTES_GATE}x)"
        )
    # CI gate: the policy layer must not tax the old FCFS wall-clock path at
    # B=8 (same machinery after the redesign; 0.8 keeps timer noise out)
    assert fcfs_tps >= 0.8 * legacy_tps, (
        f"policy-driven engine slower than the old scheduler at "
        f"B={GATED_BATCH}: {fcfs_tps:.1f} vs {legacy_tps:.1f} tok/s"
    )
    # CI gate: priority service must demonstrably reorder the bursty trace --
    # high-priority p95 latency strictly below FCFS, with real preemptions
    # (all metrics are step-domain, so this is deterministic)
    assert policy_rows["priority"]["preemptions"] > 0, (
        "the policy trace no longer exercises preemption"
    )
    assert (
        policy_rows["priority"]["p95_high_priority"]
        < policy_rows["fcfs"]["p95_high_priority"]
    ), (
        "priority policy failed to cut high-priority p95 latency: "
        f"{policy_rows['priority']['p95_high_priority']:.1f} vs FCFS "
        f"{policy_rows['fcfs']['p95_high_priority']:.1f}"
    )
    # CI gate: deadline-aware service must not miss more deadlines than FCFS
    assert (
        policy_rows["deadline"]["deadline_misses"]
        <= policy_rows["fcfs"]["deadline_misses"]
    ), "deadline policy misses more deadlines than FCFS"
    # CI gate: chunked batched prefill must not lose to one-shot serial
    # prefill on wall-clock TTFT p95 over the prefill-heavy bursty trace
    # (PREFILL_TTFT_GATE absorbs scheduler noise in the best-of-3 samples).
    # Token divergence and step-schedule divergence assert inside
    # _prefill_rows, so correctness never rides on a timer.
    assert (
        prefill_block["batched"]["ttft_wall_p95_ms"]
        <= PREFILL_TTFT_GATE * prefill_block["serial"]["ttft_wall_p95_ms"]
    ), (
        "batched prefill lost to serial prefill on TTFT p95: "
        f"{prefill_block['batched']['ttft_wall_p95_ms']:.2f} vs "
        f"{prefill_block['serial']['ttft_wall_p95_ms']:.2f} ms "
        f"(gate {PREFILL_TTFT_GATE}x)"
    )
    # CI gate: the prefix cache must not lose the cache-off TTFT p95 on the
    # shared-prefix trace (it skips most prompt rows, so it should win; the
    # gate only absorbs best-of-3 timer noise).  Bit-exactness of tokens,
    # schedules and the divergent no-op assert inside _prefix_cache_block.
    shared_on = prefix_block["shared_trace"]["on"]
    shared_off = prefix_block["shared_trace"]["off"]
    assert (
        shared_on["ttft_wall_p95_ms"]
        <= PREFIX_TTFT_GATE * shared_off["ttft_wall_p95_ms"]
    ), (
        "prefix cache lost to no-cache on shared-prefix TTFT p95: "
        f"{shared_on['ttft_wall_p95_ms']:.2f} vs "
        f"{shared_off['ttft_wall_p95_ms']:.2f} ms (gate {PREFIX_TTFT_GATE}x)"
    )
    # CI gate: sharing must show up in the allocator -- strictly fewer page
    # faults (= fewer KV bytes materialised) and real reuse on the shared
    # trace, without any copy-on-write explosion (deterministic counters)
    assert shared_on["page_faults"] < shared_off["page_faults"], (
        "prefix cache failed to reduce page faults on the shared trace: "
        f"{shared_on['page_faults']} vs {shared_off['page_faults']}"
    )
    assert shared_on["prefix_hits"] > 0
    assert shared_on["prefix_tokens_reused"] > 0
    assert shared_on["peak_pages_in_use"] <= shared_off["peak_pages_in_use"], (
        "prefix cache raised peak arena occupancy on the shared trace"
    )
    # CI gate: the fault-injection hook points must cost nothing measurable
    # when no fault ever fires -- the armed-but-idle engine (which also pays
    # per-commit KV verification) must hold within 2% of the hooks-disabled
    # engine timed back-to-back in this process.  Behavioural identity of the
    # pair asserts inside _faults_block, so only throughput rides the timer.
    assert faults_block["hook_overhead_ratio"] >= FAULT_HOOK_GATE, (
        "fault-injection hooks taxed the fault-free path: armed-idle "
        f"{faults_block['hooks_armed_idle_tokens_per_sec']:.1f} vs disabled "
        f"{faults_block['hooks_disabled_tokens_per_sec']:.1f} tok/s "
        f"(ratio {faults_block['hook_overhead_ratio']:.3f}, "
        f"gate {FAULT_HOOK_GATE})"
    )
    # CI gate: snapshot resumes must be strictly cheaper than re-prefill in
    # forward work -- fewer KV rows appended over the identical preemption
    # schedule (deterministic counters; bit-equality of tokens and schedule
    # asserts inside _snapshot_block), on both the bursty priority trace and
    # the 512-token-context leg
    assert (
        snapshot_block["kv_appends_snapshot"]
        < snapshot_block["kv_appends_reprefill"]
    ), (
        "snapshot preemption failed to beat re-prefill on KV appends: "
        f"{snapshot_block['kv_appends_snapshot']} vs "
        f"{snapshot_block['kv_appends_reprefill']}"
    )
    assert snapshot_block["long_context"]["reprefill_rows_avoided"] > 0, (
        "512-token snapshot resume replayed prefill rows"
    )
    # CI gate: the int8 pool must shrink peak resident KV bytes to <= 0.2x
    # of the fp pool on the same trace (per-row scales put the floor near
    # 0.14x at hidden=64; the margin absorbs quantised-argmax schedule drift)
    assert (
        snapshot_block["int8"]["peak_kv_bytes_ratio"]
        <= SNAPSHOT_INT8_BYTES_GATE
    ), (
        "int8 KV pages failed the peak-bytes gate: "
        f"{snapshot_block['int8']['peak_kv_bytes_ratio']:.3f}x of fp "
        f"(gate {SNAPSHOT_INT8_BYTES_GATE}x)"
    )
    # CI gate: least-loaded routing must never balance the bursty trace
    # worse than blind round-robin (step-domain CV of per-replica tokens;
    # the D=1 report-equality anchor asserts inside _cluster_block)
    for d, row in cluster_block["balance"].items():
        assert row["least_loaded_imbalance"] <= row["rr_load_imbalance"], (
            f"least-loaded routing balanced worse than rr at D={d}: CV "
            f"{row['least_loaded_imbalance']:.3f} vs "
            f"{row['rr_load_imbalance']:.3f}"
        )
    # CI gate: speculative decode must multiply step-domain throughput on
    # the acceptance-friendly trace (same token volume in >= 1.3x fewer
    # steps; deterministic counters, never a timer) and must not take more
    # steps than plain decode on the adversarial trace under the adaptive
    # throttle.  Token bit-identity asserts inside _speculative_block.
    assert speculative_block["friendly"]["step_speedup"] >= SPEC_STEP_GATE, (
        "speculative decode missed the friendly-trace step gate: "
        f"{speculative_block['friendly']['step_speedup']:.2f}x "
        f"(gate {SPEC_STEP_GATE}x)"
    )
    assert (
        speculative_block["adversarial"]["steps_on"]
        <= speculative_block["adversarial"]["steps_off"]
    ), (
        "adaptive speculation regressed the adversarial trace: "
        f"{speculative_block['adversarial']['steps_on']} vs "
        f"{speculative_block['adversarial']['steps_off']} steps"
    )
    # CI gate: prefix-affinity routing must land strictly more prefix-cache
    # hits than round-robin on the shared-prefix trace -- hashing the prompt
    # head keeps each prefix group on one replica, so the fleet pays the
    # prefix miss once instead of once per replica (deterministic counters)
    assert (
        cluster_block["affinity_vs_rr"]["affinity"]["prefix_hits"]
        > cluster_block["affinity_vs_rr"]["rr"]["prefix_hits"]
    ), (
        "affinity routing failed to beat rr on prefix hits: "
        f"{cluster_block['affinity_vs_rr']['affinity']['prefix_hits']} vs "
        f"{cluster_block['affinity_vs_rr']['rr']['prefix_hits']}"
    )
