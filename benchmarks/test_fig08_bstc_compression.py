"""E5 / Fig. 8(b,c): BSTC compression ratio vs (SR, m) and per-plane sparsity."""

from repro.eval import (
    compression_ratio_vs_group_size,
    format_nested_table,
    format_table,
    plane_sparsity_by_model,
)

from .conftest import print_result


def test_fig08b_compression_ratio_curves(benchmark):
    curves = benchmark(lambda: compression_ratio_vs_group_size())
    rows = [
        {"sparsity": sr, **{f"m={m}": cr for m, cr in zip(range(1, 11), values)}}
        for sr, values in curves.items()
    ]
    print_result("Fig. 8(b) -- BSTC compression ratio vs group size", format_table(rows, precision=2))
    # CR>1 needs high sparsity; larger m eventually hurts at moderate sparsity
    assert curves[0.95][3] > 1.5
    assert curves[0.75][9] < curves[0.75][3]


def test_fig08c_plane_sparsity(benchmark):
    profiles = benchmark(lambda: plane_sparsity_by_model(models=("Llama7B", "Qwen7B")))
    print_result(
        "Fig. 8(c) -- per-bit-position sparsity (sign-magnitude INT8)",
        format_nested_table(profiles, row_label="model", precision=2),
    )
    for model, profile in profiles.items():
        # the paper compresses planes whose SR exceeds 65 %: true for the top planes
        assert profile["7th BS"] > 0.9
        assert profile["6th BS"] > 0.65
