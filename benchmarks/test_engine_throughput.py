"""Micro-benchmark: cached-batched serving engine vs the seed single-query path.

Replays a steady-state decode loop (``n_layers`` GEMMs per token) two ways:

* **seed path** -- plane cache disabled, one engine call per session per
  layer, exactly what the seed ``MCBPEngine`` did for every query;
* **cached-batched path** -- decoded-plane LRU cache on and the whole
  session batch executed as one ``(H, B)`` GEMM per layer.

Reports tokens/sec for both and asserts the cached path performs exactly one
BSTC decode per layer (no redundant decodes) while producing bit-identical
outputs.
"""

import time

import numpy as np

from repro.core.engine import MCBPEngine
from repro.sparsity.synthetic import gaussian_int_weights

from .conftest import print_result

N_LAYERS = 4
HIDDEN = 96
N_SESSIONS = 8
N_STEPS = 6


def _build_engine(plane_cache_entries: int) -> MCBPEngine:
    engine = MCBPEngine(
        group_size=4, weight_bits=8, plane_cache_entries=plane_cache_entries
    )
    for i in range(N_LAYERS):
        engine.register_weight(
            f"layer{i}", gaussian_int_weights((HIDDEN, HIDDEN), seed=100 + i)
        )
    engine.codec.reset_counters()
    return engine


def _activations() -> np.ndarray:
    rng = np.random.default_rng(7)
    return rng.integers(-128, 128, size=(N_STEPS, HIDDEN, N_SESSIONS))


def _run_seed_path(engine: MCBPEngine, acts: np.ndarray) -> np.ndarray:
    """One engine call per session per layer, decoding planes every call."""
    outputs = []
    for step in range(N_STEPS):
        step_out = []
        for session in range(N_SESSIONS):
            x = acts[step, :, session]
            for i in range(N_LAYERS):
                x = np.clip(engine.gemm(f"layer{i}", x) >> 8, -128, 127)
            step_out.append(x)
        outputs.append(np.stack(step_out, axis=1))
    return np.stack(outputs)


def _run_cached_batched_path(engine: MCBPEngine, acts: np.ndarray) -> np.ndarray:
    """One batched GEMM per layer per step, planes decoded once overall."""
    outputs = []
    for step in range(N_STEPS):
        x = acts[step]
        for i in range(N_LAYERS):
            x = np.clip(engine.gemm(f"layer{i}", x) >> 8, -128, 127)
        outputs.append(x)
    return np.stack(outputs)


def test_cached_batched_vs_seed_throughput(benchmark):
    acts = _activations()

    seed_engine = _build_engine(plane_cache_entries=0)
    start = time.perf_counter()
    seed_out = _run_seed_path(seed_engine, acts)
    seed_elapsed = time.perf_counter() - start

    cached_engine = _build_engine(plane_cache_entries=N_LAYERS)
    cached_out = benchmark(lambda: _run_cached_batched_path(cached_engine, acts))
    cached_elapsed = benchmark.stats.stats.mean

    tokens = N_STEPS * N_SESSIONS
    seed_tps = tokens / seed_elapsed
    cached_tps = tokens / cached_elapsed
    print_result(
        "Engine throughput -- cached-batched vs seed single-query",
        f"seed single-query : {seed_tps:10.1f} tokens/sec "
        f"({seed_engine.codec.decode_calls} BSTC decodes)\n"
        f"cached + batched  : {cached_tps:10.1f} tokens/sec "
        f"({cached_engine.codec.decode_calls} BSTC decodes)\n"
        f"speedup           : {cached_tps / seed_tps:10.1f}x",
    )

    # Deterministic guards only: outputs bit-exact and the cached path decodes
    # each layer once while the seed path decodes per call.  The tokens/sec
    # comparison above is informational -- asserting on wall clock would gate
    # CI on scheduler noise.
    assert np.array_equal(seed_out, cached_out)
    assert cached_engine.codec.decode_calls == N_LAYERS
    assert seed_engine.codec.decode_calls == N_STEPS * N_SESSIONS * N_LAYERS


def test_cache_path_does_no_redundant_decodes(benchmark):
    acts = _activations()
    engine = _build_engine(plane_cache_entries=N_LAYERS)
    benchmark.pedantic(
        lambda: _run_cached_batched_path(engine, acts), rounds=3, iterations=1
    )
    # however many rounds re-ran the loop, each layer was decoded exactly once
    assert engine.codec.decode_calls == N_LAYERS
    assert engine.stats.cache_misses == N_LAYERS
    assert engine.stats.cache_hits > 0
    # the seed configuration decodes on every call instead
    seed_engine = _build_engine(plane_cache_entries=0)
    _run_cached_batched_path(seed_engine, acts)
    assert seed_engine.codec.decode_calls == N_STEPS * N_LAYERS
