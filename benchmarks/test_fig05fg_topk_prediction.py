"""E4 / Fig. 5(f,g): top-k prediction latency share and BGPP KV-access reduction."""

import numpy as np

from repro.core.bgpp import BGPPConfig, bgpp_select, value_topk_select
from repro.eval import format_table
from repro.workloads.profile import synthetic_attention_tensors

from .conftest import print_result


def _prediction_study(n_keys=1024, d=128, seed=11):
    queries, keys, scale = synthetic_attention_tensors(n_keys, d, seed=seed)
    rows = []
    full_bits = n_keys * d * 8
    bgpp_cfg = BGPPConfig(rounds=3, alpha=0.55, score_scale=scale)
    for i, q in enumerate(queries):
        bgpp = bgpp_select(q, keys, bgpp_cfg)
        value = value_topk_select(q, keys, k=int(0.35 * n_keys), prediction_bits=4)
        rows.append(
            {
                "query": i,
                "value_pred_traffic": value.kv_bits_loaded / full_bits,
                "bgpp_pred_traffic": bgpp.kv_bits_loaded / full_bits,
                "value_keys_kept": value.selected.size / n_keys,
                "bgpp_keys_kept": bgpp.selected.size / n_keys,
            }
        )
    return rows


def test_fig05fg_topk_prediction(benchmark):
    rows = benchmark(_prediction_study)
    print_result(
        "Fig. 5(f,g) -- prediction traffic and surviving keys: value top-k vs BGPP",
        format_table(rows),
    )
    value_traffic = np.mean([r["value_pred_traffic"] for r in rows])
    bgpp_traffic = np.mean([r["bgpp_pred_traffic"] for r in rows])
    # BGPP's early termination loads fewer prediction bits than the 4-bit
    # value-level estimate, which the paper reports as up to ~50 % lower
    # KV-cache access during prediction (Fig. 5g).
    assert bgpp_traffic < value_traffic
    # per-row adaptive pruning: every query ends with a valid non-empty set
    assert all(0.0 < r["bgpp_keys_kept"] <= 1.0 for r in rows)
