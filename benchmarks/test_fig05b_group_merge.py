"""E2 / Fig. 5(b): computation reduction of full-size vs group-wise bit merge."""

from repro.eval import format_nested_table, merge_strategy_comparison

from .conftest import print_result


def test_fig05b_group_merge(benchmark):
    table = benchmark(lambda: merge_strategy_comparison(rows=96))
    print_result(
        "Fig. 5(b) -- computation reduction: vanilla full-size vs group-wise merge",
        format_nested_table(table, row_label="model"),
    )
    mean = table["Mean"]
    # paper: group-wise merging is ~5x more effective than full-size merging
    assert mean["group_wise"] > 3.0 * mean["full_size"]
