"""E10 / Fig. 21: software vs hardware gain breakdown of BRCR/BSTC/BGPP."""

from repro.eval import format_nested_table, gain_breakdown

from .conftest import print_result


def test_fig21_gain_breakdown(benchmark):
    table = benchmark(lambda: gain_breakdown())
    print_result(
        "Fig. 21 -- cumulative software (GPU) vs hardware (MCBP) gains over the dense A100 baseline",
        format_nested_table(table, row_label="step", precision=2),
    )
    # software-only deployment of the algorithms yields small gains; the
    # dedicated engines provide the bulk of the benefit (paper Fig. 21).
    for step, row in table.items():
        assert row["software_speedup"] < row["hardware_speedup"], step
    assert table["+BGPP"]["software_speedup"] < 3.0
    assert table["+BGPP"]["hardware_speedup"] > 3.0
    # gains accumulate step by step
    assert table["+BSTC"]["hardware_speedup"] >= table["+BRCR"]["hardware_speedup"]
    assert table["+BGPP"]["hardware_speedup"] >= table["+BSTC"]["hardware_speedup"]
