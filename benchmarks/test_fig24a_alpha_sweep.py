"""E13 / Fig. 24(a): impact of the BGPP threshold parameter alpha on accuracy/sparsity."""

from repro.eval import alpha_sweep, format_nested_table

from .conftest import print_result


def test_fig24a_alpha_sweep(benchmark):
    sweep = benchmark(lambda: alpha_sweep(alphas=(0.8, 0.7, 0.6, 0.5, 0.4, 0.3)))
    table = {f"alpha={a}": row for a, row in sweep.items()}
    print_result(
        "Fig. 24(a) -- accuracy proxy vs attention sparsity as alpha varies",
        format_nested_table(table, row_label="setting", precision=1),
    )
    # smaller alpha prunes more aggressively ...
    assert sweep[0.3]["attention_sparsity"] > sweep[0.8]["attention_sparsity"]
    # ... and eventually costs fidelity
    assert sweep[0.3]["accuracy_proxy"] <= sweep[0.8]["accuracy_proxy"] + 1e-9
    # the paper's operating range (alpha 0.5-0.6) keeps sparsity high
    assert sweep[0.5]["attention_sparsity"] > 30.0
