"""E17 / Table 2: FP16 / INT8 / MCBP-standard / MCBP-aggressive fidelity."""

from repro.eval import accuracy_proxy_table, format_nested_table

from .conftest import print_result


def test_table2_accuracy(benchmark):
    table = benchmark(lambda: accuracy_proxy_table(model_name="tiny", n_prompts=3))
    print_result(
        "Table 2 (fidelity analogue) -- output agreement with the FP16 reference",
        format_nested_table(table, row_label="mode"),
    )
    # INT8 quantisation is nearly lossless (paper: <1 % accuracy drop)
    assert table["FP16"]["cosine"] == 1.0
    assert table["INT8"]["cosine"] > 0.99
    # MCBP standard tracks INT8; aggressive trades a small further drop
    assert table["MCBP (S)"]["cosine"] > 0.95
    assert table["MCBP (A)"]["accuracy_proxy"] <= table["MCBP (S)"]["accuracy_proxy"] + 1e-9
    assert table["MCBP (A)"]["pseudo_perplexity"] >= table["FP16"]["pseudo_perplexity"] - 1e-9
