"""Integration tests for the per-figure experiment drivers (repro.eval)."""

import numpy as np
import pytest

from repro.eval import (
    accuracy_proxy_table,
    alpha_sweep,
    bit_shift_overhead,
    bit_vs_value_sparsity,
    cambricon_comparison,
    compression_ratio_vs_group_size,
    fidelity_metrics,
    format_nested_table,
    format_table,
    format_value,
    gain_breakdown,
    group_size_dse,
    hardware_ablation,
    latency_breakdown_vs_prompt,
    latency_components,
    merge_strategy_comparison,
    normalized_computation_prefill,
    normalized_memory_access_decoding,
    optimal_group_size,
    plane_sparsity_by_model,
    quantization_sparsity_study,
    separate_technique_effects,
    sota_spec_table,
    sota_stage_comparison,
    technique_latency_ablation,
    throughput_and_efficiency_vs_gpu,
)

# Keep the model set small so the whole file runs quickly; full sweeps live in
# the benchmark harness.
SMALL_MODELS = ("Llama7B", "OPT1B3")


class TestFig1Breakdown:
    def test_short_prompt_weight_bound(self):
        rows = latency_breakdown_vs_prompt(prompt_lens=(1024,))
        row = rows[0]
        assert row["weight_load"] > 35.0
        assert abs(sum(v for k, v in row.items() if k != "prompt_len") - 100.0) < 1e-6

    def test_long_prompt_gemm_and_kv_bound(self):
        short, long = latency_breakdown_vs_prompt(prompt_lens=(1024, 65536))
        assert long["gemm"] > short["gemm"]
        assert long["kv_load"] > short["kv_load"]
        assert long["weight_load"] < short["weight_load"]

    def test_components_positive(self):
        comps = latency_components("Llama7B", 2048)
        assert all(v > 0 for v in comps.values())


class TestFig5Experiments:
    def test_merge_strategy_group_wins(self):
        table = merge_strategy_comparison(models=SMALL_MODELS, rows=64)
        assert table["Mean"]["group_wise"] > 2.0 * table["Mean"]["full_size"]

    def test_bit_vs_value_sparsity_ratio(self):
        table = bit_vs_value_sparsity(models=SMALL_MODELS, rows=64)
        # paper: bit sparsity ~10x higher than value sparsity on average
        assert table["Mean"]["ratio"] > 4.0


class TestFig8And18DSE:
    def test_compression_curves_peak_at_small_m(self):
        curves = compression_ratio_vs_group_size(sparsity_ratios=(0.85,), group_sizes=range(1, 11))
        values = curves[0.85]
        best_m = int(np.argmax(values)) + 1
        assert 2 <= best_m <= 5
        assert values[0] <= 1.0  # m = 1 never helps

    def test_higher_sparsity_higher_cr(self):
        curves = compression_ratio_vs_group_size(sparsity_ratios=(0.65, 0.95), group_sizes=(4,))
        assert curves[0.95][0] > curves[0.65][0]

    def test_plane_sparsity_by_model_exceeds_threshold(self):
        profiles = plane_sparsity_by_model(models=("Llama7B",), rows=64)
        profile = profiles["Llama7B"]
        assert profile["7th BS"] > 0.9

    def test_group_size_dse_shape(self):
        dse = group_size_dse(group_sizes=range(1, 9), rows=32)
        reductions = [dse[m]["comp_reduction_min"] for m in range(1, 9)]
        # rises then falls (paper Fig. 18)
        peak = int(np.argmax(reductions)) + 1
        assert 3 <= peak <= 6
        assert reductions[-1] < max(reductions)

    def test_optimal_group_size_is_four(self):
        assert optimal_group_size() == 4


class TestFig17Comparison:
    def test_mcbp_lowest_computation(self):
        table = normalized_computation_prefill(models=SMALL_MODELS)
        assert table["MCBP"]["Mean"] < table["SOFA"]["Mean"]
        assert table["MCBP"]["Mean"] < table["Bitwave"]["Mean"]
        assert table["SOFA"]["Mean"] == pytest.approx(1.0)

    def test_mcbp_lowest_memory_access(self):
        table = normalized_memory_access_decoding(models=SMALL_MODELS)
        assert table["MCBP"]["Mean"] < table["FuseKNA"]["Mean"]
        assert table["MCBP"]["Mean"] < table["SpAtten"]["Mean"]
        assert table["FuseKNA"]["Mean"] == pytest.approx(1.0)

    def test_mcbp_memory_reduction_substantial(self):
        table = normalized_memory_access_decoding(models=SMALL_MODELS)
        # The paper reports ~75 % average traffic reduction; with the measured
        # (more conservative) BSTC compression ratio this framework lands near
        # 20-40 %, but MCBP must still be clearly below every baseline.
        assert table["MCBP"]["Mean"] < 0.85


class TestFig19Ablation:
    def test_union_effect_monotone(self):
        table = technique_latency_ablation(models=("Llama7B",))
        row = table["Llama7B"]
        assert row["Baseline"] == pytest.approx(1.0)
        assert row["+BRCR"] < row["Baseline"]
        assert row["+BSTC"] < row["+BRCR"]
        assert row["+BGPP"] <= row["+BSTC"]

    def test_separate_effects_match_task_character(self):
        effects = separate_technique_effects(dolly_prompts=(1024,), mbpp_decodes=(1024,))
        # prompt-heavy summarisation benefits most from BRCR ...
        dolly = effects["Dolly-prompt1024"]
        assert dolly["BRCR"] > dolly["BSTC"]
        # ... while decode-heavy code generation benefits most from BSTC (weight traffic)
        mbpp = effects["MBPP-decode1024"]
        assert mbpp["BSTC"] > mbpp["BRCR"]
        assert mbpp["BGPP"] > 1.0


class TestFig20And21GPU:
    def test_throughput_and_efficiency_gains(self):
        table = throughput_and_efficiency_vs_gpu(models=("Llama7B",), batches=(8,))
        row = table["Llama7B"]
        assert row["speedup_standard"] > 3.0
        assert row["speedup_aggressive"] >= row["speedup_standard"]
        assert row["efficiency_gain_standard"] > 10.0

    def test_gain_breakdown_hardware_exceeds_software(self):
        table = gain_breakdown()
        for step, row in table.items():
            assert row["hardware_speedup"] > row["software_speedup"], step
        assert table["+BGPP"]["hardware_speedup"] > table["+BRCR"]["hardware_speedup"] * 0.9

    def test_bit_shift_overhead_small_but_nonzero(self):
        table = bit_shift_overhead(task_names=("Dolly",))
        row = table["Dolly"]
        assert 0.0 < row["bit_shift_fraction"] < 0.3
        assert row["latency_reduction"] > 1.5


class TestFig22To26:
    def test_hardware_ablation_monotone_throughput(self):
        table = hardware_ablation()
        assert table["BRCR"]["throughput"] > table["SystolicArray"]["throughput"]
        assert table["+BSTC"]["throughput"] >= table["BRCR"]["throughput"]
        assert table["+BGPP"]["throughput"] >= table["+BSTC"]["throughput"]
        assert table["+BGPP"]["energy_efficiency"] > 1.0

    def test_sota_stage_comparison_mcbp_wins(self):
        table = sota_stage_comparison(tasks=("Dolly", "MBPP"), stage="decoding" if False else "decode")
        mean = table["Mean"]
        assert mean["MCBP"]["speedup"] >= max(
            mean[name]["speedup"] for name in mean if name != "MCBP"
        )
        assert mean["MCBP"]["energy_total"] <= 1.0

    def test_cambricon_comparison(self):
        table = cambricon_comparison(models=("Llama7B",))
        assert table["prefill"]["Llama7B"]["speedup"] > 1.0
        assert table["decode"]["Llama7B"]["speedup"] > 1.0
        assert table["decode"]["Llama7B"]["energy_ratio"] < 1.0

    def test_sota_spec_table(self):
        table = sota_spec_table()
        assert table["MCBP"]["efficiency_gops_w"] == pytest.approx(22740.0)
        assert table["SpAtten"]["measured_efficiency_ratio_vs_mcbp"] > 1.0

    def test_quantization_sparsity_study(self):
        study = quantization_sparsity_study(rows=64)
        assert study["ptq_int8"]["bit_sparsity"] > study["ptq_int4"]["bit_sparsity"]
        assert study["ptq_int4"]["value_sparsity"] > study["ptq_int8"]["value_sparsity"]
        assert study["ptq_int8"]["norm_computation_brcr"] < 1.0
        assert study["ptq_int8"]["norm_memory_bstc"] < 1.0


class TestAccuracyProxies:
    def test_fidelity_metrics_identity(self):
        logits = np.random.default_rng(0).normal(size=(4, 16))
        metrics = fidelity_metrics(logits, logits)
        assert metrics["cosine"] == pytest.approx(1.0)
        assert metrics["top1_agreement"] == 1.0

    def test_fidelity_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            fidelity_metrics(np.zeros((2, 3)), np.zeros((3, 2)))

    def test_accuracy_table_ordering(self):
        table = accuracy_proxy_table(n_prompts=2, prompt_len=16)
        assert table["FP16"]["cosine"] == pytest.approx(1.0)
        assert table["INT8"]["cosine"] > 0.99
        assert table["MCBP (S)"]["cosine"] >= table["MCBP (A)"]["cosine"] - 0.02
        assert table["MCBP (A)"]["accuracy_proxy"] <= table["FP16"]["accuracy_proxy"]

    def test_alpha_sweep_trends(self):
        sweep = alpha_sweep(alphas=(0.8, 0.4), prompt_len=32, n_prompts=1)
        assert sweep[0.4]["attention_sparsity"] > sweep[0.8]["attention_sparsity"]
        assert sweep[0.4]["accuracy_proxy"] <= sweep[0.8]["accuracy_proxy"] + 5.0


class TestReporting:
    def test_format_value(self):
        assert format_value(1.23456) == "1.235"
        assert format_value(1e-7) == "1.000e-07"
        assert format_value("abc") == "abc"

    def test_format_table_alignment(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 10, "b": 0.1}], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len(set(len(l) for l in lines[1:])) == 1

    def test_format_nested_table(self):
        text = format_nested_table({"x": {"v": 1.0}}, row_label="row")
        assert "row" in text and "x" in text

    def test_format_empty(self):
        assert format_table([], title="empty") == "empty"
