"""Tests for the hardware cost framework and baseline accelerator models."""

import numpy as np
import pytest

from repro.baselines import (
    GPUAccelerator,
    SOTA_ACCELERATORS,
    SpAttenAccelerator,
    SystolicArrayAccelerator,
)
from repro.hw import (
    DEFAULT_TECH,
    MCBP_HW_CONFIG,
    AnalyticalAccelerator,
    MCBPAccelerator,
    dense_stage_quantities,
    mcbp_area_breakdown,
    mcbp_power_breakdown,
)
from repro.workloads import make_workload, profile_model


@pytest.fixture(scope="module")
def llama_profile():
    return profile_model("Llama7B")


@pytest.fixture(scope="module")
def dolly_workload():
    return make_workload("Llama7B", "Dolly", batch=8)


@pytest.fixture(scope="module")
def mbpp_workload():
    return make_workload("Llama7B", "MBPP", batch=8)


class TestConstantsAndBreakdowns:
    def test_hbm_bandwidth(self):
        assert DEFAULT_TECH.hbm_bytes_per_cycle == 64.0
        assert DEFAULT_TECH.dram_byte_pj == 32.0

    def test_hw_config_totals(self):
        assert MCBP_HW_CONFIG.n_pes == 160
        assert MCBP_HW_CONFIG.total_sram_kb == 1248

    def test_area_breakdown_sums_to_total(self):
        area = mcbp_area_breakdown()
        assert sum(area.components.values()) == pytest.approx(area.total_mm2, rel=0.01)
        assert area.total_mm2 == pytest.approx(9.52)
        # BRCR unit is the largest component (38.2 %)
        assert max(area.components, key=area.components.get) == "brcr_unit"

    def test_power_breakdown_matches_paper_fractions(self):
        power = mcbp_power_breakdown()
        assert power.total_w == pytest.approx(2.395)
        assert power.fraction("dram") == pytest.approx(0.476, abs=0.01)
        assert power.core_w == pytest.approx(0.373 * 2.395, rel=0.02)
        # BSTC codec stays lightweight (~10 % of core power)
        assert power.components["bstc_unit"] / power.core_w < 0.15


class TestDenseQuantities:
    def test_decode_weight_traffic_scales_with_tokens(self, dolly_workload):
        dense = dense_stage_quantities(dolly_workload)
        model = dolly_workload.model
        assert dense["decode_weight_bytes"] == pytest.approx(
            model.weight_bytes() * dolly_workload.decode_len
        )

    def test_kv_traffic_grows_with_prompt(self):
        short = dense_stage_quantities(make_workload("Llama7B", "Cola"))
        long = dense_stage_quantities(make_workload("Llama7B", "Dolly"))
        assert long["decode_kv_bytes"] > short["decode_kv_bytes"]

    def test_batch_scales_compute_not_weights(self):
        b1 = dense_stage_quantities(make_workload("Llama7B", "MBPP", batch=1))
        b8 = dense_stage_quantities(make_workload("Llama7B", "MBPP", batch=8))
        assert b8["decode_linear_macs"] == pytest.approx(8 * b1["decode_linear_macs"])
        assert b8["decode_weight_bytes"] == pytest.approx(b1["decode_weight_bytes"])


class TestMCBPAccelerator:
    def test_report_structure(self, dolly_workload, llama_profile):
        report = MCBPAccelerator().evaluate(dolly_workload, llama_profile)
        assert report.total_latency_s > 0
        assert report.total_energy_j > 0
        assert report.throughput_gops > 0
        assert report.prefill.latency_cycles == max(
            report.prefill.compute_cycles, report.prefill.memory_cycles
        )

    def test_each_technique_reduces_latency(self, dolly_workload, llama_profile):
        base = MCBPAccelerator(use_brcr=False, use_bstc=False, use_bgpp=False)
        brcr = MCBPAccelerator(use_brcr=True, use_bstc=False, use_bgpp=False)
        bstc = MCBPAccelerator(use_brcr=True, use_bstc=True, use_bgpp=False)
        full = MCBPAccelerator()
        latencies = [
            acc.evaluate(dolly_workload, llama_profile).total_latency_s
            for acc in (base, brcr, bstc, full)
        ]
        assert latencies[1] <= latencies[0]
        assert latencies[2] <= latencies[1]
        assert latencies[3] <= latencies[2]
        assert latencies[3] < 0.8 * latencies[0]

    def test_aggressive_faster_than_standard(self, dolly_workload, llama_profile):
        standard = MCBPAccelerator().evaluate(dolly_workload, llama_profile)
        aggressive = MCBPAccelerator(aggressive=True).evaluate(dolly_workload, llama_profile)
        assert aggressive.total_latency_s <= standard.total_latency_s

    def test_bstc_reduces_weight_traffic(self, mbpp_workload, llama_profile):
        with_bstc = MCBPAccelerator().evaluate(mbpp_workload, llama_profile)
        without = MCBPAccelerator(use_bstc=False).evaluate(mbpp_workload, llama_profile)
        assert with_bstc.decode.weight_bytes < without.decode.weight_bytes

    def test_bgpp_reduces_kv_traffic(self, dolly_workload, llama_profile):
        with_bgpp = MCBPAccelerator().evaluate(dolly_workload, llama_profile)
        without = MCBPAccelerator(use_bgpp=False).evaluate(dolly_workload, llama_profile)
        assert (
            with_bgpp.decode.kv_bytes + with_bgpp.decode.prediction_bytes
            < without.decode.kv_bytes + without.decode.prediction_bytes
        )

    def test_bit_reorder_small_with_bstc(self, dolly_workload, llama_profile):
        report = MCBPAccelerator().evaluate(dolly_workload, llama_profile)
        reorder = report.prefill.reorder_energy_pj + report.decode.reorder_energy_pj
        assert reorder < 0.1 * (report.prefill.total_energy_pj + report.decode.total_energy_pj)

    def test_multi_processor_scaling(self, dolly_workload, llama_profile):
        one = MCBPAccelerator().evaluate(dolly_workload, llama_profile, n_processors=1)
        many = MCBPAccelerator().evaluate(dolly_workload, llama_profile, n_processors=148)
        assert many.total_latency_s == pytest.approx(one.total_latency_s / 148)
        # dynamic energy is the same; only latency changes
        assert many.total_energy_j == pytest.approx(one.total_energy_j, rel=0.05)

    def test_ablation_names(self):
        assert MCBPAccelerator(use_bstc=False, use_bgpp=False).name == "MCBP[BRCR]"
        assert (
            MCBPAccelerator(use_brcr=False, use_bstc=False, use_bgpp=False).name
            == "MCBP[baseline]"
        )
        assert MCBPAccelerator(aggressive=True).name == "MCBP-aggressive"


class TestGPUModel:
    def test_gpu_slower_than_148_mcbp(self, dolly_workload, llama_profile):
        gpu = GPUAccelerator().evaluate(dolly_workload, llama_profile)
        mcbp = MCBPAccelerator().evaluate(dolly_workload, llama_profile, n_processors=148)
        speedup = gpu.total_latency_s / mcbp.total_latency_s
        assert 3.0 < speedup < 40.0  # paper reports ~8.7x average, task dependent

    def test_gpu_efficiency_much_lower(self, dolly_workload, llama_profile):
        gpu = GPUAccelerator().evaluate(dolly_workload, llama_profile)
        mcbp = MCBPAccelerator().evaluate(dolly_workload, llama_profile)
        ratio = mcbp.energy_efficiency_gops_per_w / gpu.energy_efficiency_gops_per_w
        assert 10.0 < ratio < 100.0  # paper: ~31x

    def test_software_opts_give_small_gains(self, dolly_workload, llama_profile):
        dense = GPUAccelerator().evaluate(dolly_workload, llama_profile)
        optimised = GPUAccelerator(software_opts=("brcr", "bstc", "bgpp")).evaluate(
            dolly_workload, llama_profile
        )
        gain = dense.total_latency_s / optimised.total_latency_s
        assert 1.0 < gain < 2.5  # far below the dedicated-hardware gain

    def test_unknown_software_opt_rejected(self):
        with pytest.raises(ValueError):
            GPUAccelerator(software_opts=("turbo",))


class TestBaselines:
    def test_all_sota_models_run(self, dolly_workload, llama_profile):
        for name, cls in SOTA_ACCELERATORS.items():
            report = cls().evaluate(dolly_workload, llama_profile)
            assert report.total_latency_s > 0, name
            assert report.total_energy_j > 0, name

    def test_mcbp_fastest_among_accelerators(self, dolly_workload, llama_profile):
        mcbp = MCBPAccelerator().evaluate(dolly_workload, llama_profile)
        for name, cls in SOTA_ACCELERATORS.items():
            report = cls().evaluate(dolly_workload, llama_profile)
            assert report.total_latency_s >= mcbp.total_latency_s * 0.99, name

    def test_mcbp_lowest_energy(self, dolly_workload, llama_profile):
        mcbp = MCBPAccelerator().evaluate(dolly_workload, llama_profile)
        for name, cls in SOTA_ACCELERATORS.items():
            report = cls().evaluate(dolly_workload, llama_profile)
            assert report.total_energy_j >= mcbp.total_energy_j, name

    def test_spatten_reduces_kv_but_not_weights(self, dolly_workload, llama_profile):
        spatten = SpAttenAccelerator().evaluate(dolly_workload, llama_profile)
        systolic = SystolicArrayAccelerator().evaluate(dolly_workload, llama_profile)
        assert spatten.decode.kv_bytes < systolic.decode.kv_bytes
        assert spatten.decode.weight_bytes == pytest.approx(systolic.decode.weight_bytes)

    def test_bitwave_pays_bit_reorder_energy(self, dolly_workload, llama_profile):
        from repro.baselines import BitwaveAccelerator

        bitwave = BitwaveAccelerator().evaluate(dolly_workload, llama_profile)
        mcbp = MCBPAccelerator().evaluate(dolly_workload, llama_profile)
        bitwave_frac = bitwave.prefill.reorder_energy_pj / bitwave.prefill.total_energy_pj
        mcbp_frac = mcbp.prefill.reorder_energy_pj / mcbp.prefill.total_energy_pj
        assert bitwave_frac > mcbp_frac

    def test_decode_memory_bound_for_all(self, mbpp_workload, llama_profile):
        """The decode stage of a code-generation task is memory bound everywhere."""
        for cls in (SystolicArrayAccelerator, SpAttenAccelerator):
            report = cls().evaluate(mbpp_workload, llama_profile)
            assert report.decode.memory_cycles > report.decode.compute_cycles
