"""Speculative multi-token decode tests (PR 10).

The contract under test is *bit-identity*: for any drafter, any ``k`` and
any engine configuration, the committed token stream and terminal state of
every request must equal the speculation-off run exactly -- speculation may
only change *when* tokens come out (fewer step-domain steps), never *which*.
The fuzz classes sweep k in {1..4} x drafters x the orthogonal engine knobs
(prefix cache, int8 KV pages, snapshot preemption + preemptive policies,
2% chaos faults) and additionally pin the arena's rollback books:
``draft_rows_appended - rows_rolled_back`` equals the total accepted drafts
on fault-free runs, and the arena always drains to zero pages.

Unit classes cover the two drafters, the adaptive throttle's window
arithmetic, :meth:`PagedKVArena.truncate_session` and the report/metrics
plumbing (spec keys only when speculation is on; ``from_json`` tolerant
both ways).  ``TestAdaptivePrefillBudget`` covers the satellite
:class:`AdaptivePrefillAdmission` policy.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import QuantizedTransformer, TransformerModel, get_model_config
from repro.serve import (
    AdaptivePrefillAdmission,
    FaultPlan,
    NGramDrafter,
    PagedKVArena,
    Request,
    ServingEngine,
    ServingReport,
    SessionState,
    SpeculationConfig,
    TruncatedBitDrafter,
    make_policies,
)
from repro.serve.speculative import _SessionThrottle, resolve_speculation

FUZZ = settings(max_examples=10, deadline=None, derandomize=True)


@pytest.fixture(scope="module")
def model():
    return QuantizedTransformer(
        TransformerModel(get_model_config("tiny"), seed=0), seed=1
    )


def _sample_trace(rng, vocab, repetitive=False):
    """Random request trace; ``repetitive`` biases toward draftable prompts."""
    n_requests = int(rng.integers(2, 7))
    arrivals = np.sort(rng.integers(0, 6, size=n_requests))
    requests = []
    for i in range(n_requests):
        if repetitive and rng.random() < 0.5:
            motif = rng.integers(0, vocab, size=int(rng.integers(2, 5))).tolist()
            prompt = (motif * 4)[: int(rng.integers(4, 14))]
        else:
            prompt = rng.integers(0, vocab, size=int(rng.integers(1, 12))).tolist()
        requests.append(
            Request(
                request_id=f"r{i:02d}",
                prompt_tokens=prompt,
                max_new_tokens=int(rng.integers(1, 10)),
                arrival_step=int(arrivals[i]),
            )
        )
    return requests


def _run(model, requests, speculative=None, **kwargs):
    engine = ServingEngine(model, speculative=speculative, **kwargs)
    handles = [engine.submit(r) for r in requests]
    engine.run()
    tokens = {h.request_id: list(h.generated_tokens) for h in handles}
    states = {h.request_id: h.state for h in handles}
    return tokens, states, engine


def _assert_books(engine, metrics_accepted=None):
    stats = engine.arena.stats
    assert stats.pages_in_use == 0
    assert (
        stats.page_faults - stats.pages_freed
        == stats.pages_in_use + stats.cached_idle_pages
    )
    if metrics_accepted is not None:
        assert (
            stats.draft_rows_appended - stats.rows_rolled_back
            == metrics_accepted
        )


# -- drafters ------------------------------------------------------------------


class TestNGramDrafter:
    def test_echoes_repeated_continuation(self):
        d = NGramDrafter(max_n=3)
        # trailing [5, 6] occurred earlier, followed by 7, 8
        assert d.propose([5, 6, 7, 8, 5, 6], 2) == [7, 8]

    def test_prefers_longest_ngram_and_most_recent_occurrence(self):
        d = NGramDrafter(max_n=3)
        # trailing trigram [1, 2, 3] matches at both 0 and 4; the more
        # recent occurrence (4) is followed by 9
        hist = [1, 2, 3, 7, 1, 2, 3, 9, 1, 2, 3]
        assert d.propose(hist, 1) == [9]

    def test_extends_over_its_own_proposals(self):
        d = NGramDrafter(max_n=3)
        # a period-3 cycle proposes beyond one period: the continuation
        # re-matches against the extended history
        hist = [1, 2, 3, 1, 2, 3]
        assert d.propose(hist, 7) == [1, 2, 3, 1, 2, 3, 1]

    def test_no_match_proposes_nothing(self):
        d = NGramDrafter()
        assert d.propose([1, 2, 3, 4, 5], 4) == []
        assert d.propose([1], 4) == []
        assert d.propose([1, 1, 2], 0) == []

    def test_max_n_validation(self):
        with pytest.raises(ValueError):
            NGramDrafter(max_n=0)


class TestTruncatedBitDrafter:
    def test_deterministic_and_in_vocab(self, model):
        d = TruncatedBitDrafter(model, bits=4)
        vocab = model.config.vocab_size
        hist = [3, 17, 5, 9]
        first = d.propose(hist, 6)
        assert first == d.propose(hist, 6)
        assert len(first) == 6
        assert all(0 <= t < vocab for t in first)

    def test_chain_feeds_own_proposals(self, model):
        d = TruncatedBitDrafter(model, bits=4)
        one = d.propose([11], 1)
        two = d.propose([11], 2)
        assert two[0] == one[0]
        assert two[1] == d.propose([one[0]], 1)[0]

    def test_bits_validation(self, model):
        with pytest.raises(ValueError):
            TruncatedBitDrafter(model, bits=0)
        with pytest.raises(ValueError):
            TruncatedBitDrafter(model, bits=99)

    def test_empty_history_proposes_nothing(self, model):
        assert TruncatedBitDrafter(model).propose([], 4) == []


# -- config / throttle ---------------------------------------------------------


class TestSpeculationConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SpeculationConfig(k=0)
        with pytest.raises(ValueError):
            SpeculationConfig(window=0)
        with pytest.raises(ValueError):
            SpeculationConfig(low_rate=0.9, high_rate=0.5)
        with pytest.raises(ValueError):
            SpeculationConfig(cooldown_steps=0)

    def test_resolve_shorthand(self):
        assert resolve_speculation(None) is None
        assert resolve_speculation(3).k == 3
        cfg = SpeculationConfig(k=2)
        assert resolve_speculation(cfg) is cfg
        with pytest.raises(TypeError):
            resolve_speculation(True)
        with pytest.raises(TypeError):
            resolve_speculation("fast")

    def test_engine_knob_validation(self, model):
        with pytest.raises(ValueError):
            ServingEngine(model, speculative=2, arena=False)
        with pytest.raises(ValueError):
            ServingEngine(model, speculative=2, batched_prefill=False)
        with pytest.raises(TypeError):
            ServingEngine(model, speculative="yes")


class TestSessionThrottle:
    def test_non_adaptive_always_full_k(self):
        t = _SessionThrottle(SpeculationConfig(k=3, adaptive=False))
        for _ in range(20):
            assert t.next_k() == 3
            t.observe(3, 0)

    def test_steps_down_on_poor_acceptance(self):
        t = _SessionThrottle(SpeculationConfig(k=2, window=4, low_rate=0.5))
        for _ in range(4):
            t.observe(2, 0)
        assert t.next_k() == 1

    def test_cooldown_then_reprobe_at_one(self):
        cfg = SpeculationConfig(k=1, window=2, low_rate=0.5, cooldown_steps=3)
        t = _SessionThrottle(cfg)
        t.observe(1, 0)
        t.observe(1, 0)
        assert t.k_cur == 0
        # cooldown: proposes nothing for cooldown_steps - 1 ticks, then
        # probes again at k=1
        assert t.next_k() == 0
        assert t.next_k() == 0
        assert t.next_k() == 1

    def test_steps_back_up_on_good_acceptance(self):
        cfg = SpeculationConfig(k=4, window=2, low_rate=0.1, high_rate=0.5)
        t = _SessionThrottle(cfg)
        t.k_cur = 1
        t.observe(1, 1)
        t.observe(1, 1)
        assert t.next_k() == 2


# -- arena truncation ----------------------------------------------------------


class TestTruncateSession:
    def _arena(self, **kwargs):
        return PagedKVArena(n_layers=2, hidden_size=8, page_size=4, **kwargs)

    def test_pops_rows_and_frees_emptied_pages(self):
        arena = self._arena()
        sid = arena.create_session()
        rows = np.ones((6, 8))
        for layer in (0, 1):
            arena.append(sid, layer, rows, rows)
        assert arena.stats.pages_in_use == 2  # pages span layers: 6 rows -> 2
        arena.truncate_session(sid, 3)  # 6 -> 3 rows: second page empties
        assert arena.seq_len(sid, 0) == 3
        assert arena.stats.pages_in_use == 1
        assert arena.stats.rows_rolled_back == 3
        assert arena.stats.pages_freed == 1
        arena.free(sid)
        assert arena.stats.pages_in_use == 0

    def test_truncated_rows_reread_bit_identical(self):
        arena = self._arena()
        rng = np.random.default_rng(0)
        keep = rng.normal(size=(5, 8))
        sid = arena.create_session()
        for layer in (0, 1):
            arena.append(sid, layer, keep, keep)
        # append 3 draft rows, roll them back, re-append different ones
        draft = rng.normal(size=(3, 8))
        for layer in (0, 1):
            arena.append(sid, layer, draft, draft)
        arena.truncate_session(sid, 3)
        redo = rng.normal(size=(2, 8))
        for layer in (0, 1):
            arena.append(sid, layer, redo, redo)
        keys, _, lengths = arena.gather_batch(0, [sid])
        assert int(lengths[0]) == 7
        np.testing.assert_array_equal(
            keys[0, : int(lengths[0])], np.concatenate([keep, redo])
        )

    def test_zero_rows_is_a_no_op(self):
        arena = self._arena()
        sid = arena.create_session()
        arena.append(sid, 0, np.ones((2, 8)), np.ones((2, 8)))
        before = arena.stats.pages_in_use
        arena.truncate_session(sid, 0)
        assert arena.stats.pages_in_use == before
        assert arena.stats.rows_rolled_back == 0

    def test_over_truncation_raises(self):
        arena = self._arena()
        sid = arena.create_session()
        arena.append(sid, 0, np.ones((2, 8)), np.ones((2, 8)))
        with pytest.raises(ValueError):
            arena.truncate_session(sid, 5)
        with pytest.raises(ValueError):
            arena.truncate_session(sid, -1)

    def test_negative_and_unknown_session(self):
        arena = self._arena()
        with pytest.raises(KeyError):
            arena.truncate_session(12345, 1)


# -- bit-identity fuzz ---------------------------------------------------------


class TestSpeculativeBitIdentity:
    """Tokens and terminal states never depend on speculation."""

    @FUZZ
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_k_sweep_both_drafters(self, model, seed):
        rng = np.random.default_rng(seed)
        requests = _sample_trace(rng, model.config.vocab_size, repetitive=True)
        max_active = int(rng.integers(1, 7))
        base_tokens, base_states, _ = _run(model, requests, max_active=max_active)
        k = int(rng.integers(1, 5))
        for drafter in (NGramDrafter(), TruncatedBitDrafter(model, bits=4)):
            cfg = SpeculationConfig(
                k=k, adaptive=bool(rng.random() < 0.5), drafter=drafter
            )
            tokens, states, engine = _run(
                model, requests, speculative=cfg, max_active=max_active
            )
            assert tokens == base_tokens, f"k={k} drafter={drafter.name}"
            assert states == base_states
            accepted = sum(
                m.draft_accepted for m in engine.report().requests
            )
            _assert_books(engine, metrics_accepted=accepted)

    @FUZZ
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_with_prefix_cache_and_int8_kv(self, model, seed):
        rng = np.random.default_rng(seed)
        requests = _sample_trace(rng, model.config.vocab_size, repetitive=True)
        max_active = int(rng.integers(1, 7))
        kwargs = {"max_active": max_active}
        if rng.random() < 0.5:
            kwargs["prefix_cache"] = True
        else:
            kwargs["kv_dtype"] = "int8"
        base_tokens, base_states, _ = _run(model, requests, **kwargs)
        cfg = SpeculationConfig(k=int(rng.integers(1, 5)))
        tokens, states, engine = _run(model, requests, speculative=cfg, **kwargs)
        assert tokens == base_tokens
        assert states == base_states
        accepted = sum(m.draft_accepted for m in engine.report().requests)
        _assert_books(engine, metrics_accepted=accepted)

    @FUZZ
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_with_preemptive_policies_and_snapshots(self, model, seed):
        rng = np.random.default_rng(seed)
        vocab = model.config.vocab_size
        requests = [
            Request(
                request_id=f"p{i:02d}",
                prompt_tokens=rng.integers(0, vocab, size=int(rng.integers(2, 10))).tolist(),
                max_new_tokens=int(rng.integers(2, 8)),
                arrival_step=int(rng.integers(0, 5)),
                priority=int(rng.integers(0, 3)),
                deadline_steps=int(rng.integers(4, 30)),
            )
            for i in range(int(rng.integers(3, 7)))
        ]
        discipline = ["priority", "deadline"][int(rng.integers(0, 2))]
        admission, scheduling = make_policies(discipline)
        kwargs = {
            "max_active": int(rng.integers(1, 4)),
            "admission": admission,
            "scheduling": scheduling,
            "kv_snapshots": bool(rng.random() < 0.5),
        }
        base_tokens, base_states, _ = _run(model, requests, **kwargs)
        admission, scheduling = make_policies(discipline)
        kwargs["admission"], kwargs["scheduling"] = admission, scheduling
        cfg = SpeculationConfig(k=int(rng.integers(1, 5)))
        tokens, states, engine = _run(model, requests, speculative=cfg, **kwargs)
        assert tokens == base_tokens
        assert states == base_states
        accepted = sum(m.draft_accepted for m in engine.report().requests)
        _assert_books(engine, metrics_accepted=accepted)

    @FUZZ
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_chaos_faults_finished_streams_stay_exact(self, model, seed):
        """2% uniform chaos: what finishes, finishes bit-identically.

        A speculative step changes the step-domain schedule, so the
        deterministic fault streams hit different (request, step) pairs
        than the spec-off run -- terminal outcomes may legitimately differ
        between the two.  What must hold: the run is deterministic under
        its seed, every FINISHED request's tokens equal the fault-free
        baseline stream, the arena drains with balanced books, and the
        rollback ledger never under-counts (quarantined speculative
        commits append draft rows whose acceptance is discarded, so
        ``appended - rolled_back >= accepted``).
        """
        rng = np.random.default_rng(seed)
        requests = _sample_trace(rng, model.config.vocab_size, repetitive=True)
        base_tokens, _, _ = _run(model, requests, max_active=4)
        plan = FaultPlan.uniform(probability=0.02, seed=seed)
        cfg = SpeculationConfig(k=int(rng.integers(1, 5)))

        def chaos_run():
            return _run(
                model, requests, speculative=cfg, max_active=4, faults=plan
            )

        tokens, states, engine = chaos_run()
        tokens2, states2, _ = chaos_run()
        assert tokens == tokens2 and states == states2  # replayable
        for rid, state in states.items():
            if state is SessionState.FINISHED:
                assert tokens[rid] == base_tokens[rid]
        stats = engine.arena.stats
        assert stats.pages_in_use == 0
        assert (
            stats.page_faults - stats.pages_freed == stats.cached_idle_pages
        )
        accepted = sum(m.draft_accepted for m in engine.report().requests)
        assert stats.draft_rows_appended - stats.rows_rolled_back >= accepted


# -- reporting -----------------------------------------------------------------


class TestSpeculationReporting:
    def _spec_report(self, model):
        requests = [
            Request("s0", [3, 17, 5, 9] * 3, max_new_tokens=24),
            Request("s1", [4, 18, 6, 10] * 3, max_new_tokens=24),
        ]
        _, _, engine = _run(
            model, requests, speculative=SpeculationConfig(k=4), max_active=2
        )
        return engine.report()

    def test_policy_block_gains_spec_keys_only_when_on(self, model):
        report = self._spec_report(model)
        assert report.policy["draft_proposed"] > 0
        assert report.policy["draft_accepted"] >= 0
        assert report.policy["mean_accepted_len"] >= 0.0
        _, _, off_engine = _run(
            model, [Request("o0", [1, 2, 3], max_new_tokens=4)], max_active=1
        )
        off = off_engine.report()
        assert "draft_proposed" not in off.policy
        assert off.arena["draft_rows_appended"] == 0
        assert off.arena["rows_rolled_back"] == 0

    def test_request_metrics_carry_acceptance(self, model):
        report = self._spec_report(model)
        m = {r.request_id: r for r in report.requests}["s0"]
        assert m.draft_proposed >= m.draft_accepted >= 0
        assert m.spec_steps > 0
        assert m.mean_accepted_len == m.draft_accepted / m.spec_steps

    def test_from_json_tolerates_both_shapes(self, model):
        report = self._spec_report(model)
        payload = report.to_json()
        loaded = ServingReport.from_json(payload)
        assert [r.draft_accepted for r in loaded.requests] == [
            r.draft_accepted for r in report.requests
        ]
        assert loaded.policy["draft_proposed"] == report.policy["draft_proposed"]
        # old writers: no spec keys anywhere -- defaults fill in
        for entry in payload["requests"]:
            for key in ("draft_proposed", "draft_accepted", "spec_steps"):
                del entry[key]
        payload["policy"].pop("draft_proposed")
        old = ServingReport.from_json(payload)
        assert all(r.draft_proposed == 0 for r in old.requests)
        assert all(r.mean_accepted_len == 0.0 for r in old.requests)

    def test_step_stats_gain_draft_counters_only_when_on(self, model):
        requests = [Request("t0", [3, 17, 5, 9] * 3, max_new_tokens=16)]
        engine = ServingEngine(model, max_active=1, speculative=4)
        for r in requests:
            engine.submit(r)
        engine.run()
        assert "draft_proposed" in engine.last_step_stats
        off = ServingEngine(model, max_active=1)
        off.submit(Request("t1", [1, 2, 3], max_new_tokens=2))
        off.run()
        assert "draft_proposed" not in off.last_step_stats


# -- adaptive prefill budget (satellite) ---------------------------------------


class TestAdaptivePrefillBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptivePrefillAdmission(throttled_budget=0)
        with pytest.raises(ValueError):
            AdaptivePrefillAdmission(decode_threshold=0.0)
        assert AdaptivePrefillAdmission().name == "adaptive-prefill(fifo)"

    def test_tokens_identical_under_throttle(self, model):
        """Chunked prefill is token-exact, so throttling only re-times."""
        rng = np.random.default_rng(3)
        requests = _sample_trace(rng, model.config.vocab_size)
        base_tokens, base_states, _ = _run(model, requests, max_active=4)
        tokens, states, engine = _run(
            model,
            requests,
            max_active=4,
            admission=AdaptivePrefillAdmission(
                throttled_budget=1, decode_threshold=0.5
            ),
        )
        assert tokens == base_tokens
        assert states == base_states
        _assert_books(engine)

    def test_budget_clamps_only_when_decode_heavy(self, model):
        policy = AdaptivePrefillAdmission(throttled_budget=2, decode_threshold=0.5)
        engine = ServingEngine(model, max_active=4, admission=policy)
        # idle engine: no clamp (defers to the engine knob, None here)
        assert policy.prefill_token_budget(engine) is None
        engine.submit(Request("a0", [1, 2, 3, 4, 5, 6], max_new_tokens=6))
        engine.submit(Request("a1", [7, 8, 9], max_new_tokens=6))
        engine.step()  # both prefill+emit in one step -> both now decoding
        assert policy.prefill_token_budget(engine) == 2

    def test_composes_with_speculation(self, model):
        requests = [
            Request("c0", [3, 17, 5, 9] * 3, max_new_tokens=16, arrival_step=0),
            Request("c1", [4, 18, 6, 10] * 3, max_new_tokens=16, arrival_step=4),
        ]
        base_tokens, base_states, _ = _run(model, requests, max_active=2)
        tokens, states, engine = _run(
            model,
            requests,
            max_active=2,
            speculative=SpeculationConfig(k=3),
            admission=AdaptivePrefillAdmission(throttled_budget=1),
        )
        assert tokens == base_tokens
        assert states == base_states
        accepted = sum(m.draft_accepted for m in engine.report().requests)
        _assert_books(engine, metrics_accepted=accepted)
