"""Tests for the GEMM tiling model (repro.hw.tiling)."""

import pytest

from repro.hw.constants import MCBP_HW_CONFIG
from repro.hw.tiling import GemmTiling, TileConfig, plan_gemm_tiling


class TestTileConfig:
    def test_defaults_match_paper(self):
        cfg = TileConfig()
        assert (cfg.tile_m, cfg.tile_k, cfg.tile_n) == (64, 256, 32)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            TileConfig(tile_m=0)


class TestGemmTiling:
    def test_tile_counts_round_up(self):
        tiling = plan_gemm_tiling(100, 300, 33)
        assert tiling.tiles_m == 2
        assert tiling.tiles_k == 2
        assert tiling.tiles_n == 2
        assert tiling.total_tiles == 8

    def test_llama_projection_tiles(self):
        # a 4096x4096 projection against a 2048-token prompt
        tiling = plan_gemm_tiling(4096, 4096, 2048)
        assert tiling.tiles_m == 64
        assert tiling.tiles_k == 16
        assert tiling.tiles_n == 64

    def test_weight_tile_fits_weight_sram(self):
        tiling = plan_gemm_tiling(4096, 4096, 2048)
        # 64 x 256 INT8 tile = 16 kB, double-buffered well within 768 kB
        assert tiling.weight_tile_bytes() == 64 * 256
        assert tiling.weight_tile_fits(MCBP_HW_CONFIG)

    def test_weight_fetched_once_when_resident(self):
        tiling = plan_gemm_tiling(4096, 4096, 2048)
        assert tiling.weight_dram_fetches() == 1
        assert tiling.activation_dram_fetches() == tiling.tiles_m

    def test_weight_reuse_grows_with_batch_tokens(self):
        short = plan_gemm_tiling(4096, 4096, 1)
        long = plan_gemm_tiling(4096, 4096, 2048)
        assert long.weight_reuse_factor() > short.weight_reuse_factor()

    def test_oversized_tile_refetches(self):
        huge = TileConfig(tile_m=4096, tile_k=4096, tile_n=32)
        tiling = GemmTiling(m=4096, k=4096, n=2048, config=huge)
        assert not tiling.weight_tile_fits()
        assert tiling.weight_dram_fetches() == tiling.tiles_n

    def test_summary_keys(self):
        summary = plan_gemm_tiling(128, 512, 64).summary()
        assert {"tiles_m", "weight_tile_kb", "weight_reuse_factor"} <= set(summary)

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            plan_gemm_tiling(0, 1, 1)
