"""Tests for the policy-driven serving API (repro.serve.policies + engine).

Covers the `ServingEngine` facade (handles, callbacks, cancellation), the
shipped admission/scheduling policies (ordering, preemption, arena-budget
queueing), the preempt/resume session state machine, the deprecation shim's
bit-exact equivalence, and the new traffic generators.
"""

import dataclasses

import numpy as np
import pytest

from repro.model import (
    QuantizedTransformer,
    TransformerModel,
    generate,
    get_model_config,
)
from repro.serve import (
    ArenaBudgetAdmission,
    ContinuousBatchingScheduler,
    DeadlineAdmission,
    FIFOAdmission,
    PagedKVArena,
    PriorityAdmission,
    Request,
    ServingEngine,
    ServingReport,
    SessionState,
    make_policies,
)
from repro.serve.session import GenerationSession
from repro.workloads import (
    lognormal_arrival_steps,
    pareto_arrival_steps,
    sample_priorities,
    sample_requests,
    trace_arrival_steps,
)


class StubModel:
    """Deterministic O(1) stand-in: next token = last + 1 (mod vocab)."""

    def __init__(self, vocab: int = 16):
        self.vocab = vocab
        self.forward_calls = 0

    def new_cache(self):
        return []

    def forward(self, token_ids, caches=None, predictor=None):
        from repro.model.transformer import ForwardStats

        self.forward_calls += 1
        logits = np.zeros((len(token_ids), self.vocab))
        logits[-1, (int(token_ids[-1]) + 1) % self.vocab] = 1.0
        n = len(token_ids)
        return logits, ForwardStats(keys_attended=n, keys_total=n, tokens_processed=n)


@pytest.fixture(scope="module")
def model():
    return QuantizedTransformer(
        TransformerModel(get_model_config("tiny"), seed=0), seed=1
    )


# -- session state machine -----------------------------------------------------


class TestPreemptResume:
    def test_preempt_resume_continues_exactly(self):
        session = GenerationSession(
            Request("r", prompt_tokens=[3], max_new_tokens=6), StubModel()
        )
        assert session.admit(step=0) == 4
        assert session.decode_step(step=1) == 5
        session.preempt(step=2)
        assert session.state is SessionState.PREEMPTED
        assert session.decoder is None
        assert session.preemptions == 1
        assert session.resume(step=5) == 6  # re-prefill emits the next token
        assert session.decode_step(step=6) == 7
        assert session.generated_tokens == [4, 5, 6, 7]

    def test_preemption_work_stays_in_traffic_counters(self):
        def run(preempt: bool) -> GenerationSession:
            session = GenerationSession(
                Request("r", prompt_tokens=[0, 1], max_new_tokens=4), StubModel()
            )
            session.admit(step=0)
            session.decode_step(step=1)
            if preempt:
                session.preempt(step=2)
                session.resume(step=3)
            else:
                session.decode_step(step=2)
            while not session.is_finished:
                session.decode_step(step=4)
            return session

        plain, preempted = run(False), run(True)
        assert preempted.generated_tokens == plain.generated_tokens
        # the resume re-prefill re-attends the whole prefix: strictly more work
        assert preempted.keys_total > plain.keys_total

    def test_state_guards(self):
        session = GenerationSession(
            Request("r", prompt_tokens=[0], max_new_tokens=4), StubModel()
        )
        with pytest.raises(RuntimeError):
            session.preempt(step=0)  # queued, not active
        with pytest.raises(RuntimeError):
            session.resume(step=0)  # not preempted
        session.admit(step=0)
        session.preempt(step=1)
        with pytest.raises(RuntimeError):
            session.decode_step(step=1)  # preempted sessions do not decode
        session.cancel()
        assert session.state is SessionState.CANCELLED
        with pytest.raises(RuntimeError):
            session.cancel()  # terminal
        with pytest.raises(RuntimeError):
            session.resume(step=2)  # cancelled stays cancelled

    def test_request_validation(self):
        with pytest.raises(ValueError):
            Request("bad", prompt_tokens=[1], deadline_steps=0)
        assert Request("ok", prompt_tokens=[1], deadline_steps=3,
                       arrival_step=2).deadline_step == 5
        assert Request("ok2", prompt_tokens=[1]).deadline_step is None


# -- engine facade -------------------------------------------------------------


class TestServingEngineFacade:
    def test_handles_and_streaming_callbacks(self):
        engine = ServingEngine(StubModel(), max_active=2)
        streamed, completed = [], []
        handle = engine.submit(
            Request("r0", prompt_tokens=[4], max_new_tokens=3),
            on_token=lambda h, tok, step: streamed.append((h.request_id, tok, step)),
            on_complete=lambda h, m: completed.append(m),
        )
        assert handle.request_id == "r0"
        assert not handle.done
        report = engine.run()
        assert handle.done and handle.state is SessionState.FINISHED
        assert [tok for _, tok, _ in streamed] == handle.generated_tokens == [5, 6, 7]
        assert [s for _, _, s in streamed] == [0, 1, 2]
        assert len(completed) == 1
        assert completed[0] == handle.metrics() == report.requests[0]

    def test_cancel_queued_request_never_serves(self):
        engine = ServingEngine(StubModel(), max_active=1)
        keep = engine.submit(Request("keep", prompt_tokens=[0], max_new_tokens=2))
        drop = engine.submit(
            Request("drop", prompt_tokens=[0], max_new_tokens=2, arrival_step=4)
        )
        assert engine.cancel(drop) is True
        assert engine.cancel(drop) is False  # already terminal
        report = engine.run()
        assert [r.request_id for r in report.requests] == ["keep"]
        assert report.policy["cancelled"] == 1
        assert drop.generated_tokens == []
        assert drop.done and drop.state is SessionState.CANCELLED
        assert keep.done

    def test_cancel_active_request_frees_slot(self, model):
        engine = ServingEngine(model, max_active=1)
        long = engine.submit(Request("long", prompt_tokens=[1, 2], max_new_tokens=30))
        short = engine.submit(Request("short", prompt_tokens=[3], max_new_tokens=2))
        engine.step()
        assert long.state is SessionState.ACTIVE
        assert engine.cancel(long) is True
        assert engine.n_active == 0
        report = engine.run()
        assert [r.request_id for r in report.requests] == ["short"]
        assert engine.arena.stats.pages_in_use == 0  # cancelled pages returned
        assert engine.cancel(short) is False  # finished: nothing to cancel

    def test_cancel_preempted_request(self):
        admission, scheduling = make_policies("priority")
        engine = ServingEngine(
            StubModel(), max_active=1, admission=admission, scheduling=scheduling
        )
        low = engine.submit(Request("low", prompt_tokens=[0], max_new_tokens=9))
        high = engine.submit(
            Request("high", prompt_tokens=[4], max_new_tokens=2,
                    arrival_step=1, priority=5)
        )
        engine.step()
        engine.step()  # high arrives, low is preempted
        assert low.state is SessionState.PREEMPTED
        assert engine.cancel(low) is True
        report = engine.run()
        assert [r.request_id for r in report.requests] == ["high"]
        assert report.policy["cancelled"] == 1
        assert high.generated_tokens == [5, 6]

    def test_rejects_duplicate_request_ids(self):
        engine = ServingEngine(StubModel())
        engine.submit(Request("dup", prompt_tokens=[0], max_new_tokens=1))
        with pytest.raises(ValueError, match="duplicate request_id"):
            engine.submit(Request("dup", prompt_tokens=[1], max_new_tokens=1))

    def test_run_reports_truncated_when_not_drained(self):
        engine = ServingEngine(StubModel(), max_active=1)
        engine.submit(Request("r0", prompt_tokens=[0], max_new_tokens=50))
        report = engine.run(max_steps=3)
        assert report.truncated
        assert report.leftover_queued == 0
        assert report.leftover_active == 1
        # round-trips both ways: new payloads keep the flag, old ones default
        assert ServingReport.from_json(report.to_json()).truncated
        legacy = report.to_json()
        for key in ("truncated", "leftover_queued", "leftover_active"):
            legacy.pop(key)
        assert ServingReport.from_json(legacy).truncated is False


# -- deprecation shim ----------------------------------------------------------


class TestDeprecationShim:
    def test_shim_warns_and_matches_engine_bit_exactly(self, model, monkeypatch):
        from repro.serve import scheduler as scheduler_module

        requests = sample_requests(
            10, vocab_size=model.config.vocab_size, mean_interarrival=0.5, seed=11
        )
        engine = ServingEngine(model, max_active=4)
        handles = engine.submit_many(requests)
        engine_report = engine.run()
        # the warning fires once per process; re-arm it so this test observes
        # it regardless of which suite instantiated a shim first
        monkeypatch.setattr(scheduler_module, "_shim_deprecation_warned", False)
        with pytest.warns(DeprecationWarning):
            shim = ContinuousBatchingScheduler(model, max_active=4)
        sessions = shim.submit_many(requests)
        shim_report = shim.run()
        assert all(isinstance(s, GenerationSession) for s in sessions)
        assert [h.generated_tokens for h in handles] == [
            s.generated_tokens for s in sessions
        ]
        assert engine_report.requests == shim_report.requests
        assert engine_report.arena == shim_report.arena
        assert engine_report.steps == shim_report.steps
        assert engine_report.policy == shim_report.policy


# -- admission policies --------------------------------------------------------


class TestAdmissionPolicies:
    def test_priority_admission_reorders_queue(self):
        engine = ServingEngine(
            StubModel(), max_active=1, admission=PriorityAdmission()
        )
        blocker = engine.submit(
            Request("blocker", prompt_tokens=[0], max_new_tokens=4)
        )
        low = engine.submit(
            Request("low", prompt_tokens=[0], max_new_tokens=2, arrival_step=1)
        )
        high = engine.submit(
            Request("high", prompt_tokens=[0], max_new_tokens=2,
                    arrival_step=2, priority=1)
        )
        report = engine.run()
        admits = {r.request_id: r.admitted_step for r in report.requests}
        # the later-arriving high-priority request takes the next free slot
        assert admits["high"] < admits["low"]
        assert blocker.metrics().admitted_step == 0

    def test_deadline_admission_orders_by_absolute_deadline(self):
        engine = ServingEngine(
            StubModel(), max_active=1, admission=DeadlineAdmission()
        )
        engine.submit(Request("blocker", prompt_tokens=[0], max_new_tokens=4))
        engine.submit(
            Request("loose", prompt_tokens=[0], max_new_tokens=2,
                    arrival_step=1, deadline_steps=50)
        )
        engine.submit(
            Request("none", prompt_tokens=[0], max_new_tokens=2, arrival_step=1)
        )
        engine.submit(
            Request("tight", prompt_tokens=[0], max_new_tokens=2,
                    arrival_step=2, deadline_steps=9)
        )
        report = engine.run()
        admits = {r.request_id: r.admitted_step for r in report.requests}
        assert admits["tight"] < admits["loose"] < admits["none"]

    def test_arena_budget_admission_queues_instead_of_growing(self, model):
        config = model.config
        arena = PagedKVArena(
            config.n_layers, config.hidden_size, page_size=4,
            initial_pages=8, max_pages=8,
        )
        engine = ServingEngine(
            model, max_active=4, arena=arena,
            admission=ArenaBudgetAdmission(),
        )
        # each request needs 3 pages for its lifetime (9+2=11 rows): only two
        # fit inside the 8-page budget concurrently, the rest must queue
        requests = [
            Request(f"q{i}", prompt_tokens=[i + 1] * 9, max_new_tokens=3)
            for i in range(5)
        ]
        handles = engine.submit_many(requests)
        report = engine.run()
        assert arena.stats.pool_grows == 0
        assert arena.n_pages == 8
        assert arena.stats.peak_pages_in_use <= 8
        assert report.max_concurrency == 2  # budget, not slots, was the cap
        assert len(report.requests) == 5
        # queueing must not change content
        reference = ServingEngine(model, max_active=4)
        ref_handles = reference.submit_many(requests)
        reference.run()
        assert [h.generated_tokens for h in handles] == [
            h.generated_tokens for h in ref_handles
        ]

    def test_arena_budget_watermark_lowers_the_cap(self, model):
        config = model.config
        arena = PagedKVArena(
            config.n_layers, config.hidden_size, page_size=4,
            initial_pages=8, max_pages=8,
        )
        engine = ServingEngine(
            model, max_active=4, arena=arena,
            admission=ArenaBudgetAdmission(watermark=0.5),
        )
        engine.submit_many(
            Request(f"w{i}", prompt_tokens=[i + 1] * 9, max_new_tokens=3)
            for i in range(3)
        )
        report = engine.run()
        assert report.max_concurrency == 1  # 4-page watermark: one at a time
        assert arena.stats.peak_pages_in_use <= 4

    def test_arena_budget_forced_progress_on_idle_engine(self, model):
        config = model.config
        arena = PagedKVArena(
            config.n_layers, config.hidden_size, page_size=4,
            initial_pages=8, max_pages=8,
        )
        engine = ServingEngine(
            model, max_active=2, arena=arena,
            admission=ArenaBudgetAdmission(watermark=0.5),
        )
        # needs 6 pages > the 4-page watermark; an idle engine admits it
        # anyway rather than deadlocking the queue (max_pages still holds it)
        engine.submit(Request("huge", prompt_tokens=[1] * 20, max_new_tokens=4))
        report = engine.run()
        assert len(report.requests) == 1
        assert arena.stats.peak_pages_in_use == 6

    def test_never_fitting_request_rejected_at_submit(self, model):
        """A lifetime over max_pages raises at submit, not mid-run.

        Without the submit-time check the request waits until the engine
        idles, is force-admitted, and crashes the whole run with an
        'arena exhausted' RuntimeError halfway through its prefill.
        """
        engine = ServingEngine(
            model, max_active=2, page_size=4, max_pages=8,
            admission=ArenaBudgetAdmission(),
        )
        with pytest.raises(ValueError, match="can never be admitted"):
            engine.submit(
                Request("huge", prompt_tokens=[1] * 40, max_new_tokens=10)
            )
        # the rejected request leaves no trace: the id is reusable and the
        # engine still serves a feasible stream to completion
        engine.submit(Request("huge", prompt_tokens=[1] * 9, max_new_tokens=3))
        report = engine.run()
        assert len(report.requests) == 1

    def test_engine_builds_bounded_arena(self, model):
        """max_pages threads through to the self-built arena's budget."""
        engine = ServingEngine(
            model, max_active=4, page_size=4, max_pages=8,
            admission=ArenaBudgetAdmission(),
        )
        assert engine.arena is not None and engine.arena.max_pages == 8
        assert engine.arena.n_pages <= 8  # initial allocation respects it
        engine.submit_many(
            Request(f"b{i}", prompt_tokens=[i + 1] * 9, max_new_tokens=3)
            for i in range(5)
        )
        report = engine.run()
        assert report.max_concurrency == 2  # the 8-page budget caps the batch
        assert engine.arena.stats.pool_grows == 0
        assert len(report.requests) == 5

    def test_arena_budget_delegates_ordering_hooks_to_inner(self):
        """Wrapping a dynamic inner policy must keep it dynamic (and aged)."""
        from repro.serve import AgingPriorityAdmission

        inner = AgingPriorityAdmission(aging_steps=4)
        wrapped = ArenaBudgetAdmission(inner=inner)
        assert wrapped.dynamic
        engine = ServingEngine(StubModel(), max_active=1, admission=wrapped)
        handle = engine.submit(
            Request("r0", prompt_tokens=[0], max_new_tokens=1)
        )
        assert wrapped.admission_key_at(handle, 16) == inner.admission_key_at(
            handle, 16
        )
        assert wrapped.prefill_token_budget(engine) == inner.prefill_token_budget(
            engine
        )

    def test_arena_budget_validation_and_name(self):
        with pytest.raises(ValueError):
            ArenaBudgetAdmission(watermark=0.0)
        with pytest.raises(ValueError):
            ArenaBudgetAdmission(watermark=1.5)
        assert ArenaBudgetAdmission().name == "arena-budget(fifo)"
        inner = PriorityAdmission()
        assert ArenaBudgetAdmission(inner=inner).name == "arena-budget(priority)"

    def test_aging_priority_unstarves_the_patient(self):
        """A low-priority early arrival eventually out-ranks urgent traffic."""
        from repro.serve import AgingPriorityAdmission
        from repro.serve.policies import FCFSPolicy

        model = StubModel()
        engine = ServingEngine(
            model, max_active=1,
            admission=AgingPriorityAdmission(aging_steps=4),
            scheduling=FCFSPolicy(),
        )
        patient = engine.submit(
            Request("patient", prompt_tokens=[0], max_new_tokens=2, priority=0)
        )
        # a steady stream of higher-priority arrivals behind it; with plain
        # PriorityAdmission the patient would wait for every one of them
        vips = [
            engine.submit(
                Request(
                    f"vip{i}", prompt_tokens=[i % 8], max_new_tokens=2,
                    arrival_step=i, priority=1,
                )
            )
            for i in range(6)
        ]
        report = engine.run()
        by_id = {m.request_id: m for m in report.requests}
        # waited >= 4 steps -> effective priority 1 ties the VIPs, and the
        # earlier arrival then wins FIFO within the class
        assert by_id["patient"].first_token_step < max(
            by_id[f"vip{i}"].first_token_step for i in range(6)
        )
        assert all(h.done for h in [patient, *vips])

    def test_aging_policy_is_deterministic_and_orders_by_wait(self):
        from repro.serve import AgingPriorityAdmission

        policy = AgingPriorityAdmission(aging_steps=8)
        with pytest.raises(ValueError):
            AgingPriorityAdmission(aging_steps=0)
        assert policy.dynamic
        engine = ServingEngine(StubModel(), max_active=1,
                               admission=AgingPriorityAdmission(aging_steps=8))
        h0 = engine.submit(Request("a", prompt_tokens=[0], max_new_tokens=1))
        h1 = engine.submit(
            Request("b", prompt_tokens=[1], max_new_tokens=1, priority=2)
        )
        # static classes still rank first before anyone has waited
        assert policy.admission_key_at(h1, 0) < policy.admission_key_at(h0, 0)
        # 16 waited steps boost the priority-0 request past the fresh class-2
        assert policy.admission_key_at(h0, 16) < policy.admission_key_at(h1, 0)

    def test_make_policies_aging_pair(self):
        from repro.serve import AgingPriorityAdmission
        from repro.serve.policies import FCFSPolicy

        admission, scheduling = make_policies("aging")
        assert isinstance(admission, AgingPriorityAdmission)
        assert isinstance(scheduling, FCFSPolicy)
        assert not scheduling.preemptive

    def test_make_policies_rejects_unknown(self):
        with pytest.raises(KeyError):
            make_policies("round-robin")


# -- scheduling policies -------------------------------------------------------


class TestSchedulingPolicies:
    def test_priority_preemption_schedule(self):
        admission, scheduling = make_policies("priority")
        engine = ServingEngine(
            StubModel(), max_active=1, admission=admission, scheduling=scheduling
        )
        low = engine.submit(Request("low", prompt_tokens=[0], max_new_tokens=10))
        high = engine.submit(
            Request("high", prompt_tokens=[4], max_new_tokens=3,
                    arrival_step=2, priority=5)
        )
        report = engine.run()
        m = {r.request_id: r for r in report.requests}
        assert m["high"].admitted_step == 2  # evicted the slot on arrival
        assert m["low"].preemptions == 1
        assert low.generated_tokens == list(range(1, 11))
        assert high.generated_tokens == [5, 6, 7]
        assert report.policy["preemptions"] == 1
        assert report.total_preemptions == 1

    def test_equal_priority_never_preempts(self):
        admission, scheduling = make_policies("priority")
        engine = ServingEngine(
            StubModel(), max_active=1, admission=admission, scheduling=scheduling
        )
        engine.submit(Request("a", prompt_tokens=[0], max_new_tokens=6, priority=2))
        engine.submit(
            Request("b", prompt_tokens=[0], max_new_tokens=2,
                    arrival_step=1, priority=2)
        )
        report = engine.run()
        assert report.total_preemptions == 0

    def test_deadline_policy_counts_misses(self):
        engine = ServingEngine(StubModel(), max_active=1)
        engine.submit(
            Request("slow", prompt_tokens=[0], max_new_tokens=8, deadline_steps=3)
        )
        engine.submit(
            Request("fine", prompt_tokens=[0], max_new_tokens=2,
                    arrival_step=20, deadline_steps=10)
        )
        report = engine.run()
        m = {r.request_id: r for r in report.requests}
        assert m["slow"].deadline_misses == 1
        assert m["fine"].deadline_misses == 0
        assert report.total_deadline_misses == 1
        assert report.policy["deadline_misses"] == 1

    def test_deadline_preemption_prefers_no_deadline_victims(self):
        admission, scheduling = make_policies("deadline")
        engine = ServingEngine(
            StubModel(), max_active=2, admission=admission, scheduling=scheduling
        )
        eng_none = engine.submit(
            Request("none", prompt_tokens=[0], max_new_tokens=12)
        )
        eng_loose = engine.submit(
            Request("loose", prompt_tokens=[0], max_new_tokens=12,
                    deadline_steps=40)
        )
        engine.submit(
            Request("tight", prompt_tokens=[0], max_new_tokens=2,
                    arrival_step=3, deadline_steps=4)
        )
        engine.run()
        # the deadline-free session is evicted, the 40-step one survives
        assert eng_none.preemptions == 1
        assert eng_loose.preemptions == 0

    def test_refused_admission_rolls_back_eviction(self, model):
        """A victim is only preempted if its evicted capacity is used.

        ArenaBudgetAdmission + PriorityPolicy: the high-priority candidate's
        lifetime reservation exceeds the arena budget even after eviction, so
        admission refuses it -- the selected victim must keep its slot and KV
        (no discarded work, no idle slot) until capacity genuinely frees up.
        """
        config = model.config
        arena = PagedKVArena(
            config.n_layers, config.hidden_size, page_size=4,
            initial_pages=16, max_pages=16,
        )
        admission = ArenaBudgetAdmission(inner=PriorityAdmission())
        _, scheduling = make_policies("priority")
        engine = ServingEngine(
            model, max_active=2, arena=arena,
            admission=admission, scheduling=scheduling,
        )
        # two low-priority sessions, 4 pages lifetime each (8 reserved)
        lows = engine.submit_many(
            Request(f"low{i}", prompt_tokens=[i + 1] * 10, max_new_tokens=6)
            for i in range(2)
        )
        # high-priority arrival needing 13 pages: 4 (surviving low) + 13 > 16,
        # so even one eviction cannot make it admissible
        huge = engine.submit(
            Request("huge", prompt_tokens=[9] * 44, max_new_tokens=9,
                    arrival_step=1, priority=5)
        )
        engine.step()
        engine.step()  # the huge request is ready; eviction must roll back
        assert engine.last_step_stats["preempted"] == 0
        assert all(h.state is SessionState.ACTIVE for h in lows)
        assert all(h.preemptions == 0 for h in lows)
        assert huge.state is SessionState.QUEUED
        report = engine.run()
        assert len(report.requests) == 3  # everyone finishes eventually
        assert report.total_preemptions == 0  # rollback every contended step
        assert arena.stats.pool_grows == 0 and arena.stats.pages_in_use == 0

    def test_policies_reorder_service_not_content(self, model):
        requests = sample_requests(
            10,
            vocab_size=model.config.vocab_size,
            mean_interarrival=0.3,
            arrival_process="pareto",
            priority_levels=(0, 1, 2),
            deadline_slack=(1, 6),
            seed=5,
        )
        outcomes = {}
        for name in ("fcfs", "priority", "deadline"):
            admission, scheduling = make_policies(name)
            engine = ServingEngine(
                model, max_active=2, admission=admission, scheduling=scheduling
            )
            handles = engine.submit_many(requests)
            engine.run()
            outcomes[name] = [h.generated_tokens for h in handles]
        assert outcomes["fcfs"] == outcomes["priority"] == outcomes["deadline"]
        solo = [
            generate(model, r.prompt_tokens, max_new_tokens=r.max_new_tokens)
            for r in requests
        ]
        assert outcomes["fcfs"] == [g.generated_tokens for g in solo]


# -- traffic generators --------------------------------------------------------


class TestTrafficGenerators:
    def test_pareto_arrivals_reproducible_and_heavy_tailed(self):
        a = pareto_arrival_steps(200, 2.0, shape=1.5, seed=3)
        b = pareto_arrival_steps(200, 2.0, shape=1.5, seed=3)
        assert np.array_equal(a, b)
        assert (np.diff(a) >= 0).all()
        gaps = np.diff(a)
        # heavy tail: the max gap dwarfs the median gap
        assert gaps.max() >= 10 * max(1, int(np.median(gaps)))
        with pytest.raises(ValueError):
            pareto_arrival_steps(5, 1.0, shape=1.0)
        assert pareto_arrival_steps(4, 0.0).tolist() == [0] * 4

    def test_lognormal_arrivals_mean_roughly_matches(self):
        a = lognormal_arrival_steps(4000, 3.0, sigma=1.0, seed=1)
        assert (np.diff(a) >= 0).all()
        mean_gap = a[-1] / len(a)
        assert 2.0 < mean_gap < 4.0
        with pytest.raises(ValueError):
            lognormal_arrival_steps(5, 1.0, sigma=-1.0)

    def test_trace_replay_validates_and_floors(self):
        assert trace_arrival_steps([0.0, 1.9, 3.2]).tolist() == [0, 1, 3]
        with pytest.raises(ValueError):
            trace_arrival_steps([2.0, 1.0])
        with pytest.raises(ValueError):
            trace_arrival_steps([-1.0])

    def test_sample_priorities_weighted(self):
        p = sample_priorities(2000, levels=(0, 2), weights=(0.8, 0.2), seed=0)
        assert set(p.tolist()) == {0, 2}
        high_frac = float((p == 2).mean())
        assert 0.15 < high_frac < 0.25
        with pytest.raises(ValueError):
            sample_priorities(4, levels=())
        with pytest.raises(ValueError):
            sample_priorities(4, levels=(0, 1), weights=(1.0,))

    def test_sample_requests_with_priorities_and_deadlines(self):
        requests = sample_requests(
            16,
            vocab_size=32,
            arrival_process="lognormal",
            priority_levels=(0, 1),
            priority_weights=(0.5, 0.5),
            deadline_slack=(2, 5),
            seed=7,
        )
        assert any(r.priority == 1 for r in requests)
        for r in requests:
            assert r.deadline_steps is not None
            assert r.max_new_tokens + 2 <= r.deadline_steps <= r.max_new_tokens + 5

    def test_sample_requests_trace_replay(self):
        trace = [0, 0, 2, 5]
        requests = sample_requests(
            4, vocab_size=32, arrival_process="trace", arrival_trace=trace, seed=1
        )
        assert [r.arrival_step for r in requests] == trace
        with pytest.raises(ValueError):
            sample_requests(3, vocab_size=32, arrival_process="trace",
                            arrival_trace=trace)
        with pytest.raises(ValueError):
            sample_requests(3, vocab_size=32, arrival_process="trace")

    def test_default_draws_unchanged_by_new_knobs(self):
        """The pre-policy streams must stay byte-identical for old seeds."""
        old = sample_requests(8, vocab_size=64, seed=9)
        new = sample_requests(8, vocab_size=64, seed=9, arrival_process="poisson")
        for a, b in zip(old, new):
            assert a == b
            assert a.priority == 0 and a.deadline_steps is None

    def test_unknown_arrival_process_rejected(self):
        with pytest.raises(ValueError, match="unknown arrival process"):
            sample_requests(4, vocab_size=8, arrival_process="weibull")
