"""Golden regression tests for engine and serving counter accounting.

Each class runs one fixed, fully seeded workload and pins *every* counter:

* :class:`TestEngineGolden` -- repeated GEMMs through a deliberately
  undersized decoded-plane cache (so LRU eviction is exercised) plus single
  and batched BGPP selection, pinning :class:`repro.core.engine.EngineStats`;
* :class:`TestServingGolden` -- a fixed four-request scheduler run over the
  paged KV arena, pinning the ``ServingReport.to_json`` schema (including
  the arena counter block), the per-step stats dict, and the JSON round
  trip.  Every pinned value is derived from integer length accounting only
  (no request uses an EOS token), so the goldens are platform-independent.

Perf refactors must not silently change the accounting; if a change here is
intentional, the expected values below must be updated in the same commit
with an explanation.
"""

import json

import numpy as np
import pytest

from repro.core import BGPPConfig
from repro.core.engine import EngineStats, MCBPEngine
from repro.model import QuantizedTransformer, TransformerModel, get_model_config
from repro.serve import (
    ContinuousBatchingScheduler,
    Request,
    ServingEngine,
    ServingReport,
)
from repro.sparsity.synthetic import gaussian_int_weights

GOLDEN = {
    "gemm_calls": 10,
    "dense_macs": 35328,
    "brcr_additions": 79361,
    "weight_bits_raw": 184320,
    "weight_bits_compressed": 179040,
    "kv_bits_loaded": 7776,
    "kv_bits_dense": 30720,
    "keys_selected": 5,
    "keys_total": 240,
    "cache_hits": 1,
    "cache_misses": 9,
}


def run_fixed_workload() -> MCBPEngine:
    engine = MCBPEngine(
        group_size=4,
        weight_bits=8,
        bgpp_config=BGPPConfig(rounds=3, alpha=0.55, radius=3.0, score_scale=0.02),
        plane_cache_entries=2,  # three layers cycle through two slots -> evictions
    )
    engine.register_weight("wq", gaussian_int_weights((24, 96), seed=1))
    engine.register_weight("wk", gaussian_int_weights((24, 96), seed=2))
    engine.register_weight("ffn", gaussian_int_weights((32, 96), seed=3))
    rng = np.random.default_rng(42)
    for _ in range(3):
        x = rng.integers(-128, 128, size=96)
        engine.gemm("wq", x)
        engine.gemm("wk", x)
        engine.gemm("ffn", x)
    xb = rng.integers(-128, 128, size=(96, 4))
    engine.gemm("ffn", xb)  # the only lookup whose layer is still resident
    keys = gaussian_int_weights((48, 16), seed=4)
    queries = rng.integers(-128, 128, size=(4, 16))
    engine.select_keys(queries[0], keys)
    engine.select_keys(queries, keys)
    return engine


class TestEngineGolden:
    @pytest.fixture(scope="class")
    def engine(self):
        return run_fixed_workload()

    @pytest.mark.parametrize("counter,expected", sorted(GOLDEN.items()))
    def test_counter_pinned(self, engine, counter, expected):
        assert getattr(engine.stats, counter) == expected

    def test_decode_calls_track_cache_misses(self, engine):
        assert engine.codec.decode_calls == GOLDEN["cache_misses"]

    def test_derived_ratios_pinned(self, engine):
        assert engine.stats.compute_reduction == pytest.approx(3.561245448016028)
        assert engine.stats.weight_compression_ratio == pytest.approx(1.029490616621984)
        assert engine.stats.cache_hit_rate == pytest.approx(0.1)

    def test_steady_state_cache_eliminates_decodes(self):
        engine = MCBPEngine(plane_cache_entries=8)
        engine.register_weight("w", gaussian_int_weights((16, 64), seed=5))
        x = np.arange(64)
        for _ in range(6):
            engine.gemm("w", x)
        assert engine.codec.decode_calls == 1
        assert engine.stats.cache_misses == 1
        assert engine.stats.cache_hits == 5
        # weight traffic is charged once: hits fetch no compressed stream
        layer = engine._layers["w"]
        assert engine.stats.weight_bits_compressed == layer.compressed_bits

    def test_disabled_cache_restores_seed_accounting(self):
        engine = MCBPEngine(plane_cache_entries=0)
        engine.register_weight("w", gaussian_int_weights((16, 64), seed=5))
        x = np.arange(64)
        for _ in range(4):
            engine.gemm("w", x)
        assert engine.stats.cache_hits == 0
        assert engine.stats.cache_misses == 4
        assert engine.codec.decode_calls == 4
        layer = engine._layers["w"]
        assert engine.stats.weight_bits_compressed == 4 * layer.compressed_bits


class TestComputeReductionBitWidth:
    """compute_reduction must derive its dense baseline from weight_bits."""

    def test_four_bit_config_reports_four_bit_baseline(self):
        engine = MCBPEngine(group_size=4, weight_bits=4)
        engine.register_weight("w", gaussian_int_weights((16, 64), bits=4, seed=6))
        out = engine.gemm("w", np.arange(64))
        weights = engine.codec.decode(engine._layers["w"].encoded)
        assert np.array_equal(out, weights.astype(np.int64) @ np.arange(64))
        stats = engine.stats
        assert stats.compute_reduction == pytest.approx(
            (stats.dense_macs * 4.0) / stats.brcr_additions
        )

    def test_eight_bit_default_unchanged(self):
        stats = EngineStats(dense_macs=100, brcr_additions=200)
        assert stats.compute_reduction == pytest.approx(4.0)

    def test_reset_preserves_bit_width(self):
        engine = MCBPEngine(weight_bits=4)
        engine.reset_stats()
        assert engine.stats.weight_bits == 4


SERVING_GOLDEN = {
    "steps": 13,
    "total_tokens": 22,
    "max_concurrency": 2,
}

# ArenaStats.to_json() of the fixed run below; every value is a function of
# the requests' prompt/decode lengths and the admission schedule alone.
# Updated for the chunked batched prefill pipeline (PR 5): prompts now read
# the pool through gather_batch during their prefill step -- so prefill
# steps trade the old per-session view materialisations (view_bytes 133120
# -> 53248) for batched gather traffic (rebuilds 6 -> 10, bytes 143360 ->
# 245760), while every step-domain value (steps, tokens, page faults, peak
# occupancy) is unchanged.
ARENA_GOLDEN = {
    "page_size": 4,
    "n_pages": 64,
    "pages_in_use": 0,
    "peak_pages_in_use": 6,
    "page_faults": 11,
    "pages_freed": 11,
    "pool_grows": 0,
    "tokens_appended": 74,
    "sessions_opened": 4,
    "sessions_freed": 4,
    "gather_rebuilds": 10,
    "gather_incremental": 8,
    "gather_bytes_copied": 245760,
    "view_bytes_copied": 53248,
    # cross-request prefix cache counters (PR 6): the fixed run never enables
    # prefix_cache, so every counter is structurally zero -- the cache-off
    # engine must not touch the prefix index at all
    "prefix_hits": 0,
    "prefix_misses": 0,
    "prefix_tokens_reused": 0,
    "prefix_pages_shared": 0,
    "cow_copies": 0,
    "cached_idle_pages": 0,
    "prefix_evictions": 0,
    # snapshot preemption + KV dtype counters (PR 8): the fixed run uses
    # neither kv_snapshots nor int8 pages, so the counters are structurally
    # zero and the pool dtype reports full precision
    "snapshots_taken": 0,
    "snapshots_restored": 0,
    "snapshot_bytes": 0,
    "dequant_bytes": 0,
    # speculative decode counters (PR 10): the fixed run never passes
    # speculative=, so no draft rows are appended and none rolled back
    "rows_rolled_back": 0,
    "draft_rows_appended": 0,
    "kv_dtype": "fp",
    "occupancy": 0.0,
}

LAST_STEP_GOLDEN = {
    "step": 12,
    "emitted": 1,
    "admitted": 0,
    "preempted": 0,
    "decoded": 1,
    "prefill_rows": 0,
    "retired": 1,
    "active": 0,
    "queued": 0,
    "arena_pages_in_use": 0,
    "arena_page_faults": 11,
    "arena_gather_bytes_copied": 245760,
}

# per-policy metrics block of the FCFS/FIFO shim run (no preemption possible;
# the failure-model counters -- failed/timed_out/shed/retries/callback_errors,
# PR 7 -- are structurally zero on a fault-free run)
POLICY_GOLDEN = {
    "admission": "fifo",
    "scheduling": "fcfs",
    "preemptions": 0,
    "deadline_misses": 0,
    "cancelled": 0,
    "failed": 0,
    "timed_out": 0,
    "shed": 0,
    "retries": 0,
    "callback_errors": 0,
}

REPORT_JSON_KEYS = {
    "steps",
    "max_concurrency",
    "total_tokens",
    "throughput_tokens_per_step",
    "mean_latency_steps",
    "p95_latency_steps",
    "mean_queue_delay_steps",
    "truncated",
    "leftover_queued",
    "leftover_active",
    "arena",
    "policy",
    "requests",
}


def run_fixed_serving_workload():
    """Four fixed requests through two slots over a 4-token-page arena."""
    model = QuantizedTransformer(
        TransformerModel(get_model_config("tiny"), seed=0), seed=1
    )
    requests = [
        Request("g0", prompt_tokens=[1, 2, 3, 4, 5], max_new_tokens=6, arrival_step=0),
        Request("g1", prompt_tokens=[7, 8, 9], max_new_tokens=4, arrival_step=0),
        Request("g2", prompt_tokens=[11] * 9, max_new_tokens=5, arrival_step=2),
        Request("g3", prompt_tokens=[3, 1], max_new_tokens=7, arrival_step=3),
    ]
    scheduler = ContinuousBatchingScheduler(model, max_active=2, page_size=4)
    scheduler.submit_many(requests)
    report = scheduler.run()
    return scheduler, report


class TestServingGolden:
    @pytest.fixture(scope="class")
    def run(self):
        return run_fixed_serving_workload()

    @pytest.mark.parametrize("field,expected", sorted(SERVING_GOLDEN.items()))
    def test_report_field_pinned(self, run, field, expected):
        _, report = run
        assert getattr(report, field) == expected

    @pytest.mark.parametrize("counter,expected", sorted(ARENA_GOLDEN.items()))
    def test_arena_counter_pinned(self, run, counter, expected):
        _, report = run
        assert report.arena[counter] == expected

    def test_arena_schema_is_exactly_the_golden_keys(self, run):
        _, report = run
        assert set(report.arena) == set(ARENA_GOLDEN)

    def test_step_stats_dict_pinned(self, run):
        scheduler, _ = run
        assert scheduler.last_step_stats == LAST_STEP_GOLDEN

    def test_policy_block_pinned(self, run):
        _, report = run
        assert report.policy == POLICY_GOLDEN

    def test_cancelled_request_report_entry_pinned(self):
        """PR 8 satellite: ``cancel()`` stamps ``finished_step``.

        A cancelled request's handle must report a *defined* latency
        (previously ``finished_step`` stayed ``None`` and the cancelled
        handle's metrics claimed the request never finished).
        """
        model = QuantizedTransformer(
            TransformerModel(get_model_config("tiny"), seed=0), seed=1
        )
        engine = ServingEngine(model, max_active=2, page_size=4)
        victim = engine.submit(
            Request("gc0", prompt_tokens=[1, 2, 3, 4, 5], max_new_tokens=6)
        )
        engine.submit(Request("gc1", prompt_tokens=[7, 8, 9], max_new_tokens=4))
        engine.step()
        engine.step()
        assert engine.cancel(victim)
        report = engine.run()
        metrics = victim.metrics()
        assert metrics.outcome == "cancelled"
        assert metrics.finished_step == 2
        assert metrics.latency_steps == 2
        # cancelled rows stay out of the report's latency aggregates
        assert all(r.request_id != "gc0" for r in report.requests)
        assert report.policy["cancelled"] == 1

    def test_to_json_schema_and_round_trip(self, run):
        _, report = run
        payload = json.loads(json.dumps(report.to_json()))
        assert set(payload) == REPORT_JSON_KEYS
        rebuilt = ServingReport.from_json(payload)
        assert rebuilt.steps == report.steps
        assert rebuilt.max_concurrency == report.max_concurrency
        assert rebuilt.requests == report.requests
        assert rebuilt.arena == report.arena
        assert rebuilt.policy == report.policy
        assert rebuilt.summary() == report.summary()
        # a second round trip is a fixed point
        assert ServingReport.from_json(rebuilt.to_json()).to_json() == payload

    def test_legacy_payload_without_arena_still_loads(self, run):
        _, report = run
        payload = report.to_json()
        del payload["arena"]  # PR-2-era reports predate the arena block
        del payload["policy"]  # PR-3-era reports predate the policy block
        for entry in payload["requests"]:  # ...and the per-request counters
            del entry["priority"], entry["preemptions"], entry["deadline_misses"]
            # PR-4-era reports predate the TTFT queue/prefill split
            del entry["queue_steps"], entry["prefill_steps"]
        rebuilt = ServingReport.from_json(payload)
        assert rebuilt.arena is None
        assert rebuilt.policy is None
        assert [r.request_id for r in rebuilt.requests] == [
            r.request_id for r in report.requests
        ]
        assert all(r.preemptions == 0 for r in rebuilt.requests)
        # the split components default to None (unknown), not a fake zero
        assert all(r.queue_steps is None for r in rebuilt.requests)
        assert all(r.prefill_steps is None for r in rebuilt.requests)
        # new-era reports carry a consistent split
        assert all(
            r.queue_steps + r.prefill_steps == r.time_to_first_token_steps
            for r in report.requests
        )

    def test_pre_prefix_cache_arena_block_still_loads(self, run):
        """PR-5-era arena blocks predate the prefix-cache counters."""
        _, report = run
        payload = report.to_json()
        for key in (
            "prefix_hits",
            "prefix_misses",
            "prefix_tokens_reused",
            "prefix_pages_shared",
            "cow_copies",
            "cached_idle_pages",
            "prefix_evictions",
        ):
            del payload["arena"][key]
        rebuilt = ServingReport.from_json(payload)
        # the arena block is opaque pass-through: an old payload loads (and
        # re-serialises) without the counters, with no fabricated zeros
        assert "prefix_hits" not in rebuilt.arena
        assert rebuilt.arena["page_faults"] == ARENA_GOLDEN["page_faults"]
        assert rebuilt.to_json()["arena"] == payload["arena"]
        assert rebuilt.summary()  # summary() needs none of the new keys

    def test_prefix_cache_counters_survive_round_trip(self, run):
        """New-era payloads carry the counters through load/dump unchanged."""
        _, report = run
        payload = report.to_json()
        payload["arena"]["prefix_hits"] = 3
        payload["arena"]["prefix_tokens_reused"] = 24
        rebuilt = ServingReport.from_json(json.loads(json.dumps(payload)))
        assert rebuilt.arena["prefix_hits"] == 3
        assert rebuilt.arena["prefix_tokens_reused"] == 24
        assert rebuilt.to_json()["arena"] == payload["arena"]

    def test_from_json_ignores_unknown_keys(self, run):
        """Forward compat: newer writers may add blocks this reader predates."""
        _, report = run
        payload = report.to_json()
        payload["some_future_block"] = {"x": 1}
        for entry in payload["requests"]:
            entry["some_future_counter"] = 7
        rebuilt = ServingReport.from_json(payload)
        assert rebuilt.requests == report.requests
        assert rebuilt.arena == report.arena


class TestResetStatsCachePolicy:
    def test_warm_reset_measures_steady_state(self):
        engine = MCBPEngine()
        engine.register_weight("w", gaussian_int_weights((16, 64), seed=7))
        engine.gemm("w", np.arange(64))
        engine.reset_stats()
        engine.gemm("w", np.arange(64))
        assert engine.stats.cache_hits == 1
        assert engine.stats.weight_bits_compressed == 0  # no fetch in the window

    def test_cold_reset_restores_seed_accounting(self):
        engine = MCBPEngine()
        engine.register_weight("w", gaussian_int_weights((16, 64), seed=7))
        engine.gemm("w", np.arange(64))
        engine.reset_stats(clear_plane_cache=True)
        engine.gemm("w", np.arange(64))
        assert engine.stats.cache_misses == 1
        assert engine.stats.weight_compression_ratio > 1.0
