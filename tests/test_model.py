"""Unit and integration tests for the transformer substrate (repro.model)."""

import numpy as np
import pytest

from repro.core.bgpp import make_bgpp_predictor, make_value_topk_predictor
from repro.model import (
    MODEL_CONFIGS,
    KVCache,
    MultiHeadAttention,
    QuantizedTransformer,
    TransformerModel,
    causal_mask,
    generate,
    get_model_config,
    gelu,
    layer_norm,
    rms_norm,
    scaled_down_config,
    softmax,
    stage_gemm_macs,
)


class TestConfigs:
    def test_all_published_models_present(self):
        for name in ("Llama7B", "Llama13B", "Qwen7B", "Bloom1B7", "OPT1B3"):
            assert name in MODEL_CONFIGS

    def test_llama7b_shapes(self):
        cfg = get_model_config("Llama7B")
        assert cfg.hidden_size == 4096
        assert cfg.n_layers == 32
        assert cfg.head_dim == 128

    def test_parameter_count_order_of_magnitude(self):
        cfg = get_model_config("Llama7B")
        assert 5e9 < cfg.n_parameters < 9e9
        cfg13 = get_model_config("Llama13B")
        assert cfg13.n_parameters > cfg.n_parameters

    def test_kv_cache_bytes(self):
        cfg = get_model_config("tiny")
        per_token = 2 * cfg.n_layers * cfg.hidden_size
        assert cfg.kv_cache_bytes(10, batch=2) == per_token * 10 * 2

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            get_model_config("GPT5")

    def test_invalid_head_split_rejected(self):
        from repro.model.config import ModelConfig

        with pytest.raises(ValueError):
            ModelConfig("bad", hidden_size=65, n_layers=1, n_heads=2, ffn_hidden=4,
                        vocab_size=16)

    def test_scaled_down_config_divisible(self):
        mini = scaled_down_config("Llama7B", scale=32)
        assert mini.hidden_size % mini.n_heads == 0
        assert mini.n_layers <= 4


class TestLayers:
    def test_softmax_rows_sum_to_one(self):
        x = np.random.default_rng(0).normal(size=(4, 7))
        assert np.allclose(softmax(x).sum(axis=-1), 1.0)

    def test_softmax_handles_minus_inf(self):
        x = np.array([[0.0, -np.inf]])
        probs = softmax(x)
        assert probs[0, 1] == 0.0

    def test_gelu_at_zero(self):
        assert gelu(np.array([0.0]))[0] == pytest.approx(0.0)

    def test_layer_norm_statistics(self):
        x = np.random.default_rng(1).normal(3.0, 2.0, size=(5, 64))
        normed = layer_norm(x)
        assert np.allclose(normed.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(normed.std(axis=-1), 1.0, atol=1e-3)

    def test_rms_norm_scale(self):
        x = np.random.default_rng(2).normal(size=(3, 32))
        normed = rms_norm(x)
        assert np.allclose(np.sqrt((normed**2).mean(axis=-1)), 1.0, atol=1e-3)


class TestAttention:
    def test_causal_mask_square(self):
        mask = causal_mask(3, 3)
        assert mask.tolist() == [
            [True, False, False],
            [True, True, False],
            [True, True, True],
        ]

    def test_causal_mask_decode_step(self):
        # one new query attending to a 4-token cache: everything visible
        assert causal_mask(1, 4).all()

    def test_output_shape(self):
        attn = MultiHeadAttention(32, 4, seed=0)
        out = attn(np.random.default_rng(0).normal(size=(6, 32)))
        assert out.output.shape == (6, 32)
        assert out.selected_fraction == 1.0

    def test_kv_cache_accumulates(self):
        attn = MultiHeadAttention(16, 2, seed=1)
        cache = KVCache()
        attn(np.random.default_rng(1).normal(size=(3, 16)), cache=cache)
        assert cache.seq_len == 3
        attn(np.random.default_rng(2).normal(size=(1, 16)), cache=cache)
        assert cache.seq_len == 4

    def test_prefill_then_decode_matches_full_forward(self):
        """Decoding with a KV cache must equal processing the full sequence."""
        attn = MultiHeadAttention(16, 2, seed=3)
        rng = np.random.default_rng(3)
        x = rng.normal(size=(5, 16))
        full = attn(x).output

        cache = KVCache()
        prefill = attn(x[:4], cache=cache).output
        step = attn(x[4:5], cache=cache).output
        assert np.allclose(full[:4], prefill)
        assert np.allclose(full[4], step[0])

    def test_predictor_limits_keys(self):
        attn = MultiHeadAttention(16, 2, seed=4)
        x = np.random.default_rng(4).normal(size=(8, 16))
        predictor = make_value_topk_predictor(keep_fraction=0.5)
        out = attn(x, predictor=predictor)
        assert out.keys_attended < out.keys_total
        assert 0.0 < out.selected_fraction < 1.0

    def test_merged_context_shape(self):
        attn = MultiHeadAttention(16, 2, seed=5)
        x = np.random.default_rng(5).normal(size=(4, 16))
        ctx = attn.merged_context(attn.wq(x), attn.wk(x), attn.wv(x))
        assert ctx.shape == (4, 16)

    def test_invalid_hidden_heads(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(10, 3)


class TestTransformer:
    @pytest.fixture(scope="class")
    def tiny_model(self):
        return TransformerModel(get_model_config("tiny"), seed=0)

    def test_forward_logits_shape(self, tiny_model):
        logits, stats = tiny_model.forward([1, 2, 3])
        assert logits.shape == (3, tiny_model.config.vocab_size)
        assert stats.tokens_processed == 3

    def test_named_weight_matrices(self, tiny_model):
        mats = tiny_model.named_weight_matrices()
        assert "layer0.wq" in mats and "lm_head" in mats
        assert len(mats) == tiny_model.config.n_layers * 6 + 1

    def test_generation_prefill_decode_split(self, tiny_model):
        result = generate(tiny_model, [1, 2, 3, 4], max_new_tokens=5)
        assert len(result.generated_tokens) == 5
        assert result.prefill_stats.tokens_processed == 4
        assert len(result.decode_stats) == 4  # last token needs no extra step

    def test_generation_deterministic(self, tiny_model):
        a = generate(tiny_model, [5, 6, 7], max_new_tokens=3)
        b = generate(tiny_model, [5, 6, 7], max_new_tokens=3)
        assert a.generated_tokens == b.generated_tokens

    def test_generation_with_cache_matches_recompute(self, tiny_model):
        """Autoregressive decoding with KV cache must match full re-forwarding."""
        prompt = [1, 2, 3, 4, 5]
        result = generate(tiny_model, prompt, max_new_tokens=3)
        sequence = prompt + result.generated_tokens[:-1]
        logits, _ = tiny_model.forward(sequence)
        assert int(np.argmax(logits[-1])) == result.generated_tokens[-1]

    def test_generation_empty_prompt_rejected(self, tiny_model):
        with pytest.raises(ValueError):
            generate(tiny_model, [], max_new_tokens=1)

    def test_sparse_predictor_changes_attention_density(self, tiny_model):
        dense_logits, dense_stats = tiny_model.forward(list(range(1, 17)))
        predictor = make_bgpp_predictor(alpha=0.5)
        sparse_logits, sparse_stats = tiny_model.forward(
            list(range(1, 17)), predictor=predictor
        )
        assert sparse_stats.attention_sparsity > dense_stats.attention_sparsity
        # outputs stay correlated despite pruning
        cos = np.sum(dense_logits * sparse_logits) / (
            np.linalg.norm(dense_logits) * np.linalg.norm(sparse_logits)
        )
        assert cos > 0.8

    def test_stage_gemm_macs_scaling(self):
        cfg = get_model_config("Llama7B")
        short = stage_gemm_macs(cfg, 1024, 16)
        long = stage_gemm_macs(cfg, 4096, 16)
        assert long["prefill_linear_macs"] == pytest.approx(4 * short["prefill_linear_macs"])
        assert long["prefill_attention_macs"] > 4 * short["prefill_attention_macs"]


class TestQuantizedTransformer:
    @pytest.fixture(scope="class")
    def models(self):
        model = TransformerModel(get_model_config("tiny"), seed=0)
        quant = QuantizedTransformer(model, weight_bits=8, calibration_tokens=list(range(1, 33)))
        return model, quant

    def test_int8_fidelity_high(self, models):
        model, quant = models
        tokens = [1, 2, 3, 4, 5, 6]
        ref, _ = model.forward(tokens)
        out, _ = quant.forward(tokens)
        cos = np.sum(ref * out) / (np.linalg.norm(ref) * np.linalg.norm(out))
        assert cos > 0.99

    def test_int4_worse_than_int8(self, models):
        model, quant8 = models
        quant4 = QuantizedTransformer(model, weight_bits=4, calibration_tokens=list(range(1, 33)))
        tokens = [1, 2, 3, 4, 5, 6]
        ref, _ = model.forward(tokens)
        out8, _ = quant8.forward(tokens)
        out4, _ = quant4.forward(tokens)

        def cos(a, b):
            return np.sum(a * b) / (np.linalg.norm(a) * np.linalg.norm(b))

        assert cos(ref, out4) < cos(ref, out8)

    def test_quantized_weight_matrices_are_integers(self, models):
        _, quant = models
        mats = quant.quantized_weight_matrices()
        for mat in mats.values():
            assert np.issubdtype(mat.dtype, np.integer)
            assert np.abs(mat).max() <= 127

    def test_quantized_generation_runs(self, models):
        _, quant = models
        result = generate(quant, [1, 2, 3], max_new_tokens=2)
        assert len(result.generated_tokens) == 2
