"""Unit and property tests for bit-slice decomposition (repro.core.bitslice)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitslice import (
    BitSliceTensor,
    from_bitslices,
    int_range,
    mean_bit_sparsity,
    sign_magnitude_combine,
    sign_magnitude_split,
    slice_sparsity,
    to_bitslices,
    value_sparsity,
)


class TestIntRange:
    def test_int8_range(self):
        assert int_range(8) == (-128, 127)

    def test_int4_range(self):
        assert int_range(4) == (-8, 7)

    def test_rejects_tiny_widths(self):
        with pytest.raises(ValueError):
            int_range(1)


class TestSignMagnitude:
    def test_split_signs(self):
        values = np.array([-5, 0, 7, -1])
        sign, mag = sign_magnitude_split(values)
        assert sign.tolist() == [1, 0, 0, 1]
        assert mag.tolist() == [5, 0, 7, 1]

    def test_combine_is_inverse(self):
        values = np.array([-120, -1, 0, 3, 127])
        sign, mag = sign_magnitude_split(values)
        assert np.array_equal(sign_magnitude_combine(sign, mag), values)


class TestToFromBitslices:
    @pytest.mark.parametrize("fmt", ["sign_magnitude", "twos_complement"])
    def test_roundtrip_small_matrix(self, fmt):
        rng = np.random.default_rng(0)
        lo = -127 if fmt == "sign_magnitude" else -128
        values = rng.integers(lo, 128, size=(13, 17))
        slices = to_bitslices(values, bits=8, fmt=fmt)
        assert len(slices) == 8
        assert np.array_equal(from_bitslices(slices, fmt=fmt), values)

    def test_slices_are_binary(self):
        values = np.array([[-7, 3], [0, 127]])
        for plane in to_bitslices(values, bits=8):
            assert set(np.unique(plane)).issubset({0, 1})

    def test_known_decomposition_twos_complement(self):
        slices = to_bitslices(np.array([5]), bits=4, fmt="twos_complement")
        # 5 = 0101
        assert [int(s[0]) for s in slices] == [1, 0, 1, 0]

    def test_known_decomposition_sign_magnitude(self):
        slices = to_bitslices(np.array([-5]), bits=4, fmt="sign_magnitude")
        # magnitude 5 = 101, sign bit set
        assert [int(s[0]) for s in slices] == [1, 0, 1, 1]

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            to_bitslices(np.array([200]), bits=8)

    def test_sign_magnitude_rejects_min_int(self):
        # -128 is not representable in 8-bit sign-magnitude
        with pytest.raises(ValueError):
            to_bitslices(np.array([-128]), bits=8, fmt="sign_magnitude")

    def test_rejects_float_input(self):
        with pytest.raises(TypeError):
            to_bitslices(np.array([1.5]), bits=8)

    def test_rejects_unknown_format(self):
        with pytest.raises(ValueError):
            to_bitslices(np.array([1]), bits=8, fmt="gray_code")

    def test_empty_slices_rejected(self):
        with pytest.raises(ValueError):
            from_bitslices([])

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.integers(min_value=-127, max_value=127), min_size=1, max_size=64),
        st.sampled_from(["sign_magnitude", "twos_complement"]),
    )
    def test_roundtrip_property(self, values, fmt):
        arr = np.array(values)
        slices = to_bitslices(arr, bits=8, fmt=fmt)
        assert np.array_equal(from_bitslices(slices, fmt=fmt), arr)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=-7, max_value=7), min_size=1, max_size=32))
    def test_roundtrip_int4(self, values):
        arr = np.array(values)
        slices = to_bitslices(arr, bits=4)
        assert np.array_equal(from_bitslices(slices), arr)


class TestSparsityMetrics:
    def test_value_sparsity_counts_zeros(self):
        assert value_sparsity(np.array([0, 1, 0, 2])) == pytest.approx(0.5)

    def test_value_sparsity_empty(self):
        assert value_sparsity(np.array([])) == 0.0

    def test_slice_sparsity_all_zero_plane(self):
        planes = [np.zeros((4, 4), dtype=np.uint8), np.ones((4, 4), dtype=np.uint8)]
        assert slice_sparsity(planes) == [1.0, 0.0]

    def test_bit_sparsity_exceeds_value_sparsity_for_gaussian(self):
        from repro.sparsity.synthetic import gaussian_int_weights

        weights = gaussian_int_weights((64, 512), seed=1)
        assert mean_bit_sparsity(weights) > value_sparsity(weights)

    def test_mean_bit_sparsity_small_values(self):
        # value 1 has only the LSB set: planes 2..7 are fully sparse
        weights = np.ones((4, 4), dtype=np.int64)
        bs = mean_bit_sparsity(weights, bits=8)
        assert bs == pytest.approx(6.0 / 7.0)


class TestBitSliceTensor:
    def test_reconstruct_matches_values(self):
        rng = np.random.default_rng(3)
        values = rng.integers(-127, 128, size=(8, 8))
        tensor = BitSliceTensor.from_values(values)
        assert np.array_equal(tensor.reconstruct(), values)

    def test_magnitude_and_sign_plane_split(self):
        tensor = BitSliceTensor.from_values(np.array([[-3, 3]]))
        assert len(tensor.magnitude_slices) == 7
        assert tensor.sign_plane.tolist() == [[1, 0]]

    def test_plane_sparsity_order_lsb_first(self):
        # value 64 = only bit 6 set
        tensor = BitSliceTensor.from_values(np.full((2, 2), 64))
        sparsity = tensor.plane_sparsity()
        assert sparsity[6] == 0.0
        assert all(s == 1.0 for i, s in enumerate(sparsity[:-1]) if i != 6)

    def test_twos_complement_tensor_has_no_sign_plane_accessor(self):
        tensor = BitSliceTensor.from_values(np.array([[1]]), fmt="twos_complement")
        with pytest.raises(ValueError):
            _ = tensor.sign_plane
        with pytest.raises(ValueError):
            _ = tensor.magnitude_slices

    def test_shape_property(self):
        tensor = BitSliceTensor.from_values(np.zeros((3, 5), dtype=np.int64))
        assert tensor.shape == (3, 5)
