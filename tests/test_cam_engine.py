"""Tests for the CAM match unit and the integrated MCBP engine."""

import numpy as np
import pytest

from repro.core.brcr import column_codes
from repro.core.cam import CAMMatchUnit
from repro.core.engine import MCBPEngine
from repro.core.bgpp import BGPPConfig
from repro.sparsity.synthetic import gaussian_int_weights


class TestCAMMatchUnit:
    def test_match_table_consistent_with_codes(self):
        rng = np.random.default_rng(0)
        group = rng.integers(0, 2, size=(4, 48))
        cam = CAMMatchUnit(group_size=4)
        cam.load_group(group)
        codes = column_codes(group)
        table = cam.match_table()
        for key, indices in table.items():
            assert (codes[indices] == key).all()
        # every non-zero column appears exactly once across the table
        total = sum(len(v) for v in table.values())
        assert total == int((codes != 0).sum())

    def test_zero_key_clock_gated(self):
        group = np.zeros((4, 8), dtype=np.uint8)
        cam = CAMMatchUnit(group_size=4)
        cam.load_group(group)
        bitmap = cam.search(0)
        assert not bitmap.any()
        assert cam.stats.gated_searches == 1
        assert cam.stats.searches == 0

    def test_search_counts_cycles(self):
        rng = np.random.default_rng(1)
        group = rng.integers(0, 2, size=(4, 128))
        cam = CAMMatchUnit(group_size=4, capacity=64)
        cam.load_group(group)
        list(cam.enumerate_matches())
        assert cam.stats.searches == 15  # 2^4 - 1 non-zero keys
        assert cam.stats.load_cycles == 2  # 128 columns / 64 capacity

    def test_rejects_bad_shapes(self):
        cam = CAMMatchUnit(group_size=4)
        with pytest.raises(ValueError):
            cam.load_group(np.zeros((3, 8), dtype=np.uint8))
        with pytest.raises(ValueError):
            CAMMatchUnit(group_size=0)

    def test_search_key_out_of_range(self):
        cam = CAMMatchUnit(group_size=2)
        cam.load_group(np.zeros((2, 4), dtype=np.uint8))
        with pytest.raises(ValueError):
            cam.search(4)

    def test_reset_stats(self):
        cam = CAMMatchUnit(group_size=2)
        cam.load_group(np.ones((2, 4), dtype=np.uint8))
        cam.search(3)
        cam.reset_stats()
        assert cam.stats.searches == 0
        assert cam.stats.total_cycles == 0


class TestMCBPEngine:
    @pytest.fixture()
    def engine(self):
        return MCBPEngine(group_size=4, weight_bits=8)

    def test_gemm_exact(self, engine):
        weights = gaussian_int_weights((24, 96), seed=0)
        x = np.random.default_rng(1).integers(-128, 128, size=96)
        engine.register_weight("proj", weights)
        out = engine.gemm("proj", x)
        assert np.array_equal(out, weights.astype(np.int64) @ x)

    def test_gemm_matrix_activations(self, engine):
        weights = gaussian_int_weights((16, 64), seed=2)
        x = np.random.default_rng(3).integers(-64, 64, size=(64, 4))
        engine.register_weight("proj", weights)
        out = engine.gemm("proj", x)
        assert np.array_equal(out, weights.astype(np.int64) @ x)

    def test_unregistered_layer_raises(self, engine):
        with pytest.raises(KeyError):
            engine.gemm("missing", np.zeros(4, dtype=np.int64))

    def test_stats_accumulate(self, engine):
        weights = gaussian_int_weights((32, 128), seed=4)
        x = np.random.default_rng(5).integers(-128, 128, size=128)
        engine.register_weight("proj", weights)
        engine.gemm("proj", x)
        stats = engine.stats
        assert stats.gemm_calls == 1
        assert stats.dense_macs == 32 * 128
        assert stats.compute_reduction > 1.0
        assert stats.weight_compression_ratio > 1.0

    def test_select_keys_traffic_accounting(self, engine):
        keys = gaussian_int_weights((64, 32), seed=6)
        q = np.random.default_rng(7).integers(-128, 128, size=32)
        result = engine.select_keys(q, keys)
        assert result.kv_bits_loaded == engine.stats.kv_bits_loaded
        assert engine.stats.kv_traffic_fraction <= 1.0
        assert engine.stats.attention_keep_fraction <= 1.0

    def test_sparse_attention_scores_match_exact_on_selected(self, engine):
        keys = gaussian_int_weights((48, 16), seed=8)
        q = np.random.default_rng(9).integers(-64, 64, size=16)
        scores, result = engine.sparse_attention_scores(q, keys)
        exact = keys.astype(np.int64) @ q
        for idx in result.selected:
            assert scores[idx] == exact[idx]
        unselected = np.setdiff1d(np.arange(48), result.selected)
        assert np.isinf(scores[unselected]).all()

    def test_reset_stats(self, engine):
        weights = gaussian_int_weights((8, 32), seed=10)
        engine.register_weight("p", weights)
        engine.gemm("p", np.ones(32, dtype=np.int64))
        engine.reset_stats()
        assert engine.stats.gemm_calls == 0

    def test_layer_names(self, engine):
        engine.register_weight("b", gaussian_int_weights((4, 16), seed=11))
        engine.register_weight("a", gaussian_int_weights((4, 16), seed=12))
        assert engine.layer_names() == ["a", "b"]

    def test_engine_matches_accelerator_style_reduction(self):
        """Functional engine reductions land in the same range the profile measures."""
        from repro.workloads import profile_model

        engine = MCBPEngine()
        weights = gaussian_int_weights((64, 2048), seed=13)
        x = np.random.default_rng(14).integers(-128, 128, size=2048)
        engine.register_weight("w", weights)
        engine.gemm("w", x)
        profile = profile_model("Llama7B")
        assert engine.stats.compute_reduction == pytest.approx(
            profile.brcr_reduction, rel=0.5
        )
