"""Fault-injection, hardened-lifecycle and chaos-fuzz tests (PR 7).

Covers the deterministic :class:`FaultInjector` machinery, the engine's
failure isolation / retry / timeout / shedding / drain-shutdown paths, the
callback-containment and truncated-run bugfixes, and the derandomized chaos
fuzz the CI fuzz step runs: >= 20 seeded mixed fault plans over a real
quantised transformer, asserting the engine never raises, every request
reaches exactly one terminal state, recovered token streams are
bit-identical to a fault-free reference, and the arena's books balance on
every trace.
"""

import warnings

import numpy as np
import pytest

from repro.model import (
    QuantizedTransformer,
    TransformerModel,
    generate,
    get_model_config,
)
from repro.model.generation import KVCorruptionError
from repro.serve import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    LoadShedWatchdog,
    PagedKVArena,
    Request,
    ServingEngine,
    SessionState,
    TERMINAL_STATES,
)
from repro.serve.session import GenerationSession
from repro.workloads import sample_requests


class StubModel:
    """Deterministic O(1) stand-in: next token = last + 1 (mod vocab)."""

    def __init__(self, vocab: int = 16):
        self.vocab = vocab
        self.forward_calls = 0

    def new_cache(self):
        return []

    def forward(self, token_ids, caches=None, predictor=None):
        from repro.model.transformer import ForwardStats

        self.forward_calls += 1
        logits = np.zeros((len(token_ids), self.vocab))
        logits[-1, (int(token_ids[-1]) + 1) % self.vocab] = 1.0
        n = len(token_ids)
        return logits, ForwardStats(keys_attended=n, keys_total=n, tokens_processed=n)


@pytest.fixture(scope="module")
def model():
    return QuantizedTransformer(
        TransformerModel(get_model_config("tiny"), seed=0), seed=1
    )


# -- FaultSpec / FaultPlan / FaultInjector ------------------------------------


class TestInjector:
    def test_spec_validation(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec(site="gpu.meltdown", probability=0.5)
        with pytest.raises(ValueError, match="could never fire"):
            FaultSpec(site="arena.alloc")
        with pytest.raises(ValueError):
            FaultSpec(site="arena.alloc", probability=1.5)
        with pytest.raises(ValueError):
            FaultSpec(site="arena.alloc", probability=0.5, max_fires=0)
        with pytest.raises(ValueError):
            FaultSpec(site="arena.alloc", at_step=-1)

    def test_scheduled_spec_fires_exactly_at_step(self):
        plan = FaultPlan(specs=(FaultSpec(site="session.compute", at_step=3),))
        injector = FaultInjector(plan)
        fired = [
            injector.fires("session.compute", "r", step) for step in range(6)
        ]
        assert fired == [False, False, False, True, False, False]
        assert injector.total_fires == 1

    def test_request_pinned_spec_ignores_other_requests(self):
        plan = FaultPlan(
            specs=(FaultSpec(site="arena.alloc", at_step=0, request_id="victim"),)
        )
        injector = FaultInjector(plan)
        assert not injector.fires("arena.alloc", "bystander", 0)
        assert injector.fires("arena.alloc", "victim", 0)

    def test_max_fires_caps_activations(self):
        plan = FaultPlan(
            specs=(FaultSpec(site="session.compute", probability=1.0, max_fires=2),)
        )
        injector = FaultInjector(plan)
        fired = [injector.fires("session.compute", "r", s) for s in range(5)]
        assert fired == [True, True, False, False, False]

    def test_probabilistic_stream_is_deterministic_and_resettable(self):
        plan = FaultPlan.uniform(0.3, seed=7)
        a = FaultInjector(plan)
        b = FaultInjector(plan)
        opportunities = [
            (site, f"r{i % 3}", i) for i in range(40) for site in ("arena.alloc",)
        ]
        trace_a = [a.fires(*op) for op in opportunities]
        trace_b = [b.fires(*op) for op in opportunities]
        assert trace_a == trace_b
        assert any(trace_a) and not all(trace_a)
        a.reset()
        assert [a.fires(*op) for op in opportunities] == trace_a

    def test_specs_draw_independent_streams(self):
        # evaluating all specs (no short-circuit) keeps each stream a pure
        # function of the opportunity sequence, not of sibling outcomes
        solo = FaultInjector(
            FaultPlan(specs=(FaultSpec(site="arena.alloc", probability=0.5),), seed=3)
        )
        paired = FaultInjector(
            FaultPlan(
                specs=(
                    FaultSpec(site="arena.alloc", probability=0.5),
                    FaultSpec(site="arena.alloc", probability=0.9),
                ),
                seed=3,
            )
        )
        for step in range(30):
            solo.fires("arena.alloc", "r", step)
            paired.fires("arena.alloc", "r", step)
        assert paired.spec_fires[0] == solo.spec_fires[0]


# -- watchdog hysteresis -------------------------------------------------------


class TestWatchdog:
    def test_queue_depth_hysteresis(self):
        dog = LoadShedWatchdog(queue_high=10, queue_low=3, failure_high=100)
        assert not dog.update(10, step=0)  # at the threshold: not over it
        assert dog.update(11, step=1)
        assert dog.update(5, step=2)  # above queue_low: still shedding
        assert not dog.update(3, step=3)
        assert dog.shed_engagements == 1

    def test_failure_rate_trigger_and_window_expiry(self):
        dog = LoadShedWatchdog(queue_high=100, failure_window=4, failure_high=2)
        dog.record_failure(0)
        dog.record_failure(1)
        assert dog.update(0, step=1)  # two failures in window: engage
        assert dog.update(0, step=3)  # burst still in window: keep shedding
        # burst decayed to <= failure_high // 2: hysteresis releases
        assert not dog.update(0, step=4)

    def test_shed_excess_and_throttle(self):
        dog = LoadShedWatchdog(
            queue_high=8, queue_low=2, throttled_prefill_budget=4
        )
        assert dog.shed_excess(20) == 0  # not shedding yet
        dog.update(20, step=0)
        assert dog.shed_excess(20) == 12
        assert dog.throttle(None) == 4
        assert dog.throttle(64) == 4
        assert dog.throttle(2) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            LoadShedWatchdog(queue_high=4, queue_low=5)
        with pytest.raises(ValueError):
            LoadShedWatchdog(throttled_prefill_budget=0)


# -- failure isolation + retry ------------------------------------------------


class TestRetryAndIsolation:
    def test_compute_fault_retries_bit_identically(self, model):
        vocab = model.config.vocab_size
        prompt = [3, 5, 7]
        reference = generate(model, prompt, max_new_tokens=8).generated_tokens
        plan = FaultPlan(
            specs=(
                FaultSpec(site="session.compute", at_step=2, request_id="victim"),
            )
        )
        engine = ServingEngine(model, max_active=4, faults=plan)
        victim = engine.submit(Request("victim", prompt, max_new_tokens=8))
        other = engine.submit(
            Request("other", [1, 2 % vocab], max_new_tokens=8)
        )
        report = engine.run()
        assert victim.session.state is SessionState.FINISHED
        assert victim.session.retries == 1
        assert victim.generated_tokens == reference
        assert other.session.state is SessionState.FINISHED
        assert report.policy["retries"] == 1
        assert report.policy["failed"] == 0
        # the faulted step committed its sibling: the run is longer, not torn
        assert {m.request_id for m in report.requests} == {"victim", "other"}

    def test_fault_on_one_row_commits_siblings_same_step(self, model):
        plan = FaultPlan(
            specs=(
                FaultSpec(site="session.compute", at_step=1, request_id="victim"),
            )
        )
        engine = ServingEngine(model, max_active=4, faults=plan)
        victim = engine.submit(Request("victim", [2, 4], max_new_tokens=4))
        other = engine.submit(Request("other", [6, 8], max_new_tokens=4))
        engine.step()  # step 0: both admit + first token
        n_other = len(other.generated_tokens)
        engine.step()  # step 1: victim quarantined, other commits
        assert len(other.generated_tokens) == n_other + 1
        assert victim.session.state is SessionState.PREEMPTED

    def test_exhausted_retries_resolve_failed_with_post_mortem(self, model):
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    site="session.compute", probability=1.0, request_id="victim"
                ),
            )
        )
        engine = ServingEngine(model, max_active=2, faults=plan, max_retries=2)
        victim = engine.submit(Request("victim", [1, 2], max_new_tokens=4))
        report = engine.run()
        assert victim.session.state is SessionState.FAILED
        assert victim.done
        (metrics,) = report.requests
        assert metrics.outcome == "failed"
        assert metrics.retries == 2
        assert metrics.failure["site"] == "session.compute"
        assert metrics.failure["retries"] == 2
        assert report.policy["failed"] == 1

    def test_corrupted_append_detected_by_real_integrity_check(self, model):
        # the garbage row really lands in the layer-0 cache; verify_kv_rows
        # (genuine machinery) is what catches it and triggers the retry
        prompt = [9, 11]
        reference = generate(model, prompt, max_new_tokens=6).generated_tokens
        plan = FaultPlan(
            specs=(FaultSpec(site="session.append", at_step=1, request_id="r"),)
        )
        engine = ServingEngine(model, max_active=2, faults=plan)
        handle = engine.submit(Request("r", prompt, max_new_tokens=6))
        engine.run()
        assert handle.session.state is SessionState.FINISHED
        assert handle.session.retries == 1
        assert handle.generated_tokens == reference

    def test_verify_kv_rows_raises_on_mismatch(self, model):
        session = GenerationSession(Request("r", [1, 2], max_new_tokens=4), model)
        session.admit(step=0)  # caches hold exactly the 2 prompt rows
        session.decoder.verify_kv_rows(2)  # clean cache passes
        session._corrupt_kv_append()  # garbage row lands in layer 0
        with pytest.raises(KVCorruptionError, match="layer 0 holds 3"):
            session.decoder.verify_kv_rows(2)

    def test_arena_alloc_fault_quarantines_before_forward(self, model):
        plan = FaultPlan(
            specs=(FaultSpec(site="arena.alloc", at_step=0, request_id="r"),)
        )
        engine = ServingEngine(model, max_active=2, faults=plan)
        handle = engine.submit(Request("r", [4, 6], max_new_tokens=4))
        engine.step()
        # quarantined at schedule time: no token emitted, requeued with backoff
        assert handle.generated_tokens == []
        assert handle.session.retries == 1
        report = engine.run()
        assert handle.session.state is SessionState.FINISHED
        assert handle.generated_tokens == generate(
            model, [4, 6], max_new_tokens=4
        ).generated_tokens
        assert report.arena["pages_in_use"] == 0

    def test_backoff_is_capped_exponential(self, model):
        engine = ServingEngine(
            model,
            max_active=2,
            faults=FaultPlan(),
            max_retries=10,
            retry_backoff_steps=2,
            retry_backoff_cap=8,
        )
        handle = engine.submit(Request("r", [1], max_new_tokens=2))
        engine.step()
        delays = []
        for _ in range(4):
            engine._quarantine(handle, RuntimeError("boom"), engine.current_step)
            delays.append(engine._pending[0][0] - engine.current_step)
            heapq_entry = engine._pending.pop(0)
            handle.session.state = SessionState.PREFILLING  # re-arm for next
        assert delays == [2, 4, 8, 8]


# -- timeouts ------------------------------------------------------------------


class TestTimeouts:
    def test_timeout_resolves_timed_out_and_frees_pages(self, model):
        engine = ServingEngine(model, max_active=1)
        slow = engine.submit(
            Request("slow", [1, 2], max_new_tokens=64, timeout_steps=3)
        )
        queued = engine.submit(
            Request("starved", [3], max_new_tokens=64, arrival_step=0,
                    timeout_steps=2)
        )
        report = engine.run(max_steps=80)
        assert slow.session.state is SessionState.TIMED_OUT
        # never admitted (slot held by `slow` past its own timeout): still
        # reaped from the queue without ever taking pages
        assert queued.session.state is SessionState.TIMED_OUT
        assert queued.session.admitted_step is None
        by_id = {m.request_id: m for m in report.requests}
        assert by_id["slow"].outcome == "timed_out"
        assert by_id["slow"].n_generated > 0  # partial progress is kept
        assert by_id["starved"].queue_delay_steps is None
        assert report.policy["timed_out"] == 2
        assert report.arena["pages_in_use"] == 0

    def test_request_finishing_at_timeout_step_makes_it(self, model):
        engine = ServingEngine(model, max_active=1)
        # admitted at step 0, one token per step: finishes at step 2
        handle = engine.submit(Request("r", [1], max_new_tokens=3, timeout_steps=2))
        engine.run()
        assert handle.session.state is SessionState.FINISHED

    def test_timeout_validation(self):
        with pytest.raises(ValueError, match="timeout_steps"):
            Request("r", [1], timeout_steps=0)


# -- load shedding -------------------------------------------------------------


class TestShedding:
    def test_watchdog_sheds_lowest_priority_youngest_first(self, model):
        engine = ServingEngine(
            model,
            max_active=1,
            watchdog=LoadShedWatchdog(queue_high=2, queue_low=1),
        )
        keep = engine.submit(Request("keep", [1], max_new_tokens=2, priority=5))
        low_old = engine.submit(Request("low-old", [2], max_new_tokens=2))
        low_young = engine.submit(Request("low-young", [3], max_new_tokens=2))
        extra = engine.submit(Request("extra", [4], max_new_tokens=2))
        report = engine.run()
        # queue depth 4 > high=2: shed 2, youngest of the lowest class first
        shed = {h.request_id for h in (low_old, low_young, extra)
                if h.session.state is SessionState.SHED}
        assert shed == {"low-young", "extra"}
        assert keep.session.state is SessionState.FINISHED
        assert low_old.session.state is SessionState.FINISHED
        assert report.policy["shed"] == 2
        by_id = {m.request_id: m for m in report.requests}
        assert by_id["extra"].outcome == "shed"
        assert by_id["extra"].n_generated == 0

    def test_throttled_prefill_budget_while_shedding(self, model):
        dog = LoadShedWatchdog(queue_high=1, queue_low=0,
                               throttled_prefill_budget=1)
        engine = ServingEngine(model, max_active=2, watchdog=dog)
        engine.submit(Request("a", list(range(1, 7)), max_new_tokens=2))
        engine.submit(Request("b", list(range(7, 13)), max_new_tokens=2))
        engine.submit(Request("c", [13], max_new_tokens=2))
        engine.step()
        if dog.shedding:
            # throttled: at most 1 prefill row entered the fused pass
            assert engine.last_step_stats["prefill_rows"] <= 1


# -- terminal-state semantics (satellite) --------------------------------------


class TestTerminalSemantics:
    def test_cancel_on_terminal_handle_is_noop_false(self, model):
        completions = []
        engine = ServingEngine(model, max_active=2)
        handle = engine.submit(
            Request("r", [1, 2], max_new_tokens=2),
            on_complete=lambda h, m: completions.append(m.request_id),
        )
        engine.run()
        assert handle.session.state is SessionState.FINISHED
        assert completions == ["r"]
        arena_freed = engine.arena.stats.pages_freed
        assert engine.cancel(handle) is False  # no-op on terminal
        assert engine.cancel(handle) is False
        assert completions == ["r"]  # no double callback
        assert engine.arena.stats.pages_freed == arena_freed  # no double free
        assert handle.session.state is SessionState.FINISHED

    def test_cancel_on_cancelled_handle_is_noop_false(self, model):
        engine = ServingEngine(model, max_active=2)
        handle = engine.submit(Request("r", [1], max_new_tokens=8))
        assert engine.cancel(handle) is True
        assert engine.cancel(handle) is False
        assert engine.run().policy["cancelled"] == 1

    def test_terminal_callback_fires_exactly_once_for_failures(self, model):
        completions = []
        plan = FaultPlan(
            specs=(FaultSpec(site="session.compute", probability=1.0),)
        )
        engine = ServingEngine(model, max_active=2, faults=plan, max_retries=1)
        engine.submit(
            Request("r", [1, 2], max_new_tokens=4),
            on_complete=lambda h, m: completions.append(m.outcome),
        )
        engine.run()
        assert completions == ["failed"]

    def test_every_request_reaches_exactly_one_terminal_state(self, model):
        # exercised harder by the chaos fuzz below; this is the focused pin
        engine = ServingEngine(model, max_active=1)
        handles = [
            engine.submit(Request(f"r{i}", [i + 1], max_new_tokens=2))
            for i in range(3)
        ]
        engine.cancel(handles[2])
        engine.run()
        states = [h.session.state for h in handles]
        assert all(s in TERMINAL_STATES for s in states)
        assert states[2] is SessionState.CANCELLED


# -- callback containment (satellite bugfix) -----------------------------------


class TestCallbackContainment:
    def test_raising_on_token_is_contained_and_detached(self, model):
        calls = []

        def bad_cb(handle, token, step):
            calls.append(token)
            raise RuntimeError("user code exploded")

        engine = ServingEngine(model, max_active=2)
        victim = engine.submit(
            Request("victim", [1, 2], max_new_tokens=6), on_token=bad_cb
        )
        other = engine.submit(Request("other", [3, 4], max_new_tokens=6))
        with pytest.warns(RuntimeWarning, match="on_token callback"):
            report = engine.run()
        assert len(calls) == 1  # detached after the first raise
        assert victim.on_token is None
        # the step stayed atomic: both requests finished with full streams
        assert victim.session.state is SessionState.FINISHED
        assert other.session.state is SessionState.FINISHED
        assert len(victim.generated_tokens) == 6
        assert report.policy["callback_errors"] == 1

    def test_raising_on_complete_is_contained(self, model):
        def bad_complete(handle, metrics):
            raise ValueError("boom")

        engine = ServingEngine(model, max_active=2)
        handle = engine.submit(
            Request("r", [1], max_new_tokens=2), on_complete=bad_complete
        )
        with pytest.warns(RuntimeWarning, match="on_complete callback"):
            report = engine.run()
        assert handle.session.state is SessionState.FINISHED
        assert not report.truncated
        assert report.policy["callback_errors"] == 1

    def test_warning_fires_once_per_engine(self, model):
        def bad_cb(handle, token, step):
            raise RuntimeError("boom")

        engine = ServingEngine(model, max_active=4)
        for i in range(3):
            engine.submit(
                Request(f"r{i}", [i + 1], max_new_tokens=2), on_token=bad_cb
            )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            report = engine.run()
        runtime = [w for w in caught if issubclass(w.category, RuntimeWarning)]
        assert len(runtime) == 1
        assert report.policy["callback_errors"] == 3

    def test_injected_callback_fault_exercises_containment(self, model):
        tokens = []
        plan = FaultPlan(
            specs=(FaultSpec(site="callback.on_token", at_step=1,
                             request_id="r"),)
        )
        engine = ServingEngine(model, max_active=2, faults=plan)
        handle = engine.submit(
            Request("r", [1, 2], max_new_tokens=6),
            on_token=lambda h, t, s: tokens.append(t),
        )
        with pytest.warns(RuntimeWarning):
            engine.run()
        # one dispatch (step 1's) was killed by the injection; the request
        # itself is unaffected and the callback was detached afterwards
        assert handle.session.state is SessionState.FINISHED
        assert len(handle.generated_tokens) == 6
        assert tokens == handle.generated_tokens[:1]


# -- drain / shutdown ----------------------------------------------------------


class TestDrainShutdown:
    def test_drain_serves_backlog_and_closes_submissions(self, model):
        engine = ServingEngine(model, max_active=2)
        handles = [
            engine.submit(Request(f"r{i}", [i + 1, i + 2], max_new_tokens=4))
            for i in range(5)
        ]
        report = engine.drain()
        assert all(h.session.state is SessionState.FINISHED for h in handles)
        assert not report.truncated
        assert report.arena["pages_in_use"] == 0
        assert report.arena["page_faults"] == report.arena["pages_freed"]
        with pytest.raises(RuntimeError, match="closed"):
            engine.submit(Request("late", [1], max_new_tokens=1))

    def test_shutdown_sheds_everything_with_balanced_books(self, model):
        completions = []
        engine = ServingEngine(model, max_active=2)
        handles = [
            engine.submit(
                Request(f"r{i}", [i + 1, i + 2], max_new_tokens=32),
                on_complete=lambda h, m: completions.append(m.request_id),
            )
            for i in range(4)
        ]
        engine.step()
        engine.step()
        report = engine.shutdown()
        assert all(h.done for h in handles)
        assert not engine.has_work
        assert sorted(completions) == [f"r{i}" for i in range(4)]
        assert report.arena["pages_in_use"] == 0
        assert report.arena["page_faults"] == report.arena["pages_freed"]
        assert report.policy["shed"] + report.policy["timed_out"] + len(
            [h for h in handles if h.session.is_finished]
        ) == 4
        with pytest.raises(RuntimeError, match="closed"):
            engine.submit(Request("late", [1], max_new_tokens=1))


# -- submit_many ordering + cancel-during-PREFILLING (satellite) ---------------


class TestSubmitManyAndPrefillCancel:
    def test_submit_many_preserves_admission_order(self, model):
        engine = ServingEngine(model, max_active=2)
        requests = [
            Request(f"r{i}", [i + 1], max_new_tokens=2, arrival_step=0)
            for i in range(6)
        ]
        handles = engine.submit_many(requests)
        assert [h.index for h in handles] == list(range(6))
        report = engine.run()
        # FIFO admission: same-arrival requests admit by submission index
        admitted = [m.admitted_step for m in report.requests]
        assert admitted == sorted(admitted)  # report order == terminal order
        by_id = {m.request_id: m.admitted_step for m in report.requests}
        for earlier, later in zip(requests, requests[1:]):
            assert by_id[earlier.request_id] <= by_id[later.request_id]

    def test_cancel_during_prefilling_balances_books(self, model):
        arena = PagedKVArena(
            n_layers=model.config.n_layers,
            hidden_size=model.config.hidden_size,
            page_size=4,
        )
        engine = ServingEngine(
            model, max_active=2, arena=arena, prefill_token_budget=2
        )
        long_prompt = list(range(1, 13))
        handle = engine.submit(Request("long", long_prompt, max_new_tokens=4))
        engine.step()  # first chunk lands: mid-prefill, pages held
        assert handle.session.state is SessionState.PREFILLING
        assert arena.stats.pages_in_use > 0
        assert engine.cancel(handle) is True
        assert arena.stats.pages_in_use == 0  # pages released immediately
        assert handle.reserved_pages is None  # reservation released
        report = engine.run()
        assert report.policy["cancelled"] == 1
        assert arena.stats.page_faults == arena.stats.pages_freed


# -- chaos fuzz (CI: derandomized) ---------------------------------------------


CHAOS_SEEDS = list(range(20))


def _chaos_plan(seed: int) -> FaultPlan:
    """A mixed fault plan whose emphasis rotates with the seed."""
    rng = np.random.default_rng(seed + 1000)
    specs = [
        FaultSpec(site="arena.alloc", probability=0.02),
        FaultSpec(site="session.compute", probability=0.02),
        FaultSpec(site="session.append", probability=0.01),
        FaultSpec(site="callback.on_token", probability=0.01),
        FaultSpec(site="callback.on_complete", probability=0.05),
    ]
    # rotate one site into a burst so every site gets heavy coverage
    burst = specs[seed % len(specs)]
    specs[seed % len(specs)] = FaultSpec(
        site=burst.site, probability=min(0.25, burst.probability * 10)
    )
    return FaultPlan(specs=tuple(specs), seed=seed)


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_chaos_fuzz_engine_survives_mixed_fault_plans(model, seed):
    """The acceptance-criteria sweep: never raises, exactly-one-terminal,
    bit-identical recovered tokens, balanced arena books -- per trace."""
    rng = np.random.default_rng(seed)
    vocab = model.config.vocab_size
    requests = sample_requests(
        8,
        vocab_size=vocab,
        mean_interarrival=float(rng.uniform(0.3, 1.5)),
        max_prompt_len=12,
        max_decode_len=8,
        seed=seed,
    )
    # sprinkle timeouts onto a few requests
    requests = [
        (
            dataclass_replace(r, timeout_steps=int(rng.integers(4, 40)))
            if rng.random() < 0.3
            else r
        )
        for r in requests
    ]
    engine = ServingEngine(
        model,
        max_active=int(rng.integers(2, 5)),
        faults=_chaos_plan(seed),
        max_retries=2,
        watchdog=LoadShedWatchdog(queue_high=6, queue_low=2),
        prefill_token_budget=int(rng.integers(4, 16)),
    )
    on_token_calls = []
    completions = []
    handles = [
        engine.submit(
            r,
            on_token=lambda h, t, s: on_token_calls.append(t),
            # non-None so the callback.on_complete injection site is armed
            on_complete=lambda h, m: completions.append(m.request_id),
        )
        for r in requests
    ]
    cancel_at = {
        h.request_id: int(rng.integers(0, 20))
        for h in handles
        if rng.random() < 0.2
    }
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        for _ in range(400):
            if not engine.has_work:
                break
            for handle in handles:
                if (
                    cancel_at.get(handle.request_id) == engine.current_step
                    and not handle.done
                ):
                    engine.cancel(handle)
            engine.step()  # must never raise
        assert not engine.has_work, f"seed {seed}: engine did not drain"
        report = engine.report()

    # exactly one terminal state per request
    for handle in handles:
        assert handle.session.state in TERMINAL_STATES, (
            f"seed {seed}: {handle.request_id} ended {handle.session.state}"
        )
    resolved = {m.request_id for m in report.requests}
    cancelled = {h.request_id for h in handles if h.cancelled}
    assert resolved | cancelled == {h.request_id for h in handles}
    assert not (resolved & cancelled)

    # recovered token streams are bit-identical to the fault-free reference;
    # partially-served requests hold an exact prefix of it
    for handle in handles:
        if not handle.generated_tokens:
            continue
        reference = generate(
            model,
            handle.request.prompt_tokens,
            max_new_tokens=handle.request.max_new_tokens,
            eos_token=handle.request.eos_token,
        ).generated_tokens
        got = handle.generated_tokens
        if handle.session.state is SessionState.FINISHED:
            assert got == reference, f"seed {seed}: {handle.request_id} diverged"
        else:
            assert got == reference[: len(got)], (
                f"seed {seed}: {handle.request_id} partial stream diverged"
            )

    # arena books balance on every trace
    arena = report.arena
    assert arena["pages_in_use"] == 0, f"seed {seed}: pages leaked"
    assert arena["page_faults"] - arena["pages_freed"] == 0, (
        f"seed {seed}: {arena['page_faults']} faults vs "
        f"{arena['pages_freed']} freed"
    )


def dataclass_replace(request, **changes):
    import dataclasses

    return dataclasses.replace(request, **changes)


def test_chaos_trace_is_replayable(model):
    """Same plan + workload => identical outcome sets and fire counts."""

    def run_once():
        engine = ServingEngine(
            model, max_active=3, faults=_chaos_plan(4), max_retries=2
        )
        handles = [
            engine.submit(Request(f"r{i}", [i + 1, i + 2], max_new_tokens=6))
            for i in range(6)
        ]
        report = engine.run(max_steps=300)
        return (
            [h.session.state for h in handles],
            [tuple(h.generated_tokens) for h in handles],
            engine.fault_injector.spec_fires,
            report.policy["retries"],
        )

    assert run_once() == run_once()
