"""Randomized end-to-end scheduler traces: execution strategy is invisible.

Two fuzzed contracts:

* ``TestFuzzedTraces`` -- each example replays one serving trace (Poisson or
  bursty arrivals, random prompt/output lengths, capacities 1..16) through
  the FCFS scheduler in all four execution configurations (``fused`` on/off
  x ``arena`` on/off).  Every configuration must emit bit-identical tokens
  and identical :class:`RequestMetrics`, and the arena must drain completely
  (every page freed) once the trace finishes.
* ``TestPreemptionFuzz`` -- each example replays one prioritized bursty
  trace under the preemptive priority/deadline policy pairs with tight slot
  counts.  Runs must be deterministic under a fixed seed, every request's
  tokens must equal unpreempted per-session decoding (preempt/resume is an
  execution detail), and the arena must drain to zero pages with balanced
  books despite mid-trace page release/re-acquire.

The hypothesis profile is deterministic (derandomized, no deadline, fixed
example budget) so PR runs are reproducible; see the CI workflow step that
executes this file explicitly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bgpp import make_bgpp_predictor
from repro.model import QuantizedTransformer, TransformerModel, generate, get_model_config
from repro.serve import (
    ContinuousBatchingScheduler,
    PagedKVArena,
    Request,
    ServingEngine,
    make_policies,
)

# deterministic on CI: no wall-clock deadline, fixed example sequence
FUZZ = settings(max_examples=10, deadline=None, derandomize=True)

CONFIGS = [(fused, arena) for fused in (True, False) for arena in (True, False)]


@pytest.fixture(scope="module")
def model():
    """One calibrated quantised model shared by every fuzzed trace."""
    return QuantizedTransformer(TransformerModel(get_model_config("tiny"), seed=0), seed=1)


def _sample_trace(rng, vocab):
    """Random request trace: Poisson or bursty arrivals, ragged lengths."""
    n_requests = int(rng.integers(2, 9))
    if rng.random() < 0.5:  # Poisson-like: independent exponential gaps
        gaps = rng.exponential(scale=float(rng.uniform(0.0, 2.0)), size=n_requests)
        arrivals = np.floor(np.cumsum(gaps)).astype(int)
    else:  # bursty: a few arrival instants shared by whole groups
        n_bursts = int(rng.integers(1, 4))
        burst_steps = np.sort(rng.integers(0, 10, size=n_bursts))
        arrivals = np.sort(burst_steps[rng.integers(0, n_bursts, size=n_requests)])
    return [
        Request(
            request_id=f"r{i:02d}",
            prompt_tokens=rng.integers(0, vocab, size=int(rng.integers(1, 12))).tolist(),
            max_new_tokens=int(rng.integers(1, 7)),
            arrival_step=int(arrivals[i]),
        )
        for i in range(n_requests)
    ]


def _run(model, requests, max_active, fused, arena, predictor=None):
    scheduler = ContinuousBatchingScheduler(
        model,
        max_active=max_active,
        predictor=predictor,
        fused=fused,
        arena=arena,
        page_size=4,  # small pages so traces exercise multi-page sessions
    )
    sessions = scheduler.submit_many(requests)
    scheduler.run()
    tokens = [s.generated_tokens for s in sessions]
    metrics = [s.to_metrics() for s in sessions]
    return tokens, metrics, scheduler


class TestFuzzedTraces:
    @FUZZ
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_all_four_configurations_are_bit_identical(self, model, seed):
        rng = np.random.default_rng(seed)
        requests = _sample_trace(rng, model.config.vocab_size)
        max_active = int(rng.integers(1, 17))

        results = {
            cfg: _run(model, requests, max_active, fused=cfg[0], arena=cfg[1])
            for cfg in CONFIGS
        }
        ref_tokens, ref_metrics, _ = results[(True, True)]
        for cfg, (tokens, metrics, scheduler) in results.items():
            assert tokens == ref_tokens, f"tokens diverge for fused,arena={cfg}"
            assert metrics == ref_metrics, f"metrics diverge for fused,arena={cfg}"
            if scheduler.arena is not None:
                stats = scheduler.arena.stats
                # the drained arena holds zero live pages and balanced books
                assert stats.pages_in_use == 0
                assert stats.page_faults == stats.pages_freed
                assert stats.sessions_opened == stats.sessions_freed == len(requests)
                assert stats.peak_pages_in_use <= stats.n_pages

    @FUZZ
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_with_bgpp_predictor(self, model, seed):
        """Sparse-attention serving is config-invariant too (2 configs for cost)."""
        rng = np.random.default_rng(seed)
        requests = _sample_trace(rng, model.config.vocab_size)[:4]
        max_active = int(rng.integers(1, 9))
        predictor = make_bgpp_predictor(alpha=0.7, rounds=3)
        arena_run = _run(model, requests, max_active, True, True, predictor)
        plain_run = _run(model, requests, max_active, False, False, predictor)
        assert arena_run[0] == plain_run[0]
        assert arena_run[1] == plain_run[1]


def _sample_prioritized_trace(rng, vocab):
    """Bursty trace with priorities and (sometimes) deadlines.

    Tight arrival clustering plus 1-3 slot engines below makes preemption
    frequent: high-priority / tight-deadline requests land while the batch
    is full of lower-urgency work.
    """
    n_requests = int(rng.integers(2, 7))
    arrivals = np.sort(rng.integers(0, 7, size=n_requests))
    return [
        Request(
            request_id=f"p{i:02d}",
            prompt_tokens=rng.integers(0, vocab, size=int(rng.integers(1, 11))).tolist(),
            max_new_tokens=int(rng.integers(1, 6)),
            arrival_step=int(arrivals[i]),
            priority=int(rng.integers(0, 4)),
            deadline_steps=(
                int(rng.integers(1, 13)) if rng.random() < 0.6 else None
            ),
        )
        for i in range(n_requests)
    ]


def _run_policy(model, requests, max_active, policy_name):
    admission, scheduling = make_policies(policy_name)
    engine = ServingEngine(
        model,
        max_active=max_active,
        admission=admission,
        scheduling=scheduling,
        page_size=4,
    )
    handles = engine.submit_many(requests)
    engine.run()
    tokens = [h.generated_tokens for h in handles]
    metrics = [h.metrics() for h in handles]
    return tokens, metrics, engine


class TestPreemptionFuzz:
    """Preemption-heavy traces: policies reorder *service*, never *content*.

    Each example replays one prioritized bursty trace under the priority and
    deadline policy pairs with 1-3 batch slots (so eviction actually
    happens), twice per policy.  Every request's token stream must equal its
    solo per-session decode -- resume's re-prefill is an execution detail --
    the two runs must agree exactly (policies are deterministic), and the
    arena must drain with balanced books even though preempted sessions
    release and re-acquire pages mid-trace.
    """

    @FUZZ
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_preemptive_policies_bit_identical_and_drain(self, model, seed):
        rng = np.random.default_rng(seed)
        requests = _sample_prioritized_trace(rng, model.config.vocab_size)
        max_active = int(rng.integers(1, 4))
        reference = [
            generate(
                model, r.prompt_tokens, max_new_tokens=r.max_new_tokens
            ).generated_tokens
            for r in requests
        ]
        for name in ("priority", "deadline"):
            tokens, metrics, engine = _run_policy(model, requests, max_active, name)
            again_tokens, again_metrics, _ = _run_policy(
                model, requests, max_active, name
            )
            assert tokens == again_tokens, f"{name} policy is nondeterministic"
            assert metrics == again_metrics, f"{name} metrics are nondeterministic"
            assert tokens == reference, (
                f"{name} diverged from unpreempted per-session decoding"
            )
            stats = engine.arena.stats
            assert stats.pages_in_use == 0
            assert stats.page_faults == stats.pages_freed
            # every preemption opens one extra arena session on resume
            preemptions = sum(m.preemptions for m in metrics)
            assert stats.sessions_opened == stats.sessions_freed
            assert stats.sessions_opened == len(requests) + preemptions

    def test_contended_trace_actually_preempts(self, model):
        """Sanity-pin that the fuzz regime exercises preemption at all."""
        requests = [
            Request("bulk", prompt_tokens=[1, 2, 3], max_new_tokens=12, priority=0),
            Request(
                "urgent",
                prompt_tokens=[4, 5],
                max_new_tokens=3,
                arrival_step=2,
                priority=3,
            ),
        ]
        tokens, metrics, _ = _run_policy(model, requests, 1, "priority")
        assert metrics[0].preemptions == 1
        assert metrics[1].admitted_step == 2  # preemption freed the slot at once
        reference = [
            generate(
                model, r.prompt_tokens, max_new_tokens=r.max_new_tokens
            ).generated_tokens
            for r in requests
        ]
        assert tokens == reference


class TestArenaPolicy:
    def test_auto_mode_skips_arena_for_per_session_stepping(self, model):
        """Auto arena only engages where gather_batch can consume it."""
        assert ContinuousBatchingScheduler(model).arena is not None
        assert ContinuousBatchingScheduler(model, fused=False).arena is None
        # explicit True still forces it (the fuzz matrix relies on this)
        forced = ContinuousBatchingScheduler(model, fused=False, arena=True)
        assert forced.arena is not None
        assert ContinuousBatchingScheduler(model, arena=False).arena is None


class TestSharedArena:
    def test_one_pool_across_two_schedulers(self, model):
        """An externally built arena can back several scheduler instances."""
        arena = PagedKVArena(
            model.config.n_layers, model.config.hidden_size, page_size=4
        )
        requests = [
            Request(f"q{i}", prompt_tokens=[i + 1, i + 2], max_new_tokens=3)
            for i in range(4)
        ]
        baseline, _, _ = _run(model, requests, 2, fused=True, arena=False)
        for _ in range(2):  # the same pool drains and is reused run after run
            sched = ContinuousBatchingScheduler(
                model, max_active=2, arena=arena
            )
            sessions = sched.submit_many(requests)
            sched.run()
            assert [s.generated_tokens for s in sessions] == baseline
            assert arena.stats.pages_in_use == 0
        assert arena.stats.sessions_opened == 8

    def test_model_without_config_falls_back_to_standalone(self):
        class Stub:
            vocab = 8

            def new_cache(self):
                return []

            def forward(self, token_ids, caches=None, predictor=None):
                from repro.model.transformer import ForwardStats

                logits = np.zeros((len(token_ids), self.vocab))
                logits[-1, (int(token_ids[-1]) + 1) % self.vocab] = 1.0
                return logits, ForwardStats(tokens_processed=len(token_ids))

        # default arena policy is auto: Stub has neither forward_batch nor a
        # config, so the scheduler must stay on standalone caches -- even
        # when the arena is forced
        assert ContinuousBatchingScheduler(Stub(), max_active=2).arena is None
        sched = ContinuousBatchingScheduler(Stub(), max_active=2, arena=True)
        assert sched.arena is None
        sched.submit(Request("r0", prompt_tokens=[1], max_new_tokens=2))
        report = sched.run()
        assert report.arena is None
