"""Randomized end-to-end scheduler traces: fused x arena must be invisible.

Each example fuzzes a full serving trace -- Poisson or bursty arrivals,
random prompt/output lengths, capacities 1..16 -- and replays it through the
continuous-batching scheduler in all four execution configurations
(``fused`` on/off x ``arena`` on/off).  The serving stack's core contract is
that these are pure execution strategies: every configuration must emit
bit-identical tokens and identical :class:`RequestMetrics`, and the arena
must drain completely (every page freed) once the trace finishes.

The hypothesis profile is deterministic (derandomized, no deadline, fixed
example budget) so PR runs are reproducible; see the CI workflow step that
executes this file explicitly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bgpp import make_bgpp_predictor
from repro.model import QuantizedTransformer, TransformerModel, get_model_config
from repro.serve import ContinuousBatchingScheduler, PagedKVArena, Request

# deterministic on CI: no wall-clock deadline, fixed example sequence
FUZZ = settings(max_examples=10, deadline=None, derandomize=True)

CONFIGS = [(fused, arena) for fused in (True, False) for arena in (True, False)]


@pytest.fixture(scope="module")
def model():
    """One calibrated quantised model shared by every fuzzed trace."""
    return QuantizedTransformer(TransformerModel(get_model_config("tiny"), seed=0), seed=1)


def _sample_trace(rng, vocab):
    """Random request trace: Poisson or bursty arrivals, ragged lengths."""
    n_requests = int(rng.integers(2, 9))
    if rng.random() < 0.5:  # Poisson-like: independent exponential gaps
        gaps = rng.exponential(scale=float(rng.uniform(0.0, 2.0)), size=n_requests)
        arrivals = np.floor(np.cumsum(gaps)).astype(int)
    else:  # bursty: a few arrival instants shared by whole groups
        n_bursts = int(rng.integers(1, 4))
        burst_steps = np.sort(rng.integers(0, 10, size=n_bursts))
        arrivals = np.sort(burst_steps[rng.integers(0, n_bursts, size=n_requests)])
    return [
        Request(
            request_id=f"r{i:02d}",
            prompt_tokens=rng.integers(0, vocab, size=int(rng.integers(1, 12))).tolist(),
            max_new_tokens=int(rng.integers(1, 7)),
            arrival_step=int(arrivals[i]),
        )
        for i in range(n_requests)
    ]


def _run(model, requests, max_active, fused, arena, predictor=None):
    scheduler = ContinuousBatchingScheduler(
        model,
        max_active=max_active,
        predictor=predictor,
        fused=fused,
        arena=arena,
        page_size=4,  # small pages so traces exercise multi-page sessions
    )
    sessions = scheduler.submit_many(requests)
    scheduler.run()
    tokens = [s.generated_tokens for s in sessions]
    metrics = [s.to_metrics() for s in sessions]
    return tokens, metrics, scheduler


class TestFuzzedTraces:
    @FUZZ
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_all_four_configurations_are_bit_identical(self, model, seed):
        rng = np.random.default_rng(seed)
        requests = _sample_trace(rng, model.config.vocab_size)
        max_active = int(rng.integers(1, 17))

        results = {
            cfg: _run(model, requests, max_active, fused=cfg[0], arena=cfg[1])
            for cfg in CONFIGS
        }
        ref_tokens, ref_metrics, _ = results[(True, True)]
        for cfg, (tokens, metrics, scheduler) in results.items():
            assert tokens == ref_tokens, f"tokens diverge for fused,arena={cfg}"
            assert metrics == ref_metrics, f"metrics diverge for fused,arena={cfg}"
            if scheduler.arena is not None:
                stats = scheduler.arena.stats
                # the drained arena holds zero live pages and balanced books
                assert stats.pages_in_use == 0
                assert stats.page_faults == stats.pages_freed
                assert stats.sessions_opened == stats.sessions_freed == len(requests)
                assert stats.peak_pages_in_use <= stats.n_pages

    @FUZZ
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_with_bgpp_predictor(self, model, seed):
        """Sparse-attention serving is config-invariant too (2 configs for cost)."""
        rng = np.random.default_rng(seed)
        requests = _sample_trace(rng, model.config.vocab_size)[:4]
        max_active = int(rng.integers(1, 9))
        predictor = make_bgpp_predictor(alpha=0.7, rounds=3)
        arena_run = _run(model, requests, max_active, True, True, predictor)
        plain_run = _run(model, requests, max_active, False, False, predictor)
        assert arena_run[0] == plain_run[0]
        assert arena_run[1] == plain_run[1]


class TestArenaPolicy:
    def test_auto_mode_skips_arena_for_per_session_stepping(self, model):
        """Auto arena only engages where gather_batch can consume it."""
        assert ContinuousBatchingScheduler(model).arena is not None
        assert ContinuousBatchingScheduler(model, fused=False).arena is None
        # explicit True still forces it (the fuzz matrix relies on this)
        forced = ContinuousBatchingScheduler(model, fused=False, arena=True)
        assert forced.arena is not None
        assert ContinuousBatchingScheduler(model, arena=False).arena is None


class TestSharedArena:
    def test_one_pool_across_two_schedulers(self, model):
        """An externally built arena can back several scheduler instances."""
        arena = PagedKVArena(
            model.config.n_layers, model.config.hidden_size, page_size=4
        )
        requests = [
            Request(f"q{i}", prompt_tokens=[i + 1, i + 2], max_new_tokens=3)
            for i in range(4)
        ]
        baseline, _, _ = _run(model, requests, 2, fused=True, arena=False)
        for _ in range(2):  # the same pool drains and is reused run after run
            sched = ContinuousBatchingScheduler(
                model, max_active=2, arena=arena
            )
            sessions = sched.submit_many(requests)
            sched.run()
            assert [s.generated_tokens for s in sessions] == baseline
            assert arena.stats.pages_in_use == 0
        assert arena.stats.sessions_opened == 8

    def test_model_without_config_falls_back_to_standalone(self):
        class Stub:
            vocab = 8

            def new_cache(self):
                return []

            def forward(self, token_ids, caches=None, predictor=None):
                from repro.model.transformer import ForwardStats

                logits = np.zeros((len(token_ids), self.vocab))
                logits[-1, (int(token_ids[-1]) + 1) % self.vocab] = 1.0
                return logits, ForwardStats(tokens_processed=len(token_ids))

        # default arena policy is auto: Stub has neither forward_batch nor a
        # config, so the scheduler must stay on standalone caches -- even
        # when the arena is forced
        assert ContinuousBatchingScheduler(Stub(), max_active=2).arena is None
        sched = ContinuousBatchingScheduler(Stub(), max_active=2, arena=True)
        assert sched.arena is None
        sched.submit(Request("r0", prompt_tokens=[1], max_new_tokens=2))
        report = sched.run()
        assert report.arena is None
