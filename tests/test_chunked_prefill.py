"""Chunked ragged batched prefill: bit-identical to serial, under any budget.

The chunked prefill pipeline (PR 5) feeds prompts to the model in ragged
chunks batched with the decode streams -- one fused pass per engine step --
instead of one serial ``IncrementalDecoder.prefill()`` per admission.  These
tests pin its core contract three ways:

* **model layer** -- ``QuantizedTransformer.prefill_batch`` over arbitrary
  chunkings (including mixed decode+prefill batches) reproduces the one-shot
  serial forward bit-exactly: logits, KV rows and per-stream statistics;
* **engine layer** -- a ``ServingEngine`` under any ``prefill_token_budget``
  emits the same tokens as the serial-prefill engine and as solo
  ``generate()`` runs, with TTFT split into its queue/prefill components;
* **edge cases** -- prompt shorter than one chunk, prompt exactly a page
  multiple, cancel mid-prefill, preempt-then-resume mid-prefill; all fuzzed
  under the deterministic hypothesis profile the scheduler suite uses.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bgpp import make_bgpp_predictor
from repro.model import (
    QuantizedTransformer,
    TransformerModel,
    generate,
    get_model_config,
)
from repro.model.generation import IncrementalDecoder
from repro.serve import (
    PagedKVArena,
    Request,
    ServingEngine,
    SessionState,
    make_policies,
)

FUZZ = settings(max_examples=10, deadline=None, derandomize=True)


@pytest.fixture(scope="module")
def model():
    return QuantizedTransformer(
        TransformerModel(get_model_config("tiny"), seed=0), seed=1
    )


def _serial_reference(model, prompt, predictor=None):
    decoder = IncrementalDecoder(model, predictor=predictor)
    token = decoder.prefill(prompt)
    return token, decoder


def _chunked_prefill(model, prompts, chunk_schedule, predictor=None, arena=None):
    """Drive B decoders through prefill_step_batch with per-step chunk sizes.

    ``chunk_schedule(b, remaining)`` returns the chunk size decoder ``b``
    gets while it still owes ``remaining`` tokens.
    """
    decoders = [
        IncrementalDecoder(model, predictor=predictor, arena=arena)
        for _ in prompts
    ]
    for decoder, prompt in zip(decoders, prompts):
        decoder.begin_prefill(prompt)
    tokens = [None] * len(prompts)
    while any(d.prefill_remaining for d in decoders):
        batch = [
            (b, d) for b, d in enumerate(decoders) if d.prefill_remaining
        ]
        sizes = [
            chunk_schedule(b, d.prefill_remaining) for b, d in batch
        ]
        out, _ = IncrementalDecoder.prefill_step_batch(
            [d for _, d in batch], sizes
        )
        for (b, _), token in zip(batch, out):
            if token is not None:
                tokens[b] = token
    return tokens, decoders


class TestModelLayerBitIdentity:
    @FUZZ
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_any_chunking_matches_one_shot_serial(self, model, seed):
        rng = np.random.default_rng(seed)
        vocab = model.config.vocab_size
        n_streams = int(rng.integers(1, 5))
        prompts = [
            rng.integers(0, vocab, size=int(rng.integers(1, 16))).tolist()
            for _ in range(n_streams)
        ]
        chunk_caps = [int(rng.integers(1, 7)) for _ in range(n_streams)]
        refs = [_serial_reference(model, p) for p in prompts]
        tokens, decoders = _chunked_prefill(
            model, prompts, lambda b, rem: min(chunk_caps[b], rem)
        )
        for b in range(n_streams):
            ref_token, ref_decoder = refs[b]
            assert tokens[b] == ref_token
            # the sampled row's logits and every KV row are bit-identical
            assert np.array_equal(
                decoders[b].last_logits[-1], ref_decoder.last_logits[-1]
            )
            for layer in range(model.config.n_layers):
                assert np.array_equal(
                    decoders[b].caches[layer].keys,
                    ref_decoder.caches[layer].keys,
                )
                assert np.array_equal(
                    decoders[b].caches[layer].values,
                    ref_decoder.caches[layer].values,
                )
            assert decoders[b].prefill_stats == ref_decoder.prefill_stats

    @FUZZ
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_chunked_with_bgpp_predictor(self, model, seed):
        rng = np.random.default_rng(seed)
        vocab = model.config.vocab_size
        predictor = make_bgpp_predictor(alpha=0.7, rounds=3)
        prompts = [
            rng.integers(0, vocab, size=int(rng.integers(2, 14))).tolist()
            for _ in range(3)
        ]
        refs = [_serial_reference(model, p, predictor) for p in prompts]
        tokens, decoders = _chunked_prefill(
            model, prompts, lambda b, rem: min(3, rem), predictor=predictor
        )
        for b, (ref_token, ref_decoder) in enumerate(refs):
            assert tokens[b] == ref_token
            assert decoders[b].prefill_stats == ref_decoder.prefill_stats

    def test_mixed_decode_and_prefill_rows_one_pass(self, model):
        """Decode rows ride the same fused pass, bit-identical to step()."""
        rng = np.random.default_rng(7)
        vocab = model.config.vocab_size
        prompt_a = rng.integers(0, vocab, size=8).tolist()
        prompt_b = rng.integers(0, vocab, size=11).tolist()

        ref_a = IncrementalDecoder(model)
        ref_tokens = [ref_a.prefill(prompt_a)]
        for _ in range(3):
            ref_tokens.append(ref_a.step(ref_tokens[-1]))
        ref_b_token, ref_b = _serial_reference(model, prompt_b)

        dec_a = IncrementalDecoder(model)
        mixed_tokens = [dec_a.prefill(prompt_a)]
        dec_b = IncrementalDecoder(model)
        dec_b.begin_prefill(prompt_b)
        token_b = None
        while dec_b.prefill_remaining:
            chunk = min(4, dec_b.prefill_remaining)
            out_p, out_d = IncrementalDecoder.prefill_step_batch(
                [dec_b], [chunk], [dec_a], [mixed_tokens[-1]]
            )
            mixed_tokens.append(out_d[0])
            if out_p[0] is not None:
                token_b = out_p[0]
        assert mixed_tokens == ref_tokens[: len(mixed_tokens)]
        assert token_b == ref_b_token
        assert dec_a.decode_stats == ref_a.decode_stats[: len(dec_a.decode_stats)]
        for layer in range(model.config.n_layers):
            assert np.array_equal(
                dec_b.caches[layer].keys, ref_b.caches[layer].keys
            )

    def test_arena_backed_chunking_matches_standalone(self, model):
        rng = np.random.default_rng(3)
        vocab = model.config.vocab_size
        config = model.config
        arena = PagedKVArena(config.n_layers, config.hidden_size, page_size=4)
        prompts = [rng.integers(0, vocab, size=n).tolist() for n in (5, 9, 3)]
        ref_tokens, _ = _chunked_prefill(
            model, prompts, lambda b, rem: min(4, rem)
        )
        tokens, decoders = _chunked_prefill(
            model, prompts, lambda b, rem: min(4, rem), arena=arena
        )
        assert tokens == ref_tokens
        for decoder in decoders:
            decoder.release()
        assert arena.stats.pages_in_use == 0

    def test_begin_prefill_guards(self, model):
        decoder = IncrementalDecoder(model)
        with pytest.raises(ValueError):
            decoder.begin_prefill([])
        decoder.begin_prefill([1, 2, 3])
        with pytest.raises(RuntimeError):
            decoder.begin_prefill([4])
        with pytest.raises(RuntimeError):
            decoder.prefill([4])  # mid-chunking: one-shot prefill refused
        with pytest.raises(RuntimeError):
            decoder.step(1)  # decode before the last chunk is refused
        with pytest.raises(ValueError):
            IncrementalDecoder.prefill_step_batch([decoder], [9])  # > remaining
        assert decoder.prefill_remaining == 3

    def test_prompt_shorter_than_one_chunk(self, model):
        """A one-token prompt completes in its first (partial) chunk."""
        ref_token, ref = _serial_reference(model, [5])
        tokens, decoders = _chunked_prefill(model, [[5]], lambda b, rem: rem)
        assert tokens == [ref_token]
        assert decoders[0].prefill_stats == ref.prefill_stats

    def test_prompt_exactly_a_page_multiple(self, model):
        """Chunks and pages aligning on the same boundary stays exact."""
        config = model.config
        page_size = 4
        rng = np.random.default_rng(11)
        prompt = rng.integers(0, config.vocab_size, size=3 * page_size).tolist()
        arena = PagedKVArena(
            config.n_layers, config.hidden_size, page_size=page_size
        )
        ref_token, ref = _serial_reference(model, prompt)
        tokens, decoders = _chunked_prefill(
            model, [prompt], lambda b, rem: min(page_size, rem), arena=arena
        )
        assert tokens == [ref_token]
        for layer in range(config.n_layers):
            assert np.array_equal(
                decoders[0].caches[layer].keys, ref.caches[layer].keys
            )
        # exactly one page per chunk, no tail slack
        assert arena.stats.page_faults == 3
        decoders[0].release()
        assert arena.stats.pages_in_use == 0


def _run_engine(model, requests, max_active=4, budget=None, batched=True,
                policy="fcfs", predictor=None):
    admission, scheduling = make_policies(policy)
    engine = ServingEngine(
        model,
        max_active=max_active,
        predictor=predictor,
        admission=admission,
        scheduling=scheduling,
        page_size=4,
        prefill_token_budget=budget,
        batched_prefill=batched,
    )
    handles = engine.submit_many(requests)
    report = engine.run()
    return handles, report, engine


class TestEngineBudgets:
    @FUZZ
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_any_budget_matches_serial_engine_tokens(self, model, seed):
        rng = np.random.default_rng(seed)
        vocab = model.config.vocab_size
        requests = [
            Request(
                f"r{i:02d}",
                prompt_tokens=rng.integers(
                    0, vocab, size=int(rng.integers(1, 14))
                ).tolist(),
                max_new_tokens=int(rng.integers(1, 6)),
                arrival_step=int(rng.integers(0, 6)),
            )
            for i in range(int(rng.integers(2, 7)))
        ]
        requests.sort(key=lambda r: r.arrival_step)
        max_active = int(rng.integers(1, 5))
        budget = int(rng.integers(1, 9))
        serial_handles, _, _ = _run_engine(
            model, requests, max_active, batched=False
        )
        budget_handles, report, engine = _run_engine(
            model, requests, max_active, budget=budget
        )
        assert [h.generated_tokens for h in budget_handles] == [
            h.generated_tokens for h in serial_handles
        ], "token content must not depend on the prefill budget"
        for metrics in report.requests:
            assert (
                metrics.queue_steps + metrics.prefill_steps
                == metrics.time_to_first_token_steps
            )
            assert metrics.prefill_steps >= 0
        stats = engine.arena.stats
        assert stats.pages_in_use == 0
        assert stats.page_faults == stats.pages_freed

    def test_unlimited_budget_reproduces_serial_schedule_exactly(self, model):
        rng = np.random.default_rng(5)
        vocab = model.config.vocab_size
        requests = [
            Request(
                f"q{i}",
                prompt_tokens=rng.integers(0, vocab, size=6 + i).tolist(),
                max_new_tokens=3,
                arrival_step=i,
            )
            for i in range(5)
        ]
        serial_handles, serial_report, _ = _run_engine(
            model, requests, 2, batched=False
        )
        batched_handles, batched_report, _ = _run_engine(model, requests, 2)
        # with no budget cap the step-domain schedule is untouched: every
        # prompt completes in its admission step, so the whole report matches
        assert batched_report.requests == serial_report.requests
        assert batched_report.steps == serial_report.steps
        assert all(m.prefill_steps == 0 for m in batched_report.requests)

    def test_tight_budget_stretches_prefill_not_queue(self, model):
        prompt = list(range(1, 13))  # 12 tokens, budget 4 -> 3 prefill steps
        requests = [Request("long", prompt_tokens=prompt, max_new_tokens=2)]
        handles, report, _ = _run_engine(model, requests, 2, budget=4)
        solo = generate(model, prompt, max_new_tokens=2)
        assert handles[0].generated_tokens == solo.generated_tokens
        metrics = report.requests[0]
        assert metrics.queue_steps == 0
        assert metrics.prefill_steps == 2  # chunks land on steps 0,1,2
        assert metrics.time_to_first_token_steps == 2

    def test_budget_is_head_of_line(self, model):
        """The admission-order head always progresses; later prompts wait."""
        requests = [
            Request("head", prompt_tokens=list(range(1, 9)), max_new_tokens=1),
            Request("tail", prompt_tokens=list(range(1, 9)), max_new_tokens=1),
        ]
        handles, report, _ = _run_engine(model, requests, 2, budget=8)
        by_id = {m.request_id: m for m in report.requests}
        assert by_id["head"].first_token_step < by_id["tail"].first_token_step

    def test_batched_prefill_auto_disables_without_model_support(self):
        class Stub:
            def new_cache(self):
                return []

            def forward(self, token_ids, caches=None, predictor=None):
                from repro.model.transformer import ForwardStats

                logits = np.zeros((len(token_ids), 8))
                logits[-1, (int(token_ids[-1]) + 1) % 8] = 1.0
                return logits, ForwardStats(tokens_processed=len(token_ids))

        engine = ServingEngine(Stub(), max_active=2)
        assert not engine.batched_prefill
        # forcing it on a model without prefill_batch still falls back
        forced = ServingEngine(Stub(), max_active=2, batched_prefill=True)
        assert not forced.batched_prefill
        engine.submit(Request("r0", prompt_tokens=[1], max_new_tokens=2))
        report = engine.run()
        assert report.requests[0].n_generated == 2

    def test_rejects_bad_budget(self, model):
        with pytest.raises(ValueError):
            ServingEngine(model, prefill_token_budget=0)

    def test_zero_budget_policy_override_cannot_livelock(self, model):
        """The admission-order head is clamped to >= 1 row per step."""
        from repro.serve.policies import FIFOAdmission

        class Starver(FIFOAdmission):
            def prefill_token_budget(self, engine):
                return 0  # a broken override must not stall the pipeline

        prompt = list(range(1, 10))
        engine = ServingEngine(
            model, max_active=2, admission=Starver(), page_size=4
        )
        handle = engine.submit(Request("r0", prompt_tokens=prompt, max_new_tokens=2))
        report = engine.run(max_steps=50)
        solo = generate(model, prompt, max_new_tokens=2)
        assert handle.generated_tokens == solo.generated_tokens
        # one clamped row per step: prefill stretches but always progresses
        assert report.requests[0].prefill_steps == len(prompt) - 1


class TestMidPrefillLifecycle:
    def test_cancel_mid_prefill_frees_kv_and_spares_the_rest(self, model):
        rng = np.random.default_rng(9)
        vocab = model.config.vocab_size
        doomed = Request(
            "doomed", prompt_tokens=rng.integers(0, vocab, size=12).tolist(),
            max_new_tokens=4,
        )
        survivor = Request(
            "survivor", prompt_tokens=rng.integers(0, vocab, size=5).tolist(),
            max_new_tokens=3,
        )
        admission, scheduling = make_policies("fcfs")
        engine = ServingEngine(
            model, max_active=2, admission=admission, scheduling=scheduling,
            page_size=4, prefill_token_budget=3,
        )
        handle_doomed = engine.submit(doomed)
        handle_survivor = engine.submit(survivor)
        engine.step()  # both admitted; doomed got 3 of 12 rows
        assert handle_doomed.state is SessionState.PREFILLING
        assert engine.cancel(handle_doomed)
        report = engine.run()
        solo = generate(
            model, survivor.prompt_tokens, max_new_tokens=survivor.max_new_tokens
        )
        assert handle_survivor.generated_tokens == solo.generated_tokens
        assert handle_doomed.generated_tokens == []
        assert report.policy["cancelled"] == 1
        stats = engine.arena.stats
        assert stats.pages_in_use == 0  # the partial chunks' pages came back
        assert stats.page_faults == stats.pages_freed

    def test_preempt_then_resume_mid_prefill_is_bit_identical(self, model):
        """A victim evicted mid-prefill re-prefills chunked, tokens intact."""
        rng = np.random.default_rng(21)
        vocab = model.config.vocab_size
        bulk = Request(
            "bulk", prompt_tokens=rng.integers(0, vocab, size=11).tolist(),
            max_new_tokens=6, priority=0,
        )
        urgent = Request(
            "urgent", prompt_tokens=rng.integers(0, vocab, size=4).tolist(),
            max_new_tokens=2, arrival_step=1, priority=3,
        )
        admission, scheduling = make_policies("priority")
        engine = ServingEngine(
            model, max_active=1, admission=admission, scheduling=scheduling,
            page_size=4, prefill_token_budget=4,
        )
        handles = engine.submit_many([bulk, urgent])
        engine.step()  # bulk admitted, 4 of 11 rows in
        assert handles[0].state is SessionState.PREFILLING
        report = engine.run()
        by_id = {m.request_id: m for m in report.requests}
        assert by_id["bulk"].preemptions == 1
        for request, handle in zip([bulk, urgent], handles):
            solo = generate(
                model, request.prompt_tokens, max_new_tokens=request.max_new_tokens
            )
            assert handle.generated_tokens == solo.generated_tokens
        stats = engine.arena.stats
        assert stats.pages_in_use == 0
        assert stats.page_faults == stats.pages_freed
        # bulk's first session died mid-prefill; the resume opened another
        assert stats.sessions_opened == 3

    @FUZZ
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_preemptive_policies_with_budgets_match_solo(self, model, seed):
        rng = np.random.default_rng(seed)
        vocab = model.config.vocab_size
        requests = [
            Request(
                f"p{i:02d}",
                prompt_tokens=rng.integers(
                    0, vocab, size=int(rng.integers(1, 12))
                ).tolist(),
                max_new_tokens=int(rng.integers(1, 5)),
                arrival_step=int(rng.integers(0, 5)),
                priority=int(rng.integers(0, 3)),
            )
            for i in range(int(rng.integers(2, 6)))
        ]
        requests.sort(key=lambda r: r.arrival_step)
        budget = int(rng.integers(1, 7))
        references = [
            generate(
                model, r.prompt_tokens, max_new_tokens=r.max_new_tokens
            ).generated_tokens
            for r in requests
        ]
        handles, report, engine = _run_engine(
            model, requests, max_active=int(rng.integers(1, 3)),
            budget=budget, policy="priority",
        )
        again, _, _ = _run_engine(
            model, requests, max_active=engine.max_active,
            budget=budget, policy="priority",
        )
        tokens = [h.generated_tokens for h in handles]
        assert tokens == references, "mid-prefill preemption changed content"
        assert tokens == [h.generated_tokens for h in again]
        stats = engine.arena.stats
        assert stats.pages_in_use == 0
        assert stats.page_faults == stats.pages_freed
