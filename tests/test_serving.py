"""Tests for the batched serving layer (repro.serve + workloads.traffic)."""

import numpy as np
import pytest

from repro.model import TransformerModel, generate, get_model_config
from repro.model.generation import IncrementalDecoder
from repro.serve import (
    ContinuousBatchingScheduler,
    Request,
    SessionState,
)
from repro.serve.session import GenerationSession
from repro.workloads import poisson_arrival_steps, sample_requests


class StubModel:
    """Deterministic O(1) stand-in for a transformer: next token = last + 1.

    Exposes the same ``forward``/``new_cache`` surface as the real models so
    scheduler-logic tests don't pay transformer cost.  ``forward`` returns
    logits whose argmax is ``(last_token + 1) % vocab``.
    """

    def __init__(self, vocab: int = 16):
        self.vocab = vocab
        self.forward_calls = 0

    def new_cache(self):
        return []

    def forward(self, token_ids, caches=None, predictor=None):
        from repro.model.transformer import ForwardStats

        self.forward_calls += 1
        logits = np.zeros((len(token_ids), self.vocab))
        logits[-1, (int(token_ids[-1]) + 1) % self.vocab] = 1.0
        n = len(token_ids)
        return logits, ForwardStats(keys_attended=n, keys_total=n, tokens_processed=n)


class TestIncrementalDecoder:
    def test_matches_generate_exactly(self):
        model = TransformerModel(get_model_config("tiny"), seed=0)
        prompt = [3, 1, 4, 1, 5]
        solo = generate(model, prompt, max_new_tokens=6)
        decoder = IncrementalDecoder(model)
        tokens = [decoder.prefill(prompt)]
        for _ in range(5):
            tokens.append(decoder.step(tokens[-1]))
        assert tokens == solo.generated_tokens
        assert decoder.seq_len == len(prompt) + 5

    def test_lifecycle_guards(self):
        decoder = IncrementalDecoder(StubModel())
        with pytest.raises(RuntimeError):
            decoder.step(0)
        with pytest.raises(ValueError):
            decoder.prefill([])
        decoder.prefill([1])
        with pytest.raises(RuntimeError):
            decoder.prefill([1])


class TestSession:
    def test_emission_schedule_and_eos(self):
        model = StubModel(vocab=16)
        # prompt ends at 4 -> emits 5, 6, 7, ... ; eos=7 stops after 3 tokens
        request = Request("r0", prompt_tokens=[4], max_new_tokens=10, eos_token=7)
        session = GenerationSession(request, model)
        assert session.admit(step=0) == 5
        assert session.decode_step(step=1) == 6
        assert session.decode_step(step=2) == 7
        assert session.is_finished
        assert session.generated_tokens == [5, 6, 7]
        metrics = session.to_metrics()
        assert metrics.latency_steps == 2
        assert metrics.attention_density == 1.0

    def test_to_metrics_requires_finished(self):
        request = Request("r9", prompt_tokens=[0], max_new_tokens=4)
        session = GenerationSession(request, StubModel())
        with pytest.raises(RuntimeError):
            session.to_metrics()

    def test_budget_exhaustion_skips_trailing_forward(self):
        model = StubModel()
        request = Request("r1", prompt_tokens=[0], max_new_tokens=2)
        session = GenerationSession(request, model)
        session.admit(step=0)
        session.decode_step(step=1)
        assert session.is_finished
        # prefill + exactly one decode forward: the final token needs no pass
        assert model.forward_calls == 2

    def test_state_guards(self):
        request = Request("r2", prompt_tokens=[0], max_new_tokens=1)
        session = GenerationSession(request, StubModel())
        with pytest.raises(RuntimeError):
            session.decode_step(step=0)
        session.admit(step=0)
        assert session.is_finished  # budget of 1 is met by the prefill token
        with pytest.raises(RuntimeError):
            session.admit(step=1)

    def test_numpy_array_prompt_accepted(self):
        prompt = np.array([1, 2, 3])
        request = Request("np", prompt_tokens=prompt, max_new_tokens=2)
        session = GenerationSession(request, StubModel())
        assert session.admit(step=0) == 4

    def test_request_validation(self):
        with pytest.raises(ValueError):
            Request("bad", prompt_tokens=[], max_new_tokens=4)
        with pytest.raises(ValueError):
            Request("bad", prompt_tokens=[1], max_new_tokens=0)
        with pytest.raises(ValueError):
            Request("bad", prompt_tokens=[1], arrival_step=-1)


class TestScheduler:
    def test_respects_max_active_and_fifo(self):
        model = StubModel()
        sched = ContinuousBatchingScheduler(model, max_active=2)
        reqs = [Request(f"r{i}", prompt_tokens=[i], max_new_tokens=4) for i in range(5)]
        sessions = sched.submit_many(reqs)
        report = sched.run()
        assert report.max_concurrency == 2
        admits = {s.request.request_id: s.admitted_step for s in sessions}
        # FIFO: earlier submissions are never admitted after later ones
        order = [admits[f"r{i}"] for i in range(5)]
        assert order == sorted(order)
        assert report.total_tokens == 5 * 4

    def test_admission_is_earliest_arrival_first(self):
        # submitted out of arrival order: the earlier arrival must win the slot
        sched = ContinuousBatchingScheduler(StubModel(), max_active=1)
        blocker = Request("blocker", prompt_tokens=[0], max_new_tokens=10)
        late = Request("late", prompt_tokens=[0], max_new_tokens=2, arrival_step=5)
        early = Request("early", prompt_tokens=[0], max_new_tokens=2, arrival_step=1)
        sessions = {r.request_id: sched.submit(r) for r in (blocker, late, early)}
        sched.run()
        assert sessions["early"].admitted_step < sessions["late"].admitted_step

    def test_arrival_steps_are_honoured(self):
        sched = ContinuousBatchingScheduler(StubModel(), max_active=4)
        late = Request("late", prompt_tokens=[1], max_new_tokens=2, arrival_step=5)
        sched.submit(late)
        report = sched.run()
        metrics = report.requests[0]
        assert metrics.admitted_step >= 5
        assert metrics.queue_delay_steps == metrics.admitted_step - 5

    def test_tokens_identical_to_solo_generate(self):
        model = TransformerModel(get_model_config("tiny"), seed=0)
        requests = sample_requests(
            10, vocab_size=model.config.vocab_size, mean_interarrival=1.0, seed=3
        )
        sched = ContinuousBatchingScheduler(model, max_active=8)
        sessions = sched.submit_many(requests)
        report = sched.run()
        assert report.max_concurrency >= 2
        for request, session in zip(requests, sessions):
            solo = generate(
                model, request.prompt_tokens, max_new_tokens=request.max_new_tokens
            )
            assert session.generated_tokens == solo.generated_tokens, request.request_id

    def test_eight_concurrent_sessions_multiplex(self):
        sched = ContinuousBatchingScheduler(StubModel(), max_active=8)
        reqs = [
            Request(f"r{i}", prompt_tokens=[i % 8], max_new_tokens=6) for i in range(8)
        ]
        sched.submit_many(reqs)
        report = sched.run()
        assert report.max_concurrency == 8
        assert len(report.requests) == 8
        assert report.steps == 6  # all eight decode in lockstep
        assert report.throughput_tokens_per_step == pytest.approx(8.0)

    def test_report_summary_and_percentiles(self):
        sched = ContinuousBatchingScheduler(StubModel(), max_active=2)
        sched.submit_many(
            Request(f"r{i}", prompt_tokens=[0], max_new_tokens=3) for i in range(4)
        )
        report = sched.run()
        summary = report.summary()
        assert "throughput" in summary and "r0" in summary
        assert report.latency_percentile(95) >= report.latency_percentile(50)
        assert report.mean_queue_delay_steps >= 0.0

    def test_run_reports_truncated_when_not_drained(self):
        sched = ContinuousBatchingScheduler(StubModel(), max_active=1)
        sched.submit(Request("r0", prompt_tokens=[0], max_new_tokens=50))
        report = sched.run(max_steps=3)
        assert report.truncated
        assert report.leftover_active == 1
        assert report.steps == 3

    def test_rejects_bad_max_active(self):
        with pytest.raises(ValueError):
            ContinuousBatchingScheduler(StubModel(), max_active=0)

    def test_rejects_duplicate_request_ids(self):
        sched = ContinuousBatchingScheduler(StubModel())
        sched.submit(Request("dup", prompt_tokens=[0], max_new_tokens=1))
        with pytest.raises(ValueError, match="duplicate request_id"):
            sched.submit(Request("dup", prompt_tokens=[1], max_new_tokens=1))

    def test_deprecation_warning_fires_exactly_once_per_process(self, monkeypatch):
        import warnings

        from repro.serve import scheduler as scheduler_module

        # re-arm the once-per-process latch so this test is order-independent
        monkeypatch.setattr(scheduler_module, "_shim_deprecation_warned", False)
        with pytest.warns(DeprecationWarning):
            ContinuousBatchingScheduler(StubModel())
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            ContinuousBatchingScheduler(StubModel())
            ContinuousBatchingScheduler(StubModel())
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ], "the shim warning must fire once per process, not per instantiation"


class TestTraffic:
    def test_poisson_arrivals_monotone_and_seeded(self):
        a = poisson_arrival_steps(20, 2.0, seed=1)
        b = poisson_arrival_steps(20, 2.0, seed=1)
        assert np.array_equal(a, b)
        assert (np.diff(a) >= 0).all()
        assert poisson_arrival_steps(5, 0.0).tolist() == [0] * 5

    def test_sample_requests_reproducible_and_bounded(self):
        reqs = sample_requests(12, vocab_size=64, seed=9, max_prompt_len=16)
        again = sample_requests(12, vocab_size=64, seed=9, max_prompt_len=16)
        for r1, r2 in zip(reqs, again):
            assert r1.prompt_tokens == r2.prompt_tokens
            assert r1.arrival_step == r2.arrival_step
        for r in reqs:
            assert 1 <= len(r.prompt_tokens) <= 16
            assert max(r.prompt_tokens) < 64
            assert r.max_new_tokens >= 1

    def test_sample_requests_validation(self):
        with pytest.raises(KeyError):
            sample_requests(2, vocab_size=8, tasks=["NoSuchTask"])
        with pytest.raises(ValueError, match="tasks must not be empty"):
            sample_requests(2, vocab_size=8, tasks=[])
        with pytest.raises(ValueError):
            sample_requests(0, vocab_size=8)
        with pytest.raises(ValueError):
            poisson_arrival_steps(3, -1.0)


class TestServingBreakdown:
    def test_unshared_matches_default_components(self):
        from repro.eval import latency_components

        base = latency_components("Llama7B", 2048)
        shared1 = latency_components("Llama7B", 2048, shared_sessions=1)
        for key, value in base.items():
            assert shared1[key] == pytest.approx(value)
        with pytest.raises(ValueError):
            latency_components("Llama7B", 2048, shared_sessions=0)

    def test_weight_load_shrinks_with_sharing(self):
        from repro.eval import serving_breakdown_vs_sessions

        rows = serving_breakdown_vs_sessions(session_counts=(1, 4, 16))
        weights = [row["weight_load"] for row in rows]
        assert weights == sorted(weights, reverse=True)
        speedups = [row["speedup"] for row in rows]
        assert speedups == sorted(speedups)
        assert speedups[0] == pytest.approx(1.0)

    def test_speedup_baseline_is_unshared_even_without_count_one(self):
        from repro.eval import serving_breakdown_vs_sessions

        with_one = serving_breakdown_vs_sessions(session_counts=(1, 8))
        without_one = serving_breakdown_vs_sessions(session_counts=(8,))
        assert without_one[0]["speedup"] == pytest.approx(with_one[1]["speedup"])
        assert without_one[0]["speedup"] > 1.0
