"""Property-based correctness suite for the batched execution paths.

Seeded random sweeps (via hypothesis) over shapes, bit widths and group sizes
assert that every fast path in the engine stack is *bit-exact* against its
dense-integer or single-query reference:

* BRCR GEMV/GEMM vs ``W.astype(int64) @ X``, including negative weights and
  row counts that do not divide the group size;
* the vectorised plane GEMV vs the per-group reference loop, including every
  cost-model counter;
* batched BGPP selection vs running each query row through the single-query
  filter (every result field, including traffic/compute accounting);
* BSTC encode/decode round trips on non-divisible shapes;
* engine batched GEMM vs per-column GEMV execution.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bgpp import BGPPConfig, bgpp_select, bgpp_select_batch
from repro.core.brcr import (
    BRCRConfig,
    brcr_gemm,
    brcr_gemv,
    brcr_plane_gemv,
    brcr_plane_gemv_reference,
)
from repro.core.bstc import BSTCCodec, BSTCConfig
from repro.core.engine import MCBPEngine


def _signed_weights(rng, shape, bits):
    """Uniform signed integers within the sign-magnitude range of ``bits``."""
    hi = (1 << (bits - 1)) - 1
    return rng.integers(-hi, hi + 1, size=shape)


class TestBRCRProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_gemv_bit_exact_vs_dense(self, seed):
        rng = np.random.default_rng(seed)
        rows = int(rng.integers(1, 25))
        hidden = int(rng.integers(1, 49))
        bits = int(rng.integers(2, 9))
        group_size = int(rng.integers(1, 8))  # frequently does not divide rows
        weights = _signed_weights(rng, (rows, hidden), bits)
        acts = rng.integers(-128, 128, size=hidden)
        config = BRCRConfig(group_size=group_size, bits=bits)
        out, cost = brcr_gemv(weights, acts, config=config)
        assert np.array_equal(out, weights.astype(np.int64) @ acts)
        assert cost.total_additions >= 0

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_gemm_matches_columnwise_gemv(self, seed):
        rng = np.random.default_rng(seed)
        rows = int(rng.integers(1, 17))
        hidden = int(rng.integers(1, 33))
        n_cols = int(rng.integers(1, 6))
        bits = int(rng.integers(2, 9))
        group_size = int(rng.integers(1, 7))
        weights = _signed_weights(rng, (rows, hidden), bits)
        acts = rng.integers(-100, 100, size=(hidden, n_cols))
        config = BRCRConfig(group_size=group_size, bits=bits)
        batched, _ = brcr_gemm(weights, acts, config=config)
        assert np.array_equal(batched, weights.astype(np.int64) @ acts)
        for j in range(n_cols):
            single, _ = brcr_gemv(weights, acts[:, j], config=config)
            assert np.array_equal(batched[:, j], single)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_vectorised_plane_gemv_matches_reference(self, seed):
        rng = np.random.default_rng(seed)
        rows = int(rng.integers(1, 30))
        hidden = int(rng.integers(1, 64))
        group_size = int(rng.integers(1, 9))
        plane = rng.integers(0, 2, size=(rows, hidden)).astype(np.uint8)
        if rng.random() < 0.5:
            acts = rng.integers(-100, 100, size=hidden)
        else:
            acts = rng.integers(-100, 100, size=(hidden, int(rng.integers(1, 4))))
        fast_out, fast_cost = brcr_plane_gemv(plane, acts, group_size)
        ref_out, ref_cost = brcr_plane_gemv_reference(plane, acts, group_size)
        assert np.array_equal(fast_out, ref_out)
        assert fast_cost == ref_cost  # every counter, not just the total

    def test_memory_fallbacks_match_reference(self, monkeypatch):
        """Tiny budgets force the group-block AND gather-chunk paths; results must not move."""
        from repro.core import brcr as brcr_mod

        monkeypatch.setattr(brcr_mod, "_MAV_BUDGET_ELEMS", 8)
        monkeypatch.setattr(brcr_mod, "_GATHER_BUDGET_ELEMS", 4)
        rng = np.random.default_rng(0)
        plane = rng.integers(0, 2, size=(22, 40)).astype(np.uint8)
        for acts in (
            rng.integers(-50, 50, size=40),
            rng.integers(-50, 50, size=(40, 3)),
        ):
            fast_out, fast_cost = brcr_plane_gemv(plane, acts, 4)
            ref_out, ref_cost = brcr_plane_gemv_reference(plane, acts, 4)
            assert np.array_equal(fast_out, ref_out)
            assert fast_cost == ref_cost

    def test_plane_gemv_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            brcr_plane_gemv(np.zeros(4), np.zeros(4), 2)
        with pytest.raises(ValueError):
            brcr_plane_gemv(np.zeros((2, 4), dtype=np.uint8), np.zeros(3), 2)


class TestBGPPBatchProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_batch_bit_exact_vs_single_query(self, seed):
        rng = np.random.default_rng(seed)
        n_keys = int(rng.integers(1, 65))
        d = int(rng.integers(1, 33))
        n_queries = int(rng.integers(1, 7))
        key_bits = int(rng.integers(3, 9))
        config = BGPPConfig(
            rounds=int(rng.integers(1, 6)),
            radius=float(rng.uniform(0.0, 5.0)),
            alpha=float(rng.uniform(0.1, 1.0)),
            key_bits=key_bits,
            query_bits=int(rng.integers(2, key_bits + 1)),
            score_scale=float(rng.uniform(0.001, 1.0)),
            min_keys=int(rng.integers(1, 4)),
        )
        keys = _signed_weights(rng, (n_keys, d), key_bits)
        queries = _signed_weights(rng, (n_queries, d), key_bits)
        batch = bgpp_select_batch(queries, keys, config)
        assert len(batch) == n_queries
        for row, result in zip(queries, batch):
            single = bgpp_select(row, keys, config)
            assert np.array_equal(result.selected, single.selected)
            assert np.array_equal(result.estimated_scores, single.estimated_scores)
            assert result.survivors_per_round == single.survivors_per_round
            assert result.kv_bits_loaded == single.kv_bits_loaded
            assert result.mac_ops == single.mac_ops
            assert result.rounds_executed == single.rounds_executed
            assert result.early_terminated == single.early_terminated

    def test_batch_of_zero_queries(self):
        assert bgpp_select_batch(np.zeros((0, 4)), np.ones((8, 4))) == []

    def test_batch_against_empty_keys(self):
        results = bgpp_select_batch(np.ones((3, 4)), np.zeros((0, 4)))
        assert len(results) == 3
        for result in results:
            assert result.selected.size == 0
            assert result.kv_bits_loaded == 0


class TestBSTCProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_codec_roundtrip_bit_exact(self, seed):
        rng = np.random.default_rng(seed)
        rows = int(rng.integers(1, 40))
        cols = int(rng.integers(1, 40))
        bits = int(rng.integers(2, 9))
        group_size = int(rng.integers(1, 9))  # often does not divide rows
        threshold = float(rng.uniform(0.0, 1.0))
        weights = _signed_weights(rng, (rows, cols), bits)
        codec = BSTCCodec(
            BSTCConfig(group_size=group_size, bits=bits, sparsity_threshold=threshold)
        )
        encoded = codec.encode(weights)
        assert np.array_equal(codec.decode(encoded), weights)


class TestEngineBatchProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_engine_gemm_batch_exact_and_matches_columns(self, seed):
        rng = np.random.default_rng(seed)
        rows = int(rng.integers(1, 17))
        hidden = int(rng.integers(1, 33))
        n_cols = int(rng.integers(1, 5))
        bits = int(rng.integers(2, 9))
        weights = _signed_weights(rng, (rows, hidden), bits)
        acts = rng.integers(-100, 100, size=(hidden, n_cols))
        engine = MCBPEngine(group_size=int(rng.integers(1, 7)), weight_bits=bits)
        engine.register_weight("w", weights)
        batched = engine.gemm("w", acts)
        assert np.array_equal(batched, weights.astype(np.int64) @ acts)
        for j in range(n_cols):
            assert np.array_equal(engine.gemm("w", acts[:, j]), batched[:, j])

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_engine_batched_select_matches_single(self, seed):
        rng = np.random.default_rng(seed)
        n_keys = int(rng.integers(1, 49))
        d = int(rng.integers(1, 17))
        keys = _signed_weights(rng, (n_keys, d), 8)
        queries = _signed_weights(rng, (4, d), 8)
        batched_engine = MCBPEngine(bgpp_config=BGPPConfig(score_scale=0.01))
        single_engine = MCBPEngine(bgpp_config=BGPPConfig(score_scale=0.01))
        batch = batched_engine.select_keys(queries, keys)
        singles = [single_engine.select_keys(q, keys) for q in queries]
        assert isinstance(batch, list)
        alias_engine = MCBPEngine(bgpp_config=BGPPConfig(score_scale=0.01))
        alias = alias_engine.select_keys_batch(queries, keys)
        assert [a.selected.tolist() for a in alias] == [
            b.selected.tolist() for b in batch
        ]
        assert alias_engine.stats.kv_bits_loaded == batched_engine.stats.kv_bits_loaded
        for b, s in zip(batch, singles):
            assert np.array_equal(b.selected, s.selected)
            assert b.kv_bits_loaded == s.kv_bits_loaded
        # traffic accounting must agree too, whichever path accumulated it
        assert batched_engine.stats.kv_bits_loaded == single_engine.stats.kv_bits_loaded
        assert batched_engine.stats.keys_selected == single_engine.stats.keys_selected
        assert batched_engine.stats.kv_bits_dense == single_engine.stats.kv_bits_dense

    def test_sparse_attention_scores_accepts_batch(self):
        rng = np.random.default_rng(0)
        keys = _signed_weights(rng, (32, 8), 8)
        queries = _signed_weights(rng, (3, 8), 8)
        engine = MCBPEngine(bgpp_config=BGPPConfig(score_scale=0.01))
        scores, results = engine.sparse_attention_scores(queries, keys)
        assert scores.shape == (3, 32)
        assert len(results) == 3
        for i, (query, result) in enumerate(zip(queries, results)):
            single_engine = MCBPEngine(bgpp_config=BGPPConfig(score_scale=0.01))
            row, single = single_engine.sparse_attention_scores(query, keys)
            assert np.array_equal(scores[i], row)
            assert np.array_equal(result.selected, single.selected)
