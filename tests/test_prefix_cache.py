"""Cross-request KV prefix cache: sharing is invisible, books always balance.

Three layers of pinning for the arena's content-keyed prefix index (PR 6):

* ``TestPrefixIndex`` -- arena-level unit tests of the index itself:
  full-page-only registration, refcounted sharing, copy-on-write isolation,
  idle parking of registered pages, LRU eviction under ``max_pages``
  pressure, and the refcount conservation law
  ``page_faults - pages_freed == pages_in_use + cached_idle_pages``.
* ``TestPrefixCacheBitExact`` -- fuzzed shared-/divergent-prefix traces run
  through ``ServingEngine`` with ``prefix_cache`` on and off must emit
  bit-identical tokens *and* identical :class:`RequestMetrics` (attention
  counters included), with and without the BGPP predictor.  Caching is a
  pure execution detail.
* ``TestPrefixLifecycleFuzz`` / ``TestReservationBooks`` -- preempt, cancel
  and resume over shared pages never corrupt the refcount books, and
  :class:`ArenaBudgetAdmission` reservations (pinned per handle, charged
  only for the novel suffix when the cache is on) are released the moment a
  request retires, is evicted for real, or is cancelled -- including a
  cancel while still queued.

``TestMaxPagesValidation`` pins the companion bugfix: an explicit
``max_pages`` on an engine that resolves to no arena now raises instead of
being silently unenforced, and pairing ``ArenaBudgetAdmission`` with an
arena-less engine warns exactly once per process.
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.serve.policies as policies_module
from repro.core.bgpp import make_bgpp_predictor
from repro.model import (
    QuantizedTransformer,
    TransformerModel,
    generate,
    get_model_config,
)
from repro.serve import (
    ArenaBudgetAdmission,
    PagedKVArena,
    Request,
    ServingEngine,
    make_policies,
)

FUZZ = settings(max_examples=10, deadline=None, derandomize=True)


@pytest.fixture(scope="module")
def model():
    return QuantizedTransformer(
        TransformerModel(get_model_config("tiny"), seed=0), seed=1
    )


class StubModel:
    """Arena-less stand-in (no ``forward_batch``/``config``): next = last + 1."""

    def __init__(self, vocab: int = 16):
        self.vocab = vocab

    def new_cache(self):
        return []

    def forward(self, token_ids, caches=None, predictor=None):
        from repro.model.transformer import ForwardStats

        logits = np.zeros((len(token_ids), self.vocab))
        logits[-1, (int(token_ids[-1]) + 1) % self.vocab] = 1.0
        n = len(token_ids)
        return logits, ForwardStats(
            keys_attended=n, keys_total=n, tokens_processed=n
        )


# -- arena-level unit tests ----------------------------------------------------


def make_arena(page_size=4, initial_pages=8, max_pages=None, n_layers=2):
    return PagedKVArena(
        n_layers=n_layers,
        hidden_size=3,
        page_size=page_size,
        initial_pages=initial_pages,
        max_pages=max_pages,
    )


def fill_session(arena, tokens):
    """Open a session and append one deterministic KV row per token."""
    sid = arena.create_session()
    for layer in range(arena.n_layers):
        rows = np.array(
            [[t + 100 * layer + h for h in range(3)] for t in tokens],
            dtype=float,
        )
        arena.append(sid, layer, rows, rows + 0.5)
    return sid


def row_stats(tokens):
    att = np.arange(1, len(tokens) + 1, dtype=np.int64)
    return att, att.copy()


def assert_books_balanced(arena):
    s = arena.stats
    assert (
        s.page_faults - s.pages_freed == s.pages_in_use + s.cached_idle_pages
    )
    assert (
        len(arena._free) + s.pages_in_use + s.cached_idle_pages
        == arena.n_pages
    )


class TestPrefixIndex:
    def test_probe_misses_on_empty_index(self):
        arena = make_arena()
        assert arena.probe_prefix([1, 2, 3, 4, 5]) == 0

    def test_register_indexes_full_pages_only(self):
        arena = make_arena(page_size=4)
        tokens = list(range(10))  # 2 full pages + 2 spill rows
        sid = fill_session(arena, tokens)
        att, tot = row_stats(tokens)
        assert arena.register_prefix(sid, tokens, att, tot) == 2
        assert arena.probe_prefix(tokens) == 8
        # a probe never promises the final prompt row: its logits must be
        # computed live to sample the first token
        assert arena.probe_prefix(tokens[:4]) == 3
        assert arena.probe_prefix(tokens[:5]) == 4
        # a different head misses even when the tail matches
        assert arena.probe_prefix([99] + tokens[1:]) == 0
        assert_books_balanced(arena)

    def test_register_without_row_stats_is_a_noop(self):
        arena = make_arena()
        tokens = list(range(8))
        sid = fill_session(arena, tokens)
        assert arena.register_prefix(sid, tokens) == 0
        assert arena.probe_prefix(tokens) == 0

    def test_acquire_shares_pages_and_cow_isolates_appends(self):
        arena = make_arena(page_size=4)
        tokens = list(range(8))
        att, tot = row_stats(tokens)
        sid_a = fill_session(arena, tokens)
        arena.register_prefix(sid_a, tokens, att, tot)
        faults_before = arena.stats.page_faults

        sid_b = arena.create_session()
        n_reused, b_att, b_tot = arena.acquire_prefix(sid_b, tokens)
        assert n_reused == 7  # capped at len - 1
        assert b_att.tolist() == att[:7].tolist()
        assert b_tot.tolist() == tot[:7].tolist()
        # both pages are mapped, none allocated: sharing is free
        pages_a = list(arena._sessions[sid_a].pages)
        pages_b = list(arena._sessions[sid_b].pages)
        assert pages_b == pages_a
        assert arena.stats.page_faults == faults_before
        assert arena.stats.prefix_hits == 1
        assert arena.stats.prefix_tokens_reused == 7
        assert arena.stats.prefix_pages_shared == 2

        # B appends its 8th prompt row into the shared tail page -> COW
        for layer in range(arena.n_layers):
            row = np.array([[7 + 100 * layer + h for h in range(3)]], float)
            arena.append(sid_b, layer, row, row + 0.5)
        assert arena.stats.cow_copies == 1
        new_pages_b = arena._sessions[sid_b].pages
        assert new_pages_b[0] == pages_a[0]  # full head page still shared
        assert new_pages_b[1] != pages_a[1]  # tail was copied
        # the copy carried every layer's reused rows bit-exactly
        for layer in range(arena.n_layers):
            np.testing.assert_array_equal(
                arena._k[layer, new_pages_b[1]][:3],
                arena._k[layer, pages_a[1]][:3],
            )
        # A's tail page is untouched by B's append
        assert arena._k[0, pages_a[1]][3, 0] == tokens[7]
        assert_books_balanced(arena)
        arena.free(sid_a)
        arena.free(sid_b)
        assert arena.stats.pages_in_use == 0
        assert_books_balanced(arena)

    def test_freed_registered_pages_park_idle_and_revive(self):
        arena = make_arena(page_size=4)
        tokens = list(range(8))
        att, tot = row_stats(tokens)
        sid_a = fill_session(arena, tokens)
        arena.register_prefix(sid_a, tokens, att, tot)
        arena.free(sid_a)
        s = arena.stats
        # registered pages survive the free as idle cache, not free pages
        assert s.pages_in_use == 0
        assert s.pages_freed == 0
        assert s.cached_idle_pages == 2
        assert_books_balanced(arena)

        sid_b = arena.create_session()
        n_reused, _, _ = arena.acquire_prefix(sid_b, tokens)
        assert n_reused == 7
        # revival costs no page fault: the KV was still resident
        assert s.page_faults == 2
        assert s.pages_in_use == 2
        assert s.cached_idle_pages == 0
        arena.free(sid_b)
        assert s.cached_idle_pages == 2
        assert_books_balanced(arena)

    def test_idle_pages_evict_lru_under_max_pages_pressure(self):
        arena = make_arena(page_size=4, initial_pages=3, max_pages=3)
        old = [1, 2, 3, 4]
        new = [5, 6, 7, 8]
        for tokens in (old, new):  # `old` registered first -> older tick
            sid = fill_session(arena, tokens)
            att, tot = row_stats(tokens)
            arena.register_prefix(sid, tokens, att, tot)
            arena.free(sid)
        assert arena.stats.cached_idle_pages == 2

        # two fresh pages are needed but only one is free: the LRU idle
        # page (old's) is reclaimed, the newer survives
        fill_session(arena, list(range(20, 28)))
        assert arena.stats.prefix_evictions == 1
        assert arena.probe_prefix(old + [99]) == 0
        assert arena.probe_prefix(new + [99]) == 4
        assert_books_balanced(arena)

    def test_live_shared_pages_are_never_evicted(self):
        arena = make_arena(page_size=4, initial_pages=2, max_pages=2)
        tokens = [1, 2, 3, 4]
        sid_a = fill_session(arena, tokens)
        att, tot = row_stats(tokens)
        arena.register_prefix(sid_a, tokens, att, tot)
        # the registered page is live (A maps it); the only reclaimable
        # capacity is the one free page, so a two-page demand must raise
        # rather than evict KV out from under A
        with pytest.raises(RuntimeError, match="exhausted"):
            fill_session(arena, list(range(10, 18)))
        assert arena.probe_prefix(tokens + [99]) == 4

    def test_exhausted_error_reports_occupancy(self):
        arena = make_arena(page_size=4, initial_pages=1, max_pages=1)
        fill_session(arena, [1, 2, 3, 4])
        sid = arena.create_session()
        with pytest.raises(
            RuntimeError,
            match=r"1 pages in use, 0 free, 0 cached idle, max_pages=1",
        ):
            arena.append(sid, 0, np.ones((1, 3)), np.ones((1, 3)))

    def test_acquire_requires_an_empty_session(self):
        arena = make_arena(page_size=4)
        tokens = list(range(8))
        sid_a = fill_session(arena, tokens)
        att, tot = row_stats(tokens)
        arena.register_prefix(sid_a, tokens, att, tot)
        with pytest.raises(RuntimeError, match="empty session"):
            arena.acquire_prefix(sid_a, tokens)

    @FUZZ
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_random_share_release_cycles_keep_books_balanced(self, seed):
        rng = np.random.default_rng(seed)
        arena = make_arena(
            page_size=4, initial_pages=4, max_pages=int(rng.integers(24, 48))
        )
        bases = [rng.integers(0, 50, size=8).tolist() for _ in range(3)]
        live = []
        for _ in range(40):
            op = rng.random()
            # <= 6 live sessions x <= 3 pages stays under every max_pages
            # draw; idle cached pages beyond that are evictable on demand
            if (op < 0.5 or not live) and len(live) < 6:
                base = bases[int(rng.integers(0, 3))]
                cut = int(rng.integers(1, len(base) + 1))
                tokens = base[:cut] + rng.integers(
                    0, 50, size=int(rng.integers(0, 5))
                ).tolist()
                sid = arena.create_session()
                n_reused, _, _ = arena.acquire_prefix(sid, tokens)
                for layer in range(arena.n_layers):
                    rest = np.array(
                        [[t + h for h in range(3)] for t in tokens[n_reused:]],
                        dtype=float,
                    )
                    if len(rest):
                        arena.append(sid, layer, rest, rest)
                att, tot = row_stats(tokens)
                arena.register_prefix(sid, tokens, att, tot)
                live.append(sid)
            else:
                arena.free(live.pop(int(rng.integers(0, len(live)))))
            assert_books_balanced(arena)
        for sid in live:
            arena.free(sid)
        assert arena.stats.pages_in_use == 0
        assert_books_balanced(arena)


# -- engine-level bit-exactness ------------------------------------------------


def _shared_prefix_trace(rng, vocab):
    """Request mix: identical prompts, shared heads, and divergent outliers."""
    base = rng.integers(0, vocab, size=int(rng.integers(4, 14))).tolist()
    requests = []
    for i in range(int(rng.integers(3, 8))):
        roll = rng.random()
        if roll < 0.35:  # same head, novel tail
            prompt = base + rng.integers(
                0, vocab, size=int(rng.integers(0, 6))
            ).tolist()
        elif roll < 0.6:  # partial head overlap
            cut = int(rng.integers(1, len(base) + 1))
            prompt = base[:cut] + rng.integers(
                0, vocab, size=int(rng.integers(0, 4))
            ).tolist()
        elif roll < 0.8:  # bit-identical prompt
            prompt = list(base)
        else:  # fully divergent
            prompt = rng.integers(
                0, vocab, size=int(rng.integers(1, 10))
            ).tolist()
        requests.append(
            Request(
                request_id=f"r{i:02d}",
                prompt_tokens=prompt,
                max_new_tokens=int(rng.integers(1, 7)),
                arrival_step=int(rng.integers(0, 6)),
            )
        )
    return requests


def _run_engine(model, requests, max_active, prefix_cache, predictor=None):
    engine = ServingEngine(
        model,
        max_active=max_active,
        predictor=predictor,
        page_size=4,
        prefix_cache=prefix_cache,
    )
    handles = engine.submit_many(requests)
    report = engine.run()
    tokens = [h.generated_tokens for h in handles]
    metrics = [h.metrics() for h in handles]
    return tokens, metrics, engine, report


class TestPrefixCacheBitExact:
    @FUZZ
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_cache_on_equals_cache_off(self, model, seed):
        rng = np.random.default_rng(seed)
        requests = _shared_prefix_trace(rng, model.config.vocab_size)
        max_active = int(rng.integers(1, 9))
        off = _run_engine(model, requests, max_active, prefix_cache=False)
        on = _run_engine(model, requests, max_active, prefix_cache=True)
        assert on[0] == off[0], "tokens diverge with prefix_cache"
        assert on[1] == off[1], "metrics diverge with prefix_cache"
        s = on[2].arena.stats
        assert s.pages_in_use == 0
        assert s.page_faults == s.pages_freed + s.cached_idle_pages
        # the cache-off engine must never have touched the prefix index
        s_off = off[2].arena.stats
        assert s_off.prefix_hits == s_off.prefix_misses == 0
        assert s_off.cached_idle_pages == 0
        assert s_off.page_faults == s_off.pages_freed

    @FUZZ
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_cache_on_equals_cache_off_with_bgpp_predictor(self, model, seed):
        rng = np.random.default_rng(seed)
        requests = _shared_prefix_trace(rng, model.config.vocab_size)[:4]
        predictor = make_bgpp_predictor(alpha=0.7, rounds=3)
        off = _run_engine(model, requests, 4, False, predictor=predictor)
        on = _run_engine(model, requests, 4, True, predictor=predictor)
        assert on[0] == off[0]
        assert on[1] == off[1]

    def test_shared_prompts_actually_hit_and_share(self, model):
        """Guard against the cache silently degrading into a no-op."""
        prompt = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5]
        requests = [
            Request(f"r{i}", prompt_tokens=list(prompt), max_new_tokens=4,
                    arrival_step=2 * i)
            for i in range(3)
        ]
        tokens, _, engine, report = _run_engine(
            model, requests, max_active=2, prefix_cache=True
        )
        s = engine.arena.stats
        assert s.prefix_hits >= 2
        assert s.prefix_tokens_reused > 0
        assert s.prefix_pages_shared > 0
        assert report.arena["prefix_hits"] == s.prefix_hits
        # identical prompts decode identical continuations
        assert tokens[0] == tokens[1] == tokens[2]
        solo = generate(model, prompt, max_new_tokens=4).generated_tokens
        assert tokens[0] == solo

    def test_cache_hit_reduces_prefill_compute(self, model):
        """A full-prefix hit must skip the reused rows' forward compute."""
        prompt = list(range(1, 13))  # 3 full pages on page_size=4
        requests = [
            Request("a", prompt_tokens=list(prompt), max_new_tokens=3,
                    arrival_step=0),
            Request("b", prompt_tokens=list(prompt), max_new_tokens=3,
                    arrival_step=6),  # after `a` retired: pages are idle
        ]
        tokens, metrics, engine, _ = _run_engine(
            model, requests, max_active=2, prefix_cache=True
        )
        assert tokens[0] == tokens[1]
        # attention accounting of the hit run matches the cold run exactly:
        # the skipped rows' counters were credited from the registered stats
        assert metrics[1].keys_attended == metrics[0].keys_attended
        assert metrics[1].keys_total == metrics[0].keys_total
        assert metrics[1].n_generated == metrics[0].n_generated
        s = engine.arena.stats
        assert s.prefix_tokens_reused == 11  # 12-token prompt, last row live
        # b mapped a's idle pages: fewer faults than two cold prefills
        assert s.page_faults < 2 * engine.arena.pages_needed(12 + 2)


# -- lifecycle fuzz over shared pages ------------------------------------------


def _priority_trace(rng, vocab):
    base = rng.integers(0, vocab, size=8).tolist()
    requests = []
    for i in range(int(rng.integers(4, 9))):
        shared = rng.random() < 0.6
        prompt = (
            base + rng.integers(0, vocab, size=int(rng.integers(0, 4))).tolist()
            if shared
            else rng.integers(0, vocab, size=int(rng.integers(1, 9))).tolist()
        )
        requests.append(
            Request(
                request_id=f"p{i:02d}",
                prompt_tokens=prompt,
                max_new_tokens=int(rng.integers(1, 6)),
                arrival_step=int(rng.integers(0, 8)),
                priority=int(rng.integers(0, 3)),
            )
        )
    return requests


class TestPrefixLifecycleFuzz:
    @FUZZ
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_preempt_cancel_resume_keep_refcount_books_balanced(
        self, model, seed
    ):
        rng = np.random.default_rng(seed)
        requests = _priority_trace(rng, model.config.vocab_size)
        admission, scheduling = make_policies("priority")
        engine = ServingEngine(
            model,
            max_active=int(rng.integers(1, 4)),
            admission=admission,
            scheduling=scheduling,
            page_size=4,
            prefix_cache=True,
        )
        handles = engine.submit_many(requests)
        to_cancel = {
            int(i): int(rng.integers(0, 12))
            for i in rng.choice(
                len(handles), size=int(rng.integers(0, 3)), replace=False
            )
        }
        steps = 0
        while engine.has_work and steps < 500:
            for idx, at in to_cancel.items():
                if engine.current_step == at:
                    engine.cancel(handles[idx])
            engine.step()
            steps += 1
        assert not engine.has_work

        arena = engine.arena
        s = arena.stats
        assert s.pages_in_use == 0
        assert s.page_faults == s.pages_freed + s.cached_idle_pages
        assert len(arena._free) + s.cached_idle_pages == arena.n_pages
        assert s.sessions_opened == s.sessions_freed
        # surviving requests got exactly their unpreempted, uncached tokens
        for idx, handle in enumerate(handles):
            if handle.cancelled:
                continue
            expected = generate(
                model,
                requests[idx].prompt_tokens,
                max_new_tokens=requests[idx].max_new_tokens,
            ).generated_tokens
            assert handle.generated_tokens == expected


class TestReservationBooks:
    def test_cancel_while_queued_releases_reservation_immediately(self, model):
        engine = ServingEngine(
            model,
            max_active=1,
            admission=ArenaBudgetAdmission(watermark=1.0),
            page_size=4,
            max_pages=64,
        )
        handles = engine.submit_many(
            Request(f"q{i}", prompt_tokens=[1, 2, 3], max_new_tokens=3,
                    arrival_step=0)
            for i in range(4)
        )
        engine.step()
        assert handles[0].reserved_pages is not None  # admitted: charged
        assert all(h.reserved_pages is None for h in handles[1:])  # queued
        assert engine.cancel(handles[1])
        assert handles[1].reserved_pages is None
        engine.run()
        assert all(h.reserved_pages is None for h in handles)

    def test_cancel_while_active_stops_the_charge(self, model):
        engine = ServingEngine(
            model,
            max_active=2,
            admission=ArenaBudgetAdmission(watermark=1.0),
            page_size=4,
            max_pages=64,
        )
        handles = engine.submit_many(
            Request(f"a{i}", prompt_tokens=[4, 5, 6], max_new_tokens=8,
                    arrival_step=0)
            for i in range(2)
        )
        engine.step()
        assert all(h.reserved_pages is not None for h in handles)
        engine.cancel(handles[0])
        assert handles[0].reserved_pages is None
        engine.run()
        assert all(h.reserved_pages is None for h in handles)

    def test_prefix_hit_is_charged_only_the_novel_suffix(self, model):
        engine = ServingEngine(
            model,
            max_active=2,
            admission=ArenaBudgetAdmission(watermark=1.0),
            page_size=4,
            max_pages=64,
            prefix_cache=True,
        )
        prompt = list(range(1, 13))  # 3 full pages -> 2 reusable (last row live)
        first = engine.submit(
            Request("warm", prompt_tokens=list(prompt), max_new_tokens=2,
                    arrival_step=0)
        )
        engine.run()
        assert first.done
        lifetime = engine.arena.pages_needed(len(prompt) + 2 - 1)
        second = engine.submit(
            Request("hit", prompt_tokens=list(prompt), max_new_tokens=2,
                    arrival_step=engine.current_step)
        )
        engine.step()
        # probe covers 11 of 12 prompt rows -> 2 whole pages discounted
        assert second.reserved_pages == lifetime - 2
        engine.run()
        assert second.generated_tokens == first.generated_tokens

    @FUZZ
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_fuzzed_cancels_drain_reservations_to_zero(self, model, seed):
        rng = np.random.default_rng(seed)
        requests = _shared_prefix_trace(rng, model.config.vocab_size)
        engine = ServingEngine(
            model,
            max_active=int(rng.integers(1, 4)),
            admission=ArenaBudgetAdmission(
                watermark=float(rng.uniform(0.5, 1.0))
            ),
            page_size=4,
            max_pages=128,
            prefix_cache=bool(rng.integers(0, 2)),
        )
        handles = engine.submit_many(requests)
        cancel_at = {
            int(i): int(rng.integers(0, 10))
            for i in rng.choice(
                len(handles),
                size=int(rng.integers(0, len(handles))),
                replace=False,
            )
        }
        steps = 0
        while engine.has_work and steps < 500:
            for idx, at in cancel_at.items():
                if engine.current_step == at:
                    engine.cancel(handles[idx])
            engine.step()
            steps += 1
        assert not engine.has_work
        assert all(h.reserved_pages is None for h in handles)
        assert engine.arena.stats.pages_in_use == 0


# -- max_pages / arena-less misconfiguration (companion bugfix) ----------------


class TestMaxPagesValidation:
    def test_explicit_max_pages_without_arena_support_raises(self):
        with pytest.raises(ValueError, match="max_pages"):
            ServingEngine(StubModel(), max_pages=8)

    def test_explicit_max_pages_with_arena_false_raises(self, model):
        with pytest.raises(ValueError, match="max_pages"):
            ServingEngine(model, arena=False, max_pages=8)

    def test_max_pages_with_external_arena_instance_raises(self, model):
        arena = PagedKVArena(
            n_layers=model.config.n_layers,
            hidden_size=model.config.hidden_size,
            page_size=4,
            initial_pages=8,
            max_pages=8,
        )
        with pytest.raises(ValueError, match="PagedKVArena instance"):
            ServingEngine(model, arena=arena, max_pages=8)

    def test_prefix_cache_without_arena_raises(self):
        with pytest.raises(ValueError, match="prefix_cache"):
            ServingEngine(StubModel(), prefix_cache=True)

    def test_bounded_arena_engine_still_builds(self, model):
        engine = ServingEngine(model, max_pages=8, page_size=4)
        assert engine.arena is not None
        assert engine.arena.max_pages == 8

    def test_arena_less_budget_admission_warns_exactly_once(
        self, model, monkeypatch
    ):
        monkeypatch.setattr(policies_module, "_arena_budget_warned", False)
        engine = ServingEngine(StubModel(), admission=ArenaBudgetAdmission())
        with pytest.warns(RuntimeWarning, match="no KV arena"):
            engine.submit(
                Request("w0", prompt_tokens=[1, 2], max_new_tokens=2)
            )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            engine.submit(
                Request("w1", prompt_tokens=[1, 2], max_new_tokens=2)
            )
        engine.run()

    def test_arena_backed_budget_admission_does_not_warn(self, model, monkeypatch):
        monkeypatch.setattr(policies_module, "_arena_budget_warned", False)
        engine = ServingEngine(
            model, admission=ArenaBudgetAdmission(), max_pages=64, page_size=4
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            engine.submit(
                Request("ok", prompt_tokens=[1, 2, 3], max_new_tokens=2)
            )
        engine.run()
