"""Unit tests for the quantisation substrate (repro.quant)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant import (
    ActivationCalibrator,
    QuantizedLinear,
    calibrate_linear,
    dequantize,
    fold_scale_bias,
    quantize_activation_per_tensor,
    quantize_weight_per_channel,
    quantize_with_params,
    quantized_matmul,
    symmetric_max_range,
)
from repro.sparsity.synthetic import gaussian_weights


class TestWeightQuantisation:
    def test_range_respected(self):
        w = gaussian_weights((16, 64), seed=0)
        q, params = quantize_weight_per_channel(w, bits=8)
        assert q.max() <= 127 and q.min() >= -127
        assert params.symmetric

    def test_int4_range(self):
        w = gaussian_weights((8, 32), seed=1)
        q, _ = quantize_weight_per_channel(w, bits=4)
        assert q.max() <= 7 and q.min() >= -7

    def test_per_channel_scales_independent(self):
        w = np.vstack([np.ones(8) * 0.1, np.ones(8) * 10.0])
        q, params = quantize_weight_per_channel(w, bits=8)
        # both rows should use the full range despite 100x magnitude difference
        assert q[0].max() == 127
        assert q[1].max() == 127
        assert params.scale[1] > params.scale[0]

    def test_roundtrip_error_bounded_by_scale(self):
        w = gaussian_weights((8, 128), seed=2)
        q, params = quantize_weight_per_channel(w, bits=8)
        recon = dequantize(q, params)
        max_err = np.abs(recon - w).max()
        assert max_err <= params.scale.max() * 0.5 + 1e-12

    def test_clip_percentile_narrows_scale(self):
        w = gaussian_weights((8, 512), seed=3)
        _, ptq = quantize_weight_per_channel(w, bits=8)
        _, qat = quantize_weight_per_channel(w, bits=8, clip_percentile=99.0)
        assert qat.scale.mean() <= ptq.scale.mean()

    def test_symmetric_max_range(self):
        assert symmetric_max_range(8) == 127
        assert symmetric_max_range(4) == 7


class TestActivationQuantisation:
    def test_asymmetric_covers_range(self):
        x = np.linspace(-1.0, 3.0, 100)
        q, params = quantize_activation_per_tensor(x, bits=8)
        recon = dequantize(q, params)
        assert np.abs(recon - x).max() < (4.0 / 255) * 0.51 + 1e-9

    def test_zero_point_nonzero_for_skewed_range(self):
        x = np.linspace(0.0, 10.0, 50)
        _, params = quantize_activation_per_tensor(x, bits=8)
        assert params.zero_point != 0

    def test_observed_range_override(self):
        x = np.array([0.5])
        _, params = quantize_activation_per_tensor(x, observed_range=(-2.0, 2.0))
        assert params.scale == pytest.approx(4.0 / 255)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=-50, max_value=50), min_size=2, max_size=64))
    def test_quantise_dequantise_error_bounded(self, values):
        x = np.array(values)
        q, params = quantize_activation_per_tensor(x, bits=8)
        recon = dequantize(q, params)
        span = max(x.max(), 0) - min(x.min(), 0)
        assert np.abs(recon - x).max() <= span / 255.0 + 1e-9


class TestQuantizedMatmul:
    def _make_layer(self, seed=0, out_features=8, in_features=32):
        rng = np.random.default_rng(seed)
        w = gaussian_weights((out_features, in_features), seed=seed)
        x_calib = rng.normal(size=(16, in_features))
        return w, x_calib, calibrate_linear(w, x_calib)

    def test_fold_scale_bias_shapes(self):
        w, x, layer = self._make_layer()
        scale, bias = fold_scale_bias(layer.weight_params, layer.activation_params, layer.weight_q)
        assert scale.shape == (8,)
        assert bias.shape == (8,)

    def test_quantized_matmul_close_to_float(self):
        w, x_calib, layer = self._make_layer(seed=1)
        x = np.random.default_rng(2).normal(size=32)
        xq = layer.quantize_input(x)
        out, _ = quantized_matmul(layer.weight_q, xq, layer.weight_params, layer.activation_params)
        ref = w @ x
        rel_err = np.abs(out - ref).max() / (np.abs(ref).max() + 1e-9)
        assert rel_err < 0.05

    def test_brcr_path_matches_plain_integer_path(self):
        w, x_calib, layer = self._make_layer(seed=3)
        x = np.random.default_rng(4).normal(size=32)
        xq = layer.quantize_input(x)
        plain, _ = quantized_matmul(
            layer.weight_q, xq, layer.weight_params, layer.activation_params
        )
        brcr, cost = quantized_matmul(
            layer.weight_q, xq, layer.weight_params, layer.activation_params, use_brcr=True
        )
        assert np.allclose(plain, brcr)
        assert cost is not None and cost.total_additions > 0

    def test_forward_preserves_leading_shape(self):
        w, x_calib, layer = self._make_layer(seed=5)
        x = np.random.default_rng(6).normal(size=(3, 5, 32))
        out, _ = layer.forward(x)
        assert out.shape == (3, 5, 8)

    def test_forward_with_bias(self):
        w, x_calib, layer = self._make_layer(seed=7)
        layer.bias = np.ones(8)
        x = np.zeros(32)
        out, _ = layer.forward(x)
        assert np.allclose(out, layer.bias, atol=0.2)

    def test_weight_float_close_to_original(self):
        w, _, layer = self._make_layer(seed=8)
        assert np.abs(layer.weight_float() - w).max() < layer.weight_params.scale.max()


class TestCalibrator:
    def test_observes_running_range(self):
        calib = ActivationCalibrator()
        calib.observe(np.array([-1.0, 2.0]))
        calib.observe(np.array([0.5, 3.0]))
        assert calib.observed_range == (-1.0, 3.0)

    def test_empty_calibrator_range(self):
        assert ActivationCalibrator().observed_range == (0.0, 0.0)

    def test_percentile_clipping(self):
        rng = np.random.default_rng(0)
        calib = ActivationCalibrator(percentile=99.0)
        data = rng.normal(size=10000)
        data[0] = 100.0  # outlier
        calib.observe(data)
        assert calib.observed_range[1] < 10.0

    def test_quant_params_emitted(self):
        calib = ActivationCalibrator()
        calib.observe(np.linspace(-1, 1, 10))
        params = calib.quant_params()
        assert params.bits == 8
        assert not params.symmetric
