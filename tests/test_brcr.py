"""Unit and property tests for BRCR (repro.core.brcr)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.brcr import (
    BRCRConfig,
    BRCRCost,
    bit_serial_additions,
    brcr_additions,
    brcr_gemm,
    brcr_gemv,
    brcr_group_gemv,
    brcr_plane_gemv,
    column_codes,
    dense_additions,
    enumeration_matrix,
    group_merge_reduction,
    merge_activations,
    reconstruct_outputs,
    unique_column_fraction,
    value_sparse_additions,
)
from repro.sparsity.synthetic import gaussian_int_weights


class TestColumnCodes:
    def test_paper_example_codes(self):
        # Fig. 7(b): third and fourth columns share the code 010 (= 2)
        group = np.array(
            [
                [0, 1, 0, 0, 1],
                [0, 1, 1, 1, 0],
                [0, 0, 0, 0, 1],
            ]
        )
        codes = column_codes(group)
        assert codes.tolist() == [0, 3, 2, 2, 5]

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            column_codes(np.array([1, 0, 1]))

    def test_row_zero_is_lsb(self):
        group = np.array([[1], [0]])
        assert column_codes(group).tolist() == [1]
        group = np.array([[0], [1]])
        assert column_codes(group).tolist() == [2]


class TestEnumerationMatrix:
    def test_shape(self):
        enum = enumeration_matrix(4)
        assert enum.shape == (4, 16)

    def test_column_is_binary_expansion(self):
        enum = enumeration_matrix(3)
        # column 5 = 101 -> rows (LSB first) 1, 0, 1
        assert enum[:, 5].tolist() == [1, 0, 1]

    def test_each_row_has_half_ones(self):
        enum = enumeration_matrix(4)
        assert (enum.sum(axis=1) == 8).all()

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            enumeration_matrix(0)


class TestMergeActivations:
    def test_paper_example_merge(self):
        # Fig. 4(c): LSB matrix columns 3rd==1st pattern etc.; here verify the
        # MAV accumulates activations of equal-coded columns.
        codes = np.array([0, 3, 2, 2, 5])
        acts = np.array([10, 20, 30, 40, 50])
        mav, cost = merge_activations(codes, acts, group_size=3)
        assert mav[2] == 70  # x2 + x3 merged
        assert mav[3] == 20
        assert mav[5] == 50
        assert mav[0] == 0  # zero column skipped
        assert cost.columns_skipped == 1
        assert cost.merge_additions == 1  # only the 2/2 collision costs an add

    def test_gemm_shape(self):
        codes = np.array([1, 1, 2])
        acts = np.arange(6).reshape(3, 2)
        mav, cost = merge_activations(codes, acts, group_size=2)
        assert mav.shape == (4, 2)
        assert mav[1].tolist() == [0 + 2, 1 + 3]

    def test_rejects_out_of_range_codes(self):
        with pytest.raises(ValueError):
            merge_activations(np.array([4]), np.array([1]), group_size=2)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            merge_activations(np.array([1, 2]), np.array([1]), group_size=2)


class TestReconstruction:
    def test_reconstruction_equals_enumeration_product(self):
        rng = np.random.default_rng(0)
        mav = rng.integers(-10, 10, size=16)
        outputs, _ = reconstruct_outputs(mav, group_size=4)
        assert np.array_equal(outputs, enumeration_matrix(4) @ mav)

    def test_cost_bounded_by_paper_formula(self):
        rng = np.random.default_rng(1)
        mav = rng.integers(1, 10, size=16)
        _, cost = reconstruct_outputs(mav, group_size=4)
        assert cost.reconstruction_additions <= 4 * 2 ** 3

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            reconstruct_outputs(np.zeros(5), group_size=3)


class TestGroupGEMV:
    def test_exactness_small_group(self):
        rng = np.random.default_rng(2)
        group = rng.integers(0, 2, size=(4, 32))
        acts = rng.integers(-50, 50, size=32)
        out, _ = brcr_group_gemv(group, acts)
        assert np.array_equal(out, group.astype(np.int64) @ acts)

    def test_all_zero_group_costs_nothing(self):
        group = np.zeros((4, 16), dtype=np.uint8)
        acts = np.arange(16)
        out, cost = brcr_group_gemv(group, acts)
        assert not out.any()
        assert cost.total_additions == 0


class TestPlaneGEMV:
    def test_non_multiple_rows(self):
        rng = np.random.default_rng(3)
        plane = rng.integers(0, 2, size=(10, 20))  # 10 rows, group size 4
        acts = rng.integers(-5, 5, size=20)
        out, _ = brcr_plane_gemv(plane, acts, group_size=4)
        assert np.array_equal(out, plane.astype(np.int64) @ acts)

    def test_rejects_1d_plane(self):
        with pytest.raises(ValueError):
            brcr_plane_gemv(np.array([1, 0]), np.array([1, 2]), group_size=2)


class TestBRCRGemv:
    def test_matches_dense_int_gemv(self):
        weights = gaussian_int_weights((32, 128), seed=0)
        x = np.random.default_rng(1).integers(-128, 128, size=128)
        out, cost = brcr_gemv(weights, x)
        assert np.array_equal(out, weights.astype(np.int64) @ x)
        assert cost.total_additions > 0

    def test_matches_dense_gemm(self):
        weights = gaussian_int_weights((16, 64), seed=5)
        x = np.random.default_rng(2).integers(-64, 64, size=(64, 3))
        out, _ = brcr_gemm(weights, x)
        assert np.array_equal(out, weights.astype(np.int64) @ x)

    def test_twos_complement_format(self):
        rng = np.random.default_rng(7)
        weights = rng.integers(-128, 128, size=(8, 32))
        x = rng.integers(-10, 10, size=32)
        out, _ = brcr_gemv(weights, x, BRCRConfig(fmt="twos_complement"))
        assert np.array_equal(out, weights.astype(np.int64) @ x)

    @pytest.mark.parametrize("group_size", [1, 2, 3, 4, 6, 8])
    def test_group_size_does_not_change_result(self, group_size):
        weights = gaussian_int_weights((12, 48), seed=11)
        x = np.random.default_rng(3).integers(-20, 20, size=48)
        out, _ = brcr_gemv(weights, x, BRCRConfig(group_size=group_size))
        assert np.array_equal(out, weights.astype(np.int64) @ x)

    def test_int4_weights(self):
        weights = gaussian_int_weights((16, 64), bits=4, seed=13)
        x = np.random.default_rng(4).integers(-8, 8, size=64)
        out, _ = brcr_gemv(weights, x, BRCRConfig(bits=4))
        assert np.array_equal(out, weights.astype(np.int64) @ x)

    def test_fewer_additions_than_dense_bit_serial(self):
        weights = gaussian_int_weights((64, 512), seed=21)
        x = np.random.default_rng(5).integers(-128, 128, size=512)
        _, cost = brcr_gemv(weights, x)
        dense_bit_serial = 8 * weights.size  # one add per weight bit
        assert cost.total_additions < dense_bit_serial

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            BRCRConfig(group_size=0)
        with pytest.raises(ValueError):
            BRCRConfig(bits=1)

    def test_rejects_1d_weights(self):
        with pytest.raises(ValueError):
            brcr_gemv(np.array([1, 2]), np.array([1, 2]))

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=24),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_exactness_property(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        weights = rng.integers(-127, 128, size=(rows, cols))
        x = rng.integers(-128, 128, size=cols)
        out, _ = brcr_gemv(weights, x)
        assert np.array_equal(out, weights.astype(np.int64) @ x)


class TestCostModel:
    def test_cost_addition_operator(self):
        a = BRCRCost(merge_additions=3, reconstruction_additions=2)
        b = BRCRCost(merge_additions=1, columns_skipped=4)
        c = a + b
        assert c.merge_additions == 4
        assert c.total_additions == 6
        assert c.columns_skipped == 4

    def test_paper_example_reduction_factors(self):
        # H ~ 4k, bs ~ 0.70, m = 4 (paper §3.1): ~12.1x vs value-sparse and
        # ~3.8x vs naive bit-serial computing.
        hidden, bits, m, bs, vs = 4096, 8, 4, 0.70, 0.07
        brcr = brcr_additions(hidden, bits, m, bs)
        bsc = bit_serial_additions(hidden, bits, m, bs)
        value = value_sparse_additions(hidden, bits, m, vs)
        assert bsc / brcr == pytest.approx(3.8, rel=0.1)
        assert value / brcr == pytest.approx(12.1, rel=0.1)

    def test_dense_additions(self):
        assert dense_additions(10, 4, bits=2) == 80

    def test_brcr_additions_scales_with_groups(self):
        single = brcr_additions(1024, 8, 4, 0.7)
        many = brcr_additions(1024, 8, 4, 0.7, rows=16)
        assert many == pytest.approx(4 * single)


class TestRepetitionStatistics:
    def test_unique_fraction_lower_for_small_groups(self):
        weights = gaussian_int_weights((64, 1024), seed=2)
        from repro.core.bitslice import to_bitslices

        plane = to_bitslices(weights, bits=8)[2]
        full = unique_column_fraction(plane, group_size=None)
        grouped = unique_column_fraction(plane, group_size=4)
        assert grouped < full

    def test_group_merge_reduction_favours_group_wise(self):
        weights = gaussian_int_weights((128, 1024), seed=4)
        full, group = group_merge_reduction(weights, group_size=4)
        assert group > full
        assert full == pytest.approx(1.0, abs=0.15)
        assert group > 3.0  # paper reports ~5x on average

    def test_unique_fraction_empty_plane(self):
        assert unique_column_fraction(np.zeros((4, 0), dtype=np.uint8), 4) == 0.0
