"""Unit and property tests for BGPP progressive prediction (repro.core.bgpp)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bgpp import (
    BGPPConfig,
    attention_sparsity,
    bgpp_select,
    bgpp_select_batch,
    exact_topk,
    make_bgpp_predictor,
    make_value_topk_predictor,
    selection_recall,
    value_topk_select,
)
from repro.workloads.profile import synthetic_attention_tensors


@pytest.fixture(scope="module")
def attention_data():
    queries, keys, scale = synthetic_attention_tensors(256, 64, seed=42)
    return queries, keys, scale


class TestBGPPConfig:
    def test_alpha_scalar(self):
        config = BGPPConfig(alpha=0.5)
        assert config.alpha_for_round(0) == 0.5
        assert config.alpha_for_round(5) == 0.5

    def test_alpha_schedule(self):
        config = BGPPConfig(alpha=[0.9, 0.7, 0.5])
        assert config.alpha_for_round(0) == 0.9
        assert config.alpha_for_round(2) == 0.5
        assert config.alpha_for_round(9) == 0.5  # clamps to last entry

    def test_validation(self):
        with pytest.raises(ValueError):
            BGPPConfig(rounds=0)
        with pytest.raises(ValueError):
            BGPPConfig(radius=-1)
        with pytest.raises(ValueError):
            BGPPConfig(min_keys=0)


class TestBGPPSelect:
    def test_returns_sorted_unique_indices(self, attention_data):
        queries, keys, scale = attention_data
        result = bgpp_select(queries[0], keys, BGPPConfig(score_scale=scale))
        assert np.array_equal(result.selected, np.unique(result.selected))
        assert result.selected.size >= 1
        assert result.selected.max() < keys.shape[0]

    def test_alpha_one_keeps_more_than_aggressive(self, attention_data):
        queries, keys, scale = attention_data
        generous = bgpp_select(
            queries[0], keys, BGPPConfig(alpha=1.0, radius=10.0, score_scale=scale)
        )
        aggressive = bgpp_select(
            queries[0], keys, BGPPConfig(alpha=0.3, score_scale=scale)
        )
        assert generous.selected.size >= aggressive.selected.size

    def test_kv_traffic_less_than_full_precision(self, attention_data):
        queries, keys, scale = attention_data
        result = bgpp_select(queries[0], keys, BGPPConfig(score_scale=scale))
        full_bits = keys.size * 8
        assert result.kv_bits_loaded < full_bits

    def test_traffic_below_value_topk_for_aggressive_filter(self, attention_data):
        queries, keys, scale = attention_data
        result = bgpp_select(
            queries[0], keys, BGPPConfig(rounds=3, alpha=0.5, score_scale=scale)
        )
        baseline = value_topk_select(queries[0], keys, k=64, prediction_bits=4)
        assert result.kv_bits_loaded < baseline.kv_bits_loaded

    def test_recall_of_important_keys(self, attention_data):
        queries, keys, scale = attention_data
        recalls = []
        for q in queries:
            result = bgpp_select(
                q, keys, BGPPConfig(rounds=3, alpha=0.7, score_scale=scale)
            )
            reference = exact_topk(q, keys, 16)
            recalls.append(selection_recall(result.selected, reference))
        assert np.mean(recalls) > 0.7

    def test_survivors_monotonically_non_increasing(self, attention_data):
        queries, keys, scale = attention_data
        result = bgpp_select(queries[1], keys, BGPPConfig(rounds=4, score_scale=scale))
        survivors = result.survivors_per_round
        assert all(a >= b for a, b in zip(survivors, survivors[1:]))

    def test_min_keys_respected(self, attention_data):
        queries, keys, scale = attention_data
        result = bgpp_select(
            queries[0],
            keys,
            BGPPConfig(alpha=0.0, radius=100.0, score_scale=scale, min_keys=5),
        )
        assert result.selected.size >= 5

    def test_empty_keys(self):
        result = bgpp_select(np.array([1, 2]), np.zeros((0, 2), dtype=np.int64))
        assert result.selected.size == 0
        assert result.kv_bits_loaded == 0

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            bgpp_select(np.array([1, 2, 3]), np.zeros((4, 2), dtype=np.int64))
        with pytest.raises(ValueError):
            bgpp_select(np.zeros((2, 3), dtype=np.int64), np.zeros((4, 2), dtype=np.int64))
        with pytest.raises(ValueError):
            bgpp_select(np.zeros((2, 2, 2), dtype=np.int64), np.zeros((4, 2), dtype=np.int64))

    def test_two_dim_query_dispatches_to_batch(self, attention_data):
        queries, keys, scale = attention_data
        results = bgpp_select(queries[:4], keys, BGPPConfig(score_scale=scale))
        assert isinstance(results, list) and len(results) == 4
        for q, res in zip(queries[:4], results):
            single = bgpp_select(q, keys, BGPPConfig(score_scale=scale))
            assert np.array_equal(res.selected, single.selected)
            assert res.kv_bits_loaded == single.kv_bits_loaded

    def test_batch_helper(self, attention_data):
        queries, keys, scale = attention_data
        results = bgpp_select_batch(queries[:3], keys, BGPPConfig(score_scale=scale))
        assert len(results) == 3
        sparsity = attention_sparsity(results, keys.shape[0])
        assert 0.0 <= sparsity <= 1.0

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_selected_indices_always_valid(self, seed):
        rng = np.random.default_rng(seed)
        keys = rng.integers(-127, 128, size=(32, 16))
        q = rng.integers(-127, 128, size=16)
        result = bgpp_select(q, keys, BGPPConfig(score_scale=0.01))
        assert result.selected.size >= 1
        assert result.selected.min() >= 0
        assert result.selected.max() < 32


class TestValueTopK:
    def test_selects_k_keys(self, attention_data):
        queries, keys, _ = attention_data
        result = value_topk_select(queries[0], keys, k=10)
        assert result.selected.size == 10

    def test_k_larger_than_keys_clamped(self):
        keys = np.ones((4, 8), dtype=np.int64)
        result = value_topk_select(np.ones(8, dtype=np.int64), keys, k=100)
        assert result.selected.size == 4

    def test_traffic_scales_with_prediction_bits(self, attention_data):
        queries, keys, _ = attention_data
        four = value_topk_select(queries[0], keys, k=10, prediction_bits=4)
        eight = value_topk_select(queries[0], keys, k=10, prediction_bits=8)
        assert eight.kv_bits_loaded == 2 * four.kv_bits_loaded

    def test_full_precision_prediction_matches_exact(self, attention_data):
        queries, keys, _ = attention_data
        result = value_topk_select(queries[0], keys, k=16, prediction_bits=8)
        reference = exact_topk(queries[0], keys, 16)
        assert selection_recall(result.selected, reference) == 1.0

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            value_topk_select(np.ones(4, dtype=np.int64), np.ones((2, 4), dtype=np.int64), k=0)


class TestOracles:
    def test_exact_topk_finds_largest(self):
        keys = np.array([[1, 0], [10, 0], [5, 0]])
        q = np.array([1, 0])
        assert exact_topk(q, keys, 2).tolist() == [1, 2]

    def test_recall_bounds(self):
        assert selection_recall(np.array([1, 2, 3]), np.array([1, 2])) == 1.0
        assert selection_recall(np.array([1]), np.array([1, 2])) == 0.5
        assert selection_recall(np.array([]), np.array([])) == 1.0


class TestPredictorFactories:
    def test_bgpp_predictor_on_float_inputs(self):
        rng = np.random.default_rng(0)
        keys = rng.normal(size=(64, 16))
        q = keys[:4].mean(axis=0)
        predictor = make_bgpp_predictor(alpha=0.7)
        selected = predictor(q, keys)
        assert selected.size >= 1
        assert selected.max() < 64

    def test_value_predictor_keep_fraction(self):
        rng = np.random.default_rng(1)
        keys = rng.normal(size=(40, 8))
        predictor = make_value_topk_predictor(keep_fraction=0.25)
        assert predictor(rng.normal(size=8), keys).size == 10

    def test_value_predictor_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            make_value_topk_predictor(keep_fraction=0.0)

    def test_predictors_handle_empty_keys(self):
        predictor = make_bgpp_predictor()
        assert predictor(np.ones(4), np.zeros((0, 4))).size == 0
