"""Unit and property tests for BSTC two-state coding (repro.core.bstc)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bstc import (
    BSTCCodec,
    BSTCConfig,
    analytic_compression_ratio,
    column_zero_probability,
    decode_plane,
    default_plane_policy,
    encode_plane,
    plane_compression_ratio,
)
from repro.sparsity.synthetic import gaussian_int_weights


class TestEncodeDecodePlane:
    def test_roundtrip_random_plane(self):
        rng = np.random.default_rng(0)
        plane = (rng.random((16, 64)) < 0.2).astype(np.uint8)
        encoded = encode_plane(plane, group_size=4)
        assert np.array_equal(decode_plane(encoded), plane)

    def test_roundtrip_uncompressed(self):
        rng = np.random.default_rng(1)
        plane = (rng.random((7, 9)) < 0.5).astype(np.uint8)
        encoded = encode_plane(plane, group_size=4, compress=False)
        assert not encoded.compressed
        assert encoded.encoded_bits == plane.size
        assert np.array_equal(decode_plane(encoded), plane)

    def test_roundtrip_rows_not_multiple_of_group(self):
        rng = np.random.default_rng(2)
        plane = (rng.random((10, 13)) < 0.3).astype(np.uint8)
        encoded = encode_plane(plane, group_size=4)
        assert np.array_equal(decode_plane(encoded), plane)

    def test_all_zero_plane_compresses_to_one_bit_per_column(self):
        plane = np.zeros((8, 32), dtype=np.uint8)
        encoded = encode_plane(plane, group_size=4)
        # 2 row blocks x 32 columns, 1 bit each
        assert encoded.encoded_bits == 64
        assert encoded.compression_ratio == pytest.approx(4.0)

    def test_dense_plane_expands(self):
        plane = np.ones((8, 16), dtype=np.uint8)
        encoded = encode_plane(plane, group_size=4)
        # every column costs m+1 bits: expansion by (m+1)/m
        assert encoded.encoded_bits == plane.size // 4 * 5
        assert encoded.compression_ratio < 1.0

    def test_paper_coding_example(self):
        # {0000} -> {0} and {0001} -> {1 0001} (Fig. 8a)
        plane = np.array([[0, 1], [0, 0], [0, 0], [0, 0]], dtype=np.uint8)
        encoded = encode_plane(plane, group_size=4)
        assert encoded.payload.tolist() == [0, 1, 1, 0, 0, 0]

    def test_rejects_1d_plane(self):
        with pytest.raises(ValueError):
            encode_plane(np.array([0, 1]), group_size=4)

    def test_truncated_payload_raises(self):
        plane = np.ones((4, 4), dtype=np.uint8)
        encoded = encode_plane(plane, group_size=4)
        encoded.payload = encoded.payload[:-2]
        with pytest.raises(ValueError):
            decode_plane(encoded)

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=20),
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_roundtrip_property(self, rows, cols, density, m, seed):
        rng = np.random.default_rng(seed)
        plane = (rng.random((rows, cols)) < density).astype(np.uint8)
        encoded = encode_plane(plane, group_size=m)
        assert np.array_equal(decode_plane(encoded), plane)


class TestCompressionRatioModels:
    def test_analytic_cr_above_one_for_high_sparsity(self):
        assert analytic_compression_ratio(0.95, 4) > 1.0

    def test_analytic_cr_below_one_for_low_sparsity(self):
        assert analytic_compression_ratio(0.3, 4) < 1.0

    def test_cr_break_even_threshold(self):
        # the paper reports positive benefit above ~65 % sparsity; with fully
        # independent bits the analytic break-even sits slightly higher
        assert analytic_compression_ratio(0.8, 4) > 1.0
        assert analytic_compression_ratio(0.55, 4) < 1.0

    def test_column_zero_probability(self):
        assert column_zero_probability(0.5, 2) == pytest.approx(0.25)
        with pytest.raises(ValueError):
            column_zero_probability(1.5, 2)

    def test_measured_cr_tracks_analytic(self):
        rng = np.random.default_rng(3)
        sparsity = 0.9
        plane = (rng.random((256, 256)) > sparsity).astype(np.uint8)
        measured = plane_compression_ratio(plane, group_size=4)
        analytic = analytic_compression_ratio(sparsity, 4)
        assert measured == pytest.approx(analytic, rel=0.1)

    def test_m1_never_beneficial(self):
        # with m = 1 the indicator doubles every non-zero bit
        for sr in (0.5, 0.8, 0.95):
            assert analytic_compression_ratio(sr, 1) <= 1.0

    def test_rejects_bad_group_size(self):
        with pytest.raises(ValueError):
            analytic_compression_ratio(0.9, 0)


class TestPlanePolicy:
    def test_threshold_policy(self):
        policy = default_plane_policy([0.4, 0.6, 0.7, 0.9], threshold=0.65)
        assert policy == [False, False, True, True]

    def test_codec_never_compresses_sign_plane(self):
        weights = gaussian_int_weights((32, 128), seed=4)
        encoded = BSTCCodec().encode(weights)
        assert (len(encoded.planes) - 1) not in encoded.compressed_plane_indices

    def test_codec_compresses_high_order_planes(self):
        weights = gaussian_int_weights((64, 1024), seed=5)
        encoded = BSTCCodec().encode(weights)
        # top magnitude planes (indices 5, 6 LSB-first of 0..6) should be coded
        assert 6 in encoded.compressed_plane_indices
        assert 5 in encoded.compressed_plane_indices


class TestCodecRoundtrip:
    def test_lossless_int8(self):
        weights = gaussian_int_weights((48, 256), seed=6)
        codec = BSTCCodec()
        assert np.array_equal(codec.decode(codec.encode(weights)), weights)

    def test_lossless_int4(self):
        weights = gaussian_int_weights((32, 128), bits=4, seed=7)
        codec = BSTCCodec(BSTCConfig(bits=4))
        assert np.array_equal(codec.decode(codec.encode(weights)), weights)

    def test_compression_ratio_above_one_for_llm_like_weights(self):
        weights = gaussian_int_weights((128, 2048), seed=8)
        encoded = BSTCCodec().encode(weights)
        assert encoded.compression_ratio > 1.0

    def test_report_fields(self):
        weights = gaussian_int_weights((16, 64), seed=9)
        report = BSTCCodec().compression_report(weights)
        assert set(report) == {
            "plane_sparsity",
            "compressed_planes",
            "raw_bits",
            "encoded_bits",
            "compression_ratio",
        }
        assert report["raw_bits"] == weights.size * 8

    def test_rejects_1d_weights(self):
        with pytest.raises(ValueError):
            BSTCCodec().encode(np.array([1, 2, 3]))

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            BSTCConfig(group_size=0)
        with pytest.raises(ValueError):
            BSTCConfig(sparsity_threshold=1.5)

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=1, max_value=24),
        st.integers(min_value=1, max_value=24),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_codec_roundtrip_property(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        weights = rng.integers(-127, 128, size=(rows, cols))
        codec = BSTCCodec()
        assert np.array_equal(codec.decode(codec.encode(weights)), weights)
