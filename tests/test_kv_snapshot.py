"""KV snapshot preemption + int8 KV pages: restores are invisible, books balance.

Four layers of pinning for the PR-8 capacity levers:

* ``TestSnapshotArena`` -- arena-level unit tests of
  ``snapshot_session``/``restore_session``/``discard_snapshot``: bit-exact
  page roundtrips in both pool dtypes, reference transfer for shared prefix
  pages (pinned, never copied), the empty-session restore precondition,
  idempotent discard, the refcount conservation law
  ``page_faults - pages_freed == pages_in_use + cached_idle_pages``, and the
  ~8x int8 snapshot shrink.
* ``TestSessionSnapshot`` -- session-level: a snapshot preempt/restore cycle
  emits tokens *and* attention metrics bit-identical to a solo
  ``generate()`` (no replay traffic -- the decoder is kept, nothing is
  recomputed), restores append zero tokens to the arena, and every
  non-resume exit (cancel / finalize / legacy resume / release) drains the
  snapshot's pinned pages.
* ``TestSnapshotEngineFuzz`` -- hypothesis fuzz over preemption-heavy traces
  under the priority/deadline preemptive policies x prefix cache on/off:
  ``kv_snapshots=True`` must match solo references bit-exactly in tokens and
  metrics, with strictly fewer KV appends than the re-prefill engine and
  fully drained books (random mid-trace cancels included).  int8 mode must
  be self-consistent (snapshots invisible) and its reservation books must
  balance under ``ArenaBudgetAdmission`` with a tight ``max_pages``.
* Satellite regressions -- ``cancel()`` stamps ``finished_step`` (cancelled
  requests have a defined latency), preempting a ``PREFILLING`` session
  holding ``acquire_prefix`` pages decrements shared refcounts instead of
  freeing the pages, ``retry()`` from ``QUEUED`` stays legal, corrupted-KV
  retries take the re-prefill path while trusted ``arena.alloc`` retries
  snapshot, and the int8 accuracy gate documents the fp-agreement tolerance
  at the tiny model scale.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import (
    QuantizedTransformer,
    TransformerModel,
    generate,
    get_model_config,
)
from repro.serve import (
    ArenaBudgetAdmission,
    FaultPlan,
    FaultSpec,
    KVDtype,
    KVSnapshot,
    PagedKVArena,
    Request,
    ServingEngine,
    SessionState,
    make_policies,
)
from repro.serve.session import GenerationSession

FUZZ = settings(max_examples=10, deadline=None, derandomize=True)


@pytest.fixture(scope="module")
def model():
    return QuantizedTransformer(
        TransformerModel(get_model_config("tiny"), seed=0), seed=1
    )


def _assert_books_balanced(arena, drained: bool = True):
    s = arena.stats
    assert s.page_faults - s.pages_freed == s.pages_in_use + s.cached_idle_pages
    if drained:
        assert s.pages_in_use == 0


def _solo_reference(model, request):
    return generate(
        model,
        request.prompt_tokens,
        max_new_tokens=request.max_new_tokens,
        eos_token=request.eos_token,
    )


def _solo_keys(result):
    attended = result.prefill_stats.keys_attended + sum(
        s.keys_attended for s in result.decode_stats
    )
    total = result.prefill_stats.keys_total + sum(
        s.keys_total for s in result.decode_stats
    )
    return attended, total


class TestSnapshotArena:
    @pytest.mark.parametrize("kv_dtype", [None, "int8"])
    def test_roundtrip_is_bit_exact_and_frees_pages(self, kv_dtype):
        arena = PagedKVArena(
            n_layers=2, page_size=4, hidden_size=8, kv_dtype=kv_dtype
        )
        rng = np.random.default_rng(0)
        sid = arena.create_session()
        k, v = rng.normal(size=(11, 8)), rng.normal(size=(11, 8))
        for layer in range(2):
            arena.append(sid, layer, k + layer, v - layer)
        before = [
            (arena.session_keys(sid, l).copy(), arena.session_values(sid, l).copy())
            for l in range(2)
        ]
        held = arena.stats.pages_in_use

        snap = arena.snapshot_session(sid)
        assert isinstance(snap, KVSnapshot)
        assert arena.stats.pages_in_use == 0  # every owned page freed
        assert arena.seq_len(sid) == 0  # session open but empty
        assert snap.n_pages == snap.pages_copied == 3
        assert snap.pages_referenced == 0
        assert arena.stats.snapshots_taken == 1
        assert arena.stats.snapshot_bytes == snap.nbytes > 0

        appended_before = arena.stats.tokens_appended
        arena.restore_session(sid, snap)
        assert arena.stats.tokens_appended == appended_before  # no appends
        assert arena.stats.pages_in_use == held
        assert arena.stats.snapshots_restored == 1
        for layer in range(2):
            assert np.array_equal(arena.session_keys(sid, layer), before[layer][0])
            assert np.array_equal(arena.session_values(sid, layer), before[layer][1])
        # the restored session keeps appending exactly where it left off
        arena.append(sid, 0, k[:1], v[:1])
        assert arena.seq_len(sid) == 12
        arena.free(sid)
        _assert_books_balanced(arena)

    def test_int8_snapshot_is_eightfold_smaller(self):
        rng = np.random.default_rng(1)
        k, v = rng.normal(size=(16, 8)), rng.normal(size=(16, 8))
        sizes = {}
        for mode in (None, "int8"):
            arena = PagedKVArena(
                n_layers=1, page_size=4, hidden_size=8, kv_dtype=mode
            )
            sid = arena.create_session()
            arena.append(sid, 0, k, v)
            sizes[mode] = arena.snapshot_session(sid).nbytes
        # int8 rows are 1/8 the float64 rows; the per-row scales add a
        # 1/hidden_size overhead on top (here 8 bytes per 64-byte row)
        assert sizes["int8"] <= sizes[None] * (1 / 8 + 1 / 8)
        assert arena.kv_dtype is KVDtype.INT8

    def test_shared_prefix_pages_transfer_by_reference(self):
        arena = PagedKVArena(n_layers=1, page_size=4, hidden_size=8)
        rng = np.random.default_rng(2)
        toks = list(range(8))
        k, v = rng.normal(size=(9, 8)), rng.normal(size=(9, 8))
        owner = arena.create_session()
        arena.append(owner, 0, k[:8], v[:8])
        arena.register_prefix(owner, toks, np.arange(8), np.arange(8) + 1)

        sid = arena.create_session()
        n_reused, _, _ = arena.acquire_prefix(sid, toks)
        assert n_reused == 7  # capped at len(prompt) - 1
        arena.append(sid, 0, k[7:], v[7:])  # COW tail page + one fresh page
        before = arena.session_keys(sid, 0).copy()
        faults_before = arena.stats.page_faults

        snap = arena.snapshot_session(sid)
        # full head page: still indexed + shared with owner -> by reference;
        # the COW'd tail page and the fresh page are owned -> copied out
        assert snap.pages_referenced == 1
        assert snap.pages_copied == 2
        assert snap.referenced_full_pages(arena.page_size) == 1
        # the referenced page stays resident (pinned by the snapshot), so a
        # third session can still hit the prefix while the victim waits
        probe = arena.create_session()
        hit, _, _ = arena.acquire_prefix(probe, toks)
        assert hit == 7
        arena.free(probe)

        copied = snap.pages_copied  # restore consumes the snapshot
        arena.restore_session(sid, snap)
        assert arena.stats.page_faults == faults_before + copied
        assert np.array_equal(arena.session_keys(sid, 0), before)
        arena.free(sid)
        arena.free(owner)
        _assert_books_balanced(arena)

    def test_restore_requires_an_empty_session(self):
        arena = PagedKVArena(n_layers=1, page_size=4, hidden_size=8)
        sid = arena.create_session()
        arena.append(sid, 0, np.ones((2, 8)), np.ones((2, 8)))
        snap = arena.snapshot_session(sid)
        arena.restore_session(sid, snap)
        with pytest.raises(RuntimeError, match="empty session"):
            arena.restore_session(sid, KVSnapshot(lengths=np.zeros(1, np.int64)))
        arena.free(sid)
        _assert_books_balanced(arena)

    def test_discard_releases_references_idempotently(self):
        arena = PagedKVArena(n_layers=1, page_size=4, hidden_size=8)
        rng = np.random.default_rng(3)
        toks = list(range(4))
        owner = arena.create_session()
        arena.append(owner, 0, rng.normal(size=(5, 8)), rng.normal(size=(5, 8)))
        arena.register_prefix(
            owner, toks + [9], np.arange(5), np.arange(5) + 1
        )
        arena.free(owner)
        sid = arena.create_session()
        arena.acquire_prefix(sid, toks + [9])
        snap = arena.snapshot_session(sid)
        assert snap.pages_referenced == 1
        arena.discard_snapshot(snap)
        arena.discard_snapshot(snap)  # second discard is a no-op
        assert snap.entries == []
        arena.free(sid)
        # the registered page parks idle-cached exactly once
        assert arena.stats.cached_idle_pages == 1
        _assert_books_balanced(arena, drained=False)
        assert arena.stats.pages_in_use == 0

    def test_int8_rows_are_a_pure_function_of_the_appended_row(self):
        """Chunked appends quantise identically to one-shot appends."""
        rng = np.random.default_rng(4)
        k, v = rng.normal(size=(10, 8)), rng.normal(size=(10, 8))
        readings = []
        for splits in ([10], [3, 4, 3], [1] * 10):
            arena = PagedKVArena(
                n_layers=1, page_size=4, hidden_size=8, kv_dtype=KVDtype.INT8
            )
            sid = arena.create_session()
            start = 0
            for n in splits:
                arena.append(sid, 0, k[start : start + n], v[start : start + n])
                start += n
            readings.append(arena.session_keys(sid, 0).copy())
        assert np.array_equal(readings[0], readings[1])
        assert np.array_equal(readings[0], readings[2])


class TestSessionSnapshot:
    def _session(self, model, arena, rid="r", prompt_len=12, new=8, **kw):
        rng = np.random.default_rng(sum(map(ord, rid)))
        prompt = [int(t) for t in rng.integers(0, 50, size=prompt_len)]
        request = Request(rid, prompt, max_new_tokens=new)
        return request, GenerationSession(request, model, arena=arena, **kw)

    def _arena(self, model, **kw):
        cfg = model.config
        return PagedKVArena(
            n_layers=cfg.n_layers,
            page_size=4,
            hidden_size=cfg.hidden_size,
            **kw,
        )

    @pytest.mark.parametrize("kv_dtype", [None, "int8"])
    def test_preempt_restore_matches_solo_exactly(self, model, kv_dtype):
        arena = self._arena(model, kv_dtype=kv_dtype)
        request, session = self._session(model, arena)
        session.admit(step=0)
        step = 1
        for _ in range(2):
            session.decode_step(step)
            step += 1
        appended = arena.stats.tokens_appended
        session.preempt(step, snapshot=True)
        assert session.state is SessionState.PREEMPTED
        assert session.has_snapshot
        assert session.decoder is not None  # kept: nothing to recompute
        assert arena.stats.pages_in_use == 0

        assert session.resume_from_snapshot(step) is SessionState.ACTIVE
        assert arena.stats.tokens_appended == appended  # zero re-prefill
        while session.state is SessionState.ACTIVE:
            session.decode_step(step)
            step += 1

        solo = _solo_reference(model, request)
        if kv_dtype is None:
            assert session.generated_tokens == solo.generated_tokens
        att, tot = _solo_keys(solo)
        if kv_dtype is None:
            # metrics too: the snapshot resume recomputed nothing
            assert (session.keys_attended, session.keys_total) == (att, tot)
        session.release_kv()
        _assert_books_balanced(arena)
        assert arena.stats.snapshots_taken == arena.stats.snapshots_restored == 1

    def test_mid_prefill_snapshot_keeps_chunk_progress(self, model):
        arena = self._arena(model)
        request, session = self._session(model, arena, prompt_len=10)
        session.begin_admit(step=0)
        GenerationSession.prefill_step_batch([session], [4], [], 0)
        assert session.decoder.prefill_remaining == 6
        session.preempt(1, snapshot=True)
        assert session.resume_from_snapshot(2) is SessionState.PREFILLING
        assert session.decoder.prefill_remaining == 6  # progress survived
        emitted = GenerationSession.prefill_step_batch([session], [6], [], 2)
        assert session.state is SessionState.ACTIVE
        step = 3
        while session.state is SessionState.ACTIVE:
            session.decode_step(step)
            step += 1
        solo = _solo_reference(model, request)
        assert session.generated_tokens == solo.generated_tokens
        assert (session.keys_attended, session.keys_total) == _solo_keys(solo)
        session.release_kv()
        _assert_books_balanced(arena)

    def test_every_terminal_exit_drains_the_snapshot(self, model):
        for exit_via in ("cancel", "finalize", "release", "legacy_resume"):
            arena = self._arena(model)
            _, session = self._session(model, arena, rid=f"x-{exit_via}")
            session.admit(step=0)
            session.preempt(1, snapshot=True)
            assert session.has_snapshot
            if exit_via == "cancel":
                session.cancel(2)
            elif exit_via == "finalize":
                session.finalize(SessionState.FAILED, 2)
            elif exit_via == "release":
                session.release_kv()
            else:
                # a legacy resume must abandon the snapshot cleanly and
                # fall back to re-prefill without leaking pinned pages
                session.resume(2)
                session.release_kv()
            assert not session.has_snapshot
            _assert_books_balanced(arena)

    def test_trusted_retry_snapshots_untrusted_retry_does_not(self, model):
        arena = self._arena(model)
        _, session = self._session(model, arena, rid="trust")
        session.admit(step=0)
        session.retry(1, snapshot=True)  # trusted: pre-forward fault
        assert session.has_snapshot and session.retries == 1
        # a second trusted retry while waiting keeps the same snapshot
        session.retry(2, snapshot=True)
        assert session.has_snapshot and session.retries == 2
        # an untrusted fault discards it and the kept decoder wholesale
        session.retry(3, snapshot=False)
        assert not session.has_snapshot
        assert session.decoder is None
        _assert_books_balanced(arena)


class TestSatelliteRegressions:
    def test_cancel_stamps_finished_step(self, model):
        """Cancelled requests report a latency instead of silently None."""
        engine = ServingEngine(model, max_active=2)
        handle = engine.submit(Request("c0", [1, 2, 3], max_new_tokens=6))
        engine.submit(Request("c1", [4, 5], max_new_tokens=4))
        engine.step()
        engine.step()
        assert engine.cancel(handle)
        metrics = handle.metrics()
        assert metrics.outcome == "cancelled"
        assert metrics.finished_step == 2
        assert metrics.latency_steps == 2
        engine.run()

    def test_direct_cancel_without_step_keeps_legacy_none(self, model):
        _, session = TestSessionSnapshot()._session(
            model, None, rid="legacy-cancel"
        )
        session.cancel()
        assert session.finished_step is None
        assert session.to_metrics().latency_steps is None

    def test_preempting_a_prefilling_prefix_holder_decrements_refcounts(
        self, model
    ):
        """Shared acquire_prefix pages are unshared, not freed, on preempt."""
        cfg = model.config
        arena = PagedKVArena(
            n_layers=cfg.n_layers, page_size=4, hidden_size=cfg.hidden_size
        )
        prompt = list(range(9))
        owner_req = Request("owner", prompt, max_new_tokens=2)
        owner = GenerationSession(owner_req, model, arena=arena, prefix_cache=True)
        owner.admit(step=0)  # registers the two full prompt pages

        req = Request("victim", prompt, max_new_tokens=4)
        victim = GenerationSession(req, model, arena=arena, prefix_cache=True)
        victim.begin_admit(step=1)
        assert victim.decoder.prefix_reused_tokens == 8
        for snapshot in (False, True):
            before = arena.stats.pages_freed
            victim.preempt(2, snapshot=snapshot)
            # the owner's view of the shared pages must be untouched
            assert owner.decoder.seq_len == len(prompt) + owner.n_generated - 1
            _assert_books_balanced(arena, drained=False)
            if snapshot and victim.has_snapshot:
                victim.resume_from_snapshot(3)
            else:
                victim.begin_resume(3)
                GenerationSession.prefill_step_batch(
                    [victim], [victim.decoder.prefill_remaining], [], 3
                )
        step = 4
        while victim.state is SessionState.ACTIVE:
            victim.decode_step(step)
            step += 1
        assert victim.generated_tokens == _solo_reference(model, req).generated_tokens
        victim.release_kv()
        owner.release_kv()
        _assert_books_balanced(arena, drained=False)
        assert arena.stats.pages_in_use == 0

    def test_retry_from_queued_is_still_legal(self, model):
        cfg = model.config
        arena = PagedKVArena(
            n_layers=cfg.n_layers, page_size=4, hidden_size=cfg.hidden_size
        )
        req = Request("q", [1, 2, 3], max_new_tokens=3)
        session = GenerationSession(req, model, arena=arena, prefix_cache=True)
        session.retry(0, snapshot=True)  # QUEUED: no KV to snapshot
        assert session.state is SessionState.PREEMPTED
        assert not session.has_snapshot
        session.resume(1)
        step = 2
        while session.state is SessionState.ACTIVE:
            session.decode_step(step)
            step += 1
        assert session.generated_tokens == _solo_reference(model, req).generated_tokens
        session.release_kv()
        _assert_books_balanced(arena)

    def test_corrupted_kv_retries_reprefill_trusted_faults_snapshot(self, model):
        common = dict(max_active=2, kv_snapshots=True, max_retries=3)
        requests = [
            Request("victim", [1, 2, 3, 4, 5], max_new_tokens=5),
            Request("bystander", [6, 7, 8], max_new_tokens=4),
        ]
        # corrupted append: untrusted, must re-prefill (no snapshot taken)
        engine = ServingEngine(
            model,
            faults=FaultPlan(
                specs=(
                    FaultSpec(site="session.append", at_step=1, request_id="victim"),
                )
            ),
            **common,
        )
        handles = engine.submit_many(requests)
        report = engine.run()
        assert report.arena["snapshots_taken"] == 0
        assert report.policy["retries"] == 1
        # trusted schedule-time arena fault: snapshotted, zero re-prefill
        engine2 = ServingEngine(
            model,
            faults=FaultPlan(
                specs=(
                    FaultSpec(site="arena.alloc", at_step=1, request_id="victim"),
                )
            ),
            **common,
        )
        handles2 = engine2.submit_many(requests)
        report2 = engine2.run()
        assert report2.arena["snapshots_taken"] == 1
        assert report2.arena["snapshots_restored"] == 1
        assert report2.policy["retries"] == 1
        # both recoveries are invisible in the token stream
        for h in (*handles, *handles2):
            solo = _solo_reference(model, h.request)
            assert h.generated_tokens == solo.generated_tokens, h.request_id
        # the trusted path recomputed nothing: its metrics equal solo's
        victim2 = next(h for h in handles2 if h.request_id == "victim")
        att, tot = _solo_keys(_solo_reference(model, victim2.request))
        m = victim2.metrics()
        assert (m.keys_attended, m.keys_total) == (att, tot)
        for report_ in (report, report2):
            assert report_.arena["pages_in_use"] == 0

    def test_int8_accuracy_gate(self, model):
        """Documented tolerance: int8 KV at tiny scale tracks fp closely.

        Quantising 64-wide rows to int8 with per-row scales perturbs logits
        enough to flip an occasional argmax at this toy scale; once one
        token flips the streams legitimately diverge.  The gate pins the
        *documented* tolerance -- a majority of requests decode exactly and
        first tokens (pure prefill) always match -- plus hard determinism:
        the same trace always yields the same int8 stream.
        """
        rng = np.random.default_rng(11)
        requests = [
            Request(
                f"a{i}",
                [int(t) for t in rng.integers(0, 50, size=int(rng.integers(4, 24)))],
                max_new_tokens=8,
            )
            for i in range(8)
        ]

        def run():
            engine = ServingEngine(model, max_active=4, kv_dtype="int8")
            handles = engine.submit_many(requests)
            engine.run()
            return {h.request_id: list(h.generated_tokens) for h in handles}

        tokens = run()
        assert tokens == run()  # deterministic
        exact = 0
        for request in requests:
            solo = _solo_reference(model, request).generated_tokens
            got = tokens[request.request_id]
            assert got[0] == solo[0], "first token (prefill argmax) must match"
            exact += got == solo
        assert exact >= len(requests) // 2 + 1


def _sample_snapshot_trace(rng, vocab):
    n = int(rng.integers(3, 9))
    return [
        Request(
            request_id=f"r{i:02d}",
            prompt_tokens=rng.integers(0, vocab, size=int(rng.integers(2, 16))).tolist(),
            max_new_tokens=int(rng.integers(2, 8)),
            arrival_step=int(rng.integers(0, 8)),
            priority=int(rng.integers(0, 3)),
            deadline_steps=(
                int(rng.integers(4, 40)) if rng.random() < 0.5 else None
            ),
        )
        for i in range(n)
    ]


class TestSnapshotEngineFuzz:
    def _run(
        self,
        model,
        requests,
        policy,
        *,
        kv_snapshots,
        prefix_cache=False,
        kv_dtype=None,
        max_active=2,
        cancel_nth=None,
        admission_wrap=None,
        max_pages=None,
    ):
        admission, scheduling = make_policies(policy)
        if admission_wrap is not None:
            admission = admission_wrap(admission)
        engine = ServingEngine(
            model,
            max_active=max_active,
            admission=admission,
            scheduling=scheduling,
            prefix_cache=prefix_cache,
            kv_snapshots=kv_snapshots,
            kv_dtype=kv_dtype,
            page_size=4,
            max_pages=max_pages,
        )
        handles = engine.submit_many(requests)
        cancelled = set()
        if cancel_nth:
            steps = 0
            while engine.has_work and steps < 10_000:
                engine.step()
                steps += 1
                if steps % 3 == 0:
                    idx = steps // 3 - 1
                    if idx < len(handles) and idx % cancel_nth == 0:
                        if engine.cancel(handles[idx]):
                            cancelled.add(handles[idx].request_id)
        report = engine.run()
        return engine, handles, report, cancelled

    @FUZZ
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.sampled_from(["priority", "deadline"]),
        st.booleans(),
    )
    def test_fp_snapshots_match_solo_and_reprefill_exactly(
        self, model, seed, policy, prefix_cache
    ):
        rng = np.random.default_rng(seed)
        requests = _sample_snapshot_trace(rng, model.config.vocab_size)
        runs = {
            snap: self._run(
                model,
                requests,
                policy,
                kv_snapshots=snap,
                prefix_cache=prefix_cache,
            )
            for snap in (False, True)
        }
        _, h_off, r_off, _ = runs[False]
        engine, h_on, r_on, _ = runs[True]
        by_id_off = {m.request_id: m for m in r_off.requests}
        for handle, ref_handle in zip(h_on, h_off):
            solo = _solo_reference(model, handle.request)
            assert handle.generated_tokens == solo.generated_tokens
            assert ref_handle.generated_tokens == solo.generated_tokens
            m = handle.metrics()
            # identical step-domain schedule to the re-prefill engine
            ref = by_id_off[m.request_id]
            assert (m.admitted_step, m.first_token_step, m.finished_step) == (
                ref.admitted_step,
                ref.first_token_step,
                ref.finished_step,
            )
            if m.preemptions:
                # snapshot resumes recompute nothing: metrics equal solo's
                att, tot = _solo_keys(solo)
                assert (m.keys_attended, m.keys_total) == (att, tot)
        if r_on.policy["preemptions"]:
            assert (
                r_on.arena["tokens_appended"] < r_off.arena["tokens_appended"]
            )
            assert r_on.arena["snapshots_taken"] >= r_on.policy["preemptions"]
        assert r_on.arena["pages_in_use"] == 0
        _assert_books_balanced(engine.arena)

    @FUZZ
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_cancels_mid_trace_drain_snapshot_books(self, model, seed):
        rng = np.random.default_rng(seed)
        requests = _sample_snapshot_trace(rng, model.config.vocab_size)
        engine, handles, report, cancelled = self._run(
            model,
            requests,
            "priority",
            kv_snapshots=True,
            prefix_cache=True,
            cancel_nth=2,
        )
        for handle in handles:
            if handle.request_id in cancelled:
                assert handle.metrics().finished_step is not None
                continue
            solo = _solo_reference(model, handle.request)
            assert handle.generated_tokens == solo.generated_tokens
        _assert_books_balanced(engine.arena)
        assert engine.arena.stats.pages_in_use == 0

    @FUZZ
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_int8_snapshots_are_self_consistent(self, model, seed):
        rng = np.random.default_rng(seed)
        requests = _sample_snapshot_trace(rng, model.config.vocab_size)
        runs = {
            snap: self._run(
                model, requests, "priority", kv_snapshots=snap, kv_dtype="int8"
            )
            for snap in (False, True)
        }
        _, h_off, _, _ = runs[False]
        engine, h_on, r_on, _ = runs[True]
        for a, b in zip(h_off, h_on):
            # same quantised rows -> same token stream and schedule; only
            # the replay traffic (keys re-attended by re-prefill) differs
            assert a.generated_tokens == b.generated_tokens
            ma, mb = a.metrics(), b.metrics()
            assert (ma.admitted_step, ma.first_token_step, ma.finished_step) == (
                mb.admitted_step,
                mb.first_token_step,
                mb.finished_step,
            )
            assert ma.keys_attended >= mb.keys_attended
        assert r_on.arena["kv_dtype"] == "int8"
        _assert_books_balanced(engine.arena)

    @FUZZ
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_reservation_books_balance_under_budget_admission(self, model, seed):
        """Satellite 3: snapshot resumes charge the snapshot's page count."""
        rng = np.random.default_rng(seed)
        requests = _sample_snapshot_trace(rng, model.config.vocab_size)
        engine, handles, report, _ = self._run(
            model,
            requests,
            "priority",
            kv_snapshots=True,
            prefix_cache=True,
            admission_wrap=ArenaBudgetAdmission,
            max_pages=64,
        )
        assert not report.truncated  # budget never deadlocks the queue
        for handle in handles:
            assert handle.reserved_pages is None  # every reservation released
            solo = _solo_reference(model, handle.request)
            assert handle.generated_tokens == solo.generated_tokens
        assert engine.arena.stats.peak_pages_in_use <= 64
        _assert_books_balanced(engine.arena)

    def test_snapshot_charge_is_lifetime_minus_referenced(self, model):
        """Unit pin of the _charged_pages snapshot branch."""
        cfg = model.config
        arena = PagedKVArena(
            n_layers=cfg.n_layers,
            page_size=4,
            hidden_size=cfg.hidden_size,
            max_pages=64,
        )
        engine = ServingEngine(
            model,
            max_active=2,
            arena=arena,
            prefix_cache=True,
            kv_snapshots=True,
            admission=ArenaBudgetAdmission(),
        )
        prompt = list(range(9))
        owner = engine.submit(Request("owner", prompt, max_new_tokens=2))
        engine.run()
        victim = engine.submit(
            Request("victim", prompt, max_new_tokens=4, arrival_step=engine.current_step)
        )
        engine.step()
        session = victim.session
        session.preempt(engine.current_step, snapshot=True)
        policy = engine.admission
        lifetime = policy._lifetime_pages(arena, victim)
        charged = policy._charged_pages(arena, victim, engine)
        assert session.kv_snapshot.pages_referenced > 0
        assert charged == lifetime - session.kv_snapshot.pages_referenced
        session.resume_from_snapshot(engine.current_step)
        engine.run()
        assert victim.generated_tokens == _solo_reference(
            model, victim.request
        ).generated_tokens
