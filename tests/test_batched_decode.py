"""Property suite for the fused batched decode path (PR 2).

Pins every new batched fast path bit-exact against its sequential reference:

* ragged ``bgpp_select_batch`` (per-query key prefixes + score scales) vs the
  single-query filter on the truncated key matrix, including empty prefixes
  and ``B = 1``;
* the predictors' ``select_ragged`` batch entry points vs row-by-row calls,
  and the attention modules that consume them;
* ``QuantizedTransformer.forward_batch`` / ``IncrementalDecoder.step_batch``
  vs stepping each stream alone (tokens, logits and per-stream statistics);
* the fused continuous-batching scheduler vs per-session stepping over random
  traffic (ragged context lengths, sessions finishing mid-run, B = 1 and
  all-finished steps);
* ``MCBPEngine.matmul`` vs the bit-serial ``gemm`` path and its counters;
* ``ServingReport`` JSON round-tripping (the schema shared between the
  example and the serving benchmark).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bgpp import (
    BGPPConfig,
    bgpp_select,
    bgpp_select_batch,
    make_bgpp_predictor,
    make_value_topk_predictor,
)
from repro.core.engine import MCBPEngine
from repro.model import (
    KVCache,
    MultiHeadAttention,
    QuantizedTransformer,
    TransformerModel,
    get_model_config,
)
from repro.model.generation import IncrementalDecoder
from repro.serve import ContinuousBatchingScheduler, Request, ServingReport
from repro.serve.session import GenerationSession
from repro.workloads import sample_requests


@pytest.fixture(scope="module")
def tiny_quantized():
    """One calibrated quantised model shared by the fused-path tests."""
    return QuantizedTransformer(TransformerModel(get_model_config("tiny"), seed=0), seed=1)


def _signed(rng, shape, bits):
    hi = (1 << (bits - 1)) - 1
    return rng.integers(-hi, hi + 1, size=shape)


class TestBGPPRaggedBatch:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_ragged_batch_bit_exact_vs_truncated_single(self, seed):
        rng = np.random.default_rng(seed)
        n_keys = int(rng.integers(1, 60))
        d = int(rng.integers(1, 24))
        n_queries = int(rng.integers(1, 7))  # includes B=1
        key_bits = int(rng.integers(3, 9))
        config = BGPPConfig(
            rounds=int(rng.integers(1, 5)),
            radius=float(rng.uniform(0.0, 4.0)),
            alpha=float(rng.uniform(0.1, 1.0)),
            key_bits=key_bits,
            query_bits=int(rng.integers(2, key_bits + 1)),
            min_keys=int(rng.integers(1, 3)),
        )
        keys = _signed(rng, (n_keys, d), key_bits)
        queries = _signed(rng, (n_queries, d), key_bits)
        # lengths include 0 (empty prefix) and n_keys (full batch) cases
        lengths = rng.integers(0, n_keys + 1, size=n_queries)
        scales = rng.uniform(0.001, 1.0, size=n_queries)
        batch = bgpp_select_batch(
            queries, keys, config, key_lengths=lengths, score_scales=scales
        )
        assert len(batch) == n_queries
        for b, result in enumerate(batch):
            ref_config = BGPPConfig(
                rounds=config.rounds,
                radius=config.radius,
                alpha=config.alpha,
                key_bits=key_bits,
                query_bits=config.query_bits,
                score_scale=float(scales[b]),
                min_keys=config.min_keys,
            )
            single = bgpp_select(queries[b], keys[: lengths[b]], ref_config)
            assert np.array_equal(result.selected, single.selected)
            assert np.array_equal(result.estimated_scores, single.estimated_scores)
            assert result.survivors_per_round == single.survivors_per_round
            assert result.kv_bits_loaded == single.kv_bits_loaded
            assert result.mac_ops == single.mac_ops
            assert result.rounds_executed == single.rounds_executed
            assert result.early_terminated == single.early_terminated

    def test_key_lengths_validation(self):
        queries = np.ones((2, 4), dtype=np.int64)
        keys = np.ones((8, 4), dtype=np.int64)
        with pytest.raises(ValueError, match="key_lengths"):
            bgpp_select_batch(queries, keys, key_lengths=[1])
        with pytest.raises(ValueError, match="key_lengths"):
            bgpp_select_batch(queries, keys, key_lengths=[1, 9])
        with pytest.raises(ValueError, match="score_scales"):
            bgpp_select_batch(queries, keys, score_scales=[1.0])

    def test_all_empty_prefixes(self):
        results = bgpp_select_batch(
            np.ones((3, 4), dtype=np.int64),
            np.ones((8, 4), dtype=np.int64),
            key_lengths=[0, 0, 0],
        )
        for result in results:
            assert result.selected.size == 0
            assert result.kv_bits_loaded == 0
            assert result.rounds_executed == 0


class TestPredictorRaggedBatch:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_select_ragged_matches_per_row(self, seed):
        rng = np.random.default_rng(seed)
        n_keys = int(rng.integers(1, 40))
        d = int(rng.integers(2, 20))
        n_rows = int(rng.integers(1, 8))
        keys = rng.normal(size=(n_keys, d))
        queries = rng.normal(size=(n_rows, d))
        lengths = rng.integers(0, n_keys + 1, size=n_rows)
        for predictor in (
            make_bgpp_predictor(alpha=float(rng.uniform(0.3, 0.9)), rounds=3),
            make_value_topk_predictor(keep_fraction=float(rng.uniform(0.1, 1.0))),
        ):
            batch = predictor.select_ragged(queries, keys, lengths)
            for i in range(n_rows):
                reference = predictor(queries[i], keys[: lengths[i]])
                assert np.array_equal(
                    np.asarray(batch[i]), np.asarray(reference)
                ), f"row {i} lengths={lengths.tolist()}"

    def test_attention_batch_path_matches_predictor_loop(self):
        """MHA prefill with select_ragged == the per-row predictor loop."""
        attn = MultiHeadAttention(32, 4, seed=7)
        x = np.random.default_rng(7).normal(size=(10, 32))
        batched_predictor = make_bgpp_predictor(alpha=0.6, rounds=3)
        # same selection logic, but stripped of the batch entry point so the
        # attention module must take the row-by-row fallback
        loop_predictor = lambda q, keys: batched_predictor(q, keys)
        assert not hasattr(loop_predictor, "select_ragged")
        fast = attn(x, predictor=batched_predictor)
        slow = attn(x, predictor=loop_predictor)
        assert np.array_equal(fast.output, slow.output)
        assert fast.keys_attended == slow.keys_attended
        assert fast.keys_total == slow.keys_total

    def test_quantized_prefill_batch_path_matches_loop(self, tiny_quantized):
        """QuantizedTransformer prefill: vectorised selection == loop."""
        prompt = list(range(1, 14))
        batched_predictor = make_value_topk_predictor(keep_fraction=0.5)
        loop_predictor = lambda q, keys: batched_predictor(q, keys)
        fast_logits, fast_stats = tiny_quantized.forward(
            prompt, caches=tiny_quantized.new_cache(), predictor=batched_predictor
        )
        slow_logits, slow_stats = tiny_quantized.forward(
            prompt, caches=tiny_quantized.new_cache(), predictor=loop_predictor
        )
        assert np.array_equal(fast_logits, slow_logits)
        assert fast_stats.keys_attended == slow_stats.keys_attended


class TestKVCache:
    def test_append_matches_vstack_reference(self):
        rng = np.random.default_rng(0)
        cache = KVCache()
        ref_k = ref_v = None
        for _ in range(40):
            n = int(rng.integers(1, 4))
            k = rng.normal(size=(n, 8))
            v = rng.normal(size=(n, 8))
            cache.append(k, v)
            ref_k = k.copy() if ref_k is None else np.vstack([ref_k, k])
            ref_v = v.copy() if ref_v is None else np.vstack([ref_v, v])
            assert np.array_equal(cache.keys, ref_k)
            assert np.array_equal(cache.values, ref_v)
            assert cache.seq_len == ref_k.shape[0]

    def test_clear_and_empty_views(self):
        cache = KVCache()
        assert cache.keys is None and cache.values is None and cache.seq_len == 0
        cache.append(np.ones(4), np.ones(4))
        assert cache.seq_len == 1
        cache.clear()
        assert cache.keys is None and cache.seq_len == 0

    def test_constructor_seed_rows(self):
        cache = KVCache(np.ones((2, 4)), np.zeros((2, 4)))
        assert cache.seq_len == 2
        assert np.array_equal(cache.keys, np.ones((2, 4)))


class TestStepBatch:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_bit_exact_vs_sequential_ragged_prompts(self, tiny_quantized, seed):
        """Fused stepping == per-stream stepping for ragged context lengths."""
        rng = np.random.default_rng(seed)
        n_streams = int(rng.integers(1, 7))  # includes B=1
        vocab = tiny_quantized.config.vocab_size
        prompts = [
            rng.integers(0, vocab, size=int(rng.integers(1, 16))).tolist()
            for _ in range(n_streams)
        ]

        fused_decoders, fused_tokens = [], []
        seq_decoders, seq_tokens = [], []
        for prompt in prompts:
            d = IncrementalDecoder(tiny_quantized)
            fused_tokens.append(d.prefill(prompt))
            fused_decoders.append(d)
            d = IncrementalDecoder(tiny_quantized)
            seq_tokens.append(d.prefill(prompt))
            seq_decoders.append(d)
        assert fused_tokens == seq_tokens

        for _ in range(int(rng.integers(1, 6))):
            fused_tokens = IncrementalDecoder.step_batch(fused_decoders, fused_tokens)
            seq_tokens = [d.step(t) for d, t in zip(seq_decoders, seq_tokens)]
            assert fused_tokens == seq_tokens
        for fused_d, seq_d in zip(fused_decoders, seq_decoders):
            assert np.array_equal(fused_d.last_logits, seq_d.last_logits)
            assert len(fused_d.decode_stats) == len(seq_d.decode_stats)
            for fs, ss in zip(fused_d.decode_stats, seq_d.decode_stats):
                assert fs.keys_attended == ss.keys_attended
                assert fs.keys_total == ss.keys_total
                assert fs.tokens_processed == ss.tokens_processed

    def test_empty_batch_is_noop(self):
        assert IncrementalDecoder.step_batch([], []) == []

    def test_requires_prefill_and_matching_lengths(self, tiny_quantized):
        decoder = IncrementalDecoder(tiny_quantized)
        with pytest.raises(RuntimeError, match="prefill"):
            IncrementalDecoder.step_batch([decoder], [0])
        decoder.prefill([1, 2])
        with pytest.raises(ValueError, match="tokens"):
            IncrementalDecoder.step_batch([decoder], [0, 1])

    def test_falls_back_without_forward_batch(self):
        class MinimalModel:
            """forward/new_cache only -- no fused entry point."""

            vocab = 16

            def new_cache(self):
                return []

            def forward(self, token_ids, caches=None, predictor=None):
                from repro.model.transformer import ForwardStats

                logits = np.zeros((len(token_ids), self.vocab))
                logits[-1, (int(token_ids[-1]) + 1) % self.vocab] = 1.0
                return logits, ForwardStats(tokens_processed=len(token_ids))

        model = MinimalModel()
        decoders = []
        tokens = []
        for start in (3, 7):
            d = IncrementalDecoder(model)
            tokens.append(d.prefill([start]))
            decoders.append(d)
        assert IncrementalDecoder.step_batch(decoders, tokens) == [5, 9]


class TestFusedScheduler:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_fused_run_bit_exact_vs_sequential(self, tiny_quantized, seed):
        rng = np.random.default_rng(seed)
        requests = sample_requests(
            int(rng.integers(2, 10)),
            vocab_size=tiny_quantized.config.vocab_size,
            mean_interarrival=float(rng.uniform(0.0, 2.0)),
            seed=int(rng.integers(0, 1000)),
        )
        max_active = int(rng.integers(1, 9))
        fused = ContinuousBatchingScheduler(tiny_quantized, max_active=max_active)
        sequential = ContinuousBatchingScheduler(
            tiny_quantized, max_active=max_active, fused=False
        )
        fused_sessions = fused.submit_many(requests)
        seq_sessions = sequential.submit_many(requests)
        fused_report = fused.run()
        seq_report = sequential.run()
        assert fused_report.steps == seq_report.steps
        for fs, ss in zip(fused_sessions, seq_sessions):
            assert fs.generated_tokens == ss.generated_tokens
            assert fs.to_metrics() == ss.to_metrics()

    def test_fused_with_bgpp_predictor_bit_exact(self, tiny_quantized):
        predictor = make_bgpp_predictor(alpha=0.7, rounds=3)
        requests = sample_requests(
            8, vocab_size=tiny_quantized.config.vocab_size, mean_interarrival=0.5, seed=4
        )
        runs = []
        for fused in (True, False):
            sched = ContinuousBatchingScheduler(
                tiny_quantized, max_active=4, predictor=predictor, fused=fused
            )
            sessions = sched.submit_many(requests)
            sched.run()
            runs.append([s.generated_tokens for s in sessions])
        assert runs[0] == runs[1]

    def test_decode_step_batch_requires_active_sessions(self, tiny_quantized):
        request = Request("r0", prompt_tokens=[1, 2], max_new_tokens=4)
        session = GenerationSession(request, tiny_quantized)
        with pytest.raises(RuntimeError, match="not active"):
            GenerationSession.decode_step_batch([session], step=0)

    def test_all_finished_step_emits_nothing(self, tiny_quantized):
        """A drained scheduler step (no queued, no active) is a no-op."""
        sched = ContinuousBatchingScheduler(tiny_quantized, max_active=4)
        sched.submit(Request("r0", prompt_tokens=[1], max_new_tokens=1))
        sched.run()
        assert not sched.has_work
        assert sched.step() == {}

    def test_engine_bound_model_decodes_once_per_matrix(self):
        model = QuantizedTransformer(
            TransformerModel(get_model_config("tiny"), seed=0), seed=1
        )
        engine = MCBPEngine(group_size=4, weight_bits=8)
        model.bind_engine(engine)
        engine.codec.reset_counters()
        sched = ContinuousBatchingScheduler(model, max_active=4)
        sched.submit_many(
            Request(f"r{i}", prompt_tokens=[i + 1, i + 2], max_new_tokens=6)
            for i in range(4)
        )
        sched.run()
        n_matrices = len(model.quantized_weight_matrices())
        assert engine.codec.decode_calls == n_matrices
        assert engine.stats.cache_misses == n_matrices
        assert engine.stats.cache_hits > 0


class TestEngineMatmul:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_matmul_bit_exact_vs_gemm(self, seed):
        rng = np.random.default_rng(seed)
        rows = int(rng.integers(1, 17))
        hidden = int(rng.integers(1, 33))
        n_cols = int(rng.integers(1, 6))
        bits = int(rng.integers(2, 9))
        weights = _signed(rng, (rows, hidden), bits)
        acts = rng.integers(-100, 100, size=(hidden, n_cols))
        fast = MCBPEngine(group_size=4, weight_bits=bits)
        slow = MCBPEngine(group_size=4, weight_bits=bits)
        fast.register_weight("w", weights)
        slow.register_weight("w", weights)
        assert np.array_equal(fast.matmul("w", acts), slow.gemm("w", acts))
        assert np.array_equal(
            fast.matmul("w", acts[:, 0]), weights.astype(np.int64) @ acts[:, 0]
        )

    def test_matmul_counters_and_cache(self):
        rng = np.random.default_rng(0)
        engine = MCBPEngine(group_size=4, weight_bits=8)
        weights = _signed(rng, (8, 16), 8)
        engine.register_weight("w", weights)
        acts = rng.integers(-100, 100, size=(16, 4))
        engine.matmul("w", acts)
        engine.matmul("w", acts)
        assert engine.stats.gemm_calls == 2
        assert engine.stats.dense_macs == 2 * 8 * 16 * 4
        assert engine.stats.brcr_additions == 0  # no bit-serial execution ran
        assert engine.stats.cache_misses == 1 and engine.stats.cache_hits == 1
        assert engine.codec.decode_calls == 1
        with pytest.raises(KeyError):
            engine.matmul("missing", acts)

    def test_matmul_huge_magnitudes_fall_back_exactly(self):
        """Activations near the float64-exactness bound use integer loops."""
        engine = MCBPEngine(group_size=1, weight_bits=8)
        weights = np.array([[127, -127]], dtype=np.int64)
        engine.register_weight("w", weights)
        acts = np.array([2**48, -(2**48)], dtype=np.int64)
        assert np.array_equal(
            engine.matmul("w", acts), weights.astype(np.int64) @ acts
        )

    def test_quantized_linear_guards_blas_exactness(self):
        """Precisions that could overflow the float64 mantissa keep int paths."""
        from repro.quant.calibration import calibrate_linear

        rng = np.random.default_rng(0)
        weights = rng.normal(size=(6, 16))
        calib = rng.normal(size=(10, 16))
        int8 = calibrate_linear(weights, calib)
        assert int8.blas_product_is_exact()
        wide = calibrate_linear(weights, calib, weight_bits=30, activation_bits=30)
        assert not wide.blas_product_is_exact()
        # both routes must still produce the exact folded integer result
        x = rng.normal(size=(3, 16))
        for qlin in (int8, wide):
            out, _ = qlin.forward(x)
            xq = qlin.quantize_input(x).T
            product = qlin.weight_q.astype(np.int64) @ xq
            scale, bias = qlin.folded_scale_bias()
            expected = (scale[:, None] * product + bias[:, None]).T
            assert np.array_equal(out, expected)


class TestServingReportJson:
    def test_round_trip(self, tiny_quantized):
        sched = ContinuousBatchingScheduler(tiny_quantized, max_active=3)
        sched.submit_many(
            sample_requests(
                6,
                vocab_size=tiny_quantized.config.vocab_size,
                mean_interarrival=1.0,
                seed=2,
            )
        )
        report = sched.run()
        payload = report.to_json()
        # derived aggregates are present for consumers...
        assert payload["total_tokens"] == report.total_tokens
        assert payload["throughput_tokens_per_step"] == pytest.approx(
            report.throughput_tokens_per_step
        )
        # ...and ignored on the way back in: everything recomputes
        rebuilt = ServingReport.from_json(payload)
        assert rebuilt.steps == report.steps
        assert rebuilt.max_concurrency == report.max_concurrency
        assert rebuilt.requests == report.requests
        assert rebuilt.total_tokens == report.total_tokens
        assert rebuilt.summary() == report.summary()

    def test_json_is_serialisable(self, tiny_quantized):
        import json

        sched = ContinuousBatchingScheduler(tiny_quantized, max_active=2)
        sched.submit(Request("r0", prompt_tokens=[1, 2, 3], max_new_tokens=3))
        report = sched.run()
        rebuilt = ServingReport.from_json(json.loads(json.dumps(report.to_json())))
        assert rebuilt.requests == report.requests
