"""Cluster serving contracts: routing, affinity, failover, determinism.

Four pinned contracts:

* ``TestRoutingPolicies`` -- unit behaviour of the three shipped
  :class:`RoutingPolicy` implementations (round-robin cycling, least-loaded
  selection, stable prompt-head affinity hashing) including down-replica
  probing.
* ``TestClusterGolden`` -- ``ClusterEngine(D=1, routing="rr")`` is
  bit-identical to a bare :class:`ServingEngine` on the same trace: same
  tokens, same per-request metrics, same :class:`ServingReport` JSON.  This
  is the correctness anchor: the whole cluster layer is transparent at D=1.
* ``TestClusterFuzz`` -- random traces x routing policies x D in {1, 2, 4},
  with and without per-replica fault streams + failover: every request
  reaches exactly one terminal state fleet-wide, finished token streams are
  bit-identical to solo :func:`generate` references, every replica arena
  drains to zero pages with balanced books, and a seeded configuration
  replays bit-for-bit (including its failover event history).
* ``TestReleaseInflight`` / ``TestSplitStreams`` -- the satellite APIs:
  truncated-run page reclaim with bit-identical resume, and independent
  ``SeedSequence``-spawned trace seeds.

The hypothesis profile is derandomized like the other fuzz suites so CI
runs are reproducible.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import (
    QuantizedTransformer,
    TransformerModel,
    generate,
    get_model_config,
)
from repro.serve import (
    ClusterEngine,
    ClusterReport,
    FaultPlan,
    LeastLoadedRouting,
    PrefixAffinityRouting,
    Request,
    RoundRobinRouting,
    ServingEngine,
    SessionState,
    make_routing,
)
from repro.workloads import sample_requests, split_streams

FUZZ = settings(max_examples=8, deadline=None, derandomize=True)

ROUTINGS = ("rr", "least-loaded", "affinity")


@pytest.fixture(scope="module")
def model():
    """One calibrated quantised model shared by every cluster trace."""
    return QuantizedTransformer(
        TransformerModel(get_model_config("tiny"), seed=0), seed=1
    )


def _sample_trace(rng, vocab, prefix=None):
    """Random trace; with ``prefix`` tokens some requests share a prompt head."""
    n_requests = int(rng.integers(3, 11))
    gaps = rng.exponential(scale=float(rng.uniform(0.0, 2.0)), size=n_requests)
    arrivals = np.floor(np.cumsum(gaps)).astype(int)
    requests = []
    for i in range(n_requests):
        prompt = rng.integers(0, vocab, size=int(rng.integers(1, 12))).tolist()
        if prefix is not None and rng.random() < 0.5:
            prompt = list(prefix) + prompt
        requests.append(
            Request(
                request_id=f"r{i:02d}",
                prompt_tokens=prompt,
                max_new_tokens=int(rng.integers(1, 7)),
                arrival_step=int(arrivals[i]),
            )
        )
    return requests


def _solo_tokens(model, request):
    result = generate(
        model,
        list(request.prompt_tokens),
        max_new_tokens=request.max_new_tokens,
        eos_token=request.eos_token,
    )
    return result.generated_tokens


class _FakeReplica:
    """Minimal stand-in exposing the fields routing policies read."""

    def __init__(self, index, up=True, queue_load=0, pages_in_use=0):
        self.index = index
        self.up = up
        self.queue_load = queue_load
        self.pages_in_use = pages_in_use


class TestRoutingPolicies:
    def test_round_robin_cycles_and_skips_down(self):
        policy = RoundRobinRouting()
        replicas = [_FakeReplica(i) for i in range(3)]
        req = Request("q", [1], max_new_tokens=1)
        picks = [policy.route(req, replicas, 0).index for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]
        replicas[1].up = False
        picks = [policy.route(req, replicas, 0).index for _ in range(4)]
        assert picks == [0, 2, 0, 2]
        for r in replicas:
            r.up = False
        with pytest.raises(RuntimeError):
            policy.route(req, replicas, 0)

    def test_least_loaded_prefers_empty_then_pages_then_index(self):
        policy = LeastLoadedRouting()
        req = Request("q", [1], max_new_tokens=1)
        replicas = [
            _FakeReplica(0, queue_load=3, pages_in_use=1),
            _FakeReplica(1, queue_load=1, pages_in_use=9),
            _FakeReplica(2, queue_load=1, pages_in_use=2),
        ]
        assert policy.route(req, replicas, 0).index == 2
        replicas[2].up = False
        assert policy.route(req, replicas, 0).index == 1
        # full tie: the lowest index wins (determinism)
        even = [_FakeReplica(i, queue_load=2, pages_in_use=4) for i in range(3)]
        assert policy.route(req, even, 0).index == 0

    def test_affinity_is_stable_and_prefix_local(self):
        policy = PrefixAffinityRouting(head_tokens=4)
        replicas = [_FakeReplica(i) for i in range(4)]
        shared = [7, 3, 9, 1]
        a = Request("a", shared + [5, 5], max_new_tokens=1)
        b = Request("b", shared + [8], max_new_tokens=1)
        c = Request("c", [2, 2, 2, 2, 2], max_new_tokens=1)
        home = policy.route(a, replicas, 0).index
        # same head -> same home, across calls and request identities
        assert policy.route(b, replicas, 0).index == home
        assert policy.route(a, replicas, 5).index == home
        # a down home linear-probes to the next healthy index
        replicas[home].up = False
        moved = policy.route(a, replicas, 0).index
        assert moved == (home + 1) % 4 or replicas[moved].up
        replicas[home].up = True
        assert policy.route(c, replicas, 0).index == policy.route(
            c, replicas, 0
        ).index

    def test_make_routing_names(self):
        for name in ROUTINGS:
            assert make_routing(name).name == name
        with pytest.raises(KeyError):
            make_routing("random")


class TestClusterGolden:
    def test_d1_round_robin_equals_bare_engine(self, model):
        requests = sample_requests(
            14, vocab_size=model.config.vocab_size, seed=9, mean_interarrival=1.5
        )
        bare = ServingEngine(model, max_active=4, page_size=4)
        bare_handles = bare.submit_many(requests)
        bare_report = bare.run()

        cluster = ClusterEngine(
            model, n_replicas=1, routing="rr", max_active=4, page_size=4
        )
        handles = cluster.submit_many(requests)
        report = cluster.run()

        assert cluster.current_step == bare.current_step
        for bh, ch in zip(bare_handles, handles):
            assert ch.generated_tokens == bh.generated_tokens
            assert ch.metrics() == bh.metrics()
        # the entire report -- arena counters, policy block, every request
        # record -- is bit-identical: the cluster layer is transparent at D=1
        assert report.replicas[0].to_json() == bare_report.to_json()
        assert report.load_imbalance == 0.0
        assert report.rerouted == 0 and not report.failover_events

    def test_report_json_round_trip_is_tolerant(self, model):
        requests = sample_requests(6, vocab_size=model.config.vocab_size, seed=2)
        cluster = ClusterEngine(model, n_replicas=2, routing="affinity", page_size=4)
        cluster.submit_many(requests)
        report = cluster.run()
        payload = report.to_json()
        rebuilt = ClusterReport.from_json(payload)
        assert rebuilt.to_json() == payload
        # unknown keys are ignored, missing keys default
        payload["mystery_field"] = {"x": 1}
        payload["replicas"][0]["another_unknown"] = 3
        tolerant = ClusterReport.from_json(payload)
        assert tolerant.steps == report.steps
        assert tolerant.routing == "affinity"
        stripped = ClusterReport.from_json({"steps": 4})
        assert stripped.n_replicas == 0 and stripped.routing == "rr"

    def test_callbacks_receive_cluster_handles(self, model):
        requests = sample_requests(5, vocab_size=model.config.vocab_size, seed=4)
        cluster = ClusterEngine(model, n_replicas=2, routing="rr", page_size=4)
        streamed, completed = {}, []
        handles = [
            cluster.submit(
                r,
                on_token=lambda h, tok, s: streamed.setdefault(
                    h.request_id, []
                ).append(tok),
                on_complete=lambda h, m: completed.append((h.request_id, m.outcome)),
            )
            for r in requests
        ]
        cluster.run()
        for h in handles:
            assert streamed[h.request_id] == h.generated_tokens
        assert sorted(rid for rid, _ in completed) == sorted(
            r.request_id for r in requests
        )
        assert {outcome for _, outcome in completed} == {"finished"}

    def test_affinity_key_pins_session_to_one_replica(self, model):
        vocab = model.config.vocab_size
        requests = [
            Request(f"s{i}", [(i * 3) % vocab, 1, 2], max_new_tokens=2)
            for i in range(8)
        ]
        cluster = ClusterEngine(model, n_replicas=4, routing="least-loaded", page_size=4)
        handles = [
            cluster.submit(r, affinity_key="tenant-a" if i % 2 else "tenant-b")
            for i, r in enumerate(requests)
        ]
        report = cluster.run()
        by_key = {}
        for i, h in enumerate(handles):
            key = "tenant-a" if i % 2 else "tenant-b"
            by_key.setdefault(key, set()).add(h.replica_index)
        assert all(len(replicas) == 1 for replicas in by_key.values())
        assert report.affinity_hits == len(requests) - len(by_key)


class TestClusterFuzz:
    @FUZZ
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_every_config_matches_solo_reference(self, model, seed):
        rng = np.random.default_rng(seed)
        vocab = model.config.vocab_size
        prefix = rng.integers(0, vocab, size=6).tolist()
        requests = _sample_trace(rng, vocab, prefix=prefix)
        reference = {r.request_id: _solo_tokens(model, r) for r in requests}

        for n_replicas in (1, 2, 4):
            for routing in ROUTINGS:
                cluster = ClusterEngine(
                    model,
                    n_replicas=n_replicas,
                    routing=routing,
                    max_active=3,
                    page_size=4,
                    prefix_cache=True,
                    seed=seed,
                )
                handles = cluster.submit_many(requests)
                report = cluster.run()
                label = f"D={n_replicas} routing={routing}"
                # fleet tokens bit-identical to the solo reference
                for h in handles:
                    assert h.done, label
                    assert h.state is SessionState.FINISHED, label
                    assert (
                        h.generated_tokens == reference[h.request_id]
                    ), f"{label} {h.request_id}"
                # exactly one terminal record per request across the fleet
                ids = sorted(
                    m.request_id for rep in report.replicas for m in rep.requests
                )
                assert ids == sorted(r.request_id for r in requests), label
                # every replica arena drains with balanced books
                for rep in report.replicas:
                    assert rep.arena["pages_in_use"] == 0, label
                    conserved = (
                        rep.arena["page_faults"] - rep.arena["pages_freed"]
                    )
                    assert conserved == rep.arena["cached_idle_pages"], label

    @FUZZ
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_faulted_fleet_is_deterministic_and_accounted(self, model, seed):
        rng = np.random.default_rng(seed)
        requests = _sample_trace(rng, model.config.vocab_size)
        plan = FaultPlan.uniform(
            0.04, seed=seed, sites=("session.compute", "arena.alloc")
        )
        routing = ROUTINGS[seed % len(ROUTINGS)]
        n_replicas = (2, 4)[seed % 2]

        def run_once():
            cluster = ClusterEngine(
                model,
                n_replicas=n_replicas,
                routing=routing,
                max_active=2,
                page_size=4,
                faults=plan,
                seed=seed,
                failover_threshold=2,
                failover_window=4,
                failover_cooldown=6,
            )
            handles = cluster.submit_many(requests)
            report = cluster.run()
            return handles, report

        handles, report = run_once()
        _, replay = run_once()
        # a seeded (routing, D, faults) configuration replays bit-for-bit:
        # same routes, same failover history, same report
        assert replay.to_json() == report.to_json()

        solo = {r.request_id: _solo_tokens(model, r) for r in requests}
        for h in handles:
            assert h.done
            metrics = h.metrics()
            assert metrics.outcome in ("finished", "failed")
            if metrics.outcome == "finished":
                assert h.generated_tokens == solo[h.request_id]
        ids = sorted(m.request_id for rep in report.replicas for m in rep.requests)
        assert ids == sorted(r.request_id for r in requests)
        for rep in report.replicas:
            assert rep.arena["pages_in_use"] == 0
            assert rep.arena["page_faults"] == rep.arena["pages_freed"]
        for event in report.failover_events:
            assert event["event"] in ("down", "up")
            assert 0 <= event["replica"] < n_replicas

    def test_forced_failover_reroutes_queued_backlog(self, model):
        """A deterministically-downed replica re-routes its queue and recovers."""
        vocab = model.config.vocab_size
        # one long-running head request keeps replica 0 busy while the
        # backlog queues behind it; compute faults then trip the health gate
        requests = [
            Request(f"q{i:02d}", [(7 * i) % vocab, 3], max_new_tokens=6, arrival_step=0)
            for i in range(10)
        ]
        plan = FaultPlan.uniform(0.35, seed=1, sites=("session.compute",))
        cluster = ClusterEngine(
            model,
            n_replicas=2,
            routing="rr",
            max_active=1,
            page_size=4,
            faults=plan,
            seed=5,
            failover_threshold=1,
            failover_window=4,
            failover_cooldown=4,
        )
        handles = cluster.submit_many(requests)
        report = cluster.run()
        downs = [e for e in report.failover_events if e["event"] == "down"]
        ups = [e for e in report.failover_events if e["event"] == "up"]
        assert downs, "fault pressure never tripped the health threshold"
        assert ups, "downed replicas never recovered"
        assert report.rerouted >= 1
        assert any(h.rerouted for h in handles)
        moved = next(h for h in handles if h.rerouted)
        # the re-routed request kept its identity and terminal guarantees
        assert moved.done
        ids = [m.request_id for rep in report.replicas for m in rep.requests]
        assert sorted(ids) == sorted(r.request_id for r in requests)
        assert len(set(ids)) == len(ids)


class TestReleaseInflight:
    def test_truncated_run_release_balances_books_and_resumes(self, model):
        requests = sample_requests(
            8, vocab_size=model.config.vocab_size, seed=5
        )
        reference = ServingEngine(model, max_active=4, page_size=8)
        ref_handles = reference.submit_many(requests)
        reference.run()

        engine = ServingEngine(model, max_active=4, page_size=8)
        handles = engine.submit_many(requests)
        truncated = engine.run(max_steps=6)
        assert truncated.truncated and truncated.leftover_active > 0
        stats = engine.arena.stats
        # the bug this pins: a truncated run used to strand these pages
        # with shutdown() as the only (terminal) way out
        assert stats.pages_in_use > 0

        released = engine.release_inflight()
        assert released == truncated.leftover_active
        assert stats.pages_in_use == 0
        assert stats.page_faults == stats.pages_freed
        assert engine.n_active == 0
        assert engine.n_queued == truncated.leftover_queued + released

        # a follow-up run resumes and finishes bit-identically
        final = engine.run()
        assert not final.truncated
        for ref, h in zip(ref_handles, handles):
            assert h.generated_tokens == ref.generated_tokens
        assert stats.pages_in_use == 0

    def test_release_inflight_with_snapshots_resumes_identically(self, model):
        requests = sample_requests(
            8, vocab_size=model.config.vocab_size, seed=5
        )
        reference = ServingEngine(model, max_active=4, page_size=8)
        ref_handles = reference.submit_many(requests)
        reference.run()

        engine = ServingEngine(model, max_active=4, page_size=8, kv_snapshots=True)
        handles = engine.submit_many(requests)
        engine.run(max_steps=6)
        engine.release_inflight()
        assert engine.arena.stats.pages_in_use == 0
        engine.run()
        for ref, h in zip(ref_handles, handles):
            assert h.generated_tokens == ref.generated_tokens

    def test_release_inflight_on_idle_engine_is_a_noop(self, model):
        engine = ServingEngine(model, max_active=2, page_size=8)
        assert engine.release_inflight() == 0
        requests = sample_requests(3, vocab_size=model.config.vocab_size, seed=1)
        engine.submit_many(requests)
        engine.run()
        assert engine.release_inflight() == 0


class TestSplitStreams:
    def test_split_streams_is_deterministic_and_distinct(self):
        seeds = split_streams(4, seed=42)
        assert seeds == split_streams(4, seed=42)
        assert len(seeds) == len(set(seeds)) == 4
        assert all(isinstance(s, int) for s in seeds)
        assert split_streams(4, seed=43) != seeds
        with pytest.raises(ValueError):
            split_streams(0)

    def test_children_feed_sample_requests_independently(self, model):
        vocab = model.config.vocab_size
        a, b = split_streams(2, seed=7)
        stream_a = sample_requests(6, vocab_size=vocab, seed=a)
        stream_b = sample_requests(6, vocab_size=vocab, seed=b)
        tokens_a = [r.prompt_tokens for r in stream_a]
        tokens_b = [r.prompt_tokens for r in stream_b]
        assert tokens_a != tokens_b
        # replay: same root seed, same children, same streams
        a2, b2 = split_streams(2, seed=7)
        assert [r.prompt_tokens for r in sample_requests(6, vocab_size=vocab, seed=a2)] == tokens_a

    def test_single_stream_seed_untouched(self, model):
        """The additive helper does not perturb existing seed behaviour."""
        vocab = model.config.vocab_size
        before = sample_requests(5, vocab_size=vocab, seed=3)
        split_streams(8, seed=3)  # spawning must not consume global state
        after = sample_requests(5, vocab_size=vocab, seed=3)
        assert [r.prompt_tokens for r in before] == [r.prompt_tokens for r in after]
        assert [r.arrival_step for r in before] == [r.arrival_step for r in after]
