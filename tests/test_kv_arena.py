"""Property suite for :class:`repro.serve.kv_arena.PagedKVArena`.

Random page sizes, session lifetimes and append patterns are replayed in
parallel against standalone :class:`~repro.model.attention.KVCache` buffers
(the storage of record for the stacking path).  Invariants pinned here:

* ``gather_batch`` output equals the per-session ``KVCache.keys/values``
  exactly (bit-for-bit), for any interleaving of appends, frees and batch
  compositions -- including the incremental refresh path;
* freed pages are reused before the pool grows, and occupancy
  (``pages_in_use``) always equals the live sessions' page demand and never
  exceeds the pool;
* the arena-backed ``KVCache`` handle behaves like a standalone cache
  (views, ``seq_len``, ``clear``, ``release``).

The hypothesis profile is deterministic (derandomized, no deadline) so CI
runs are reproducible.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.attention import KVCache
from repro.serve import PagedKVArena

# deterministic on CI: no wall-clock deadline, fixed example sequence
FUZZ = settings(max_examples=30, deadline=None, derandomize=True)


def _expected_pages(lengths, page_size):
    """Page demand of one session given its per-layer lengths."""
    max_len = int(max(lengths))
    return -(-max_len // page_size) if max_len else 0


class TestArenaVsStandaloneReference:
    @FUZZ
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_random_lifetimes_match_reference_exactly(self, seed):
        rng = np.random.default_rng(seed)
        n_layers = int(rng.integers(1, 4))
        hidden = int(rng.integers(1, 12))
        page_size = int(rng.integers(1, 8))
        arena = PagedKVArena(
            n_layers,
            hidden,
            page_size=page_size,
            initial_pages=int(rng.integers(1, 6)),
        )
        live = {}  # sid -> per-layer list of standalone reference caches

        for _ in range(int(rng.integers(10, 40))):
            op = rng.random()
            if op < 0.30 or not live:  # open a session
                sid = arena.create_session()
                live[sid] = [KVCache() for _ in range(n_layers)]
            elif op < 0.75:  # append the same rows to arena and reference
                sid = list(live)[int(rng.integers(0, len(live)))]
                n_rows = int(rng.integers(1, 2 * page_size + 2))
                for layer in range(n_layers):
                    k = rng.normal(size=(n_rows, hidden))
                    v = rng.normal(size=(n_rows, hidden))
                    arena.append(sid, layer, k, v)
                    live[sid][layer].append(k, v)
            elif op < 0.85 and live:  # free a session
                sid = list(live)[int(rng.integers(0, len(live)))]
                arena.free(sid)
                del live[sid]
            elif live:  # gather a random batch and compare bit-for-bit
                sids = [
                    s
                    for s in live
                    if rng.random() < 0.7 and live[s][0].seq_len > 0
                ]
                if not sids:
                    continue
                layer = int(rng.integers(0, n_layers))
                keys, values, lengths = arena.gather_batch(layer, sids)
                for b, sid in enumerate(sids):
                    ref = live[sid][layer]
                    assert lengths[b] == ref.seq_len
                    assert np.array_equal(keys[b, : lengths[b]], ref.keys)
                    assert np.array_equal(values[b, : lengths[b]], ref.values)

            # occupancy invariants hold after every operation
            demand = sum(
                _expected_pages(
                    [live[s][layer].seq_len for layer in range(n_layers)],
                    page_size,
                )
                for s in live
            )
            assert arena.stats.pages_in_use == demand
            assert arena.stats.pages_in_use <= arena.n_pages
            assert arena.stats.n_pages == arena.n_pages
            assert arena.stats.peak_pages_in_use <= arena.n_pages

        for sid in list(live):
            arena.free(sid)
        assert arena.stats.pages_in_use == 0
        assert arena.stats.page_faults == arena.stats.pages_freed

    @FUZZ
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_incremental_refresh_equals_fresh_rebuild(self, seed):
        """Repeated gathers over a stable batch == a cold gather's answer."""
        rng = np.random.default_rng(seed)
        hidden = int(rng.integers(1, 10))
        page_size = int(rng.integers(1, 6))
        arena = PagedKVArena(1, hidden, page_size=page_size, initial_pages=2)
        n_sessions = int(rng.integers(1, 5))
        sids = [arena.create_session() for _ in range(n_sessions)]
        refs = {sid: KVCache() for sid in sids}
        for sid in sids:  # ragged initial contexts
            rows = int(rng.integers(1, 3 * page_size))
            k, v = rng.normal(size=(2, rows, hidden))
            arena.append(sid, 0, k, v)
            refs[sid].append(k, v)

        arena.gather_batch(0, sids)  # prime the per-layer cache (rebuild)
        for _ in range(int(rng.integers(1, 12))):
            for sid in sids:  # one decode step: one new row everywhere
                k, v = rng.normal(size=(2, 1, hidden))
                arena.append(sid, 0, k, v)
                refs[sid].append(k, v)
            keys, values, lengths = arena.gather_batch(0, sids)
            for b, sid in enumerate(sids):
                assert np.array_equal(keys[b, : lengths[b]], refs[sid].keys)
                assert np.array_equal(values[b, : lengths[b]], refs[sid].values)
        assert arena.stats.gather_incremental > 0


class TestPageReuse:
    def test_freed_pages_are_reused_without_growth(self):
        arena = PagedKVArena(1, 4, page_size=2, initial_pages=4)
        a = arena.create_session()
        arena.append(a, 0, np.ones((8, 4)), np.ones((8, 4)))  # all 4 pages
        assert arena.stats.pages_in_use == 4
        assert arena.stats.pool_grows == 0
        arena.free(a)
        assert arena.stats.pages_in_use == 0
        b = arena.create_session()
        arena.append(b, 0, np.zeros((8, 4)), np.zeros((8, 4)))
        # the second session fits entirely in recycled pages: no growth
        assert arena.n_pages == 4
        assert arena.stats.pool_grows == 0
        assert arena.stats.page_faults == 8
        assert arena.stats.pages_freed == 4

    def test_pool_grows_when_free_list_is_dry(self):
        arena = PagedKVArena(1, 4, page_size=2, initial_pages=1)
        sid = arena.create_session()
        arena.append(sid, 0, np.ones((7, 4)), np.ones((7, 4)))  # 4 pages
        assert arena.n_pages >= 4
        assert arena.stats.pool_grows >= 1
        k = arena.session_keys(sid, 0)
        assert k.shape == (7, 4) and np.array_equal(k, np.ones((7, 4)))

    def test_max_pages_bound_is_enforced(self):
        arena = PagedKVArena(1, 4, page_size=2, initial_pages=2, max_pages=2)
        sid = arena.create_session()
        arena.append(sid, 0, np.ones((4, 4)), np.ones((4, 4)))
        with pytest.raises(RuntimeError, match="exhausted"):
            arena.append(sid, 0, np.ones((1, 4)), np.ones((1, 4)))

    def test_truncated_then_refilled_session_invalidates_gather(self):
        """A cleared+refilled session must not serve stale cached rows."""
        arena = PagedKVArena(1, 3, page_size=2, initial_pages=2)
        sid = arena.create_session()
        arena.append(sid, 0, np.full((3, 3), 1.0), np.full((3, 3), 2.0))
        arena.gather_batch(0, [sid])  # cache now holds the 1.0 rows
        arena.clear_layer(sid, 0)
        assert arena.stats.pages_in_use == 0
        arena.append(sid, 0, np.full((3, 3), 9.0), np.full((3, 3), 8.0))
        keys, values, lengths = arena.gather_batch(0, [sid])
        assert np.array_equal(keys[0, :3], np.full((3, 3), 9.0))
        assert np.array_equal(values[0, :3], np.full((3, 3), 8.0))


class TestArenaBackedKVCacheHandle:
    def test_handle_matches_standalone_views(self):
        rng = np.random.default_rng(0)
        arena = PagedKVArena(2, 6, page_size=3)
        handles = arena.new_session_caches()
        refs = [KVCache(), KVCache()]
        assert all(h.keys is None and h.seq_len == 0 for h in handles)
        for _ in range(5):
            for layer, (handle, ref) in enumerate(zip(handles, refs)):
                k, v = rng.normal(size=(2, 2, 6))
                handle.append(k, v)
                ref.append(k, v)
        for handle, ref in zip(handles, refs):
            assert handle.seq_len == ref.seq_len
            assert np.array_equal(handle.keys, ref.keys)
            assert np.array_equal(handle.values, ref.values)
            assert handle.arena is arena

    def test_clear_frees_pages_once_all_layers_clear(self):
        arena = PagedKVArena(2, 4, page_size=2)
        handles = arena.new_session_caches()
        for handle in handles:
            handle.append(np.ones((3, 4)), np.ones((3, 4)))
        assert arena.stats.pages_in_use == 2
        handles[0].clear()
        assert handles[0].seq_len == 0 and handles[0].keys is None
        assert arena.stats.pages_in_use == 2  # layer 1 still live
        handles[1].clear()
        assert arena.stats.pages_in_use == 0

    def test_release_frees_whole_session_idempotently(self):
        arena = PagedKVArena(2, 4, page_size=2)
        handles = arena.new_session_caches()
        handles[0].append(np.ones((2, 4)), np.ones((2, 4)))
        sid = handles[0].arena_session
        assert arena.has_session(sid)
        handles[0].release()
        assert not arena.has_session(sid)
        handles[1].release()  # second handle: no-op, no KeyError
        assert arena.stats.sessions_freed == 1

    def test_released_handle_reads_like_a_cleared_cache(self):
        """Post-release accessors mirror standalone clear(); writes error."""
        arena = PagedKVArena(1, 4, page_size=2)
        (handle,) = arena.new_session_caches()
        handle.append(np.ones((3, 4)), np.ones((3, 4)))
        handle.release()
        assert handle.seq_len == 0
        assert handle.keys is None and handle.values is None
        handle.clear()  # no-op, not an error
        with pytest.raises(RuntimeError, match="released"):
            handle.append(np.ones((1, 4)), np.ones((1, 4)))

    def test_append_after_free_raises(self):
        arena = PagedKVArena(1, 4)
        sid = arena.create_session()
        arena.free(sid)
        with pytest.raises(KeyError):
            arena.append(sid, 0, np.ones((1, 4)), np.ones((1, 4)))
        with pytest.raises(KeyError):
            arena.gather_batch(0, [sid])


class TestValidation:
    def test_constructor_bounds(self):
        with pytest.raises(ValueError):
            PagedKVArena(0, 4)
        with pytest.raises(ValueError):
            PagedKVArena(1, 4, page_size=0)
        with pytest.raises(ValueError):
            PagedKVArena(1, 4, initial_pages=0)
        with pytest.raises(ValueError):
            PagedKVArena(1, 4, initial_pages=8, max_pages=4)
        with pytest.raises(ValueError):
            KVCache(arena=PagedKVArena(1, 4), session_id=None, layer=None)

    def test_append_shape_checks(self):
        arena = PagedKVArena(1, 4)
        sid = arena.create_session()
        with pytest.raises(ValueError, match="width"):
            arena.append(sid, 0, np.ones((2, 3)), np.ones((2, 3)))
        with pytest.raises(ValueError, match="identical"):
            arena.append(sid, 0, np.ones((2, 4)), np.ones((3, 4)))

    def test_gather_requires_sessions(self):
        arena = PagedKVArena(1, 4)
        with pytest.raises(ValueError, match="empty"):
            arena.gather_batch(0, [])
