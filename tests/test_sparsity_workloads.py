"""Tests for sparsity metrics, synthetic generators and workload profiles."""

import numpy as np
import pytest

from repro.sparsity import (
    WeightDistribution,
    activation_matrix,
    attention_logits,
    gaussian_int_weights,
    gaussian_weights,
    plane_sparsity_profile,
    repeated_column_fraction,
    repetition_ratio,
    sparsity_comparison_table,
    sparsity_report,
)
from repro.workloads import (
    BENCHMARK_TASKS,
    EVALUATED_MODELS,
    all_workloads,
    make_workload,
    profile_model,
)
from repro.workloads.profile import QUANT_SCHEMES, synthetic_attention_tensors


class TestSyntheticGenerators:
    def test_gaussian_weights_shape_and_scale(self):
        w = gaussian_weights((32, 64), seed=0)
        assert w.shape == (32, 64)
        assert abs(w.mean()) < 0.01

    def test_outliers_increase_max(self):
        no_outliers = gaussian_weights(
            (64, 512), WeightDistribution(outlier_fraction=0.0), seed=1
        )
        outliers = gaussian_weights(
            (64, 512), WeightDistribution(outlier_fraction=0.01), seed=1
        )
        assert np.abs(outliers).max() > np.abs(no_outliers).max()

    def test_int_weights_within_range(self):
        q = gaussian_int_weights((16, 128), bits=8, seed=2)
        assert q.max() <= 127 and q.min() >= -127
        q4 = gaussian_int_weights((16, 128), bits=4, seed=2)
        assert q4.max() <= 7 and q4.min() >= -7

    def test_reproducible_with_seed(self):
        a = gaussian_int_weights((8, 8), seed=3)
        b = gaussian_int_weights((8, 8), seed=3)
        assert np.array_equal(a, b)

    def test_activation_matrix_outlier_channels(self):
        x = activation_matrix((64, 256), outlier_fraction=0.05, seed=4)
        channel_max = np.abs(x).max(axis=0)
        assert channel_max.max() > 5 * np.median(channel_max)

    def test_attention_logits_skewed(self):
        logits = attention_logits(16, 256, seed=5)
        assert logits.shape == (16, 256)
        assert logits.max() > logits.mean() + 3 * logits.std() * 0.5


class TestSparsityMetrics:
    def test_report_bit_sparsity_exceeds_value(self):
        weights = gaussian_int_weights((128, 1024), seed=0)
        report = sparsity_report(weights)
        assert report.bit_sparsity > 0.5
        assert report.value_sparsity < 0.2
        assert report.bit_over_value_ratio > 3.0

    def test_plane_profile_keys(self):
        weights = gaussian_int_weights((32, 256), seed=1)
        profile = plane_sparsity_profile(weights)
        assert "1st BS" in profile and "7th BS" in profile and "sign" in profile
        # high-order planes are sparser than low-order planes
        assert profile["7th BS"] > profile["1st BS"]

    def test_high_order_planes_above_bstc_threshold(self):
        """Paper Fig. 8c: the 5th-7th magnitude planes exceed the 65 % threshold."""
        weights = gaussian_int_weights((256, 2048), seed=2)
        profile = plane_sparsity_profile(weights)
        for plane in ("5th BS", "6th BS", "7th BS"):
            assert profile[plane] > 0.65

    def test_repeated_column_fraction_high_for_sparse_planes(self):
        weights = gaussian_int_weights((64, 1024), seed=3)
        from repro.core.bitslice import to_bitslices

        top_plane = to_bitslices(weights, bits=8)[6]
        assert repeated_column_fraction(top_plane, group_size=4) > 0.8

    def test_repetition_ratio_bounds(self):
        weights = gaussian_int_weights((32, 512), seed=4)
        ratio = repetition_ratio(weights)
        assert 0.0 < ratio < 1.0

    def test_comparison_table_has_mean(self):
        table = sparsity_comparison_table(
            {"a": gaussian_int_weights((16, 128), seed=5)}
        )
        assert "Mean" in table
        assert table["a"]["ratio"] > 1.0


class TestWorkloads:
    def test_all_nine_tasks_defined(self):
        assert len(BENCHMARK_TASKS) == 9
        assert BENCHMARK_TASKS["Dolly"].prompt_len == 8192
        assert BENCHMARK_TASKS["MBPP"].is_decode_heavy

    def test_make_workload_overrides(self):
        wl = make_workload("Llama7B", "Dolly", prompt_len=1024, decode_len=48)
        assert wl.prompt_len == 1024
        assert wl.decode_len == 48
        assert wl.total_tokens == 1072

    def test_unknown_task_or_model_raise(self):
        with pytest.raises(KeyError):
            make_workload("Llama7B", "NotATask")
        with pytest.raises(KeyError):
            make_workload("NotAModel", "Dolly")

    def test_all_workloads_cartesian(self):
        workloads = all_workloads(models=["Llama7B", "OPT1B3"], tasks=["Cola", "MBPP"])
        assert len(workloads) == 4
        # the paper's full evaluation grid covers at least 26 benchmarks
        assert len(all_workloads()) >= 26


class TestAlgorithmProfile:
    @pytest.fixture(scope="class")
    def llama_profile(self):
        return profile_model("Llama7B")

    def test_profile_cached(self, llama_profile):
        assert profile_model("Llama7B") is llama_profile

    def test_profile_value_ranges(self, llama_profile):
        p = llama_profile
        assert 0.5 < p.bit_sparsity < 0.95
        assert 0.0 < p.value_sparsity < 0.3
        assert p.brcr_reduction > 2.0
        assert p.brcr_reduction > p.fullsize_merge_reduction
        assert p.bstc_compression_ratio > 1.0
        assert 0.0 < p.bgpp_keep_fraction < 1.0
        assert p.bgpp_recall > 0.6

    def test_bgpp_beats_value_topk_on_traffic_and_keys(self, llama_profile):
        p = llama_profile
        assert p.bgpp_kv_traffic_fraction < p.value_topk_traffic_fraction
        assert p.bgpp_keep_fraction <= p.value_topk_keep_fraction + 0.05

    def test_int4_profile_lower_bit_sparsity(self):
        int8 = profile_model("Llama13B", quant_scheme="ptq_int8")
        int4 = profile_model("Llama13B", quant_scheme="ptq_int4")
        assert int4.bit_sparsity < int8.bit_sparsity
        assert int4.value_sparsity > int8.value_sparsity

    def test_unknown_scheme_raises(self):
        with pytest.raises(KeyError):
            profile_model("Llama7B", quant_scheme="fp8")

    def test_alpha_scaling_helper(self, llama_profile):
        scaled = llama_profile.with_alpha_scaling(0.1)
        assert scaled.bgpp_keep_fraction == pytest.approx(0.1)
        assert scaled is not llama_profile

    def test_synthetic_attention_tensors_properties(self):
        q, k, scale = synthetic_attention_tensors(128, 64, seed=0)
        assert q.shape == (8, 64) and k.shape == (128, 64)
        assert np.abs(q).max() <= 127 and np.abs(k).max() <= 127
        assert scale > 0

    def test_quant_schemes_registry(self):
        assert set(QUANT_SCHEMES) == {"ptq_int8", "qat_int8", "ptq_int4"}
