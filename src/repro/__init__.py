"""repro -- reproduction of the MCBP LLM inference accelerator (MICRO 2025).

MCBP is an algorithm-hardware co-design that accelerates integer-quantised LLM
inference at the bit-slice level through three techniques:

* **BRCR** (:mod:`repro.core.brcr`) -- GEMM computation reduction by merging
  repeated bit-slice column vectors inside small row groups;
* **BSTC** (:mod:`repro.core.bstc`) -- lossless two-state coding of sparse
  high-order weight bit planes to cut weight traffic;
* **BGPP** (:mod:`repro.core.bgpp`) -- progressive, bit-grained top-k attention
  prediction with early termination to cut KV-cache traffic.

The package also contains the substrates needed to evaluate them end to end: a
NumPy decoder-only transformer with KV cache (:mod:`repro.model`), integer
quantisation (:mod:`repro.quant`), an analytical accelerator/GPU cost framework
(:mod:`repro.hw`, :mod:`repro.baselines`), workload descriptors
(:mod:`repro.workloads`) and per-figure experiment drivers (:mod:`repro.eval`).
"""

from . import baselines, core, eval, hw, model, quant, sparsity, serve, workloads
from .core import (
    BGPPConfig,
    BRCRConfig,
    BSTCCodec,
    bgpp_select,
    brcr_gemm,
    brcr_gemv,
)
from .core.engine import MCBPEngine
from .hw import MCBPAccelerator
from .workloads import make_workload, profile_model

__version__ = "0.1.0"

__all__ = [
    "core",
    "quant",
    "model",
    "sparsity",
    "hw",
    "baselines",
    "serve",
    "workloads",
    "eval",
    "BRCRConfig",
    "BGPPConfig",
    "BSTCCodec",
    "brcr_gemv",
    "brcr_gemm",
    "bgpp_select",
    "MCBPEngine",
    "MCBPAccelerator",
    "make_workload",
    "profile_model",
    "__version__",
]
