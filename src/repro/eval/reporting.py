"""Plain-text rendering of experiment results.

Every experiment driver returns nested dictionaries; these helpers turn them
into aligned text tables so the benchmark harness can print the same rows the
paper's tables/figures report, and EXPERIMENTS.md can embed them.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

__all__ = ["format_table", "format_nested_table", "format_value"]

Number = Union[int, float]


def format_value(value: object, precision: int = 3) -> str:
    """Render a cell: floats with fixed precision, everything else via str().

    ``None`` renders as ``-`` (a milestone/metric that never materialised,
    e.g. the prefix-hit rate of a cache-less replica in a cluster table),
    matching the report summaries' convention.
    """
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1e5 or (abs(value) < 1e-3 and value != 0.0):
            return f"{value:.3e}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
    precision: int = 3,
) -> str:
    """Format a list of row dictionaries as an aligned text table."""
    if not rows:
        return title or ""
    columns = list(columns) if columns is not None else list(rows[0].keys())
    rendered = [
        [format_value(row.get(col, ""), precision) for col in columns] for row in rows
    ]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for r in rendered:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(r)))
    return "\n".join(lines)


def format_nested_table(
    data: Mapping[str, Mapping[str, object]],
    row_label: str = "name",
    title: Optional[str] = None,
    precision: int = 3,
) -> str:
    """Format ``{row: {column: value}}`` as an aligned text table."""
    rows = []
    for name, values in data.items():
        row = {row_label: name}
        row.update(values)
        rows.append(row)
    return format_table(rows, title=title, precision=precision)
