"""Accelerator comparison experiments (paper Figs. 17, 23, 26 and Table 4).

All comparisons evaluate the same workloads with the same measured algorithm
profiles; only the accelerator model changes, so the normalised computation /
memory-access / speedup / energy numbers isolate what each design's
optimisation can exploit.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..baselines.accelerators import (
    SOTA_ACCELERATORS,
    BitwaveAccelerator,
    CambriconCAccelerator,
    EnergonAccelerator,
    FACTAccelerator,
    FuseKNAAccelerator,
    SOFAAccelerator,
    SpAttenAccelerator,
)
from ..hw.accelerator import AcceleratorReport, AnalyticalAccelerator, MCBPAccelerator
from ..workloads.profile import AlgorithmProfile, profile_model
from ..workloads.tasks import EVALUATED_MODELS, Workload, make_workload

__all__ = [
    "normalized_computation_prefill",
    "normalized_memory_access_decoding",
    "sota_stage_comparison",
    "cambricon_comparison",
    "sota_spec_table",
]

# Accelerators used in Fig. 17 (computation) -- SOFA is the normalisation base.
_FIG17_COMPUTE_ORDER = ["SOFA", "SpAtten", "FACT", "Bitwave", "FuseKNA", "MCBP"]
# Accelerators used in Fig. 17 (memory access) -- FuseKNA is the base.
_FIG17_MEMORY_ORDER = ["FuseKNA", "FACT", "SpAtten", "Energon", "Bitwave", "MCBP"]


def _accelerator(name: str, quant_scheme: str = "ptq_int8") -> AnalyticalAccelerator:
    if name == "MCBP":
        return MCBPAccelerator()
    if name == "MCBP-aggressive":
        return MCBPAccelerator(aggressive=True)
    return SOTA_ACCELERATORS[name]()


def normalized_computation_prefill(
    models: Sequence[str] = tuple(EVALUATED_MODELS),
    task_name: str = "Wikilingua",
    accelerators: Sequence[str] = tuple(_FIG17_COMPUTE_ORDER),
    baseline: str = "SOFA",
) -> Dict[str, Dict[str, float]]:
    """Normalised prefill computation per accelerator per model (Fig. 17 left).

    Computation is the number of physical datapath operations each design
    executes for the prefill stage, normalised to the ``baseline`` design
    (value 1.0), so lower is better.
    """
    results: Dict[str, Dict[str, float]] = {name: {} for name in accelerators}
    for model in models:
        profile = profile_model(model)
        workload = make_workload(model, task_name)
        ops: Dict[str, float] = {}
        bit_serial_designs = {"MCBP", "MCBP-aggressive", "Bitwave", "FuseKNA"}
        for name in accelerators:
            report = _accelerator(name).evaluate(workload, profile)
            # bit-serial designs count additions; divide by the weight bit
            # width to compare in MAC-equivalents against value-level designs.
            scale = 1.0 / profile.weight_bits if name in bit_serial_designs else 1.0
            ops[name] = report.prefill.physical_ops * scale
        base = ops[baseline]
        for name in accelerators:
            results[name][model] = ops[name] / base if base else 0.0
    for name in accelerators:
        vals = list(results[name].values())
        results[name]["Mean"] = sum(vals) / len(vals) if vals else 0.0
    return results


def normalized_memory_access_decoding(
    models: Sequence[str] = tuple(EVALUATED_MODELS),
    task_name: str = "Wikilingua",
    accelerators: Sequence[str] = tuple(_FIG17_MEMORY_ORDER),
    baseline: str = "FuseKNA",
) -> Dict[str, Dict[str, float]]:
    """Normalised decoding-stage DRAM traffic per accelerator (Fig. 17 right)."""
    results: Dict[str, Dict[str, float]] = {name: {} for name in accelerators}
    for model in models:
        profile = profile_model(model)
        workload = make_workload(model, task_name)
        traffic: Dict[str, float] = {}
        for name in accelerators:
            report = _accelerator(name).evaluate(workload, profile)
            traffic[name] = report.decode.dram_bytes
        base = traffic[baseline]
        for name in accelerators:
            results[name][model] = traffic[name] / base if base else 0.0
    for name in accelerators:
        vals = list(results[name].values())
        results[name]["Mean"] = sum(vals) / len(vals) if vals else 0.0
    return results


def sota_stage_comparison(
    model_name: str = "Llama7B",
    tasks: Sequence[str] = ("Dolly", "Wikilingua", "MBPP"),
    stage: str = "prefill",
    accelerators: Sequence[str] = ("SOFA", "SpAtten", "FACT", "Bitwave", "FuseKNA", "MCBP"),
    baseline: str = "SOFA",
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Per-task speedup and energy breakdown versus SOTA accelerators (Fig. 23).

    Returns ``{task: {accelerator: {speedup, energy_total, energy_compute,
    energy_bit_reorder, energy_offchip}}}`` with energy normalised to the
    baseline design for that task.
    """
    profile = profile_model(model_name)
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for task in tasks:
        workload = make_workload(model_name, task)
        reports: Dict[str, AcceleratorReport] = {
            name: _accelerator(name).evaluate(workload, profile) for name in accelerators
        }
        base_report = reports[baseline]
        base_stage = getattr(base_report, stage)
        base_latency = base_stage.latency_cycles
        base_energy = base_stage.total_energy_pj
        task_out: Dict[str, Dict[str, float]] = {}
        for name, report in reports.items():
            stage_cost = getattr(report, stage)
            breakdown = stage_cost.energy_breakdown()
            total = stage_cost.total_energy_pj
            task_out[name] = {
                "speedup": base_latency / stage_cost.latency_cycles
                if stage_cost.latency_cycles
                else 0.0,
                "energy_total": total / base_energy if base_energy else 0.0,
                "energy_compute": (breakdown["compute"] + breakdown["sram"]) / base_energy
                if base_energy
                else 0.0,
                "energy_bit_reorder": breakdown["bit_reorder"] / base_energy
                if base_energy
                else 0.0,
                "energy_offchip": (breakdown["dram"] + breakdown["prediction"]) / base_energy
                if base_energy
                else 0.0,
            }
        out[task] = task_out
    # mean across tasks
    mean: Dict[str, Dict[str, float]] = {}
    for name in accelerators:
        keys = out[tasks[0]][name].keys()
        mean[name] = {
            k: sum(out[t][name][k] for t in tasks) / len(tasks) for k in keys
        }
    out["Mean"] = mean
    return out


def cambricon_comparison(
    models: Sequence[str] = ("Llama13B", "Llama7B", "Bloom1B7"),
    task_name: str = "Dolly",
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """MCBP vs Cambricon-C (W4A8) on the Dolly task (Fig. 26).

    Both designs run the INT4-quantised profile; the comparison reports
    per-stage speedup and normalised energy.
    """
    out: Dict[str, Dict[str, Dict[str, float]]] = {"prefill": {}, "decode": {}}
    for model in models:
        profile = profile_model(model, quant_scheme="ptq_int4")
        workload = make_workload(model, task_name)
        cam = CambriconCAccelerator().evaluate(workload, profile)
        mcbp = MCBPAccelerator().evaluate(workload, profile)
        for stage in ("prefill", "decode"):
            cam_cost = getattr(cam, stage)
            mcbp_cost = getattr(mcbp, stage)
            out[stage][model] = {
                "speedup": cam_cost.latency_cycles / mcbp_cost.latency_cycles
                if mcbp_cost.latency_cycles
                else 0.0,
                "energy_ratio": mcbp_cost.total_energy_pj / cam_cost.total_energy_pj
                if cam_cost.total_energy_pj
                else 0.0,
            }
    return out


# Published specs (Table 4) for reference comparison; throughput in GOPS,
# efficiency in GOPS/W, technology in nm, area in mm^2.
_PUBLISHED_SPECS = {
    "SpAtten": {"technology_nm": 40, "area_mm2": 1.55, "throughput_gops": 360.0,
                 "efficiency_gops_w": 382.0, "stages": "Prefill (attention)"},
    "FACT": {"technology_nm": 28, "area_mm2": 6.03, "throughput_gops": 1153.0,
              "efficiency_gops_w": 4388.0, "stages": "Prefill (whole model)"},
    "SOFA": {"technology_nm": 28, "area_mm2": 4.29, "throughput_gops": 24423.0,
              "efficiency_gops_w": 7183.0, "stages": "Prefill (attention)"},
    "MCBP": {"technology_nm": 28, "area_mm2": 9.52, "throughput_gops": 54463.0,
              "efficiency_gops_w": 22740.0, "stages": "Prefill + Decode (whole model)"},
}


def sota_spec_table(
    model_name: str = "Llama7B", task_name: str = "Wikilingua"
) -> Dict[str, Dict[str, object]]:
    """Table 4: published specs plus this framework's measured efficiency ratios.

    The paper's table quotes each accelerator's own reported throughput /
    efficiency; this function adds a same-workload efficiency ratio measured
    with the analytical models so both views are available.
    """
    profile = profile_model(model_name)
    workload = make_workload(model_name, task_name)
    mcbp_report = MCBPAccelerator().evaluate(workload, profile)
    table: Dict[str, Dict[str, object]] = {}
    for name, spec in _PUBLISHED_SPECS.items():
        entry = dict(spec)
        if name == "MCBP":
            entry["measured_efficiency_ratio_vs_mcbp"] = 1.0
        else:
            report = _accelerator(name).evaluate(workload, profile)
            entry["measured_efficiency_ratio_vs_mcbp"] = (
                mcbp_report.energy_efficiency_gops_per_w
                / report.energy_efficiency_gops_per_w
                if report.energy_efficiency_gops_per_w
                else float("inf")
            )
        table[name] = entry
    return table
