"""MCBP vs A100 GPU comparisons (paper Figs. 20 and 21).

The paper compares 148 MCBP processors (matching the A100's 624 TOPS INT8
nominal compute) against one A100 running TensorRT-LLM, at batch 8 and 128.
Fig. 21 further splits each technique's gain into the *software gain*
(running the algorithm on the GPU) and the *hardware gain* (the dedicated
engine).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..baselines.gpu import GPUAccelerator
from ..hw.accelerator import MCBPAccelerator
from ..workloads.profile import profile_model
from ..workloads.tasks import EVALUATED_MODELS, make_workload

__all__ = [
    "throughput_and_efficiency_vs_gpu",
    "gain_breakdown",
    "bit_shift_overhead",
    "MCBP_PROCESSORS_FOR_GPU_PARITY",
]

# 148 MCBP processors give ~622 TOPS INT8 nominal, matching one A100 (§5.3).
MCBP_PROCESSORS_FOR_GPU_PARITY = 148


def throughput_and_efficiency_vs_gpu(
    models: Sequence[str] = tuple(EVALUATED_MODELS),
    task_name: str = "Wikilingua",
    batches: Sequence[int] = (8, 128),
) -> Dict[str, Dict[str, float]]:
    """Throughput and energy-efficiency gains of MCBP over the A100 (Fig. 20a/b).

    Returns per-model entries with GPU-normalised throughput for each batch
    size, plus the MCBP standard / aggressive speedups and efficiency gains at
    batch 8.
    """
    out: Dict[str, Dict[str, float]] = {}
    for model in models:
        profile = profile_model(model)
        row: Dict[str, float] = {}
        gpu_b8 = None
        for batch in batches:
            workload = make_workload(model, task_name, batch=batch)
            boost = 1.0 + 0.25 * np.log2(max(batch / 8.0, 1.0)) / 4.0
            gpu = GPUAccelerator(batch_utilization_boost=boost).evaluate(
                workload, profile
            )
            if batch == batches[0]:
                gpu_b8 = gpu
            row[f"gpu_throughput_b{batch}"] = gpu.throughput_gops
        workload = make_workload(model, task_name, batch=batches[0])
        standard = MCBPAccelerator().evaluate(
            workload, profile, n_processors=MCBP_PROCESSORS_FOR_GPU_PARITY
        )
        aggressive = MCBPAccelerator(aggressive=True).evaluate(
            workload, profile, n_processors=MCBP_PROCESSORS_FOR_GPU_PARITY
        )
        assert gpu_b8 is not None
        row["speedup_standard"] = gpu_b8.total_latency_s / standard.total_latency_s
        row["speedup_aggressive"] = gpu_b8.total_latency_s / aggressive.total_latency_s
        row["efficiency_gain_standard"] = (
            standard.energy_efficiency_gops_per_w / gpu_b8.energy_efficiency_gops_per_w
        )
        row["efficiency_gain_aggressive"] = (
            aggressive.energy_efficiency_gops_per_w / gpu_b8.energy_efficiency_gops_per_w
        )
        out[model] = row
    mean = {
        key: float(np.mean([out[m][key] for m in out]))
        for key in next(iter(out.values()))
    }
    out["Mean"] = mean
    return out


def gain_breakdown(
    model_name: str = "Llama7B",
    task_name: str = "Wikilingua",
    batch: int = 8,
) -> Dict[str, Dict[str, float]]:
    """Software vs hardware gain of each technique (Fig. 21).

    The software gain is obtained by enabling MCBP's algorithm on the GPU
    model; the hardware gain is the extra factor contributed by the dedicated
    engine.  Gains are cumulative in the order BRCR -> BSTC -> BGPP, matching
    the figure.
    """
    profile = profile_model(model_name)
    workload = make_workload(model_name, task_name, batch=batch)

    gpu_dense = GPUAccelerator().evaluate(workload, profile)

    software_steps = {
        "+BRCR": ("brcr",),
        "+BSTC": ("brcr", "bstc"),
        "+BGPP": ("brcr", "bstc", "bgpp"),
    }
    hardware_steps = {
        "+BRCR": dict(use_brcr=True, use_bstc=False, use_bgpp=False),
        "+BSTC": dict(use_brcr=True, use_bstc=True, use_bgpp=False),
        "+BGPP": dict(use_brcr=True, use_bstc=True, use_bgpp=True),
    }

    out: Dict[str, Dict[str, float]] = {}
    prev_sw_speedup = 1.0
    prev_hw_speedup = 1.0
    prev_sw_eff = 1.0
    prev_hw_eff = 1.0
    for step in software_steps:
        sw = GPUAccelerator(software_opts=software_steps[step]).evaluate(
            workload, profile
        )
        hw = MCBPAccelerator(**hardware_steps[step]).evaluate(
            workload, profile, n_processors=MCBP_PROCESSORS_FOR_GPU_PARITY
        )
        sw_speedup = gpu_dense.total_latency_s / sw.total_latency_s
        hw_speedup = gpu_dense.total_latency_s / hw.total_latency_s
        sw_eff = (
            sw.energy_efficiency_gops_per_w / gpu_dense.energy_efficiency_gops_per_w
        )
        hw_eff = (
            hw.energy_efficiency_gops_per_w / gpu_dense.energy_efficiency_gops_per_w
        )
        out[step] = {
            "software_speedup": sw_speedup,
            "hardware_speedup": hw_speedup,
            "software_step_gain": sw_speedup / prev_sw_speedup,
            "hardware_step_gain": hw_speedup / prev_hw_speedup,
            "software_efficiency": sw_eff,
            "hardware_efficiency": hw_eff,
            "software_efficiency_step_gain": sw_eff / prev_sw_eff,
            "hardware_efficiency_step_gain": hw_eff / prev_hw_eff,
        }
        prev_sw_speedup, prev_hw_speedup = sw_speedup, hw_speedup
        prev_sw_eff, prev_hw_eff = sw_eff, hw_eff
    return out


def bit_shift_overhead(
    model_name: str = "Llama7B",
    task_names: Sequence[str] = ("Dolly", "Wikilingua"),
    batch: int = 8,
) -> Dict[str, Dict[str, float]]:
    """Latency breakdown of value-level vs MCBP bit-level execution (Fig. 20c).

    MCBP's bit-serial datapath spends extra cycles on shift-and-accumulate
    (modelled as ``1/weight_bits`` of its compute work) but more than recovers
    it through sparsity; the value-level baseline has no shift overhead but
    executes every MAC.
    """
    profile = profile_model(model_name)
    out: Dict[str, Dict[str, float]] = {}
    for task in task_names:
        workload = make_workload(model_name, task, batch=batch)
        from ..baselines.accelerators import SystolicArrayAccelerator

        value_level = SystolicArrayAccelerator().evaluate(workload, profile)
        mcbp = MCBPAccelerator().evaluate(workload, profile)

        base_latency = value_level.total_latency_cycles
        mcbp_compute = mcbp.prefill.compute_cycles + mcbp.decode.compute_cycles
        mcbp_memory = mcbp.prefill.memory_cycles + mcbp.decode.memory_cycles
        shift = mcbp_compute / profile.weight_bits
        total = mcbp.total_latency_cycles
        out[task] = {
            "baseline_norm": 1.0,
            "mcbp_total_norm": total / base_latency,
            "mcbp_compute_norm": (mcbp_compute - shift) / base_latency,
            "mcbp_memory_norm": mcbp_memory / base_latency,
            "mcbp_bit_shift_norm": shift / base_latency,
            "bit_shift_fraction": shift / (mcbp_compute + mcbp_memory),
            "latency_reduction": base_latency / total,
        }
    keys = next(iter(out.values())).keys()
    out["GeoMean"] = {
        k: float(np.exp(np.mean([np.log(max(out[t][k], 1e-12)) for t in task_names])))
        for k in keys
    }
    return out
