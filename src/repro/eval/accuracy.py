"""Inference-fidelity experiments (paper Table 2, Fig. 24a and Fig. 25).

The paper reports task accuracy of FP16, INT8, MCBP-standard and
MCBP-aggressive models on MMLU/MBPP/GLUE/etc.  Pre-trained checkpoints and the
datasets are not available offline, so fidelity is measured instead: how
closely each execution mode reproduces the float model's outputs on synthetic
prompts.  The orderings the paper relies on -- INT8 is nearly lossless,
MCBP-standard matches INT8, MCBP-aggressive trades a small drop for more
sparsity, smaller alpha prunes more but hurts accuracy -- are all preserved by
these metrics.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.bgpp import make_bgpp_predictor, make_value_topk_predictor
from ..model.config import get_model_config
from ..model.transformer import QuantizedTransformer, TransformerModel
from ..sparsity.metrics import plane_sparsity_profile, sparsity_report
from ..sparsity.synthetic import gaussian_int_weights
from ..workloads.profile import QUANT_SCHEMES, profile_model

__all__ = [
    "FidelityMetrics",
    "fidelity_metrics",
    "accuracy_proxy_table",
    "alpha_sweep",
    "quantization_sparsity_study",
]


class FidelityMetrics(dict):
    """Dict of fidelity metrics with attribute access for convenience."""

    def __getattr__(self, item: str) -> float:
        try:
            return self[item]
        except KeyError as exc:  # pragma: no cover - defensive
            raise AttributeError(item) from exc


def _softmax(x: np.ndarray) -> np.ndarray:
    shifted = x - x.max(axis=-1, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=-1, keepdims=True)


def fidelity_metrics(
    reference_logits: np.ndarray, candidate_logits: np.ndarray
) -> FidelityMetrics:
    """Compare candidate logits against the float reference.

    * ``cosine`` -- cosine similarity of the flattened logits;
    * ``top1_agreement`` -- fraction of positions with the same argmax token;
    * ``pseudo_perplexity`` -- exp of the candidate's cross-entropy against the
      reference argmax tokens (lower is better, mirrors Wikitext perplexity);
    * ``accuracy_proxy`` -- top-1 agreement expressed in percent, the stand-in
      for the task accuracies of Table 2.
    """
    ref = np.asarray(reference_logits, dtype=np.float64)
    cand = np.asarray(candidate_logits, dtype=np.float64)
    if ref.shape != cand.shape:
        raise ValueError(f"shape mismatch {ref.shape} vs {cand.shape}")
    cosine = float(
        np.sum(ref * cand)
        / max(np.linalg.norm(ref) * np.linalg.norm(cand), 1e-12)
    )
    ref_tokens = np.argmax(ref, axis=-1)
    cand_tokens = np.argmax(cand, axis=-1)
    top1 = float(np.mean(ref_tokens == cand_tokens))
    probs = _softmax(cand)
    picked = probs[np.arange(ref_tokens.size), ref_tokens]
    ce = float(-np.mean(np.log(np.maximum(picked, 1e-12))))
    return FidelityMetrics(
        cosine=cosine,
        top1_agreement=top1,
        pseudo_perplexity=float(np.exp(ce)),
        accuracy_proxy=100.0 * top1,
    )


def _synthetic_prompts(
    vocab_size: int, n_prompts: int, prompt_len: int, seed: int
) -> List[List[int]]:
    rng = np.random.default_rng(seed)
    return [
        rng.integers(1, vocab_size, size=prompt_len).tolist() for _ in range(n_prompts)
    ]


def accuracy_proxy_table(
    model_name: str = "tiny",
    n_prompts: int = 3,
    prompt_len: int = 24,
    standard_alpha: float = 0.7,
    aggressive_alpha: float = 0.5,
    seed: int = 0,
) -> Dict[str, FidelityMetrics]:
    """Table 2 analogue: FP16 / INT8 / MCBP-standard / MCBP-aggressive fidelity.

    All modes are compared against the float model.  MCBP standard/aggressive
    run the INT8 model with the BGPP predictor at a conservative / aggressive
    alpha, mirroring the paper's two operating points.
    """
    config = get_model_config(model_name)
    model = TransformerModel(config, seed=seed)
    quantized = QuantizedTransformer(
        model, weight_bits=8, calibration_tokens=list(range(1, 33))
    )
    prompts = _synthetic_prompts(config.vocab_size, n_prompts, prompt_len, seed + 1)

    standard_pred = make_bgpp_predictor(alpha=[0.9, 0.8, standard_alpha])
    aggressive_pred = make_bgpp_predictor(alpha=[0.8, aggressive_alpha, aggressive_alpha])

    modes = {
        "FP16": lambda tokens: model.forward(tokens)[0],
        "INT8": lambda tokens: quantized.forward(tokens)[0],
        "MCBP (S)": lambda tokens: quantized.forward(tokens, predictor=standard_pred)[0],
        "MCBP (A)": lambda tokens: quantized.forward(tokens, predictor=aggressive_pred)[0],
    }

    accumulated: Dict[str, List[FidelityMetrics]] = {name: [] for name in modes}
    for tokens in prompts:
        reference = model.forward(tokens)[0]
        for name, fn in modes.items():
            accumulated[name].append(fidelity_metrics(reference, fn(tokens)))

    table: Dict[str, FidelityMetrics] = {}
    for name, entries in accumulated.items():
        table[name] = FidelityMetrics(
            {k: float(np.mean([e[k] for e in entries])) for k in entries[0]}
        )
    return table


def alpha_sweep(
    alphas: Sequence[float] = (0.8, 0.7, 0.6, 0.5, 0.4, 0.3),
    model_name: str = "tiny",
    prompt_len: int = 48,
    n_prompts: int = 2,
    seed: int = 0,
) -> Dict[float, Dict[str, float]]:
    """Impact of alpha on accuracy proxy and attention sparsity (Fig. 24a).

    Smaller alpha prunes more keys (higher attention sparsity) at the cost of
    output fidelity -- the same trade-off the paper tunes to pick alpha in
    0.5-0.6.
    """
    config = get_model_config(model_name)
    model = TransformerModel(config, seed=seed)
    prompts = _synthetic_prompts(config.vocab_size, n_prompts, prompt_len, seed + 3)
    references = [model.forward(tokens)[0] for tokens in prompts]

    out: Dict[float, Dict[str, float]] = {}
    for alpha in alphas:
        predictor = make_bgpp_predictor(alpha=alpha)
        fidelities, sparsities = [], []
        for tokens, reference in zip(prompts, references):
            logits, stats = model.forward(tokens, predictor=predictor)
            fidelities.append(fidelity_metrics(reference, logits)["accuracy_proxy"])
            sparsities.append(stats.attention_sparsity)
        out[float(alpha)] = {
            "accuracy_proxy": float(np.mean(fidelities)),
            "attention_sparsity": float(100.0 * np.mean(sparsities)),
        }
    return out


def quantization_sparsity_study(
    model_name: str = "Llama13B",
    rows: int = 256,
    seed: int = 0,
) -> Dict[str, Dict[str, object]]:
    """Bit vs value sparsity and BRCR/BSTC gains per quantisation scheme (Fig. 25).

    Covers PTQ-INT8, QAT-INT8 and PTQ-INT4 with the per-plane sparsity profile,
    mean bit sparsity, value sparsity, and the resulting normalised computation
    (via BRCR) and memory access (via BSTC) relative to the value-level dense
    execution of each scheme.
    """
    config = get_model_config(model_name)
    out: Dict[str, Dict[str, object]] = {}
    for scheme_name, scheme in QUANT_SCHEMES.items():
        bits = int(scheme["bits"])
        weights = gaussian_int_weights(
            (rows, min(config.hidden_size, 4096)),
            bits=bits,
            distribution=scheme["distribution"],
            seed=seed,
        )
        report = sparsity_report(weights, bits=bits)
        profile = profile_model(model_name, quant_scheme=scheme_name, seed=seed)
        out[scheme_name] = {
            "bits": bits,
            "plane_sparsity": plane_sparsity_profile(weights, bits=bits),
            "bit_sparsity": report.bit_sparsity,
            "value_sparsity": report.value_sparsity,
            "norm_computation_brcr": float(bits / profile.brcr_reduction / bits),
            "norm_memory_bstc": float(1.0 / profile.bstc_compression_ratio),
        }
    return out
