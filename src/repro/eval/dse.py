"""Design-space exploration experiments (paper Figs. 8b, 8c, 18 and 5b/5d).

These studies sweep the group size ``m`` and sparsity ratio to locate the
sweet spot the paper settles on (``m = 4``): large enough to expose column
repetition and all-zero coded columns, small enough that the exponential
reconstruction cost and the per-column indicator bit stay cheap.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.brcr import brcr_additions, bit_serial_additions, group_merge_reduction
from ..core.bstc import BSTCCodec, BSTCConfig, analytic_compression_ratio
from ..sparsity.metrics import plane_sparsity_profile, sparsity_comparison_table
from ..sparsity.synthetic import gaussian_int_weights
from ..workloads.profile import profile_model
from ..workloads.tasks import EVALUATED_MODELS

__all__ = [
    "compression_ratio_vs_group_size",
    "plane_sparsity_by_model",
    "group_size_dse",
    "merge_strategy_comparison",
    "bit_vs_value_sparsity",
]


def compression_ratio_vs_group_size(
    sparsity_ratios: Sequence[float] = (0.95, 0.9, 0.85, 0.75, 0.65),
    group_sizes: Sequence[int] = tuple(range(1, 11)),
) -> Dict[float, List[float]]:
    """Analytic BSTC compression ratio as a function of (SR, m) -- Fig. 8(b)."""
    return {
        sr: [analytic_compression_ratio(sr, m) for m in group_sizes]
        for sr in sparsity_ratios
    }


def plane_sparsity_by_model(
    models: Sequence[str] = ("Llama7B", "Qwen7B"),
    bits: int = 8,
    rows: int = 256,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Per-bit-position sparsity of synthetic weights per model -- Fig. 8(c)."""
    from ..model.config import get_model_config

    out: Dict[str, Dict[str, float]] = {}
    for model in models:
        config = get_model_config(model)
        weights = gaussian_int_weights(
            (rows, min(config.hidden_size, 4096)), bits=bits, seed=seed
        )
        out[model] = plane_sparsity_profile(weights, bits=bits)
    return out


def group_size_dse(
    group_sizes: Sequence[int] = tuple(range(1, 10)),
    hidden: int = 4096,
    bits: int = 8,
    sparsity_levels: Sequence[float] = (0.75, 0.95),
    rows: int = 128,
    seed: int = 0,
) -> Dict[int, Dict[str, float]]:
    """Joint DSE of computation reduction and compression ratio vs ``m`` (Fig. 18).

    For each group size the analytic BRCR addition count is compared against
    the sparsity-aware bit-serial baseline at a low and a high bit-sparsity
    level (giving the min/max computation-reduction band the paper plots), and
    the measured BSTC compression ratio on a synthetic weight sample is
    reported alongside.
    """
    weights = gaussian_int_weights((rows, hidden), bits=bits, seed=seed)
    out: Dict[int, Dict[str, float]] = {}
    for m in group_sizes:
        reductions = []
        for bs in sparsity_levels:
            brcr = brcr_additions(hidden, bits, m, bs, rows=rows)
            serial = bit_serial_additions(hidden, bits, m, bs, rows=rows)
            reductions.append(serial / brcr if brcr else float("inf"))
        codec = BSTCCodec(BSTCConfig(group_size=m, bits=bits))
        cr = codec.encode(weights).compression_ratio
        out[m] = {
            "comp_reduction_min": float(min(reductions)),
            "comp_reduction_max": float(max(reductions)),
            "compression_ratio": float(cr),
        }
    return out


def optimal_group_size(
    dse: Optional[Dict[int, Dict[str, float]]] = None,
    prefer_power_of_two: bool = True,
) -> int:
    """Pick the group size balancing computation reduction and compression.

    Uses the product of the max computation reduction and the compression
    ratio as the balance score.  Following the paper, candidates are
    restricted to powers of two (a group size must evenly divide common
    Transformer hidden dimensions to avoid ragged groups), which lands the
    choice on ``m = 4`` for INT8 LLM weights.
    """
    dse = dse or group_size_dse()
    candidates = [
        m for m in dse
        if not prefer_power_of_two or (m & (m - 1)) == 0
    ]
    best_m, best_score = candidates[0], -1.0
    for m in candidates:
        row = dse[m]
        # geometric mean of the low- and high-sparsity computation reduction,
        # weighted by the compression ratio: robust across the sparsity range
        # the planes actually span.
        comp = float(
            np.sqrt(row["comp_reduction_min"] * row["comp_reduction_max"])
        )
        score = comp * row["compression_ratio"]
        if score > best_score:
            best_m, best_score = m, score
    return best_m


def merge_strategy_comparison(
    models: Sequence[str] = tuple(EVALUATED_MODELS),
    group_size: int = 4,
    rows: int = 128,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Full-size vs group-wise merge computation reduction per model (Fig. 5b)."""
    from ..model.config import get_model_config

    out: Dict[str, Dict[str, float]] = {}
    for model in models:
        config = get_model_config(model)
        weights = gaussian_int_weights(
            (rows, min(config.hidden_size, 2048)), bits=8, seed=seed
        )
        full, group = group_merge_reduction(weights, group_size, bits=8)
        out[model] = {"full_size": full, "group_wise": group, "ratio": group / full}
    means = {
        key: float(np.mean([out[m][key] for m in out])) for key in ("full_size", "group_wise", "ratio")
    }
    out["Mean"] = means
    return out


def bit_vs_value_sparsity(
    models: Sequence[str] = tuple(EVALUATED_MODELS),
    rows: int = 256,
    bits: int = 8,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Value sparsity vs mean bit sparsity per model (Fig. 5d / Fig. 25b)."""
    from ..model.config import get_model_config

    weight_sets = {}
    for model in models:
        config = get_model_config(model)
        weight_sets[model] = gaussian_int_weights(
            (rows, min(config.hidden_size, 4096)), bits=bits, seed=seed
        )
    return sparsity_comparison_table(weight_sets, bits=bits)
