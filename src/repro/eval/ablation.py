"""Ablation studies of MCBP's three techniques (paper Figs. 19 and 24b).

* :func:`technique_latency_ablation` adds BRCR, BSTC and BGPP one at a time on
  top of the vanilla baseline (bit-serial compute + value-level compression +
  value-level top-k) and reports end-to-end latency, reproducing Fig. 19(a).
* :func:`separate_technique_effects` measures each technique in isolation on
  prompt-heavy (Dolly) and decode-heavy (MBPP) workloads, Fig. 19(b).
* :func:`hardware_ablation` reports the incremental area/power/throughput/
  efficiency of the three engines against a same-throughput systolic array,
  Fig. 24(b).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..baselines.accelerators import SystolicArrayAccelerator
from ..hw.accelerator import MCBPAccelerator
from ..hw.area import AREA_FRACTIONS, CORE_POWER_FRACTIONS
from ..workloads.profile import profile_model
from ..workloads.tasks import EVALUATED_MODELS, make_workload

__all__ = [
    "technique_latency_ablation",
    "separate_technique_effects",
    "hardware_ablation",
]

_ABLATION_STEPS = (
    ("Baseline", dict(use_brcr=False, use_bstc=False, use_bgpp=False)),
    ("+BRCR", dict(use_brcr=True, use_bstc=False, use_bgpp=False)),
    ("+BSTC", dict(use_brcr=True, use_bstc=True, use_bgpp=False)),
    ("+BGPP", dict(use_brcr=True, use_bstc=True, use_bgpp=True)),
)


def technique_latency_ablation(
    models: Sequence[str] = tuple(EVALUATED_MODELS),
    task_name: str = "Wikilingua",
    batch: int = 8,
) -> Dict[str, Dict[str, float]]:
    """Normalised end-to-end latency as BRCR, BSTC and BGPP are enabled (Fig. 19a).

    Returns ``{model: {step: normalised latency}}`` with the baseline at 1.0.
    """
    out: Dict[str, Dict[str, float]] = {}
    for model in models:
        profile = profile_model(model)
        workload = make_workload(model, task_name, batch=batch)
        latencies: Dict[str, float] = {}
        for step_name, flags in _ABLATION_STEPS:
            report = MCBPAccelerator(**flags).evaluate(workload, profile)
            latencies[step_name] = report.total_latency_s
        base = latencies["Baseline"]
        out[model] = {k: v / base for k, v in latencies.items()}
    mean = {
        step: sum(out[m][step] for m in out) / len(out) for step, _ in _ABLATION_STEPS
    }
    out["Mean"] = mean
    return out


def separate_technique_effects(
    model_name: str = "Llama7B",
    batch: int = 8,
    dolly_prompts: Sequence[int] = (1024, 4096),
    mbpp_decodes: Sequence[int] = (1024, 4096),
) -> Dict[str, Dict[str, float]]:
    """Per-technique speedup on prompt-heavy and decode-heavy tasks (Fig. 19b).

    Dolly keeps a ~48-token decode and sweeps the prompt length (prefill /
    GEMM-bound); MBPP keeps a ~48-token prompt and sweeps the decode length
    (weight/KV-traffic bound).  Each technique is enabled alone on top of the
    vanilla baseline and its speedup over that baseline reported.
    """
    profile = profile_model(model_name)
    single_technique = {
        "BRCR": dict(use_brcr=True, use_bstc=False, use_bgpp=False),
        "BSTC": dict(use_brcr=False, use_bstc=True, use_bgpp=False),
        "BGPP": dict(use_brcr=False, use_bstc=False, use_bgpp=True),
    }
    baseline_flags = dict(use_brcr=False, use_bstc=False, use_bgpp=False)

    scenarios: Dict[str, Dict[str, int]] = {}
    for p in dolly_prompts:
        scenarios[f"Dolly-prompt{p}"] = {"prompt_len": p, "decode_len": 48, "task": "Dolly"}
    for d in mbpp_decodes:
        scenarios[f"MBPP-decode{d}"] = {"prompt_len": 48, "decode_len": d, "task": "MBPP"}

    out: Dict[str, Dict[str, float]] = {}
    for scen_name, scen in scenarios.items():
        workload = make_workload(
            model_name,
            scen["task"],
            batch=batch,
            prompt_len=scen["prompt_len"],
            decode_len=scen["decode_len"],
        )
        base = MCBPAccelerator(**baseline_flags).evaluate(workload, profile)
        row: Dict[str, float] = {}
        for tech, flags in single_technique.items():
            report = MCBPAccelerator(**flags).evaluate(workload, profile)
            row[tech] = base.total_latency_s / report.total_latency_s
        out[scen_name] = row
    return out


def hardware_ablation(
    model_name: str = "Llama7B",
    task_name: str = "Wikilingua",
    batch: int = 8,
) -> Dict[str, Dict[str, float]]:
    """Incremental hardware cost and benefit of the three engines (Fig. 24b).

    The systolic-array reference provides the same nominal throughput budget;
    each step adds one engine, paying its area/power overhead (from the
    published breakdowns) and gaining its measured throughput improvement.
    Values are normalised to the systolic array.
    """
    profile = profile_model(model_name)
    workload = make_workload(model_name, task_name, batch=batch)

    systolic = SystolicArrayAccelerator().evaluate(workload, profile)

    steps = {
        "SystolicArray": dict(use_brcr=False, use_bstc=False, use_bgpp=False),
        "BRCR": dict(use_brcr=True, use_bstc=False, use_bgpp=False),
        "+BSTC": dict(use_brcr=True, use_bstc=True, use_bgpp=False),
        "+BGPP": dict(use_brcr=True, use_bstc=True, use_bgpp=True),
    }
    # Relative area/power of each incremental engine, from Fig. 22 fractions.
    area_increment = {
        "SystolicArray": 1.0,
        "BRCR": AREA_FRACTIONS["brcr_unit"] + AREA_FRACTIONS["scheduler"],
        "+BSTC": AREA_FRACTIONS["bstc_unit"],
        "+BGPP": AREA_FRACTIONS["bgpp_unit"],
    }
    power_increment = {
        "SystolicArray": 1.0,
        "BRCR": CORE_POWER_FRACTIONS["brcr_unit"] + CORE_POWER_FRACTIONS["scheduler"],
        "+BSTC": CORE_POWER_FRACTIONS["bstc_unit"],
        "+BGPP": CORE_POWER_FRACTIONS["bgpp_unit"],
    }

    out: Dict[str, Dict[str, float]] = {}
    cumulative_area = 0.0
    cumulative_power = 0.0
    for step, flags in steps.items():
        if step == "SystolicArray":
            report = systolic
            cumulative_area = 1.0
            cumulative_power = 1.0
        else:
            report = MCBPAccelerator(**flags).evaluate(workload, profile)
            # BRCR replaces the MAC array with bit-serial PEs: its area/power
            # substitute for (rather than add to) the systolic datapath.
            if step == "BRCR":
                cumulative_area = 0.45 + area_increment[step]
                cumulative_power = 0.20 + power_increment[step]
            else:
                cumulative_area += area_increment[step]
                cumulative_power += power_increment[step]
        throughput = systolic.total_latency_s / report.total_latency_s
        efficiency = (
            systolic.total_energy_j / report.total_energy_j
        ) if report.total_energy_j else 0.0
        out[step] = {
            "area": cumulative_area,
            "power": cumulative_power,
            "throughput": throughput,
            "energy_efficiency": efficiency,
        }
    return out
