"""Experiment drivers reproducing every table and figure of the paper."""

from .ablation import (
    hardware_ablation,
    separate_technique_effects,
    technique_latency_ablation,
)
from .accuracy import (
    FidelityMetrics,
    accuracy_proxy_table,
    alpha_sweep,
    fidelity_metrics,
    quantization_sparsity_study,
)
from .breakdown import (
    latency_breakdown_vs_prompt,
    latency_components,
    serving_breakdown_vs_sessions,
)
from .comparison import (
    cambricon_comparison,
    normalized_computation_prefill,
    normalized_memory_access_decoding,
    sota_spec_table,
    sota_stage_comparison,
)
from .dse import (
    bit_vs_value_sparsity,
    compression_ratio_vs_group_size,
    group_size_dse,
    merge_strategy_comparison,
    optimal_group_size,
    plane_sparsity_by_model,
)
from .gpu_comparison import (
    MCBP_PROCESSORS_FOR_GPU_PARITY,
    bit_shift_overhead,
    gain_breakdown,
    throughput_and_efficiency_vs_gpu,
)
from .reporting import format_nested_table, format_table, format_value

__all__ = [
    "latency_components",
    "latency_breakdown_vs_prompt",
    "serving_breakdown_vs_sessions",
    "normalized_computation_prefill",
    "normalized_memory_access_decoding",
    "sota_stage_comparison",
    "cambricon_comparison",
    "sota_spec_table",
    "technique_latency_ablation",
    "separate_technique_effects",
    "hardware_ablation",
    "compression_ratio_vs_group_size",
    "plane_sparsity_by_model",
    "group_size_dse",
    "optimal_group_size",
    "merge_strategy_comparison",
    "bit_vs_value_sparsity",
    "throughput_and_efficiency_vs_gpu",
    "gain_breakdown",
    "bit_shift_overhead",
    "MCBP_PROCESSORS_FOR_GPU_PARITY",
    "FidelityMetrics",
    "fidelity_metrics",
    "accuracy_proxy_table",
    "alpha_sweep",
    "quantization_sparsity_study",
    "format_table",
    "format_nested_table",
    "format_value",
]
