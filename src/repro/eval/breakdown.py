"""End-to-end latency breakdown on the GPU baseline (paper Fig. 1a).

The motivating figure decomposes LLaMA-7B end-to-end latency (prefill + a
16-token decode) into GEMM computation, weight loading, KV-cache loading and
"others" as the prompt length grows from 1k to 128k tokens.  The short-prompt
regime is dominated by decode-stage weight streaming; long prompts shift the
bottleneck to prefill GEMMs and KV-cache reads.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..baselines.gpu import GPUAccelerator
from ..hw.accelerator import dense_stage_quantities
from ..workloads.profile import AlgorithmProfile, profile_model
from ..workloads.tasks import make_workload

__all__ = ["latency_components", "latency_breakdown_vs_prompt"]


def latency_components(
    model_name: str,
    prompt_len: int,
    decode_len: int = 16,
    batch: int = 4,
    gpu: Optional[GPUAccelerator] = None,
) -> Dict[str, float]:
    """Additive latency contributions (in GPU cycles) of one workload.

    Components follow the paper's categories: ``gemm`` (prefill + decode
    compute), ``weight_load`` (weight streaming), ``kv_load`` (KV-cache reads
    and writes) and ``others`` (activation movement and prediction overheads).
    """
    gpu = gpu or GPUAccelerator()
    workload = make_workload(
        model_name, "Dolly", batch=batch, prompt_len=prompt_len, decode_len=decode_len
    )
    dense = dense_stage_quantities(workload)
    model = workload.model

    # Large GEMMs run near peak tensor-core efficiency; the decode-stage weight
    # stream only sustains a fraction of the HBM bandwidth because each layer's
    # GEMV is a separate, short kernel.
    gemm_efficiency = 0.80
    stream_efficiency = 0.50
    peak = gpu.peak_ops_per_cycle * gemm_efficiency
    bw = gpu.hbm_bytes_per_cycle

    gemm_cycles = (
        dense["prefill_linear_macs"]
        + dense["prefill_attention_macs"]
        + dense["decode_linear_macs"]
        + dense["decode_attention_macs"]
    ) / peak
    weight_cycles = (
        dense["prefill_weight_bytes"] + dense["decode_weight_bytes"]
    ) / (bw * stream_efficiency)
    # KV traffic: cache writes during prefill, full-cache reads every decode
    # step, plus the tiled re-reads of K/V during prefill attention (one pass
    # over the cache per ~2k query tile, which is what makes KV loading grow
    # with the prompt length in Fig. 1a).
    attention_tile = 1024
    kv_passes = max(1.0, workload.prompt_len / attention_tile)
    prefill_kv_reads = kv_passes * model.kv_cache_bytes(workload.prompt_len, workload.batch)
    kv_cycles = (
        dense["prefill_kv_bytes"] + dense["decode_kv_bytes"] + prefill_kv_reads
    ) / bw
    other_cycles = (dense["prefill_act_bytes"] + dense["decode_act_bytes"]) / bw
    other_cycles += 0.05 * (gemm_cycles + weight_cycles + kv_cycles)  # launch/sync overheads

    return {
        "gemm": gemm_cycles,
        "weight_load": weight_cycles,
        "kv_load": kv_cycles,
        "others": other_cycles,
    }


def latency_breakdown_vs_prompt(
    model_name: str = "Llama7B",
    prompt_lens: Sequence[int] = (1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072),
    decode_len: int = 16,
    batch: int = 4,
) -> List[Dict[str, float]]:
    """Percentage latency breakdown for each prompt length (Fig. 1a).

    Each entry contains the prompt length and the four components expressed as
    percentages of the end-to-end latency.
    """
    rows: List[Dict[str, float]] = []
    gpu = GPUAccelerator()
    for prompt_len in prompt_lens:
        comps = latency_components(
            model_name, prompt_len, decode_len=decode_len, batch=batch, gpu=gpu
        )
        total = sum(comps.values())
        row = {"prompt_len": float(prompt_len)}
        row.update({k: 100.0 * v / total for k, v in comps.items()})
        rows.append(row)
    return rows
