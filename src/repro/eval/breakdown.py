"""End-to-end latency breakdown on the GPU baseline (paper Fig. 1a).

The motivating figure decomposes LLaMA-7B end-to-end latency (prefill + a
16-token decode) into GEMM computation, weight loading, KV-cache loading and
"others" as the prompt length grows from 1k to 128k tokens.  The short-prompt
regime is dominated by decode-stage weight streaming; long prompts shift the
bottleneck to prefill GEMMs and KV-cache reads.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..baselines.gpu import GPUAccelerator
from ..hw.accelerator import dense_stage_quantities
from ..workloads.profile import AlgorithmProfile, profile_model
from ..workloads.tasks import make_workload

__all__ = [
    "latency_components",
    "latency_breakdown_vs_prompt",
    "serving_breakdown_vs_sessions",
]


# Large GEMMs run near peak tensor-core efficiency; the decode-stage weight
# stream only sustains a fraction of the HBM bandwidth because each layer's
# GEMV is a separate, short kernel.
_GEMM_EFFICIENCY = 0.80
_STREAM_EFFICIENCY = 0.50


def _weight_stream_cycles(
    dense: Dict[str, float], gpu: GPUAccelerator, shared_sessions: int = 1
) -> float:
    """Weight-streaming cycles; decode traffic is amortised across the
    ``shared_sessions`` requests sharing one decoded-plane cache."""
    bw = gpu.hbm_bytes_per_cycle * _STREAM_EFFICIENCY
    return (
        dense["prefill_weight_bytes"] + dense["decode_weight_bytes"] / shared_sessions
    ) / bw


def latency_components(
    model_name: str,
    prompt_len: int,
    decode_len: int = 16,
    batch: int = 4,
    gpu: Optional[GPUAccelerator] = None,
    shared_sessions: int = 1,
) -> Dict[str, float]:
    """Additive latency contributions (in GPU cycles) of one workload.

    Components follow the paper's categories: ``gemm`` (prefill + decode
    compute), ``weight_load`` (weight streaming), ``kv_load`` (KV-cache reads
    and writes) and ``others`` (activation movement and prediction overheads).
    ``shared_sessions`` models the batched serving engine: the decode-stage
    weight stream is paid once per step for all co-resident sessions.
    """
    if shared_sessions < 1:
        raise ValueError("shared_sessions must be >= 1")
    gpu = gpu or GPUAccelerator()
    workload = make_workload(
        model_name, "Dolly", batch=batch, prompt_len=prompt_len, decode_len=decode_len
    )
    dense = dense_stage_quantities(workload)
    model = workload.model

    peak = gpu.peak_ops_per_cycle * _GEMM_EFFICIENCY
    bw = gpu.hbm_bytes_per_cycle

    gemm_cycles = (
        dense["prefill_linear_macs"]
        + dense["prefill_attention_macs"]
        + dense["decode_linear_macs"]
        + dense["decode_attention_macs"]
    ) / peak
    weight_cycles = _weight_stream_cycles(dense, gpu, shared_sessions)
    # KV traffic: cache writes during prefill, full-cache reads every decode
    # step, plus the tiled re-reads of K/V during prefill attention (one pass
    # over the cache per ~2k query tile, which is what makes KV loading grow
    # with the prompt length in Fig. 1a).
    attention_tile = 1024
    kv_passes = max(1.0, workload.prompt_len / attention_tile)
    prefill_kv_reads = kv_passes * model.kv_cache_bytes(workload.prompt_len, workload.batch)
    kv_cycles = (
        dense["prefill_kv_bytes"] + dense["decode_kv_bytes"] + prefill_kv_reads
    ) / bw
    other_cycles = (dense["prefill_act_bytes"] + dense["decode_act_bytes"]) / bw
    other_cycles += 0.05 * (gemm_cycles + weight_cycles + kv_cycles)  # launch/sync overheads

    return {
        "gemm": gemm_cycles,
        "weight_load": weight_cycles,
        "kv_load": kv_cycles,
        "others": other_cycles,
    }


def serving_breakdown_vs_sessions(
    model_name: str = "Llama7B",
    session_counts: Sequence[int] = (1, 2, 4, 8, 16, 32),
    prompt_len: int = 2048,
    decode_len: int = 16,
    batch: int = 4,
) -> List[Dict[str, float]]:
    """Percentage breakdown and speedup as decoded planes are shared more widely.

    Models step-level sharing in the batched serving engine
    (:mod:`repro.serve`): ``shared_sessions`` co-scheduled requests stream
    (and BSTC-decode) each layer's weights once per decode step instead of
    once per request.  This is a conservative lower bound on the functional
    engine's win -- it assumes weights are re-streamed every step, whereas an
    `MCBPEngine` whose decoded-plane cache holds all layers decodes each
    layer only once per run (near-zero steady-state weight traffic).  Each
    row reports the four latency components as percentages plus the
    end-to-end speedup over the unshared (``shared_sessions=1``) engine.
    """
    gpu = GPUAccelerator()
    counts = list(session_counts)
    totals: Dict[int, float] = {}
    components: Dict[int, Dict[str, float]] = {}
    for n in dict.fromkeys(counts + [1]):  # include the baseline exactly once
        comps = latency_components(
            model_name,
            prompt_len,
            decode_len=decode_len,
            batch=batch,
            gpu=gpu,
            shared_sessions=n,
        )
        components[n] = comps
        totals[n] = sum(comps.values())
    base_total = totals[1]
    rows: List[Dict[str, float]] = []
    for n in counts:
        total = totals[n]
        row = {"shared_sessions": float(n), "speedup": base_total / total}
        row.update({k: 100.0 * v / total for k, v in components[n].items()})
        rows.append(row)
    return rows


def latency_breakdown_vs_prompt(
    model_name: str = "Llama7B",
    prompt_lens: Sequence[int] = (1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072),
    decode_len: int = 16,
    batch: int = 4,
) -> List[Dict[str, float]]:
    """Percentage latency breakdown for each prompt length (Fig. 1a).

    Each entry contains the prompt length and the four components expressed as
    percentages of the end-to-end latency.
    """
    rows: List[Dict[str, float]] = []
    gpu = GPUAccelerator()
    for prompt_len in prompt_lens:
        comps = latency_components(
            model_name, prompt_len, decode_len=decode_len, batch=batch, gpu=gpu
        )
        total = sum(comps.values())
        row = {"prompt_len": float(prompt_len)}
        row.update({k: 100.0 * v / total for k, v in comps.items()})
        rows.append(row)
    return rows
