"""Baseline accelerator and GPU models used for comparisons."""

from .accelerators import (
    SOTA_ACCELERATORS,
    BitwaveAccelerator,
    CambriconCAccelerator,
    EnergonAccelerator,
    FACTAccelerator,
    FuseKNAAccelerator,
    SOFAAccelerator,
    SpAttenAccelerator,
    SystolicArrayAccelerator,
)
from .gpu import GPU_SOFTWARE_GAINS, GPUAccelerator

__all__ = [
    "GPUAccelerator",
    "GPU_SOFTWARE_GAINS",
    "SpAttenAccelerator",
    "FACTAccelerator",
    "SOFAAccelerator",
    "BitwaveAccelerator",
    "FuseKNAAccelerator",
    "EnergonAccelerator",
    "CambriconCAccelerator",
    "SystolicArrayAccelerator",
    "SOTA_ACCELERATORS",
]
