"""Analytical models of the prior-work accelerators MCBP is compared against.

Each class captures the published optimisation mechanism of one design as a
set of hooks over the shared cost framework in
:mod:`repro.hw.accelerator`.  The intent is not to re-implement every RTL
detail but to reproduce *which* redundancy each design can exploit (Table 1
of the paper) on identical workloads, so that the relative comparisons in
Figs. 17, 23, 24(b) and 26 keep their shape:

* **SpAtten** -- value-level cascade token/head pruning, prefill + decode.
* **FACT** -- eager value-level top-k prediction plus mixed-precision linear
  layers, prefill oriented.
* **SOFA** -- attention-only compute/memory co-optimisation with cross-stage
  tiling (low prediction IO) but no weight-traffic optimisation.
* **Bitwave** -- column-wise bit-level weight sparsity with bit-reorder
  overhead, no attention/KV optimisation.
* **FuseKNA** -- bit-repetition (kernel fusion) compute reduction with serial
  matching overhead and value-level run-length weight coding.
* **Energon** -- mixed-precision multi-round top-k filtering of the KV cache.
* **Cambricon-C** -- INT4 lookup-based GEMM (W4A8 extension used in Fig. 26).
* **SystolicArray** -- dense INT8 reference with the same compute budget,
  used as the ablation starting point in Fig. 24(b).
"""

from __future__ import annotations

from ..hw.accelerator import AnalyticalAccelerator
from ..hw.constants import DEFAULT_TECH
from ..workloads.profile import AlgorithmProfile

__all__ = [
    "SystolicArrayAccelerator",
    "SpAttenAccelerator",
    "FACTAccelerator",
    "SOFAAccelerator",
    "BitwaveAccelerator",
    "FuseKNAAccelerator",
    "EnergonAccelerator",
    "CambriconCAccelerator",
    "SOTA_ACCELERATORS",
]


class SystolicArrayAccelerator(AnalyticalAccelerator):
    """Dense INT8 systolic array with the same nominal compute as MCBP."""

    name = "SystolicArray"
    peak_ops_per_cycle = 2048.0
    op_energy_pj = DEFAULT_TECH.int8_mac_pj
    utilization = 0.85


class SpAttenAccelerator(AnalyticalAccelerator):
    """SpAtten: cascade token + head pruning with value-level top-k (HPCA'21)."""

    name = "SpAtten"
    peak_ops_per_cycle = 2048.0
    op_energy_pj = DEFAULT_TECH.int8_mac_pj
    utilization = 0.7
    token_keep_fraction_attr = "value_topk_keep_fraction"
    head_pruning_keep = 0.9  # cascade head pruning removes ~10 % of heads

    def linear_ops_factor(self, profile: AlgorithmProfile, stage: str) -> float:
        # token pruning also shrinks the downstream linear layers a little,
        # head pruning trims the attention projections.
        keep = getattr(profile, self.token_keep_fraction_attr)
        return self.head_pruning_keep * (0.6 + 0.4 * keep)

    def attention_ops_factor(self, profile: AlgorithmProfile, stage: str) -> float:
        keep = getattr(profile, self.token_keep_fraction_attr)
        prediction = 0.5  # value-level estimate over all keys
        return self.head_pruning_keep * keep + prediction

    def kv_traffic_factor(self, profile: AlgorithmProfile, stage: str) -> float:
        if stage == "prefill":
            return 1.0
        return getattr(profile, self.token_keep_fraction_attr)

    def prediction_traffic_bytes(self, workload, profile, stage, dense_kv_bytes):
        if stage == "prefill":
            return 0.0
        return dense_kv_bytes / 2.0 * 0.5  # 4-bit MSBs of every key, every step

    def bit_reorder_fraction(self, profile: AlgorithmProfile) -> float:
        return 0.0


class FACTAccelerator(AnalyticalAccelerator):
    """FACT: eager correlation prediction + mixed-precision linear layers (ISCA'23)."""

    name = "FACT"
    peak_ops_per_cycle = 2048.0
    op_energy_pj = DEFAULT_TECH.int8_mac_pj
    utilization = 0.72
    mixed_precision_gain = 1.6  # fraction of MACs executed at reduced precision

    def linear_ops_factor(self, profile: AlgorithmProfile, stage: str) -> float:
        return 1.0 / self.mixed_precision_gain

    def attention_ops_factor(self, profile: AlgorithmProfile, stage: str) -> float:
        keep = profile.value_topk_keep_fraction
        prediction = 0.5
        return keep / self.mixed_precision_gain + prediction

    def weight_traffic_factor(self, profile: AlgorithmProfile, stage: str) -> float:
        # "Low" weight-access optimisation in Table 1: mixed precision lets a
        # fraction of the weights stream at 4 bits.
        return 0.85

    def kv_traffic_factor(self, profile: AlgorithmProfile, stage: str) -> float:
        return 1.0  # no KV-cache optimisation

    def prediction_traffic_bytes(self, workload, profile, stage, dense_kv_bytes):
        if stage == "prefill":
            return 0.0
        return dense_kv_bytes / 2.0 * 0.5


class SOFAAccelerator(AnalyticalAccelerator):
    """SOFA: cross-stage-tiled sparse attention accelerator (MICRO'24)."""

    name = "SOFA"
    peak_ops_per_cycle = 2048.0
    op_energy_pj = DEFAULT_TECH.int8_mac_pj
    utilization = 0.75

    def attention_ops_factor(self, profile: AlgorithmProfile, stage: str) -> float:
        keep = profile.value_topk_keep_fraction
        prediction = 0.25  # cross-stage tiling amortises much of the estimate
        return keep + prediction

    def kv_traffic_factor(self, profile: AlgorithmProfile, stage: str) -> float:
        if stage == "prefill":
            return 1.0
        # KV traffic in the attention module is tiled/reused, but the design
        # has no answer for the decode-stage weight stream.
        return 0.6

    def prediction_traffic_bytes(self, workload, profile, stage, dense_kv_bytes):
        if stage == "prefill":
            return 0.0
        return dense_kv_bytes / 2.0 * 0.25


class BitwaveAccelerator(AnalyticalAccelerator):
    """BitWave: column-wise bit-level weight sparsity, bit-serial datapath (HPCA'24)."""

    name = "Bitwave"
    peak_ops_per_cycle = 16384.0  # bit-serial additions per cycle
    op_energy_pj = DEFAULT_TECH.int8_add_pj
    utilization = 0.7

    def linear_ops_factor(self, profile: AlgorithmProfile, stage: str) -> float:
        bits = profile.weight_bits
        # skips zero bit columns but cannot merge repeated ones
        return bits * (1.0 - profile.bit_sparsity)

    def attention_ops_factor(self, profile: AlgorithmProfile, stage: str) -> float:
        bits = profile.weight_bits
        return bits * (1.0 - profile.bit_sparsity)

    def weight_traffic_factor(self, profile: AlgorithmProfile, stage: str) -> float:
        # multi-bit column compression, less effective than plane-wise BSTC
        return 1.0 / (1.0 + 0.5 * (profile.bstc_compression_ratio - 1.0))

    def bit_reorder_fraction(self, profile: AlgorithmProfile) -> float:
        return 0.18  # paper Fig. 23: ~18 % bit-reorder energy overhead


class FuseKNAAccelerator(AnalyticalAccelerator):
    """FuseKNA: fused-kernel bit-repetition accelerator adapted via im2col (HPCA'21)."""

    name = "FuseKNA"
    peak_ops_per_cycle = 16384.0
    op_energy_pj = DEFAULT_TECH.int8_add_pj
    utilization = 0.55  # serial repetition matching limits sustained throughput

    def linear_ops_factor(self, profile: AlgorithmProfile, stage: str) -> float:
        bits = profile.weight_bits
        # exploits bit repetition but at full-matrix granularity, capturing
        # roughly half of the group-wise merge benefit
        reduction = 1.0 + 0.5 * (profile.brcr_reduction - 1.0)
        return bits / max(reduction, 1e-9)

    def attention_ops_factor(self, profile: AlgorithmProfile, stage: str) -> float:
        return self.linear_ops_factor(profile, stage)  # no attention sparsity

    def weight_traffic_factor(self, profile: AlgorithmProfile, stage: str) -> float:
        # value-level run-length coding: bounded by value sparsity
        return 1.0 - 0.8 * profile.value_sparsity

    def bit_reorder_fraction(self, profile: AlgorithmProfile) -> float:
        return 0.30  # value-layout storage needs heavy reordering for bit PEs


class EnergonAccelerator(AnalyticalAccelerator):
    """Energon: mixed-precision multi-round top-k filtering co-processor (TCAD'22)."""

    name = "Energon"
    peak_ops_per_cycle = 2048.0
    op_energy_pj = DEFAULT_TECH.int8_mac_pj
    utilization = 0.7

    def attention_ops_factor(self, profile: AlgorithmProfile, stage: str) -> float:
        keep = profile.value_topk_keep_fraction
        prediction = 0.35  # multi-round low-precision filtering
        return keep + prediction

    def kv_traffic_factor(self, profile: AlgorithmProfile, stage: str) -> float:
        if stage == "prefill":
            return 1.0
        return min(1.0, profile.value_topk_keep_fraction + 0.1)

    def prediction_traffic_bytes(self, workload, profile, stage, dense_kv_bytes):
        if stage == "prefill":
            return 0.0
        return dense_kv_bytes / 2.0 * 0.35


class CambriconCAccelerator(AnalyticalAccelerator):
    """Cambricon-C extended to W4A8: lookup-based INT4 matrix unit (MICRO'24)."""

    name = "Cambricon-C"
    peak_ops_per_cycle = 4096.0
    op_energy_pj = 0.12  # quarter-square lookup amortises multiply energy
    utilization = 0.65  # lookup bandwidth limits sustained throughput at A8

    def linear_ops_factor(self, profile: AlgorithmProfile, stage: str) -> float:
        return 1.0  # dense lookups, no sparsity exploitation

    def attention_ops_factor(self, profile: AlgorithmProfile, stage: str) -> float:
        return 1.0

    def weight_traffic_factor(self, profile: AlgorithmProfile, stage: str) -> float:
        # W4 weights halve the stream relative to the INT8 reference, but the
        # design has no further compression (no bit-plane sparsity coding).
        return profile.weight_bits / 8.0

    def kv_traffic_factor(self, profile: AlgorithmProfile, stage: str) -> float:
        return 1.0


SOTA_ACCELERATORS = {
    "SpAtten": SpAttenAccelerator,
    "FACT": FACTAccelerator,
    "SOFA": SOFAAccelerator,
    "Bitwave": BitwaveAccelerator,
    "FuseKNA": FuseKNAAccelerator,
    "Energon": EnergonAccelerator,
    "Cambricon-C": CambriconCAccelerator,
    "SystolicArray": SystolicArrayAccelerator,
}
