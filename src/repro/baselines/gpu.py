"""Roofline-style model of an NVIDIA A100 GPU running TensorRT-LLM.

The paper uses the A100 (624 TOPS INT8, ~2 TB/s HBM2e, ~300-400 W) as the
normalisation baseline for throughput and energy efficiency (Figs. 1, 20, 21).
The GPU cannot exploit bit-slice repetition, bit-plane compression or
progressive prediction; the paper measures only small gains (1.03x-1.44x) when
MCBP's algorithms are forced onto it in software, because the fine-grained
bit operations and irregular gather/merge steps map poorly to tensor cores.
``software_opts`` applies those measured software-only gains, which is how the
Fig. 21 breakdown separates "software gain" from "hardware gain".
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional

from ..hw.accelerator import AnalyticalAccelerator
from ..hw.constants import DEFAULT_TECH, TechnologyConstants
from ..workloads.profile import AlgorithmProfile

__all__ = ["GPUAccelerator", "GPU_SOFTWARE_GAINS"]

# Measured software-only gains of MCBP's algorithms on the GPU (paper Fig. 21):
# compute reduction from BRCR barely materialises (1.2x), BSTC's traffic
# reduction translates a little better (1.44x on memory), BGPP's token
# sparsification gives 1.23x.
GPU_SOFTWARE_GAINS = {
    "brcr_compute": 1.2,
    "bstc_weight_traffic": 1.44,
    "bgpp_kv_traffic": 1.23,
}


class GPUAccelerator(AnalyticalAccelerator):
    """A100-class GPU roofline model."""

    name = "A100"
    # 624 TOPS INT8 => 312e12 MAC/s => 312,000 MACs per (1 GHz-normalised) cycle.
    peak_ops_per_cycle = 312000.0
    op_energy_pj = 0.9  # effective pJ per INT8 MAC including datapath overheads
    utilization = 0.45  # TensorRT-LLM GEMM efficiency on these shapes
    idle_power_w = 90.0  # non-compute board power attributed during inference
    sram_reuse_factor = 1.5
    # ~2 TB/s HBM2e expressed per 1 GHz-normalised cycle.
    hbm_bytes_per_cycle_override = 2000.0
    dram_energy_scale = 1.75  # GPU HBM2e system energy per byte vs the 4 pJ/bit baseline

    def __init__(
        self,
        software_opts: Optional[Iterable[str]] = None,
        batch_utilization_boost: float = 1.0,
        tech: TechnologyConstants = DEFAULT_TECH,
    ) -> None:
        super().__init__(tech=tech)
        self.software_opts: FrozenSet[str] = frozenset(software_opts or ())
        unknown = self.software_opts - {"brcr", "bstc", "bgpp"}
        if unknown:
            raise ValueError(f"unknown GPU software optimisations: {sorted(unknown)}")
        self.utilization = min(0.85, self.utilization * batch_utilization_boost)
        if self.software_opts:
            self.name = "A100+" + "+".join(sorted(self.software_opts))

    def linear_ops_factor(self, profile: AlgorithmProfile, stage: str) -> float:
        factor = 1.0
        if "brcr" in self.software_opts:
            factor /= GPU_SOFTWARE_GAINS["brcr_compute"]
        return factor

    def attention_ops_factor(self, profile: AlgorithmProfile, stage: str) -> float:
        factor = 1.0
        if "bgpp" in self.software_opts:
            factor /= GPU_SOFTWARE_GAINS["bgpp_kv_traffic"]
        if "brcr" in self.software_opts:
            factor /= GPU_SOFTWARE_GAINS["brcr_compute"]
        return factor

    def weight_traffic_factor(self, profile: AlgorithmProfile, stage: str) -> float:
        if "bstc" in self.software_opts:
            return 1.0 / GPU_SOFTWARE_GAINS["bstc_weight_traffic"]
        return 1.0

    def kv_traffic_factor(self, profile: AlgorithmProfile, stage: str) -> float:
        if stage == "decode" and "bgpp" in self.software_opts:
            return 1.0 / GPU_SOFTWARE_GAINS["bgpp_kv_traffic"]
        return 1.0
