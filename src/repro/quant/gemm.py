"""Quantised GEMM with scale / zero-point handling (paper Fig. 11).

MCBP computes ``Y_q = Scale * (W_q @ X_q) + Bias`` where the integer product
``W_q @ X_q`` is executed by the BRCR engine and ``Scale`` / ``Bias`` fold the
weight, activation and output quantisation parameters.  This module provides
both a reference float path and the integer path, optionally routed through
BRCR so that callers can verify exact equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

import numpy as np

from ..core.brcr import BRCRConfig, BRCRCost, brcr_gemm
from .schemes import QuantParams, dequantize

__all__ = ["QuantizedLinear", "quantized_matmul", "fold_scale_bias"]


def fold_scale_bias(
    weight_params: QuantParams,
    activation_params: QuantParams,
    weight_q: np.ndarray,
    row_sums: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Fold quantisation parameters into an output scale and bias.

    Following the derivation in Fig. 11(b) with a float output
    (``Delta_y = 1``, ``Z_y = 0``):

    ``Y_f = Delta_w * Delta_x * (W_q @ X_q) - Delta_w * Delta_x * (W_q @ 1) * Z_x``

    so ``scale[c] = Delta_w[c] * Delta_x`` (per output channel) and
    ``bias[c] = -scale[c] * Z_x * sum_j W_q[c, j]``.

    ``row_sums`` may supply precomputed ``W_q.sum(axis=1)`` (the weights are
    static, so serving paths fold them once instead of per call).
    """
    w_scale = np.asarray(weight_params.scale, dtype=np.float64).reshape(-1)
    x_scale = float(np.asarray(activation_params.scale))
    x_zero = float(np.asarray(activation_params.zero_point))
    if row_sums is None:
        row_sums = np.asarray(weight_q, dtype=np.float64).sum(axis=1)
    scale = w_scale * x_scale
    bias = -scale * x_zero * row_sums
    return scale, bias


def quantized_matmul(
    weight_q: np.ndarray,
    activation_q: np.ndarray,
    weight_params: QuantParams,
    activation_params: QuantParams,
    use_brcr: bool = False,
    brcr_config: Optional[BRCRConfig] = None,
    product_fn: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    folded: Optional[Tuple[np.ndarray, np.ndarray]] = None,
) -> Tuple[np.ndarray, Optional[BRCRCost]]:
    """Compute the dequantised output of ``W_q @ X_q`` with folded scale/bias.

    Parameters
    ----------
    weight_q, activation_q:
        Integer operands; ``weight_q`` is ``(M, K)``, ``activation_q`` is
        ``(K,)`` or ``(K, N)``.
    use_brcr:
        Route the integer product through :func:`repro.core.brcr.brcr_gemm`
        (bit-exact, but slower in Python) and return its cost counters.
    product_fn:
        Alternative provider of the integer product ``W_q @ X_q`` given the
        quantised activations -- used to route execution through a shared
        :class:`repro.core.engine.MCBPEngine` so its decoded-plane cache and
        traffic counters account for the call.  Must return exactly the dense
        integer product; mutually exclusive with ``use_brcr``.
    folded:
        Precomputed :func:`fold_scale_bias` pair; the parameters and weights
        are static, so hot serving paths fold once and reuse.

    Returns
    -------
    (output, cost):
        ``output`` is the float result approximating ``W_f @ X_f``; ``cost``
        is the BRCR cost object when ``use_brcr`` is set, else ``None``.
    """
    weight_q = np.asarray(weight_q, dtype=np.int64)
    activation_q = np.asarray(activation_q, dtype=np.int64)
    cost: Optional[BRCRCost] = None
    if use_brcr and product_fn is not None:
        raise ValueError("use_brcr and product_fn are mutually exclusive")
    if use_brcr:
        product, cost = brcr_gemm(weight_q, activation_q, config=brcr_config)
    elif product_fn is not None:
        # must equal the dense integer product exactly; an integer-valued
        # float64 array qualifies (scale/bias application is dtype-agnostic)
        product = np.asarray(product_fn(activation_q))
    else:
        product = weight_q @ activation_q

    if folded is None:
        scale, bias = fold_scale_bias(weight_params, activation_params, weight_q)
    else:
        scale, bias = folded
    if product.ndim == 1:
        output = scale * product + bias
    else:
        output = scale[:, None] * product + bias[:, None]
    return output, cost


@dataclass
class QuantizedLinear:
    """A linear layer captured in quantised form.

    Holds the integer weights, their quantisation parameters, and an optional
    float bias added after dequantisation.  ``forward`` quantises the incoming
    float activations with the layer's calibrated activation parameters and
    returns float outputs, matching the dataflow in paper Fig. 11(a).
    """

    weight_q: np.ndarray
    weight_params: QuantParams
    activation_params: QuantParams
    bias: Optional[np.ndarray] = None
    # lazily cached fold_scale_bias() pair -- the operands are static
    _folded: Optional[Tuple[np.ndarray, np.ndarray]] = field(
        default=None, init=False, repr=False, compare=False
    )
    # lazily cached float64 view of weight_q for the exact BLAS product
    _weight_f64: Optional[np.ndarray] = field(
        default=None, init=False, repr=False, compare=False
    )

    def folded_scale_bias(self) -> Tuple[np.ndarray, np.ndarray]:
        """The layer's :func:`fold_scale_bias` pair, computed once."""
        if self._folded is None:
            self._folded = fold_scale_bias(
                self.weight_params, self.activation_params, self.weight_q
            )
        return self._folded

    def weight_f64(self) -> np.ndarray:
        """``weight_q`` as float64, cached for the exact BLAS integer product."""
        if self._weight_f64 is None:
            self._weight_f64 = np.asarray(self.weight_q, dtype=np.float64)
        return self._weight_f64

    def blas_product_is_exact(self) -> bool:
        """Whether the float64 BLAS product of this layer is provably exact.

        Every partial sum of ``W_q @ X_q`` is an integer bounded by
        ``K * 2**(w_bits-1) * 2**(x_bits-1)``; while that stays below
        ``2**53`` (true for every realistic layer), float64 accumulation is
        exact in any order and the BLAS GEMM returns the dense integer
        product bit-exactly while running an order of magnitude faster than
        NumPy's int64 loops.  Exotic precisions that could overflow the
        mantissa keep the integer path.
        """
        bound = (
            float(self.in_features)
            * float(1 << max(self.weight_params.bits - 1, 1))
            * float(1 << max(self.activation_params.bits - 1, 1))
        )
        return bound < 2**53

    @property
    def out_features(self) -> int:
        return int(self.weight_q.shape[0])

    @property
    def in_features(self) -> int:
        return int(self.weight_q.shape[1])

    def weight_float(self) -> np.ndarray:
        """Dequantised weights (the effective weights of the INT model)."""
        return dequantize(self.weight_q, self.weight_params)

    def quantize_input(self, x: np.ndarray) -> np.ndarray:
        from .schemes import quantize_with_params

        return quantize_with_params(x, self.activation_params)

    def forward(
        self,
        x: np.ndarray,
        use_brcr: bool = False,
        brcr_config: Optional[BRCRConfig] = None,
        product_fn: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ) -> Tuple[np.ndarray, Optional[BRCRCost]]:
        """Apply the layer to float activations ``x`` of shape ``(..., in_features)``.

        ``product_fn`` (see :func:`quantized_matmul`) lets an engine supply
        the integer product from its decoded-plane cache.
        """
        x = np.asarray(x, dtype=np.float64)
        lead_shape = x.shape[:-1]
        flat = x.reshape(-1, self.in_features)
        xq = self.quantize_input(flat).T  # (K, N)
        if product_fn is None and not use_brcr and self.blas_product_is_exact():
            weight_f = self.weight_f64()
            product_fn = lambda xq_int: weight_f @ xq_int.astype(np.float64)
        out, cost = quantized_matmul(
            self.weight_q,
            xq,
            self.weight_params,
            self.activation_params,
            use_brcr=use_brcr,
            brcr_config=brcr_config,
            product_fn=product_fn,
            folded=self.folded_scale_bias(),
        )
        out = out.T.reshape(*lead_shape, self.out_features)
        if self.bias is not None:
            out = out + self.bias
        return out, cost
