"""Quantised GEMM with scale / zero-point handling (paper Fig. 11).

MCBP computes ``Y_q = Scale * (W_q @ X_q) + Bias`` where the integer product
``W_q @ X_q`` is executed by the BRCR engine and ``Scale`` / ``Bias`` fold the
weight, activation and output quantisation parameters.  This module provides
both a reference float path and the integer path, optionally routed through
BRCR so that callers can verify exact equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..core.brcr import BRCRConfig, BRCRCost, brcr_gemm
from .schemes import QuantParams, dequantize

__all__ = ["QuantizedLinear", "quantized_matmul", "fold_scale_bias"]


def fold_scale_bias(
    weight_params: QuantParams,
    activation_params: QuantParams,
    weight_q: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Fold quantisation parameters into an output scale and bias.

    Following the derivation in Fig. 11(b) with a float output
    (``Delta_y = 1``, ``Z_y = 0``):

    ``Y_f = Delta_w * Delta_x * (W_q @ X_q) - Delta_w * Delta_x * (W_q @ 1) * Z_x``

    so ``scale[c] = Delta_w[c] * Delta_x`` (per output channel) and
    ``bias[c] = -scale[c] * Z_x * sum_j W_q[c, j]``.
    """
    w_scale = np.asarray(weight_params.scale, dtype=np.float64).reshape(-1)
    x_scale = float(np.asarray(activation_params.scale))
    x_zero = float(np.asarray(activation_params.zero_point))
    row_sums = np.asarray(weight_q, dtype=np.float64).sum(axis=1)
    scale = w_scale * x_scale
    bias = -scale * x_zero * row_sums
    return scale, bias


def quantized_matmul(
    weight_q: np.ndarray,
    activation_q: np.ndarray,
    weight_params: QuantParams,
    activation_params: QuantParams,
    use_brcr: bool = False,
    brcr_config: Optional[BRCRConfig] = None,
) -> Tuple[np.ndarray, Optional[BRCRCost]]:
    """Compute the dequantised output of ``W_q @ X_q`` with folded scale/bias.

    Parameters
    ----------
    weight_q, activation_q:
        Integer operands; ``weight_q`` is ``(M, K)``, ``activation_q`` is
        ``(K,)`` or ``(K, N)``.
    use_brcr:
        Route the integer product through :func:`repro.core.brcr.brcr_gemm`
        (bit-exact, but slower in Python) and return its cost counters.

    Returns
    -------
    (output, cost):
        ``output`` is the float result approximating ``W_f @ X_f``; ``cost``
        is the BRCR cost object when ``use_brcr`` is set, else ``None``.
    """
    weight_q = np.asarray(weight_q, dtype=np.int64)
    activation_q = np.asarray(activation_q, dtype=np.int64)
    cost: Optional[BRCRCost] = None
    if use_brcr:
        product, cost = brcr_gemm(weight_q, activation_q, config=brcr_config)
    else:
        product = weight_q @ activation_q

    scale, bias = fold_scale_bias(weight_params, activation_params, weight_q)
    if product.ndim == 1:
        output = scale * product + bias
    else:
        output = scale[:, None] * product + bias[:, None]
    return output, cost


@dataclass
class QuantizedLinear:
    """A linear layer captured in quantised form.

    Holds the integer weights, their quantisation parameters, and an optional
    float bias added after dequantisation.  ``forward`` quantises the incoming
    float activations with the layer's calibrated activation parameters and
    returns float outputs, matching the dataflow in paper Fig. 11(a).
    """

    weight_q: np.ndarray
    weight_params: QuantParams
    activation_params: QuantParams
    bias: Optional[np.ndarray] = None

    @property
    def out_features(self) -> int:
        return int(self.weight_q.shape[0])

    @property
    def in_features(self) -> int:
        return int(self.weight_q.shape[1])

    def weight_float(self) -> np.ndarray:
        """Dequantised weights (the effective weights of the INT model)."""
        return dequantize(self.weight_q, self.weight_params)

    def quantize_input(self, x: np.ndarray) -> np.ndarray:
        from .schemes import quantize_with_params

        return quantize_with_params(x, self.activation_params)

    def forward(
        self,
        x: np.ndarray,
        use_brcr: bool = False,
        brcr_config: Optional[BRCRConfig] = None,
    ) -> Tuple[np.ndarray, Optional[BRCRCost]]:
        """Apply the layer to float activations ``x`` of shape ``(..., in_features)``."""
        x = np.asarray(x, dtype=np.float64)
        lead_shape = x.shape[:-1]
        flat = x.reshape(-1, self.in_features)
        xq = self.quantize_input(flat).T  # (K, N)
        out, cost = quantized_matmul(
            self.weight_q,
            xq,
            self.weight_params,
            self.activation_params,
            use_brcr=use_brcr,
            brcr_config=brcr_config,
        )
        out = out.T.reshape(*lead_shape, self.out_features)
        if self.bias is not None:
            out = out + self.bias
        return out, cost
