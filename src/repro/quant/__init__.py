"""Integer quantisation substrate (per-channel weights, per-tensor activations)."""

from .calibration import ActivationCalibrator, calibrate_linear
from .gemm import QuantizedLinear, fold_scale_bias, quantized_matmul
from .schemes import (
    QuantParams,
    dequantize,
    quantize_activation_per_tensor,
    quantize_weight_per_channel,
    quantize_with_params,
    symmetric_max_range,
)

__all__ = [
    "QuantParams",
    "quantize_weight_per_channel",
    "quantize_activation_per_tensor",
    "quantize_with_params",
    "dequantize",
    "symmetric_max_range",
    "QuantizedLinear",
    "quantized_matmul",
    "fold_scale_bias",
    "ActivationCalibrator",
    "calibrate_linear",
]
