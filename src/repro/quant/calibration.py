"""Activation calibration for post-training quantisation.

The paper derives activation scales / zero-points from a calibration dataset
(paper §4.1: "Δw, Δx, Δy, Zx and Zy can be pre-known by the calibration
dataset").  :class:`ActivationCalibrator` accumulates running statistics over
calibration batches and emits :class:`~repro.quant.schemes.QuantParams`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from .schemes import QuantParams, quantize_activation_per_tensor

__all__ = ["ActivationCalibrator", "calibrate_linear"]


@dataclass
class ActivationCalibrator:
    """Running min/max (optionally percentile-smoothed) activation observer."""

    bits: int = 8
    percentile: Optional[float] = None
    _min: float = field(default=float("inf"), init=False)
    _max: float = field(default=float("-inf"), init=False)
    _samples: int = field(default=0, init=False)

    def observe(self, activations: np.ndarray) -> None:
        """Update the observed range with one calibration batch."""
        activations = np.asarray(activations, dtype=np.float64)
        if activations.size == 0:
            return
        if self.percentile is None:
            lo = float(activations.min())
            hi = float(activations.max())
        else:
            lo = float(np.percentile(activations, 100.0 - self.percentile))
            hi = float(np.percentile(activations, self.percentile))
        self._min = min(self._min, lo)
        self._max = max(self._max, hi)
        self._samples += activations.size

    @property
    def observed_range(self) -> Tuple[float, float]:
        if self._samples == 0:
            return (0.0, 0.0)
        return (self._min, self._max)

    def quant_params(self) -> QuantParams:
        """Emit per-tensor asymmetric parameters for the observed range."""
        _, params = quantize_activation_per_tensor(
            np.asarray(self.observed_range), bits=self.bits,
            observed_range=self.observed_range,
        )
        return params


def calibrate_linear(
    weights: np.ndarray,
    calibration_inputs: np.ndarray,
    weight_bits: int = 8,
    activation_bits: int = 8,
    clip_percentile: Optional[float] = None,
):
    """Quantise a float linear layer against calibration activations.

    Returns a :class:`repro.quant.gemm.QuantizedLinear` whose weight and
    activation parameters were fitted from ``weights`` and
    ``calibration_inputs`` respectively.
    """
    from .gemm import QuantizedLinear
    from .schemes import quantize_weight_per_channel

    weight_q, weight_params = quantize_weight_per_channel(
        weights, bits=weight_bits, channel_axis=0, clip_percentile=clip_percentile
    )
    calibrator = ActivationCalibrator(bits=activation_bits)
    calibrator.observe(calibration_inputs)
    activation_params = calibrator.quant_params()
    return QuantizedLinear(
        weight_q=weight_q,
        weight_params=weight_params,
        activation_params=activation_params,
    )
