"""Integer quantisation schemes used by MCBP (paper §4.1, Fig. 11).

Weights are quantised with *per-channel symmetric* quantisation and
activations with *per-tensor asymmetric* quantisation, following
SmoothQuant-style INT8 deployments.  A coarse QAT-like variant (percentile
clipping before fitting the scale) and INT4 PTQ are provided for the
quantisation study in paper Fig. 25.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "QuantParams",
    "quantize_weight_per_channel",
    "quantize_activation_per_tensor",
    "dequantize",
    "quantize_with_params",
    "symmetric_max_range",
]


@dataclass
class QuantParams:
    """Scale / zero-point metadata of a quantised tensor.

    ``scale`` and ``zero_point`` are either scalars (per-tensor) or 1-D arrays
    along ``channel_axis`` (per-channel).  The quantisation rule is

    ``q = clip(round(x / scale) + zero_point, qmin, qmax)``

    and dequantisation is ``x ~= (q - zero_point) * scale``.
    """

    scale: np.ndarray
    zero_point: np.ndarray
    bits: int
    symmetric: bool
    channel_axis: Optional[int] = None

    @property
    def qmin(self) -> int:
        if self.symmetric:
            return -(1 << (self.bits - 1)) + 1
        return -(1 << (self.bits - 1))

    @property
    def qmax(self) -> int:
        return (1 << (self.bits - 1)) - 1

    def broadcast_shape(self, ndim: int) -> Tuple[int, ...]:
        """Shape that broadcasts the per-channel vectors against an ``ndim`` tensor."""
        if self.channel_axis is None:
            return (1,) * ndim
        shape = [1] * ndim
        shape[self.channel_axis] = -1
        return tuple(shape)


def symmetric_max_range(bits: int) -> int:
    """Largest magnitude representable by a symmetric ``bits``-bit quantiser."""
    return (1 << (bits - 1)) - 1


def quantize_weight_per_channel(
    weights: np.ndarray,
    bits: int = 8,
    channel_axis: int = 0,
    clip_percentile: Optional[float] = None,
) -> Tuple[np.ndarray, QuantParams]:
    """Per-channel symmetric weight quantisation.

    Parameters
    ----------
    weights:
        Float weight matrix.
    bits:
        Target bit width (8 for INT8, 4 for INT4).
    channel_axis:
        Axis along which independent scales are fitted (output channels).
    clip_percentile:
        When given (e.g. 99.9), the scale is fitted to that percentile of the
        per-channel magnitudes instead of the max.  This mimics the tighter
        ranges a QAT flow converges to and is used for the "QAT INT8" setting
        of paper Fig. 25.
    """
    weights = np.asarray(weights, dtype=np.float64)
    qmax = symmetric_max_range(bits)
    reduce_axes = tuple(i for i in range(weights.ndim) if i != channel_axis)
    mags = np.abs(weights)
    if clip_percentile is None:
        max_mag = mags.max(axis=reduce_axes)
    else:
        max_mag = np.percentile(mags, clip_percentile, axis=reduce_axes)
    max_mag = np.maximum(max_mag, 1e-12)
    scale = max_mag / qmax
    params = QuantParams(
        scale=scale,
        zero_point=np.zeros_like(scale),
        bits=bits,
        symmetric=True,
        channel_axis=channel_axis,
    )
    q = quantize_with_params(weights, params)
    return q, params


def quantize_activation_per_tensor(
    activations: np.ndarray,
    bits: int = 8,
    observed_range: Optional[Tuple[float, float]] = None,
) -> Tuple[np.ndarray, QuantParams]:
    """Per-tensor asymmetric activation quantisation.

    ``observed_range`` supplies calibration min/max (e.g. from
    :class:`repro.quant.calibration.ActivationCalibrator`); otherwise the
    range of the given tensor is used directly.
    """
    activations = np.asarray(activations, dtype=np.float64)
    if observed_range is None:
        lo = float(activations.min()) if activations.size else 0.0
        hi = float(activations.max()) if activations.size else 0.0
    else:
        lo, hi = observed_range
    lo = min(lo, 0.0)
    hi = max(hi, 0.0)
    qmin = -(1 << (bits - 1))
    qmax = (1 << (bits - 1)) - 1
    span = max(hi - lo, 1e-12)
    scale = span / (qmax - qmin)
    zero_point = np.round(qmin - lo / scale)
    zero_point = np.clip(zero_point, qmin, qmax)
    params = QuantParams(
        scale=np.asarray(scale, dtype=np.float64),
        zero_point=np.asarray(zero_point, dtype=np.float64),
        bits=bits,
        symmetric=False,
        channel_axis=None,
    )
    q = quantize_with_params(activations, params)
    return q, params


def quantize_with_params(values: np.ndarray, params: QuantParams) -> np.ndarray:
    """Quantise ``values`` using existing :class:`QuantParams`."""
    values = np.asarray(values, dtype=np.float64)
    shape = params.broadcast_shape(values.ndim)
    scale = np.asarray(params.scale, dtype=np.float64).reshape(shape)
    zero = np.asarray(params.zero_point, dtype=np.float64).reshape(shape)
    q = np.round(values / scale) + zero
    q = np.clip(q, params.qmin, params.qmax)
    return q.astype(np.int64)


def dequantize(q: np.ndarray, params: QuantParams) -> np.ndarray:
    """Map quantised integers back to approximate float values."""
    q = np.asarray(q, dtype=np.float64)
    shape = params.broadcast_shape(q.ndim)
    scale = np.asarray(params.scale, dtype=np.float64).reshape(shape)
    zero = np.asarray(params.zero_point, dtype=np.float64).reshape(shape)
    return (q - zero) * scale
