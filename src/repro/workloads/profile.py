"""Measured algorithm profiles that feed the accelerator cost models.

The analytical accelerator models need a handful of workload statistics: how
sparse the weight bit planes are, how much BRCR merging actually saves, the
BSTC compression ratio, and how aggressively the attention predictors prune
keys.  Rather than hard-coding the paper's numbers, these statistics are
*measured* on synthetic weights/activations that match each model's shapes and
the near-Gaussian weight distribution (see
:mod:`repro.sparsity.synthetic`).  Profiles are cached per (model, quant
scheme) because they only depend on the model, not the task.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Optional

import numpy as np

from ..core.bgpp import BGPPConfig, bgpp_select, exact_topk, selection_recall, value_topk_select
from ..core.brcr import group_merge_reduction
from ..core.bstc import BSTCCodec, BSTCConfig
from ..model.config import get_model_config
from ..sparsity.metrics import repetition_ratio, sparsity_report
from ..sparsity.synthetic import WeightDistribution, gaussian_int_weights

__all__ = ["AlgorithmProfile", "profile_model", "QUANT_SCHEMES"]

# Quantisation schemes studied in paper Fig. 25.  ``clip`` narrows the weight
# range the way a QAT flow would, ``bits`` selects INT8 vs INT4.
QUANT_SCHEMES = {
    "ptq_int8": {"bits": 8, "distribution": WeightDistribution()},
    "qat_int8": {
        "bits": 8,
        "distribution": WeightDistribution(outlier_fraction=0.001, outlier_scale=6.0),
    },
    # INT4 PTQ flows (e.g. QLLM) decompose/clip outliers so the 4-bit range is
    # not dominated by them; modelled as an outlier-free Gaussian, which gives
    # the paper's observation of much higher value sparsity (~16 %) but lower
    # bit sparsity (~66 %) than INT8.
    "ptq_int4": {"bits": 4, "distribution": WeightDistribution(outlier_fraction=0.0)},
}


@dataclass(frozen=True)
class AlgorithmProfile:
    """Workload-independent statistics of MCBP's three optimisations."""

    model_name: str
    weight_bits: int
    # sparsity structure
    value_sparsity: float
    bit_sparsity: float
    repetition: float
    # BRCR: measured addition reduction vs dense bit-serial and vs full-size merge
    brcr_reduction: float
    fullsize_merge_reduction: float
    # BSTC: measured lossless compression ratio of the weight planes
    bstc_compression_ratio: float
    # attention predictors
    bgpp_keep_fraction: float
    bgpp_kv_traffic_fraction: float  # prediction traffic relative to full KV bits
    bgpp_recall: float
    value_topk_keep_fraction: float
    value_topk_traffic_fraction: float

    def with_alpha_scaling(self, keep_fraction: float) -> "AlgorithmProfile":
        """Return a copy with a different BGPP keep fraction (α_r sweeps)."""
        return replace(self, bgpp_keep_fraction=float(np.clip(keep_fraction, 0.0, 1.0)))


def _sample_weight_matrix(model_name: str, bits: int, distribution, seed: int) -> np.ndarray:
    """A representative weight sample with the model's hidden dimension.

    The full H x H projection matrices of 7B-class models are too large to
    slice exhaustively in Python, so a 256-row sample along the full hidden
    dimension is used; bit-plane statistics are row-independent so the sample
    is unbiased.
    """
    config = get_model_config(model_name)
    rows = min(256, config.hidden_size)
    cols = min(config.hidden_size, 4096)
    return gaussian_int_weights(
        (rows, cols), bits=bits, distribution=distribution, seed=seed
    )


def synthetic_attention_tensors(
    n_keys: int,
    head_dim: int,
    seed: int,
    important_fraction: float = 0.15,
    n_queries: int = 8,
):
    """Quantised Q/K tensors with a realistic skewed attention-score profile.

    Real attention rows have a handful of clearly important keys and a long
    tail of near-irrelevant ones (the basis of top-k prediction, paper §2.2).
    Independent Gaussian Q/K would not show that structure, so each query is
    synthesised as a decaying mixture of a random subset of keys plus noise;
    the mixture members become the genuinely high-scoring keys.

    Returns ``(queries_q, keys_q, score_scale)`` where ``score_scale`` maps
    integer dot products to softmax-logit units (the product of the two
    quantisation scales and ``1/sqrt(d)``).
    """
    rng = np.random.default_rng(seed)
    keys_f = rng.normal(0.0, 1.0, size=(n_keys, head_dim))
    n_important = max(4, int(round(important_fraction * n_keys)))

    queries_f = np.zeros((n_queries, head_dim))
    for i in range(n_queries):
        chosen = rng.choice(n_keys, size=n_important, replace=False)
        weights = 1.2 * np.power(0.96, np.arange(n_important))
        queries_f[i] = weights @ keys_f[chosen] / np.sqrt(n_important)
        queries_f[i] += rng.normal(0.0, 0.5, size=head_dim)

    k_scale = np.abs(keys_f).max() / 127.0
    q_scale = np.abs(queries_f).max() / 127.0
    keys_q = np.clip(np.round(keys_f / k_scale), -127, 127).astype(np.int64)
    queries_q = np.clip(np.round(queries_f / q_scale), -127, 127).astype(np.int64)
    score_scale = float(q_scale * k_scale / np.sqrt(head_dim))
    return queries_q, keys_q, score_scale


def _profile_attention(
    model_name: str,
    seed: int,
    n_keys: int = 512,
    alpha: float = 0.55,
    rounds: int = 3,
    topk_fraction: float = 0.15,
    value_topk_fraction: float = 0.35,
) -> dict:
    """Measure BGPP and value-level top-k behaviour on synthetic Q/K tensors.

    The value-level baseline keeps a *fixed* conservative fraction of keys
    (``value_topk_fraction``, the typical setting of prior top-k accelerators,
    chosen so its recall of the truly important keys is comfortably high),
    whereas BGPP's radius threshold adapts per row -- which is exactly the
    advantage the paper claims: similar recall with fewer surviving keys and
    fewer prediction bits fetched.
    """
    config = get_model_config(model_name)
    d = min(config.head_dim, 128)
    queries_q, keys_q, score_scale = synthetic_attention_tensors(
        n_keys, d, seed=seed, important_fraction=topk_fraction
    )

    bgpp_cfg = BGPPConfig(
        rounds=rounds, alpha=max(alpha, 0.3), radius=3.0, score_scale=score_scale
    )
    k_top = max(1, int(round(topk_fraction * n_keys)))
    k_value = max(1, int(round(value_topk_fraction * n_keys)))

    keep, traffic, recall, vt_keep, vt_traffic = [], [], [], [], []
    full_bits = n_keys * d * 8
    for q in queries_q:
        result = bgpp_select(q, keys_q, bgpp_cfg)
        reference = exact_topk(q, keys_q, k_top)
        keep.append(result.selected.size / n_keys)
        traffic.append(result.kv_bits_loaded / full_bits)
        recall.append(selection_recall(result.selected, reference))
        vt = value_topk_select(q, keys_q, k_value, prediction_bits=4)
        vt_keep.append(vt.selected.size / n_keys)
        vt_traffic.append(vt.kv_bits_loaded / full_bits)

    return {
        "bgpp_keep_fraction": float(np.mean(keep)),
        "bgpp_kv_traffic_fraction": float(np.mean(traffic)),
        "bgpp_recall": float(np.mean(recall)),
        "value_topk_keep_fraction": float(np.mean(vt_keep)),
        "value_topk_traffic_fraction": float(np.mean(vt_traffic)),
    }


@lru_cache(maxsize=None)
def profile_model(
    model_name: str,
    quant_scheme: str = "ptq_int8",
    group_size: int = 4,
    seed: int = 0,
    alpha: float = 0.55,
) -> AlgorithmProfile:
    """Measure an :class:`AlgorithmProfile` for one model / quantisation scheme."""
    if quant_scheme not in QUANT_SCHEMES:
        raise KeyError(
            f"unknown quantisation scheme {quant_scheme!r}; "
            f"available: {sorted(QUANT_SCHEMES)}"
        )
    scheme = QUANT_SCHEMES[quant_scheme]
    bits = int(scheme["bits"])
    weights = _sample_weight_matrix(model_name, bits, scheme["distribution"], seed)

    sparsity = sparsity_report(weights, bits=bits)
    repetition = repetition_ratio(weights, group_size=group_size, bits=bits)
    full_red, group_red = group_merge_reduction(weights, group_size, bits=bits)
    codec = BSTCCodec(BSTCConfig(group_size=group_size, bits=bits))
    compression = codec.encode(weights).compression_ratio
    attn = _profile_attention(model_name, seed=seed + 7, alpha=alpha)

    return AlgorithmProfile(
        model_name=model_name,
        weight_bits=bits,
        value_sparsity=sparsity.value_sparsity,
        bit_sparsity=sparsity.bit_sparsity,
        repetition=repetition,
        brcr_reduction=group_red,
        fullsize_merge_reduction=full_red,
        bstc_compression_ratio=compression,
        **attn,
    )
