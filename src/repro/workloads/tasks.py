"""Benchmark task and workload descriptors (paper §5.1).

The paper evaluates five LLMs across nine tasks whose prompt lengths span
0.25k (GLUE classification) to 8k tokens (Dolly long-context processing).
Each :class:`TaskSpec` captures the sequence-length regime of one task; a
:class:`Workload` pairs a task with a model configuration and batch size and
is the unit every accelerator cost model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..model.config import ModelConfig, get_model_config

__all__ = [
    "TaskSpec",
    "Workload",
    "BENCHMARK_TASKS",
    "EVALUATED_MODELS",
    "make_workload",
    "all_workloads",
]


@dataclass(frozen=True)
class TaskSpec:
    """Sequence-length regime of one benchmark task."""

    name: str
    prompt_len: int
    decode_len: int
    category: str
    metric: str = "accuracy"

    @property
    def is_decode_heavy(self) -> bool:
        return self.decode_len > self.prompt_len


# Prompt lengths follow §5.1; decode lengths follow the per-figure settings
# (classification uses 16 generated tokens as in Fig. 1a, Dolly summarisation
# decodes ~48 tokens as in Fig. 19b, MBPP generates long code completions).
BENCHMARK_TASKS: Dict[str, TaskSpec] = {
    "Cola": TaskSpec("Cola", prompt_len=256, decode_len=16, category="glue"),
    "MNLI": TaskSpec("MNLI", prompt_len=512, decode_len=16, category="glue"),
    "SST2": TaskSpec("SST2", prompt_len=256, decode_len=16, category="glue"),
    "Wikitext2": TaskSpec(
        "Wikitext2", prompt_len=2048, decode_len=64, category="lm", metric="perplexity"
    ),
    "Wikilingua": TaskSpec(
        "Wikilingua", prompt_len=2048, decode_len=64, category="summarization",
        metric="rouge1",
    ),
    "Winogrande": TaskSpec("Winogrande", prompt_len=256, decode_len=16, category="reasoning"),
    "MMLU": TaskSpec("MMLU", prompt_len=512, decode_len=16, category="reasoning"),
    "MBPP": TaskSpec("MBPP", prompt_len=48, decode_len=1024, category="codegen"),
    "Dolly": TaskSpec("Dolly", prompt_len=8192, decode_len=48, category="long_context"),
}

EVALUATED_MODELS: List[str] = ["OPT1B3", "Bloom1B7", "Qwen7B", "Llama7B", "Llama13B"]


@dataclass(frozen=True)
class Workload:
    """One (model, task, batch) evaluation point."""

    model_name: str
    task: TaskSpec
    batch: int = 1
    prompt_len_override: Optional[int] = None
    decode_len_override: Optional[int] = None

    @property
    def model(self) -> ModelConfig:
        return get_model_config(self.model_name)

    @property
    def prompt_len(self) -> int:
        return self.prompt_len_override or self.task.prompt_len

    @property
    def decode_len(self) -> int:
        return self.decode_len_override or self.task.decode_len

    @property
    def name(self) -> str:
        return f"{self.model_name}/{self.task.name}"

    @property
    def total_tokens(self) -> int:
        return self.prompt_len + self.decode_len


def make_workload(
    model_name: str,
    task_name: str,
    batch: int = 1,
    prompt_len: Optional[int] = None,
    decode_len: Optional[int] = None,
) -> Workload:
    """Build a :class:`Workload`, optionally overriding the task's sequence lengths."""
    if task_name not in BENCHMARK_TASKS:
        raise KeyError(
            f"unknown task {task_name!r}; available: {sorted(BENCHMARK_TASKS)}"
        )
    get_model_config(model_name)  # validate early
    return Workload(
        model_name=model_name,
        task=BENCHMARK_TASKS[task_name],
        batch=batch,
        prompt_len_override=prompt_len,
        decode_len_override=decode_len,
    )


def all_workloads(
    models: Optional[Iterable[str]] = None,
    tasks: Optional[Iterable[str]] = None,
    batch: int = 1,
) -> List[Workload]:
    """Cartesian product of the evaluated models and tasks (the paper's 26+ benchmarks)."""
    models = list(models) if models is not None else EVALUATED_MODELS
    tasks = list(tasks) if tasks is not None else list(BENCHMARK_TASKS)
    return [make_workload(m, t, batch=batch) for m in models for t in tasks]
