"""Benchmark workloads, task descriptors and measured algorithm profiles."""

from .profile import QUANT_SCHEMES, AlgorithmProfile, profile_model
from .tasks import (
    BENCHMARK_TASKS,
    EVALUATED_MODELS,
    TaskSpec,
    Workload,
    all_workloads,
    make_workload,
)
from .traffic import (
    arrival_steps,
    lognormal_arrival_steps,
    pareto_arrival_steps,
    poisson_arrival_steps,
    sample_priorities,
    sample_requests,
    split_streams,
    trace_arrival_steps,
)

__all__ = [
    "TaskSpec",
    "Workload",
    "BENCHMARK_TASKS",
    "EVALUATED_MODELS",
    "make_workload",
    "all_workloads",
    "AlgorithmProfile",
    "profile_model",
    "QUANT_SCHEMES",
    "arrival_steps",
    "lognormal_arrival_steps",
    "pareto_arrival_steps",
    "poisson_arrival_steps",
    "sample_priorities",
    "sample_requests",
    "split_streams",
    "trace_arrival_steps",
]
