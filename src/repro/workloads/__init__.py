"""Benchmark workloads, task descriptors and measured algorithm profiles."""

from .profile import QUANT_SCHEMES, AlgorithmProfile, profile_model
from .tasks import (
    BENCHMARK_TASKS,
    EVALUATED_MODELS,
    TaskSpec,
    Workload,
    all_workloads,
    make_workload,
)
from .traffic import poisson_arrival_steps, sample_requests

__all__ = [
    "TaskSpec",
    "Workload",
    "BENCHMARK_TASKS",
    "EVALUATED_MODELS",
    "make_workload",
    "all_workloads",
    "AlgorithmProfile",
    "profile_model",
    "QUANT_SCHEMES",
    "poisson_arrival_steps",
    "sample_requests",
]
