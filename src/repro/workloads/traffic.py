"""Synthetic request traffic for the serving simulator (heavy-tenancy mixes).

The paper's workload table (§5.1) fixes per-task prompt/decode lengths; a
serving study additionally needs *arrival processes*: many users submitting
requests of mixed shapes over time.  This module samples reproducible request
streams -- Poisson-like arrivals over a task mix drawn from
:data:`repro.workloads.tasks.BENCHMARK_TASKS` -- scaled down so the NumPy
functional model can execute them, while keeping each task's prompt:decode
ratio.  The output feeds :class:`repro.serve.ContinuousBatchingScheduler`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

# Dependency direction: workloads.traffic -> serve (for the Request type) is
# one-way by design; nothing under repro.serve may import repro.workloads,
# or this line becomes an import cycle.
from ..serve.session import Request
from .tasks import BENCHMARK_TASKS, TaskSpec

__all__ = ["poisson_arrival_steps", "sample_requests"]


def poisson_arrival_steps(
    n_requests: int,
    mean_interarrival: float,
    seed: int = 0,
) -> np.ndarray:
    """Cumulative integer arrival steps of a Poisson process.

    ``mean_interarrival`` is the expected number of engine steps between
    consecutive arrivals; ``0`` degenerates to every request arriving at
    step 0 (a closed-loop burst).
    """
    if n_requests < 0:
        raise ValueError("n_requests must be >= 0")
    if mean_interarrival < 0:
        raise ValueError("mean_interarrival must be >= 0")
    if mean_interarrival == 0:
        return np.zeros(n_requests, dtype=np.int64)
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(scale=mean_interarrival, size=n_requests)
    return np.floor(np.cumsum(gaps)).astype(np.int64)


def sample_requests(
    n_requests: int,
    vocab_size: int,
    tasks: Optional[Sequence[str]] = None,
    mean_interarrival: float = 1.0,
    prompt_divisor: int = 64,
    decode_divisor: int = 4,
    max_prompt_len: int = 64,
    max_decode_len: int = 32,
    seed: int = 0,
) -> List[Request]:
    """Sample a reproducible request stream over a benchmark-task mix.

    Each request draws a task uniformly from ``tasks``, scales the task's
    prompt/decode lengths by ``prompt_divisor`` / ``decode_divisor`` (clamped
    to the ``max_*`` bounds and to at least one token, preserving the relative
    shape of the task mix) and fills the prompt with uniform random token ids
    below ``vocab_size``.
    """
    if n_requests < 1:
        raise ValueError("n_requests must be >= 1")
    if vocab_size < 1:
        raise ValueError("vocab_size must be >= 1")
    if prompt_divisor < 1 or decode_divisor < 1:
        raise ValueError("length divisors must be >= 1")
    task_names = list(tasks) if tasks is not None else sorted(BENCHMARK_TASKS)
    if not task_names:
        raise ValueError("tasks must not be empty")
    specs: List[TaskSpec] = []
    for name in task_names:
        if name not in BENCHMARK_TASKS:
            raise KeyError(
                f"unknown task {name!r}; available: {sorted(BENCHMARK_TASKS)}"
            )
        specs.append(BENCHMARK_TASKS[name])

    rng = np.random.default_rng(seed)
    arrivals = poisson_arrival_steps(
        n_requests, mean_interarrival, seed=seed + 1
    )
    requests: List[Request] = []
    for i in range(n_requests):
        spec = specs[int(rng.integers(0, len(specs)))]
        prompt_len = min(max(1, spec.prompt_len // prompt_divisor), max_prompt_len)
        decode_len = min(max(1, spec.decode_len // decode_divisor), max_decode_len)
        prompt = rng.integers(0, vocab_size, size=prompt_len).tolist()
        requests.append(
            Request(
                request_id=f"req{i:03d}-{spec.name}",
                prompt_tokens=prompt,
                max_new_tokens=decode_len,
                arrival_step=int(arrivals[i]),
            )
        )
    return requests
