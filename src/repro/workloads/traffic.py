"""Synthetic request traffic for the serving simulator (heavy-tenancy mixes).

The paper's workload table (§5.1) fixes per-task prompt/decode lengths; a
serving study additionally needs *arrival processes*: many users submitting
requests of mixed shapes over time.  This module samples reproducible request
streams over a task mix drawn from
:data:`repro.workloads.tasks.BENCHMARK_TASKS`, scaled down so the NumPy
functional model can execute them while keeping each task's prompt:decode
ratio.  The output feeds :class:`repro.serve.ServingEngine`.

Three arrival families are provided, plus trace replay:

* :func:`poisson_arrival_steps` -- exponential inter-arrival gaps (the
  memoryless baseline);
* :func:`pareto_arrival_steps` -- Pareto (Lomax) gaps: heavy-tailed, so long
  quiet stretches separate dense bursts, the regime where admission order
  and preemption actually matter;
* :func:`lognormal_arrival_steps` -- lognormal gaps, a milder heavy tail
  matching measured inter-arrival distributions of production API traffic;
* :func:`trace_arrival_steps` -- replay explicit arrival instants recorded
  from a real system (or crafted by a test).

:func:`sample_requests` combines any of them with priority sampling over
weighted classes and optional per-request deadlines, producing request
streams for the priority/deadline scheduling policies.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

# Dependency direction: workloads.traffic -> serve (for the Request type) is
# one-way by design; nothing under repro.serve may import repro.workloads,
# or this line becomes an import cycle.
from ..serve.session import Request
from .tasks import BENCHMARK_TASKS, TaskSpec

__all__ = [
    "poisson_arrival_steps",
    "pareto_arrival_steps",
    "lognormal_arrival_steps",
    "trace_arrival_steps",
    "arrival_steps",
    "sample_priorities",
    "sample_requests",
    "split_streams",
]


def split_streams(n: int, seed: int = 0) -> List[int]:
    """Derive ``n`` independent trace seeds from one root seed.

    Cluster experiments want one logical traffic source fanned out into
    per-replica (or per-tenant) arrival streams that are statistically
    independent yet reproducible from a single knob.  The root seed spawns
    ``n`` children via ``numpy``'s :class:`~numpy.random.SeedSequence`
    spawning protocol -- the supported way to split RNG streams without
    correlation -- and each child is collapsed to a plain ``int`` usable
    anywhere a ``seed=`` argument is (e.g. :func:`sample_requests` or
    :func:`arrival_steps`).

    Purely additive: a given ``seed`` passed straight to the existing
    generators still produces byte-identical output -- the single-stream
    path does not go through the spawn.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    children = np.random.SeedSequence(int(seed)).spawn(n)
    return [int(child.generate_state(1)[0]) for child in children]


def poisson_arrival_steps(
    n_requests: int,
    mean_interarrival: float,
    seed: int = 0,
) -> np.ndarray:
    """Cumulative integer arrival steps of a Poisson process.

    ``mean_interarrival`` is the expected number of engine steps between
    consecutive arrivals; ``0`` degenerates to every request arriving at
    step 0 (a closed-loop burst).
    """
    if n_requests < 0:
        raise ValueError("n_requests must be >= 0")
    if mean_interarrival < 0:
        raise ValueError("mean_interarrival must be >= 0")
    if mean_interarrival == 0:
        return np.zeros(n_requests, dtype=np.int64)
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(scale=mean_interarrival, size=n_requests)
    return np.floor(np.cumsum(gaps)).astype(np.int64)


def pareto_arrival_steps(
    n_requests: int,
    mean_interarrival: float,
    shape: float = 2.5,
    seed: int = 0,
) -> np.ndarray:
    """Heavy-tailed (Pareto/Lomax) arrivals with the given mean gap.

    Gaps follow a Lomax distribution with tail index ``shape`` (must be
    > 1 so the mean exists), rescaled so the expected gap equals
    ``mean_interarrival``.  Smaller ``shape`` means heavier tails: most
    requests arrive in tight bursts separated by long quiet stretches, the
    regime where FIFO head-of-line blocking hurts latency-sensitive traffic.
    """
    if n_requests < 0:
        raise ValueError("n_requests must be >= 0")
    if mean_interarrival < 0:
        raise ValueError("mean_interarrival must be >= 0")
    if shape <= 1.0:
        raise ValueError("shape must be > 1 (the mean gap diverges otherwise)")
    if mean_interarrival == 0:
        return np.zeros(n_requests, dtype=np.int64)
    rng = np.random.default_rng(seed)
    # rng.pareto samples Lomax(shape) with mean 1 / (shape - 1)
    gaps = rng.pareto(shape, size=n_requests) * mean_interarrival * (shape - 1.0)
    return np.floor(np.cumsum(gaps)).astype(np.int64)


def lognormal_arrival_steps(
    n_requests: int,
    mean_interarrival: float,
    sigma: float = 1.0,
    seed: int = 0,
) -> np.ndarray:
    """Lognormally distributed arrival gaps with the given mean.

    ``sigma`` is the log-space standard deviation; the log-space mean is
    solved so the gap expectation equals ``mean_interarrival``
    (``mu = ln(mean) - sigma^2 / 2``).  Larger ``sigma`` -> burstier.
    """
    if n_requests < 0:
        raise ValueError("n_requests must be >= 0")
    if mean_interarrival < 0:
        raise ValueError("mean_interarrival must be >= 0")
    if sigma < 0:
        raise ValueError("sigma must be >= 0")
    if mean_interarrival == 0:
        return np.zeros(n_requests, dtype=np.int64)
    rng = np.random.default_rng(seed)
    mu = np.log(mean_interarrival) - 0.5 * sigma * sigma
    gaps = rng.lognormal(mean=mu, sigma=sigma, size=n_requests)
    return np.floor(np.cumsum(gaps)).astype(np.int64)


def trace_arrival_steps(trace: Sequence[float]) -> np.ndarray:
    """Replay explicit arrival instants (e.g. from a recorded trace).

    Instants are floored to integer engine steps and must be non-negative
    and non-decreasing -- the order requests were actually observed.
    """
    arrivals = np.floor(np.asarray(list(trace), dtype=np.float64)).astype(np.int64)
    if arrivals.size and arrivals.min() < 0:
        raise ValueError("trace instants must be >= 0")
    if arrivals.size and (np.diff(arrivals) < 0).any():
        raise ValueError("trace instants must be non-decreasing")
    return arrivals


_ARRIVAL_PROCESSES = ("poisson", "pareto", "lognormal", "trace")


def arrival_steps(
    n_requests: int,
    mean_interarrival: float,
    process: str = "poisson",
    seed: int = 0,
    shape: float = 2.5,
    sigma: float = 1.0,
    trace: Optional[Sequence[float]] = None,
) -> np.ndarray:
    """Dispatch to one of the arrival generators by name."""
    if process == "poisson":
        return poisson_arrival_steps(n_requests, mean_interarrival, seed=seed)
    if process == "pareto":
        return pareto_arrival_steps(
            n_requests, mean_interarrival, shape=shape, seed=seed
        )
    if process == "lognormal":
        return lognormal_arrival_steps(
            n_requests, mean_interarrival, sigma=sigma, seed=seed
        )
    if process == "trace":
        if trace is None:
            raise ValueError("process='trace' requires a trace")
        arrivals = trace_arrival_steps(trace)
        if len(arrivals) != n_requests:
            raise ValueError(
                f"trace has {len(arrivals)} instants for {n_requests} requests"
            )
        return arrivals
    raise ValueError(
        f"unknown arrival process {process!r}; available: {_ARRIVAL_PROCESSES}"
    )


def sample_priorities(
    n_requests: int,
    levels: Sequence[int] = (0, 1),
    weights: Optional[Sequence[float]] = None,
    seed: int = 0,
) -> np.ndarray:
    """Sample one priority level per request from a weighted class mix.

    ``levels`` are the priority values (higher serves first under
    priority-aware policies); ``weights`` are their relative frequencies
    (uniform when omitted).  Typical serving mixes make the high levels
    rare -- e.g. ``levels=(0, 2), weights=(0.8, 0.2)`` for an 80/20
    batch/interactive split.
    """
    if n_requests < 0:
        raise ValueError("n_requests must be >= 0")
    levels = list(levels)
    if not levels:
        raise ValueError("levels must not be empty")
    p = None
    if weights is not None:
        weights = np.asarray(list(weights), dtype=np.float64)
        if weights.shape != (len(levels),):
            raise ValueError("weights must match levels one-to-one")
        if (weights < 0).any() or weights.sum() <= 0:
            raise ValueError("weights must be non-negative and sum > 0")
        p = weights / weights.sum()
    rng = np.random.default_rng(seed)
    picks = rng.choice(len(levels), size=n_requests, p=p)
    return np.asarray(levels, dtype=np.int64)[picks]


def sample_requests(
    n_requests: int,
    vocab_size: int,
    tasks: Optional[Sequence[str]] = None,
    mean_interarrival: float = 1.0,
    prompt_divisor: int = 64,
    decode_divisor: int = 4,
    max_prompt_len: int = 64,
    max_decode_len: int = 32,
    seed: int = 0,
    arrival_process: str = "poisson",
    arrival_shape: float = 2.5,
    arrival_sigma: float = 1.0,
    arrival_trace: Optional[Sequence[float]] = None,
    priority_levels: Optional[Sequence[int]] = None,
    priority_weights: Optional[Sequence[float]] = None,
    deadline_slack: Optional[Tuple[int, int]] = None,
) -> List[Request]:
    """Sample a reproducible request stream over a benchmark-task mix.

    Each request draws a task uniformly from ``tasks``, scales the task's
    prompt/decode lengths by ``prompt_divisor`` / ``decode_divisor`` (clamped
    to the ``max_*`` bounds and to at least one token, preserving the relative
    shape of the task mix) and fills the prompt with uniform random token ids
    below ``vocab_size``.

    ``arrival_process`` selects the arrival generator (``"poisson"``,
    heavy-tailed ``"pareto"`` / ``"lognormal"``, or ``"trace"`` replaying
    ``arrival_trace``).  When ``priority_levels`` is given each request draws
    a priority from the weighted class mix (see :func:`sample_priorities`);
    when ``deadline_slack=(lo, hi)`` is given each request gets
    ``deadline_steps = decode_len + slack`` with ``slack`` uniform in
    ``[lo, hi]`` -- a deadline an unqueued run meets with ``slack`` steps to
    spare, so queueing pressure is what turns slack into misses.  The default
    arguments draw exactly the same streams as before these knobs existed.
    """
    if n_requests < 1:
        raise ValueError("n_requests must be >= 1")
    if vocab_size < 1:
        raise ValueError("vocab_size must be >= 1")
    if prompt_divisor < 1 or decode_divisor < 1:
        raise ValueError("length divisors must be >= 1")
    task_names = list(tasks) if tasks is not None else sorted(BENCHMARK_TASKS)
    if not task_names:
        raise ValueError("tasks must not be empty")
    specs: List[TaskSpec] = []
    for name in task_names:
        if name not in BENCHMARK_TASKS:
            raise KeyError(
                f"unknown task {name!r}; available: {sorted(BENCHMARK_TASKS)}"
            )
        specs.append(BENCHMARK_TASKS[name])
    if deadline_slack is not None:
        lo, hi = deadline_slack
        if lo < 0 or hi < lo:
            raise ValueError("deadline_slack must satisfy 0 <= lo <= hi")

    rng = np.random.default_rng(seed)
    arrivals = arrival_steps(
        n_requests,
        mean_interarrival,
        process=arrival_process,
        seed=seed + 1,
        shape=arrival_shape,
        sigma=arrival_sigma,
        trace=arrival_trace,
    )
    # priority / deadline draws come from their own streams so enabling them
    # never perturbs the task/prompt sampling of existing seeds
    priorities = None
    if priority_levels is not None:
        priorities = sample_priorities(
            n_requests, levels=priority_levels, weights=priority_weights,
            seed=seed + 2,
        )
    slack = None
    if deadline_slack is not None:
        lo, hi = deadline_slack
        slack = np.random.default_rng(seed + 3).integers(
            lo, hi + 1, size=n_requests
        )

    requests: List[Request] = []
    for i in range(n_requests):
        spec = specs[int(rng.integers(0, len(specs)))]
        prompt_len = min(max(1, spec.prompt_len // prompt_divisor), max_prompt_len)
        decode_len = min(max(1, spec.decode_len // decode_divisor), max_decode_len)
        prompt = rng.integers(0, vocab_size, size=prompt_len).tolist()
        requests.append(
            Request(
                request_id=f"req{i:03d}-{spec.name}",
                prompt_tokens=prompt,
                max_new_tokens=decode_len,
                arrival_step=int(arrivals[i]),
                priority=int(priorities[i]) if priorities is not None else 0,
                deadline_steps=(
                    int(decode_len + slack[i]) if slack is not None else None
                ),
            )
        )
    return requests
