"""Pluggable admission and scheduling policies for the serving engine.

The serving control plane is split into two small interfaces so that
request-lifecycle mechanics (owned by
:class:`~repro.serve.scheduler.ServingEngine`) stay separate from *decisions*:

* :class:`AdmissionPolicy` -- orders the ready queue (requests that have
  arrived but hold no slot) and gates whether its head may take a free slot
  right now.  Shipped: :class:`FIFOAdmission`, :class:`PriorityAdmission`,
  :class:`DeadlineAdmission`, and :class:`ArenaBudgetAdmission`, which queues
  requests instead of letting the paged KV arena grow past a configurable
  watermark of its ``max_pages`` budget.
* :class:`SchedulingPolicy` -- decides which active sessions to *preempt*
  when more urgent work is waiting.  Shipped: :class:`FCFSPolicy` (never
  preempts; with :class:`FIFOAdmission` it reproduces the pre-policy
  scheduler bit-exactly), :class:`PriorityPolicy` (higher ``priority`` evicts
  lower) and :class:`DeadlinePolicy` (earliest absolute deadline first).

Both interfaces see :class:`~repro.serve.scheduler.RequestHandle` objects,
which expose the immutable :class:`~repro.serve.session.Request`, the live
session, and a monotonically increasing ``index`` (submission order) for
deterministic tie-breaking.  All shipped policies derive their ordering keys
from *static* request attributes only; combined with strict-inequality
preemption this guarantees the engine cannot livelock -- the most urgent
unfinished request is never preempted, so every step makes progress.

Writing a custom policy
-----------------------

Subclass one of the two ABCs.  An admission policy needs
``admission_key(handle)`` (smaller tuples admit first) and may override
``may_admit(handle, engine)`` to gate on engine state (queue depths, arena
occupancy via ``engine.arena``).  A scheduling policy needs
``urgency_key(handle, step)`` and, if ``preemptive``, may tune
``preempts(waiting, active, step)``; the default base-class
``select_preemptions`` then evicts the least urgent active sessions for
strictly more urgent waiting ones.  Keep keys static per request unless you
also re-verify drain behaviour -- see ``src/repro/serve/README.md``.
"""

from __future__ import annotations

import math
import warnings
import zlib
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .cluster import Replica
    from .scheduler import RequestHandle, ServingEngine
    from .session import Request

__all__ = [
    "AdmissionPolicy",
    "FIFOAdmission",
    "PriorityAdmission",
    "DeadlineAdmission",
    "ArenaBudgetAdmission",
    "AgingPriorityAdmission",
    "AdaptivePrefillAdmission",
    "SchedulingPolicy",
    "FCFSPolicy",
    "PriorityPolicy",
    "DeadlinePolicy",
    "make_policies",
    "RoutingPolicy",
    "RoundRobinRouting",
    "LeastLoadedRouting",
    "PrefixAffinityRouting",
    "make_routing",
]


def _deadline_value(handle: "RequestHandle") -> float:
    """Absolute deadline step of a handle's request (inf when none)."""
    deadline = handle.request.deadline_step
    return math.inf if deadline is None else float(deadline)


# Shared ordering keys.  Each discipline's admission policy and scheduling
# policy MUST sort by the same key -- the engine's preemption bookkeeping
# (victims paired against the most urgent waiting requests, which then take
# the freed slots in admission order) relies on that alignment -- so both
# hierarchies reference these functions instead of re-implementing tuples.


def _arrival_key(handle: "RequestHandle") -> Tuple:
    return (handle.request.arrival_step, handle.index)


def _priority_key(handle: "RequestHandle") -> Tuple:
    return (-handle.request.priority,) + _arrival_key(handle)


def _edf_key(handle: "RequestHandle") -> Tuple:
    return (_deadline_value(handle),) + _arrival_key(handle)


# -- admission ----------------------------------------------------------------


# one-shot process-wide latch: pairing ArenaBudgetAdmission with an engine
# that has no arena is legal (the gate just admits everything) but almost
# certainly a misconfiguration, so the first such submit warns once
_arena_budget_warned = False


class AdmissionPolicy(ABC):
    """Orders the ready queue and gates admissions into free batch slots.

    The engine keeps its ready queue as a heap keyed by
    :meth:`admission_key`; each step it pops eligible handles in key order
    into free slots, asking :meth:`may_admit` before each pop.  Admission is
    head-of-line: when the best-ranked handle is refused, the engine stops
    admitting for this step rather than skipping ahead (no starvation of the
    queue head by smaller requests behind it).
    """

    name = "admission"
    #: When true the engine re-keys the whole ready queue every step via
    #: :meth:`admission_key_at` (keys may depend on the current step, e.g.
    #: aging).  Static-key policies keep the cheap push-once heap.
    dynamic = False

    @abstractmethod
    def admission_key(self, handle: "RequestHandle") -> Tuple:
        """Sort key of one ready handle; the smallest key admits first."""

    def admission_key_at(self, handle: "RequestHandle", step: int) -> Tuple:
        """Step-aware ordering key; defaults to the static ``admission_key``.

        Only consulted when :attr:`dynamic` is true -- the engine then
        recomputes every queued handle's key each step, so time-varying
        orderings (anti-starvation aging, wait-time boosts) stay correct.
        Must remain deterministic for a given ``(handle, step)``.
        """
        return self.admission_key(handle)

    def may_admit(self, handle: "RequestHandle", engine: "ServingEngine") -> bool:
        """Resource gate consulted right before ``handle`` takes a slot."""
        return True

    def prefill_token_budget(self, engine: "ServingEngine") -> Optional[int]:
        """Prefill rows the engine may spend this step (``None`` = no cap).

        The TTFT-vs-decode-throughput knob of the chunked prefill pipeline:
        each step the engine feeds at most this many prompt rows (summed over
        every ``PREFILLING`` session, head of the admission order first) into
        the fused pass alongside the decode tokens.  The default defers to
        the engine's ``prefill_token_budget`` constructor knob; policies can
        override it to spend the step budget adaptively (e.g. throttle
        prefill while many sessions are decoding, or open the floodgates
        when the ready queue is deep).
        """
        return engine.prefill_token_budget

    def check_submit(self, request, engine: "ServingEngine") -> None:
        """Validate a request at submit time; raise ``ValueError`` to reject.

        Runs inside :meth:`ServingEngine.submit` before any engine state is
        touched, so a policy can refuse requests that could *never* be
        served (rather than queueing them forever or crashing mid-run).
        The default accepts everything.
        """

    def on_admit(self, handle: "RequestHandle", engine: "ServingEngine") -> None:
        """Lifecycle hook: ``handle`` just took a slot.

        Fired by the engine immediately after each admission commits (still
        inside the admission loop, so later candidates in the same step are
        gated against whatever state this call pins).  Stateful policies use
        it to record per-handle resource reservations; the default is a
        no-op.
        """

    def on_release(self, handle: "RequestHandle", engine: "ServingEngine") -> None:
        """Lifecycle hook: ``handle`` left the batch for good (or for now).

        Fired on retirement, on cancellation (queued *or* active -- a
        cancelled request must stop being charged immediately), and on a
        realized preemption (rolled-back tentative victims keep their
        state).  Must be idempotent and safe for handles that were never
        admitted.  The default is a no-op.
        """


class FIFOAdmission(AdmissionPolicy):
    """Earliest arrival first, submission order on ties (the classic queue)."""

    name = "fifo"

    def admission_key(self, handle: "RequestHandle") -> Tuple:
        return _arrival_key(handle)


class PriorityAdmission(AdmissionPolicy):
    """Highest ``Request.priority`` first; FIFO within a priority class."""

    name = "priority"

    def admission_key(self, handle: "RequestHandle") -> Tuple:
        return _priority_key(handle)


class DeadlineAdmission(AdmissionPolicy):
    """Earliest absolute deadline first; deadline-free requests go last."""

    name = "deadline"

    def admission_key(self, handle: "RequestHandle") -> Tuple:
        return _edf_key(handle)


class ArenaBudgetAdmission(AdmissionPolicy):
    """Queue requests instead of growing the KV arena past a watermark.

    Wraps an ``inner`` ordering policy (FIFO by default) and reserves, for
    every admitted request, its *whole lifetime* of KV rows -- ``prompt +
    max_new_tokens - 1`` tokens, the exact row count an unpreempted run
    appends.  A candidate is admitted only while the sum of all active
    reservations plus its own stays within ``watermark * max_pages``.
    Reserving lifetimes (rather than reading current occupancy, which lags:
    pages materialise at prefill and grow every decode step) means admitted
    requests can never exhaust the pool mid-decode, so the engine trades
    queueing delay for a hard occupancy bound (the ROADMAP's "reject/queue
    when the pool is near ``max_pages`` instead of growing or raising").

    Engines without an arena (a one-shot ``RuntimeWarning`` flags the inert
    pairing), arenas without a ``max_pages`` budget, and an idle engine
    (nothing active -- refusing then would deadlock the queue) admit
    unconditionally.

    Reservations are pinned per handle at admission (:meth:`on_admit`) and
    dropped the moment the handle stops holding KV (:meth:`on_release`:
    retirement, realized preemption, or cancellation -- including a cancel
    while still queued, which must not leave a phantom charge).  With the
    engine's ``prefix_cache`` enabled, an admission is charged only for its
    *novel suffix*: pages fully covered by the arena's prefix index are
    shared mappings, not new allocations (see :meth:`_charged_pages`).

    Combined with a *preemptive* scheduling policy (not one of the shipped
    pairs), the watermark can transiently overshoot: admissions are gated
    while evictions are still tentative, and an eviction rolled back after a
    partial admission restores its reservation.  The ``max_pages`` hard
    bound itself is never at stake -- reservations are bookkeeping, and the
    pool still grows page by page only as rows are appended.
    """

    def __init__(
        self,
        inner: Optional[AdmissionPolicy] = None,
        watermark: float = 1.0,
    ) -> None:
        if not 0.0 < watermark <= 1.0:
            raise ValueError("watermark must be in (0, 1]")
        self.inner = inner if inner is not None else FIFOAdmission()
        self.watermark = watermark

    @property
    def name(self) -> str:
        return f"arena-budget({self.inner.name})"

    @property
    def dynamic(self) -> bool:
        # the wrapper only gates resources; ordering -- including dynamic
        # re-keying (e.g. a wrapped AgingPriorityAdmission) -- is the inner
        # policy's, so every ordering hook delegates
        return self.inner.dynamic

    def admission_key(self, handle: "RequestHandle") -> Tuple:
        return self.inner.admission_key(handle)

    def admission_key_at(self, handle: "RequestHandle", step: int) -> Tuple:
        return self.inner.admission_key_at(handle, step)

    def prefill_token_budget(self, engine: "ServingEngine") -> Optional[int]:
        return self.inner.prefill_token_budget(engine)

    @staticmethod
    def _request_pages(arena, request) -> int:
        # early EOS only under-runs this, so the reservation stays safe
        return arena.pages_needed(
            len(request.prompt_tokens) + request.max_new_tokens - 1
        )

    @classmethod
    def _lifetime_pages(cls, arena, handle: "RequestHandle") -> int:
        return cls._request_pages(arena, handle.request)

    def _charged_pages(
        self, arena, handle: "RequestHandle", engine: "ServingEngine"
    ) -> int:
        """Pages this admission is charged: lifetime minus cached prefix.

        With the engine's ``prefix_cache`` on, pages the session will *map*
        from the arena's prefix index are shared, not allocated, so only the
        novel suffix counts against the watermark.  Only fully cached pages
        are discounted (a partially matched page is copy-on-written into a
        fresh one the moment the session appends, so it is charged in full).
        The probe keys on the session's replay stream -- prompt plus any
        tokens generated before a preemption -- which is exactly what a
        resume re-prefills.

        A **snapshot-preempted** handle never re-prefills: its resume
        faults back exactly the snapshot's *copied* pages and re-attaches
        the *referenced* (shared) ones, so the charge is the lifetime
        count minus the referenced pages -- not the novel-suffix formula,
        whose prefix probe describes a replay that will never run (and
        would double-discount pages the snapshot already pins).
        """
        pages = self._lifetime_pages(arena, handle)
        session = handle.session
        snapshot = getattr(session, "kv_snapshot", None)
        if snapshot is not None:
            return max(0, pages - snapshot.pages_referenced)
        if not getattr(engine, "prefix_cache", False):
            return pages
        replay = list(session.request.prompt_tokens) + list(
            session.generated_tokens
        )
        reused = arena.probe_prefix(replay)
        return max(0, pages - reused // arena.page_size)

    def on_admit(self, handle: "RequestHandle", engine: "ServingEngine") -> None:
        """Pin the admitted handle's page reservation on the handle itself.

        Recorded at admission time (before the session's prefill runs) so
        the suffix discount reflects the prefix index as the gate saw it;
        later candidates in the same step already count this reservation.
        """
        self.inner.on_admit(handle, engine)
        arena = engine.arena
        if arena is None or arena.max_pages is None:
            return
        handle.reserved_pages = self._charged_pages(arena, handle, engine)

    def on_release(self, handle: "RequestHandle", engine: "ServingEngine") -> None:
        """Drop the reservation the moment the handle stops holding KV.

        Covers retirement, realized preemption, and cancellation -- a
        request cancelled while still *queued* never held a reservation
        (``reserved_pages`` is ``None``), and one cancelled while active
        stops being charged immediately rather than haunting the watermark
        until the step it would have retired.
        """
        self.inner.on_release(handle, engine)
        handle.reserved_pages = None

    def check_submit(self, request, engine: "ServingEngine") -> None:
        """Reject requests whose lifetime could never fit ``max_pages``.

        Without this, such a request would wait until the engine idles, be
        force-admitted, and crash the whole run with ``arena exhausted``
        mid-prefill -- rejecting it up front with a clear error keeps the
        queue serviceable.
        """
        self.inner.check_submit(request, engine)
        arena = engine.arena
        if arena is None:
            global _arena_budget_warned
            if not _arena_budget_warned:
                _arena_budget_warned = True
                warnings.warn(
                    "ArenaBudgetAdmission is paired with an engine that has "
                    "no KV arena; the page-budget gate is inert and every "
                    "request admits unconditionally",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return
        if arena.max_pages is None:
            return
        needed = self._request_pages(arena, request)
        if needed > arena.max_pages:
            raise ValueError(
                f"request {request.request_id!r} needs {needed} arena pages "
                f"for its lifetime ({len(request.prompt_tokens)} prompt + "
                f"{request.max_new_tokens} new tokens), over the max_pages "
                f"budget ({arena.max_pages}); it can never be admitted"
            )

    def may_admit(self, handle: "RequestHandle", engine: "ServingEngine") -> bool:
        arena = engine.arena
        if arena is None or arena.max_pages is None:
            return True
        if not self.inner.may_admit(handle, engine):
            return False
        if engine.n_active == 0:
            return True  # forced progress: an empty engine must not starve
        reserved = sum(
            h.reserved_pages
            if h.reserved_pages is not None
            else self._lifetime_pages(arena, h)
            for h in engine.active_handles
        )
        return arena.within_watermark(
            reserved + self._charged_pages(arena, handle, engine),
            watermark=self.watermark,
        )


class AgingPriorityAdmission(AdmissionPolicy):
    """Priority admission with anti-starvation aging of queued requests.

    A request's *effective* priority is its static class boosted by one for
    every ``aging_steps`` engine steps it has waited since arrival::

        effective(h, step) = h.priority + (step - h.arrival_step) // aging_steps

    so a low-priority request stuck behind a stream of urgent arrivals
    eventually out-ranks them and cannot starve (the ROADMAP's
    "aging/anti-starvation priorities" item).  Ordering within an effective
    class stays FIFO and ties break on the submission index, so runs are
    deterministic.  The policy is :attr:`dynamic`: the engine re-keys its
    ready queue every step through :meth:`admission_key_at`.

    Pair it with the non-preemptive :class:`FCFSPolicy` (what
    ``make_policies("aging")`` returns): preemption driven by *static*
    priority would evict exactly the aged sessions this policy fought to
    admit, reintroducing the starvation loop.
    """

    name = "aging-priority"
    dynamic = True

    def __init__(self, aging_steps: int = 16) -> None:
        if aging_steps < 1:
            raise ValueError("aging_steps must be >= 1")
        self.aging_steps = aging_steps

    def effective_priority(self, handle: "RequestHandle", step: int) -> int:
        waited = max(0, step - handle.request.arrival_step)
        return handle.request.priority + waited // self.aging_steps

    def admission_key(self, handle: "RequestHandle") -> Tuple:
        # static fallback (push-time ordering before the first re-key)
        return _priority_key(handle)

    def admission_key_at(self, handle: "RequestHandle", step: int) -> Tuple:
        return (-self.effective_priority(handle, step),) + _arrival_key(handle)


class AdaptivePrefillAdmission(AdmissionPolicy):
    """Throttle chunked prefill while the fleet is decode-heavy.

    Wraps an ``inner`` ordering policy (FIFO by default) and overrides only
    :meth:`prefill_token_budget`: while at least ``decode_threshold`` of the
    active handles are decoding (state ``ACTIVE``, past their prefill), the
    step's prefill-row budget is clamped to ``throttled_budget`` rows, so
    incoming prompts trickle in instead of stealing a decode-heavy step's
    fused pass -- the inter-token latency of the established streams stays
    flat and admissions still progress (the engine clamps the head's chunk
    to >= 1 row, so no livelock).  Below the threshold the engine's own
    ``prefill_token_budget`` knob applies unchanged; an engine whose active
    set never crosses the threshold behaves bit-identically to the bare
    ``inner`` policy.

    Ordering, gating and lifecycle hooks all delegate to ``inner``
    (mirroring :class:`ArenaBudgetAdmission`), so the throttle composes
    with any ordering discipline -- including a dynamic one.
    """

    def __init__(
        self,
        inner: Optional[AdmissionPolicy] = None,
        throttled_budget: int = 4,
        decode_threshold: float = 0.75,
    ) -> None:
        if throttled_budget < 1:
            raise ValueError(
                f"throttled_budget must be >= 1, got {throttled_budget}"
            )
        if not 0.0 < decode_threshold <= 1.0:
            raise ValueError(
                f"decode_threshold must be in (0, 1], got {decode_threshold}"
            )
        self.inner = inner if inner is not None else FIFOAdmission()
        self.throttled_budget = int(throttled_budget)
        self.decode_threshold = float(decode_threshold)

    @property
    def name(self) -> str:
        return f"adaptive-prefill({self.inner.name})"

    @property
    def dynamic(self) -> bool:
        return self.inner.dynamic

    def admission_key(self, handle: "RequestHandle") -> Tuple:
        return self.inner.admission_key(handle)

    def admission_key_at(self, handle: "RequestHandle", step: int) -> Tuple:
        return self.inner.admission_key_at(handle, step)

    def may_admit(self, handle: "RequestHandle", engine: "ServingEngine") -> bool:
        return self.inner.may_admit(handle, engine)

    def check_submit(self, request, engine: "ServingEngine") -> None:
        self.inner.check_submit(request, engine)

    def on_admit(self, handle: "RequestHandle", engine: "ServingEngine") -> None:
        self.inner.on_admit(handle, engine)

    def on_release(self, handle: "RequestHandle", engine: "ServingEngine") -> None:
        self.inner.on_release(handle, engine)

    def prefill_token_budget(self, engine: "ServingEngine") -> Optional[int]:
        from .session import SessionState

        base = self.inner.prefill_token_budget(engine)
        active = engine.active_handles
        if not active:
            return base
        decoding = sum(
            1 for h in active if h.session.state is SessionState.ACTIVE
        )
        if decoding / len(active) < self.decode_threshold:
            return base
        if base is None:
            return self.throttled_budget
        return min(base, self.throttled_budget)


# -- scheduling ---------------------------------------------------------------


class SchedulingPolicy(ABC):
    """Decides service urgency and preemption among admitted sessions.

    Every active session decodes each step (continuous batching); the lever a
    scheduling policy holds is *eviction*: :meth:`select_preemptions` names
    active sessions to preempt so that strictly more urgent waiting requests
    can take their slots (and their arena pages) this very step.

    The engine consults :meth:`select_preemptions` only when
    :attr:`preemptive` is true, and treats the selection as *tentative*: a
    victim is preempted for real only if the subsequent admission pass
    actually uses its evicted capacity; otherwise it keeps its slot and KV
    untouched (so a selection wasted on an admission-gated candidate costs
    nothing).
    """

    name = "scheduling"
    preemptive = False

    @abstractmethod
    def urgency_key(self, handle: "RequestHandle", step: int) -> Tuple:
        """Service-urgency key (smaller = more urgent, never preempted first)."""

    def preempts(
        self, waiting: "RequestHandle", active: "RequestHandle", step: int
    ) -> bool:
        """Whether ``waiting`` is urgent enough to evict ``active``.

        The default is a strict key comparison; policies may loosen it (e.g.
        compare only the priority class) to avoid churn between requests that
        tie on the attribute that matters.
        """
        return self.urgency_key(waiting, step) < self.urgency_key(active, step)

    def select_preemptions(
        self,
        ready: Sequence["RequestHandle"],
        active: Sequence["RequestHandle"],
        free_slots: int,
        step: int,
    ) -> List["RequestHandle"]:
        """Pick the active sessions to evict for this step's admissions.

        The most urgent waiting handles first absorb any free slots; each
        one beyond that evicts the least urgent remaining active session iff
        :meth:`preempts` holds strictly.  Victims are returned most-evictable
        first; the engine releases their pages before running admission, so
        the freed slots (and KV budget) are taken in the same step.
        """
        if not self.preemptive or not ready or not active:
            return []
        waiting = sorted(ready, key=lambda h: self.urgency_key(h, step))
        survivors = sorted(active, key=lambda h: self.urgency_key(h, step))
        victims: List["RequestHandle"] = []
        spare = free_slots
        for candidate in waiting:
            if spare > 0:
                spare -= 1  # a free slot serves this arrival without eviction
                continue
            if not survivors:
                break
            if self.preempts(candidate, survivors[-1], step):
                victims.append(survivors.pop())
                # the freed slot is consumed by ``candidate`` itself
            else:
                break
        return victims


class FCFSPolicy(SchedulingPolicy):
    """First come, first served; never preempts.

    With :class:`FIFOAdmission` this reproduces the pre-policy
    ``ContinuousBatchingScheduler`` bit-exactly (tokens, metrics and arena
    counters), which the golden and fuzz suites pin.
    """

    name = "fcfs"
    preemptive = False

    def urgency_key(self, handle: "RequestHandle", step: int) -> Tuple:
        return _arrival_key(handle)


class PriorityPolicy(SchedulingPolicy):
    """Strict priority service: higher ``Request.priority`` evicts lower.

    Preemption compares *priority classes only* -- a waiting request must
    carry strictly higher priority than the victim, so equal-priority
    requests never churn each other's KV.  Within a class, service order is
    FIFO via the urgency key.
    """

    name = "priority"
    preemptive = True

    def urgency_key(self, handle: "RequestHandle", step: int) -> Tuple:
        return _priority_key(handle)

    def preempts(
        self, waiting: "RequestHandle", active: "RequestHandle", step: int
    ) -> bool:
        return waiting.request.priority > active.request.priority


class DeadlinePolicy(SchedulingPolicy):
    """Earliest-deadline-first service with deadline-driven preemption.

    Requests without a deadline are served last and preempted first.  A
    waiting request evicts an active one only when its absolute deadline is
    strictly earlier, so identical deadlines never ping-pong.
    """

    name = "deadline"
    preemptive = True

    def urgency_key(self, handle: "RequestHandle", step: int) -> Tuple:
        return _edf_key(handle)

    def preempts(
        self, waiting: "RequestHandle", active: "RequestHandle", step: int
    ) -> bool:
        return _deadline_value(waiting) < _deadline_value(active)


def make_policies(name: str) -> Tuple[AdmissionPolicy, SchedulingPolicy]:
    """Admission/scheduling pair for a named serving discipline.

    ``"fcfs"`` -> (:class:`FIFOAdmission`, :class:`FCFSPolicy`);
    ``"priority"`` -> (:class:`PriorityAdmission`, :class:`PriorityPolicy`);
    ``"deadline"`` -> (:class:`DeadlineAdmission`, :class:`DeadlinePolicy`);
    ``"aging"`` -> (:class:`AgingPriorityAdmission`, :class:`FCFSPolicy`) --
    aged effective priorities order admission while service stays
    non-preemptive, so waiting always pays off (see the class docstring).
    The pairs keep the admission order aligned with the service order, which
    is what ``examples/serving_simulation.py --policy`` and the serving
    benchmark use.
    """
    pairs = {
        "fcfs": (FIFOAdmission, FCFSPolicy),
        "priority": (PriorityAdmission, PriorityPolicy),
        "deadline": (DeadlineAdmission, DeadlinePolicy),
        "aging": (AgingPriorityAdmission, FCFSPolicy),
    }
    if name not in pairs:
        raise KeyError(f"unknown policy {name!r}; available: {sorted(pairs)}")
    admission_cls, scheduling_cls = pairs[name]
    return admission_cls(), scheduling_cls()


# -- cluster routing ----------------------------------------------------------


class RoutingPolicy(ABC):
    """Chooses the replica a cluster-level request lands on.

    The third policy interface, mirroring :class:`AdmissionPolicy`: the
    cluster control plane (:class:`~repro.serve.cluster.ClusterEngine`) owns
    the mechanics -- dispatch timing, session affinity, failover re-routing --
    and delegates only the *placement decision* here.  ``route`` sees the
    full replica tuple (including replicas currently marked down, so a
    policy can keep stable positions) and must return a replica whose
    ``up`` flag is true; the cluster raises if it does not.  Policies must
    be deterministic functions of (request, replica state, own internal
    state): no wall clock, no unseeded randomness -- that is what lets any
    ``(routing policy, D)`` configuration replay bit-for-bit.
    """

    #: short name recorded in :class:`~repro.serve.cluster.ClusterReport`
    name = "routing"

    @abstractmethod
    def route(
        self, request: "Request", replicas: Sequence["Replica"], step: int
    ) -> "Replica":
        """Pick the replica for ``request`` at cluster step ``step``."""

    @staticmethod
    def healthy(replicas: Sequence["Replica"]) -> List["Replica"]:
        """The routable (up) subset, in replica-index order."""
        return [r for r in replicas if r.up]


class RoundRobinRouting(RoutingPolicy):
    """Cycle through replica indices, skipping ones that are down.

    The cursor advances over *global* indices (not the healthy subset), so
    the assignment pattern is stable while everything is up and degrades
    gracefully around a down replica.  With D=1 every request lands on
    replica 0, which is the cluster's bit-identity anchor against a bare
    :class:`~repro.serve.scheduler.ServingEngine`.
    """

    name = "rr"

    def __init__(self) -> None:
        self._cursor = 0

    def route(
        self, request: "Request", replicas: Sequence["Replica"], step: int
    ) -> "Replica":
        n = len(replicas)
        for _ in range(n):
            replica = replicas[self._cursor % n]
            self._cursor += 1
            if replica.up:
                return replica
        raise RuntimeError("no healthy replica to route to")


class LeastLoadedRouting(RoutingPolicy):
    """Send each request to the emptiest replica.

    Load is ``(queued + active requests, arena pages in use, index)`` --
    queue depth dominates, KV occupancy breaks queue ties, and the replica
    index makes the choice deterministic when replicas are truly identical.
    """

    name = "least-loaded"

    def route(
        self, request: "Request", replicas: Sequence["Replica"], step: int
    ) -> "Replica":
        up = self.healthy(replicas)
        if not up:
            raise RuntimeError("no healthy replica to route to")
        return min(up, key=lambda r: (r.queue_load, r.pages_in_use, r.index))


class PrefixAffinityRouting(RoutingPolicy):
    """Hash the prompt head so shared-prefix requests share a replica.

    Requests whose first ``head_tokens`` prompt tokens match hash to the
    same *home* replica, which is where the prefix cache that can serve
    them lives -- spreading a shared-prefix group round-robin would pay the
    prefix miss once per replica instead of once per fleet.  The hash is
    ``zlib.crc32`` over the token ids (Python's builtin ``hash`` is
    per-process salted and would break replay).  A down home replica
    linear-probes to the next healthy index, so the group re-homes
    deterministically during failover and returns after recovery.
    """

    name = "affinity"

    def __init__(self, head_tokens: int = 32) -> None:
        if head_tokens < 1:
            raise ValueError(f"head_tokens must be >= 1, got {head_tokens}")
        self.head_tokens = head_tokens

    def prompt_key(self, request: "Request") -> int:
        head = request.prompt_tokens[: self.head_tokens]
        return zlib.crc32(",".join(map(str, head)).encode("ascii"))

    def route(
        self, request: "Request", replicas: Sequence["Replica"], step: int
    ) -> "Replica":
        n = len(replicas)
        home = self.prompt_key(request) % n
        for offset in range(n):
            replica = replicas[(home + offset) % n]
            if replica.up:
                return replica
        raise RuntimeError("no healthy replica to route to")


def make_routing(name: str) -> RoutingPolicy:
    """Routing policy for a named strategy.

    ``"rr"`` -> :class:`RoundRobinRouting`; ``"least-loaded"`` ->
    :class:`LeastLoadedRouting`; ``"affinity"`` ->
    :class:`PrefixAffinityRouting` (default prompt head of 32 tokens).
    These are the names ``examples/serving_simulation.py --routing`` and the
    cluster benchmark block accept.
    """
    factories = {
        "rr": RoundRobinRouting,
        "least-loaded": LeastLoadedRouting,
        "affinity": PrefixAffinityRouting,
    }
    if name not in factories:
        raise KeyError(f"unknown routing {name!r}; available: {sorted(factories)}")
    return factories[name]()
