"""Continuous-batching scheduler multiplexing sessions through one model.

The scheduler advances simulated time in *engine steps*.  Each step it

1. admits arrived requests, earliest arrival first (submission order breaks
   ties), until the active set holds ``max_active`` sessions -- an admission
   runs the request's prefill and emits its first token;
2. advances every other active session by one token through a **single fused
   decode pass**: the sessions' current tokens are stacked into a
   ``(B, hidden)`` batch and models exposing ``forward_batch`` (e.g.
   :class:`~repro.model.transformer.QuantizedTransformer`) run one quantised
   forward per step for the whole batch -- one GEMM per weight matrix and one
   ragged batched attention per layer -- instead of ``B`` separate
   ``model.forward`` calls.  Models without a fused path fall back to
   per-session stepping with identical results;
3. retires finished sessions, freeing their slots for the next step.

Because every session shares one model -- and, when the model is bound to an
:class:`repro.core.engine.MCBPEngine`, one decoded-plane cache -- each
layer's BSTC decode *and* its GEMM launch are paid once per step instead of
once per session, which is the serving-side analogue of BRCR/BSTC amortising
bit-level work across a whole weight matrix.

The result of a run is a :class:`ServingReport` with per-request queueing
delay, time-to-first-token, end-to-end latency and attention-traffic volume,
plus aggregate throughput; :meth:`ServingReport.to_json` /
:meth:`ServingReport.from_json` round-trip the report through the JSON
format shared with the serving benchmarks.
"""

from __future__ import annotations

import heapq
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..model.generation import KeyPredictor
from .session import GenerationSession, Request, RequestMetrics

__all__ = ["RequestMetrics", "ServingReport", "ContinuousBatchingScheduler"]


@dataclass
class ServingReport:
    """Aggregate outcome of a scheduler run."""

    steps: int
    requests: List[RequestMetrics] = field(default_factory=list)
    max_concurrency: int = 0

    @property
    def total_tokens(self) -> int:
        return sum(r.n_generated for r in self.requests)

    @property
    def throughput_tokens_per_step(self) -> float:
        return self.total_tokens / self.steps if self.steps else 0.0

    def latency_percentile(self, q: float) -> float:
        if not self.requests:
            return 0.0
        return float(np.percentile([r.latency_steps for r in self.requests], q))

    @property
    def mean_latency_steps(self) -> float:
        if not self.requests:
            return 0.0
        return float(np.mean([r.latency_steps for r in self.requests]))

    @property
    def mean_queue_delay_steps(self) -> float:
        if not self.requests:
            return 0.0
        return float(np.mean([r.queue_delay_steps for r in self.requests]))

    def to_json(self) -> dict:
        """JSON-serialisable dict: stored fields plus derived aggregates.

        The same schema is emitted by ``examples/serving_simulation.py
        --json`` and embedded in ``BENCH_serving.json`` by the serving
        benchmark, so every serving artefact shares one report format.
        Derived aggregates are included for human consumption;
        :meth:`from_json` ignores them and recomputes from the stored fields.
        """
        return {
            "steps": self.steps,
            "max_concurrency": self.max_concurrency,
            "total_tokens": self.total_tokens,
            "throughput_tokens_per_step": self.throughput_tokens_per_step,
            "mean_latency_steps": self.mean_latency_steps,
            "p95_latency_steps": self.latency_percentile(95),
            "mean_queue_delay_steps": self.mean_queue_delay_steps,
            "requests": [asdict(r) for r in self.requests],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "ServingReport":
        """Rebuild a report from :meth:`to_json` output (derived keys ignored)."""
        stored = {f for f in RequestMetrics.__dataclass_fields__}
        requests = [
            RequestMetrics(**{k: v for k, v in entry.items() if k in stored})
            for entry in payload["requests"]
        ]
        return cls(
            steps=int(payload["steps"]),
            max_concurrency=int(payload["max_concurrency"]),
            requests=requests,
        )

    def summary(self) -> str:
        """Human-readable per-request table plus aggregate lines."""
        lines = [
            f"{'request':>12} {'arrive':>7} {'admit':>6} {'first':>6} "
            f"{'finish':>7} {'tokens':>7} {'latency':>8} {'attn%':>6}"
        ]
        for r in sorted(self.requests, key=lambda r: r.arrival_step):
            lines.append(
                f"{r.request_id:>12} {r.arrival_step:>7} {r.admitted_step:>6} "
                f"{r.first_token_step:>6} {r.finished_step:>7} {r.n_generated:>7} "
                f"{r.latency_steps:>8} {100.0 * r.attention_density:>5.1f}%"
            )
        lines.append(
            f"steps={self.steps} tokens={self.total_tokens} "
            f"throughput={self.throughput_tokens_per_step:.2f} tok/step "
            f"mean_latency={self.mean_latency_steps:.1f} "
            f"p95_latency={self.latency_percentile(95):.1f} "
            f"peak_concurrency={self.max_concurrency}"
        )
        return "\n".join(lines)


class ContinuousBatchingScheduler:
    """Multiplexes many generation sessions through one shared model.

    Parameters
    ----------
    model:
        Shared inference substrate (``forward``/``new_cache``), typically a
        :class:`~repro.model.transformer.TransformerModel` or
        :class:`~repro.model.transformer.QuantizedTransformer`.
    max_active:
        Maximum number of concurrently decoding sessions (batch slots).
    predictor:
        Optional BGPP/top-k key predictor shared by all sessions.
    fused:
        Step all decoding sessions through one batched forward pass per
        engine step (the default).  Models without ``forward_batch`` fall
        back to per-session stepping automatically; ``fused=False`` forces
        the per-session loop, which the benchmarks use as the baseline.
    """

    def __init__(
        self,
        model,
        max_active: int = 8,
        predictor: Optional[KeyPredictor] = None,
        fused: bool = True,
    ) -> None:
        if max_active < 1:
            raise ValueError("max_active must be >= 1")
        self.model = model
        self.max_active = max_active
        self.predictor = predictor
        self.fused = fused
        self.current_step = 0
        # min-heap keyed by (arrival_step, submission index): earliest arrival
        # first, submission order on ties, O(log n) per admission
        self._queue: List[Tuple[int, int, GenerationSession]] = []
        self._request_ids: set = set()
        self._submitted = 0
        self._active: List[GenerationSession] = []
        self._finished: List[GenerationSession] = []
        self._max_concurrency = 0

    # -- submission ------------------------------------------------------------

    def submit(self, request: Request) -> GenerationSession:
        # step() keys its emitted-token dict by request_id, so ids must be
        # unique or one session's tokens would silently shadow another's
        if request.request_id in self._request_ids:
            raise ValueError(f"duplicate request_id {request.request_id!r}")
        self._request_ids.add(request.request_id)
        session = GenerationSession(request, self.model, predictor=self.predictor)
        heapq.heappush(self._queue, (request.arrival_step, self._submitted, session))
        self._submitted += 1
        return session

    def submit_many(self, requests: Iterable[Request]) -> List[GenerationSession]:
        return [self.submit(r) for r in requests]

    @property
    def n_queued(self) -> int:
        return len(self._queue)

    @property
    def n_active(self) -> int:
        return len(self._active)

    @property
    def n_finished(self) -> int:
        return len(self._finished)

    @property
    def has_work(self) -> bool:
        return bool(self._queue or self._active)

    # -- stepping --------------------------------------------------------------

    def step(self) -> Dict[str, int]:
        """Advance one engine step; returns ``{request_id: emitted_token}``."""
        emitted: Dict[str, int] = {}
        step = self.current_step

        # decode the sessions that were already active before admissions, in
        # admission order (continuous batching: old and new requests share
        # the same step)
        decoding = list(self._active)

        # earliest-arrival-first admission into free slots (submission order
        # breaks ties, so arrival-sorted streams degenerate to plain FIFO)
        free = self.max_active - len(self._active)
        admitted: List[GenerationSession] = []
        while free > 0 and self._queue and self._queue[0][0] <= step:
            _, _, session = heapq.heappop(self._queue)
            self._active.append(session)
            admitted.append(session)
            free -= 1

        self._max_concurrency = max(self._max_concurrency, len(self._active))

        for session in admitted:
            emitted[session.request.request_id] = session.admit(step)
        if decoding:
            if self.fused:
                emitted.update(GenerationSession.decode_step_batch(decoding, step))
            else:
                for session in decoding:
                    emitted[session.request.request_id] = session.decode_step(step)

        for session in list(self._active):
            if session.is_finished:
                self._active.remove(session)
                self._finished.append(session)

        self.current_step += 1
        return emitted

    def run(self, max_steps: int = 100_000) -> ServingReport:
        """Step until every submitted request finishes (or ``max_steps``)."""
        while self.has_work and self.current_step < max_steps:
            self.step()
        if self.has_work:
            raise RuntimeError(
                f"scheduler did not drain within {max_steps} steps "
                f"({self.n_queued} queued, {self.n_active} active)"
            )
        return self.report()

    def report(self) -> ServingReport:
        """Snapshot of the *completed* requests so far.

        Queued and still-active sessions are excluded, so a mid-run call
        (while :attr:`has_work` is true) understates total tokens, throughput
        and the latency aggregates; :meth:`run` only reports after draining.
        """
        return ServingReport(
            steps=self.current_step,
            max_concurrency=self._max_concurrency,
            requests=[session.to_metrics() for session in self._finished],
        )
