"""Continuous-batching scheduler multiplexing sessions through one model.

The scheduler advances simulated time in *engine steps*.  Each step it

1. admits arrived requests, earliest arrival first (submission order breaks
   ties), until the active set holds ``max_active`` sessions -- an admission
   runs the request's prefill and emits its first token;
2. advances every other active session by one token through a **single fused
   decode pass**: the sessions' current tokens are stacked into a
   ``(B, hidden)`` batch and models exposing ``forward_batch`` (e.g.
   :class:`~repro.model.transformer.QuantizedTransformer`) run one quantised
   forward per step for the whole batch -- one GEMM per weight matrix and one
   ragged batched attention per layer -- instead of ``B`` separate
   ``model.forward`` calls.  Models without a fused path fall back to
   per-session stepping with identical results;
3. retires finished sessions, freeing their slots -- and their KV arena
   pages -- for the next step.

Because every session shares one model -- and, when the model is bound to an
:class:`repro.core.engine.MCBPEngine`, one decoded-plane cache -- each
layer's BSTC decode *and* its GEMM launch are paid once per step instead of
once per session, which is the serving-side analogue of BRCR/BSTC amortising
bit-level work across a whole weight matrix.  Session KV lives in a shared
:class:`~repro.serve.kv_arena.PagedKVArena` by default, so each decode
step's batched attention reads the paged pool through an incrementally
maintained view (O(B) copy bytes per step) instead of re-stacking every
session's full context.

The result of a run is a :class:`ServingReport` with per-request queueing
delay, time-to-first-token, end-to-end latency and attention-traffic volume,
plus aggregate throughput; :meth:`ServingReport.to_json` /
:meth:`ServingReport.from_json` round-trip the report through the JSON
format shared with the serving benchmarks.
"""

from __future__ import annotations

import heapq
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..model.generation import KeyPredictor
from .kv_arena import PagedKVArena
from .session import GenerationSession, Request, RequestMetrics

__all__ = ["RequestMetrics", "ServingReport", "ContinuousBatchingScheduler"]


@dataclass
class ServingReport:
    """Aggregate outcome of a scheduler run.

    ``arena`` carries the KV arena's occupancy / paging / copy-traffic
    counters (:meth:`repro.serve.kv_arena.ArenaStats.to_json`) when the run
    used one, ``None`` otherwise.
    """

    steps: int
    requests: List[RequestMetrics] = field(default_factory=list)
    max_concurrency: int = 0
    arena: Optional[dict] = None

    @property
    def total_tokens(self) -> int:
        return sum(r.n_generated for r in self.requests)

    @property
    def throughput_tokens_per_step(self) -> float:
        return self.total_tokens / self.steps if self.steps else 0.0

    def latency_percentile(self, q: float) -> float:
        if not self.requests:
            return 0.0
        return float(np.percentile([r.latency_steps for r in self.requests], q))

    @property
    def mean_latency_steps(self) -> float:
        if not self.requests:
            return 0.0
        return float(np.mean([r.latency_steps for r in self.requests]))

    @property
    def mean_queue_delay_steps(self) -> float:
        if not self.requests:
            return 0.0
        return float(np.mean([r.queue_delay_steps for r in self.requests]))

    def to_json(self) -> dict:
        """JSON-serialisable dict: stored fields plus derived aggregates.

        The same schema is emitted by ``examples/serving_simulation.py
        --json`` and embedded in ``BENCH_serving.json`` by the serving
        benchmark, so every serving artefact shares one report format.
        Derived aggregates are included for human consumption;
        :meth:`from_json` ignores them and recomputes from the stored fields.
        """
        return {
            "steps": self.steps,
            "max_concurrency": self.max_concurrency,
            "total_tokens": self.total_tokens,
            "throughput_tokens_per_step": self.throughput_tokens_per_step,
            "mean_latency_steps": self.mean_latency_steps,
            "p95_latency_steps": self.latency_percentile(95),
            "mean_queue_delay_steps": self.mean_queue_delay_steps,
            "arena": self.arena,
            "requests": [asdict(r) for r in self.requests],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "ServingReport":
        """Rebuild a report from :meth:`to_json` output (derived keys ignored)."""
        stored = {f for f in RequestMetrics.__dataclass_fields__}
        requests = [
            RequestMetrics(**{k: v for k, v in entry.items() if k in stored})
            for entry in payload["requests"]
        ]
        return cls(
            steps=int(payload["steps"]),
            max_concurrency=int(payload["max_concurrency"]),
            requests=requests,
            arena=payload.get("arena"),
        )

    def summary(self) -> str:
        """Human-readable per-request table plus aggregate lines."""
        lines = [
            f"{'request':>12} {'arrive':>7} {'admit':>6} {'first':>6} "
            f"{'finish':>7} {'tokens':>7} {'latency':>8} {'attn%':>6}"
        ]
        for r in sorted(self.requests, key=lambda r: r.arrival_step):
            lines.append(
                f"{r.request_id:>12} {r.arrival_step:>7} {r.admitted_step:>6} "
                f"{r.first_token_step:>6} {r.finished_step:>7} {r.n_generated:>7} "
                f"{r.latency_steps:>8} {100.0 * r.attention_density:>5.1f}%"
            )
        lines.append(
            f"steps={self.steps} tokens={self.total_tokens} "
            f"throughput={self.throughput_tokens_per_step:.2f} tok/step "
            f"mean_latency={self.mean_latency_steps:.1f} "
            f"p95_latency={self.latency_percentile(95):.1f} "
            f"peak_concurrency={self.max_concurrency}"
        )
        if self.arena is not None:
            a = self.arena
            lines.append(
                f"arena: {a['page_size']}-token pages, "
                f"peak {a['peak_pages_in_use']}/{a['n_pages']} in use, "
                f"{a['page_faults']} faults, {a['pages_freed']} freed, "
                f"gather {a['gather_bytes_copied'] / 1024.0:.1f} KiB "
                f"({a['gather_incremental']} incremental / "
                f"{a['gather_rebuilds']} rebuilds)"
            )
        return "\n".join(lines)


class ContinuousBatchingScheduler:
    """Multiplexes many generation sessions through one shared model.

    Parameters
    ----------
    model:
        Shared inference substrate (``forward``/``new_cache``), typically a
        :class:`~repro.model.transformer.TransformerModel` or
        :class:`~repro.model.transformer.QuantizedTransformer`.
    max_active:
        Maximum number of concurrently decoding sessions (batch slots).
    predictor:
        Optional BGPP/top-k key predictor shared by all sessions.
    fused:
        Step all decoding sessions through one batched forward pass per
        engine step (the default).  Models without ``forward_batch`` fall
        back to per-session stepping automatically; ``fused=False`` forces
        the per-session loop, which the benchmarks use as the baseline.
    arena:
        KV storage policy.  ``None`` (the default) auto-enables a shared
        :class:`~repro.serve.kv_arena.PagedKVArena` sized from
        ``model.config`` whenever the fused batched path can consume it
        (``fused=True`` and the model exposes ``forward_batch``) -- every
        session's KV then lives in one paged pool, finished sessions return
        their pages, and batched attention reads the pool zero-copy instead
        of re-stacking per-session caches each step.  Per-session stepping
        cannot read the pool in place (it would pay a full-context
        materialisation per step), so auto mode keeps standalone caches
        there.  ``True`` forces the arena (models without a ``config`` still
        fall back), ``False`` disables it, and passing a
        :class:`PagedKVArena` instance uses it directly (sharing one pool
        across several schedulers is allowed).
    page_size:
        Tokens per arena page when the scheduler builds the arena itself.
    """

    def __init__(
        self,
        model,
        max_active: int = 8,
        predictor: Optional[KeyPredictor] = None,
        fused: bool = True,
        arena=None,
        page_size: int = 32,
    ) -> None:
        if max_active < 1:
            raise ValueError("max_active must be >= 1")
        self.model = model
        self.max_active = max_active
        self.predictor = predictor
        self.fused = fused
        config = getattr(model, "config", None)
        if arena is None:
            arena = bool(fused and hasattr(model, "forward_batch"))
        if arena is True:
            if config is None:
                arena = None  # model shape unknown: standalone caches
            else:
                arena = PagedKVArena(
                    n_layers=config.n_layers,
                    hidden_size=config.hidden_size,
                    page_size=page_size,
                )
        elif arena is False:
            arena = None
        self.arena = arena
        self.last_step_stats: Optional[Dict[str, int]] = None
        self.current_step = 0
        # min-heap keyed by (arrival_step, submission index): earliest arrival
        # first, submission order on ties, O(log n) per admission
        self._queue: List[Tuple[int, int, GenerationSession]] = []
        self._request_ids: set = set()
        self._submitted = 0
        self._active: List[GenerationSession] = []
        self._finished: List[GenerationSession] = []
        self._max_concurrency = 0

    # -- submission ------------------------------------------------------------

    def submit(self, request: Request) -> GenerationSession:
        # step() keys its emitted-token dict by request_id, so ids must be
        # unique or one session's tokens would silently shadow another's
        if request.request_id in self._request_ids:
            raise ValueError(f"duplicate request_id {request.request_id!r}")
        self._request_ids.add(request.request_id)
        session = GenerationSession(
            request, self.model, predictor=self.predictor, arena=self.arena
        )
        heapq.heappush(self._queue, (request.arrival_step, self._submitted, session))
        self._submitted += 1
        return session

    def submit_many(self, requests: Iterable[Request]) -> List[GenerationSession]:
        return [self.submit(r) for r in requests]

    @property
    def n_queued(self) -> int:
        return len(self._queue)

    @property
    def n_active(self) -> int:
        return len(self._active)

    @property
    def n_finished(self) -> int:
        return len(self._finished)

    @property
    def has_work(self) -> bool:
        return bool(self._queue or self._active)

    # -- stepping --------------------------------------------------------------

    def step(self) -> Dict[str, int]:
        """Advance one engine step; returns ``{request_id: emitted_token}``."""
        emitted: Dict[str, int] = {}
        step = self.current_step

        # decode the sessions that were already active before admissions, in
        # admission order (continuous batching: old and new requests share
        # the same step)
        decoding = list(self._active)

        # earliest-arrival-first admission into free slots (submission order
        # breaks ties, so arrival-sorted streams degenerate to plain FIFO)
        free = self.max_active - len(self._active)
        admitted: List[GenerationSession] = []
        while free > 0 and self._queue and self._queue[0][0] <= step:
            _, _, session = heapq.heappop(self._queue)
            self._active.append(session)
            admitted.append(session)
            free -= 1

        self._max_concurrency = max(self._max_concurrency, len(self._active))

        for session in admitted:
            emitted[session.request.request_id] = session.admit(step)
        if decoding:
            if self.fused:
                emitted.update(GenerationSession.decode_step_batch(decoding, step))
            else:
                for session in decoding:
                    emitted[session.request.request_id] = session.decode_step(step)

        retired = 0
        for session in list(self._active):
            if session.is_finished:
                self._active.remove(session)
                session.release_kv()  # pages return to the pool immediately
                self._finished.append(session)
                retired += 1

        stats: Dict[str, int] = {
            "step": step,
            "emitted": len(emitted),
            "admitted": len(admitted),
            "decoded": len(decoding),
            "retired": retired,
            "active": len(self._active),
            "queued": len(self._queue),
        }
        if self.arena is not None:
            a = self.arena.stats
            stats["arena_pages_in_use"] = a.pages_in_use
            stats["arena_page_faults"] = a.page_faults
            stats["arena_gather_bytes_copied"] = a.gather_bytes_copied
        self.last_step_stats = stats

        self.current_step += 1
        return emitted

    def run(self, max_steps: int = 100_000) -> ServingReport:
        """Step until every submitted request finishes (or ``max_steps``)."""
        while self.has_work and self.current_step < max_steps:
            self.step()
        if self.has_work:
            raise RuntimeError(
                f"scheduler did not drain within {max_steps} steps "
                f"({self.n_queued} queued, {self.n_active} active)"
            )
        return self.report()

    def report(self) -> ServingReport:
        """Snapshot of the *completed* requests so far.

        Queued and still-active sessions are excluded, so a mid-run call
        (while :attr:`has_work` is true) understates total tokens, throughput
        and the latency aggregates; :meth:`run` only reports after draining.
        """
        return ServingReport(
            steps=self.current_step,
            max_concurrency=self._max_concurrency,
            requests=[session.to_metrics() for session in self._finished],
            arena=self.arena.stats.to_json() if self.arena is not None else None,
        )
