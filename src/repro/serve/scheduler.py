"""Policy-driven serving engine: batched execution core + request lifecycle.

:class:`ServingEngine` owns the request lifecycle -- ``submit() ->``
:class:`RequestHandle` (with per-request streaming/completion callbacks),
``cancel()``, ``step()``/``run()`` -- and the batched execution core, while
delegating every *decision* to two pluggable interfaces from
:mod:`repro.serve.policies`: an
:class:`~repro.serve.policies.AdmissionPolicy` (which arrived request takes a
free slot, and whether the KV arena can afford it) and a
:class:`~repro.serve.policies.SchedulingPolicy` (which active sessions to
preempt for more urgent work).

Each engine step:

1. moves arrived requests into the ready queue (ordered by the admission
   policy's key; *dynamic* policies such as
   :class:`~repro.serve.policies.AgingPriorityAdmission` are re-keyed every
   step);
2. asks the scheduling policy for **preemptions**: each victim -- decoding
   *or* mid-prefill -- releases its arena pages immediately and re-enters
   the ready queue with only its generated-token snapshot (resume
   re-prefills through the same chunked pipeline, bit-identical to an
   unpreempted run);
3. admits ready requests into free slots, earliest admission-key first,
   gated per-handle by the admission policy -- an admission enters the
   **chunked prefill pipeline** (state ``PREFILLING``) rather than running
   its whole prompt serially;
4. builds one **mixed batch**: every decoding session's current token plus
   up to ``prefill_token_budget`` prompt rows from the prefilling sessions
   (head of the admission order first, long prompts split across steps), and
   runs it as a **single fused forward** through
   :meth:`~repro.model.transformer.QuantizedTransformer.prefill_batch` --
   one GEMM per weight matrix for the whole step, one ragged chunked
   attention per layer.  Sessions whose last chunk landed emit their first
   token; pure-decode steps keep the dedicated ``forward_batch`` path, and
   models without batched prefill fall back to one-shot serial prefill at
   admission with identical tokens;
5. retires finished sessions, freeing their slots -- and their KV arena
   pages -- for the next step.

Because every session shares one model -- and, when the model is bound to an
:class:`repro.core.engine.MCBPEngine`, one decoded-plane cache -- each
layer's BSTC decode *and* its GEMM launch are paid once per step instead of
once per session.  Session KV lives in a shared
:class:`~repro.serve.kv_arena.PagedKVArena` by default, so each decode
step's batched attention reads the paged pool through an incrementally
maintained view (O(B) copy bytes per step) instead of re-stacking every
session's full context.

The result of a run is a :class:`ServingReport` with per-request queueing
delay, time-to-first-token, end-to-end latency, preemption and deadline-miss
counts, plus aggregate throughput and a per-policy metrics block;
:meth:`ServingReport.to_json` / :meth:`ServingReport.from_json` round-trip
the report through the JSON format shared with the serving benchmarks.

:class:`ContinuousBatchingScheduler` remains as a deprecated shim: it is a
``ServingEngine`` pinned to FIFO admission + FCFS scheduling (bit-identical
to the pre-policy scheduler) whose ``submit`` returns the raw
:class:`~repro.serve.session.GenerationSession` for source compatibility.
"""

from __future__ import annotations

import heapq
import warnings
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..model.generation import KeyPredictor, KVCorruptionError
from .faults import (
    FailureInfo,
    FaultError,
    FaultInjector,
    FaultPlan,
    InjectedCallbackError,
    LoadShedWatchdog,
)
from .kv_arena import PagedKVArena
from .policies import (
    AdmissionPolicy,
    FCFSPolicy,
    FIFOAdmission,
    SchedulingPolicy,
)
from .session import GenerationSession, Request, RequestMetrics, SessionState
from .speculative import NGramDrafter, _SessionThrottle, resolve_speculation

__all__ = [
    "RequestMetrics",
    "RequestHandle",
    "ServingReport",
    "ServingEngine",
    "ContinuousBatchingScheduler",
]

#: What the engine-side containment catches around serial-path session calls:
#: injected faults plus the real KV-integrity detector.  Anything else is a
#: genuine bug and must crash loudly, never be quarantined into a retry.
_FAULT_TYPES = (FaultError, KVCorruptionError)

TokenCallback = Callable[["RequestHandle", int, int], None]
CompleteCallback = Callable[["RequestHandle", RequestMetrics], None]


@dataclass
class ServingReport:
    """Aggregate outcome of an engine run.

    ``arena`` carries the KV arena's occupancy / paging / copy-traffic
    counters (:meth:`repro.serve.kv_arena.ArenaStats.to_json`) when the run
    used one, ``None`` otherwise.  ``policy`` is the per-policy metrics
    block: which admission/scheduling policies ran plus their aggregate
    preemption / deadline-miss / cancellation counts (and, since the failure
    model landed, failed / timed-out / shed / retry / callback-error counts).

    ``requests`` holds every *terminally-resolved* request except cancelled
    ones -- finished, failed, timed-out and shed alike, distinguished by
    :attr:`RequestMetrics.outcome` -- so failure rates are first-class
    report data.  The latency aggregates are computed over the ``finished``
    outcomes only (a timed-out request's "latency" measures the reaper, not
    the service), and queue-delay aggregates over requests that were
    actually admitted; fault-free reports are bit-identical to the
    pre-faults format.

    ``truncated`` records that the producing :meth:`ServingEngine.run` hit
    its ``max_steps`` with work still queued/active (the leftover counts say
    how much) -- previously that outcome raised, hiding the partial results;
    :meth:`from_json` tolerates payloads written either way.
    """

    steps: int
    requests: List[RequestMetrics] = field(default_factory=list)
    max_concurrency: int = 0
    arena: Optional[dict] = None
    policy: Optional[dict] = None
    truncated: bool = False
    leftover_queued: int = 0
    leftover_active: int = 0

    @property
    def total_tokens(self) -> int:
        return sum(r.n_generated for r in self.requests)

    @property
    def throughput_tokens_per_step(self) -> float:
        return self.total_tokens / self.steps if self.steps else 0.0

    def _finished(self) -> List[RequestMetrics]:
        return [r for r in self.requests if r.outcome == "finished"]

    def latency_percentile(self, q: float, priority: Optional[int] = None) -> float:
        """Latency percentile over finished requests, or one priority class."""
        pool = self._finished()
        if priority is not None:
            pool = [r for r in pool if r.priority == priority]
        if not pool:
            return 0.0
        return float(np.percentile([r.latency_steps for r in pool], q))

    @property
    def mean_latency_steps(self) -> float:
        pool = self._finished()
        if not pool:
            return 0.0
        return float(np.mean([r.latency_steps for r in pool]))

    @property
    def mean_queue_delay_steps(self) -> float:
        delays = [
            r.queue_delay_steps
            for r in self.requests
            if r.queue_delay_steps is not None
        ]
        if not delays:
            return 0.0
        return float(np.mean(delays))

    @property
    def total_preemptions(self) -> int:
        return sum(r.preemptions for r in self.requests)

    @property
    def total_deadline_misses(self) -> int:
        return sum(r.deadline_misses for r in self.requests)

    def to_json(self) -> dict:
        """JSON-serialisable dict: stored fields plus derived aggregates.

        The same schema is emitted by ``examples/serving_simulation.py
        --json`` and embedded in ``BENCH_serving.json`` by the serving
        benchmark, so every serving artefact shares one report format.
        Derived aggregates are included for human consumption;
        :meth:`from_json` ignores them and recomputes from the stored fields.
        """
        return {
            "steps": self.steps,
            "max_concurrency": self.max_concurrency,
            "total_tokens": self.total_tokens,
            "throughput_tokens_per_step": self.throughput_tokens_per_step,
            "mean_latency_steps": self.mean_latency_steps,
            "p95_latency_steps": self.latency_percentile(95),
            "mean_queue_delay_steps": self.mean_queue_delay_steps,
            "truncated": self.truncated,
            "leftover_queued": self.leftover_queued,
            "leftover_active": self.leftover_active,
            "arena": self.arena,
            "policy": self.policy,
            "requests": [asdict(r) for r in self.requests],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "ServingReport":
        """Rebuild a report from :meth:`to_json` output.

        Unknown keys are ignored at both the top level and inside each
        request entry, and stored fields absent from the payload fall back
        to their defaults -- so reports written by newer code (additional
        per-policy metrics blocks, new per-request counters) and by older
        code (pre-arena, pre-policy payloads) both load cleanly.
        """
        stored = {f for f in RequestMetrics.__dataclass_fields__}
        requests = [
            RequestMetrics(**{k: v for k, v in entry.items() if k in stored})
            for entry in payload.get("requests", [])
        ]
        return cls(
            steps=int(payload.get("steps", 0)),
            max_concurrency=int(payload.get("max_concurrency", 0)),
            requests=requests,
            arena=payload.get("arena"),
            policy=payload.get("policy"),
            truncated=bool(payload.get("truncated", False)),
            leftover_queued=int(payload.get("leftover_queued", 0)),
            leftover_active=int(payload.get("leftover_active", 0)),
        )

    @staticmethod
    def _cell(value, width: int) -> str:
        """Right-aligned table cell; ``-`` for a milestone never reached."""
        return f"{'-' if value is None else value:>{width}}"

    def summary(self) -> str:
        """Human-readable per-request table plus aggregate lines."""
        lines = [
            f"{'request':>12} {'arrive':>7} {'admit':>6} {'first':>6} "
            f"{'finish':>7} {'tokens':>7} {'latency':>8} {'attn%':>6} "
            f"{'outcome':>9}"
        ]
        for r in sorted(self.requests, key=lambda r: r.arrival_step):
            lines.append(
                f"{r.request_id:>12} {r.arrival_step:>7} "
                f"{self._cell(r.admitted_step, 6)} "
                f"{self._cell(r.first_token_step, 6)} "
                f"{self._cell(r.finished_step, 7)} {r.n_generated:>7} "
                f"{self._cell(r.latency_steps, 8)} "
                f"{100.0 * r.attention_density:>5.1f}% {r.outcome:>9}"
            )
        lines.append(
            f"steps={self.steps} tokens={self.total_tokens} "
            f"throughput={self.throughput_tokens_per_step:.2f} tok/step "
            f"mean_latency={self.mean_latency_steps:.1f} "
            f"p95_latency={self.latency_percentile(95):.1f} "
            f"peak_concurrency={self.max_concurrency}"
        )
        if self.truncated:
            lines.append(
                f"TRUNCATED: run stopped at max_steps with "
                f"{self.leftover_queued} queued / {self.leftover_active} "
                f"active requests unresolved"
            )
        if self.policy is not None:
            # .get(): from_json accepts partial policy blocks from other
            # writers, so summary() must not hard-require every key
            p = self.policy
            lines.append(
                f"policy: admission={p.get('admission', '?')} "
                f"scheduling={p.get('scheduling', '?')} "
                f"preemptions={p.get('preemptions', 0)} "
                f"deadline_misses={p.get('deadline_misses', 0)} "
                f"cancelled={p.get('cancelled', 0)} "
                f"failed={p.get('failed', 0)} "
                f"timed_out={p.get('timed_out', 0)} "
                f"shed={p.get('shed', 0)} "
                f"retries={p.get('retries', 0)}"
            )
        if self.arena is not None:
            a = self.arena
            lines.append(
                f"arena: {a['page_size']}-token pages, "
                f"peak {a['peak_pages_in_use']}/{a['n_pages']} in use, "
                f"{a['page_faults']} faults, {a['pages_freed']} freed, "
                f"gather {a['gather_bytes_copied'] / 1024.0:.1f} KiB "
                f"({a['gather_incremental']} incremental / "
                f"{a['gather_rebuilds']} rebuilds)"
            )
        return "\n".join(lines)


class RequestHandle:
    """The caller's view of one submitted request.

    Returned by :meth:`ServingEngine.submit`; exposes the immutable request,
    live state and generated tokens, and carries the optional per-request
    callbacks (``on_token`` fires for every emitted token, ``on_complete``
    once with the final :class:`RequestMetrics`).  ``index`` is the
    submission sequence number policies use as a deterministic tie-breaker.
    """

    __slots__ = (
        "session",
        "index",
        "on_token",
        "on_complete",
        "cancelled",
        "reserved_pages",
        "_complete_fired",
    )

    def __init__(
        self,
        session: GenerationSession,
        index: int,
        on_token: Optional[TokenCallback] = None,
        on_complete: Optional[CompleteCallback] = None,
    ) -> None:
        self.session = session
        self.index = index
        self.on_token = on_token
        self.on_complete = on_complete
        self.cancelled = False
        # page reservation pinned by the admission policy while the handle
        # is active (None when unadmitted, released, or policy-unmanaged)
        self.reserved_pages: Optional[int] = None
        # exactly-once terminal-callback latch: set the moment on_complete
        # is dispatched (or forfeited by cancel), never cleared
        self._complete_fired = False

    @property
    def request(self) -> Request:
        return self.session.request

    @property
    def request_id(self) -> str:
        return self.session.request.request_id

    @property
    def state(self) -> SessionState:
        return self.session.state

    @property
    def generated_tokens(self) -> List[int]:
        return self.session.generated_tokens

    @property
    def preemptions(self) -> int:
        return self.session.preemptions

    @property
    def done(self) -> bool:
        """Terminal: finished, cancelled, failed, timed out or shed."""
        return self.session.is_terminal or self.cancelled

    def metrics(self) -> RequestMetrics:
        """Final metrics of the resolved request (raises until terminal)."""
        return self.session.to_metrics()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RequestHandle({self.request_id!r}, state={self.state.value}, "
            f"tokens={len(self.generated_tokens)})"
        )


class ServingEngine:
    """Multiplexes many generation sessions through one shared model.

    Parameters
    ----------
    model:
        Shared inference substrate (``forward``/``new_cache``), typically a
        :class:`~repro.model.transformer.TransformerModel` or
        :class:`~repro.model.transformer.QuantizedTransformer`.
    max_active:
        Maximum number of concurrently decoding sessions (batch slots).
    predictor:
        Optional BGPP/top-k key predictor shared by all sessions.
    fused:
        Step all decoding sessions through one batched forward pass per
        engine step (the default).  Models without ``forward_batch`` fall
        back to per-session stepping automatically; ``fused=False`` forces
        the per-session loop, which the benchmarks use as the baseline.
    arena:
        KV storage policy.  ``None`` (the default) auto-enables a shared
        :class:`~repro.serve.kv_arena.PagedKVArena` sized from
        ``model.config`` whenever the fused batched path can consume it
        (``fused=True`` and the model exposes ``forward_batch``) -- every
        session's KV then lives in one paged pool, finished sessions return
        their pages, and batched attention reads the pool zero-copy instead
        of re-stacking per-session caches each step.  Per-session stepping
        cannot read the pool in place (it would pay a full-context
        materialisation per step), so auto mode keeps standalone caches
        there.  ``True`` forces the arena (models without a ``config`` still
        fall back), ``False`` disables it, and passing a
        :class:`PagedKVArena` instance uses it directly (sharing one pool
        across several engines is allowed).
    page_size:
        Tokens per arena page when the engine builds the arena itself.
    max_pages:
        Hard page budget of the self-built arena (``None`` = unbounded,
        geometric growth).  Set it when pairing the engine with
        :class:`~repro.serve.policies.ArenaBudgetAdmission`, whose watermark
        gate is relative to this bound -- with an unbounded arena the gate
        has nothing to enforce and admits everything.  An explicit
        ``max_pages`` on an engine that resolves to *no* arena raises
        ``ValueError`` (the budget would be silently unenforced), as does
        combining it with an externally built ``PagedKVArena`` instance
        (whose own constructor owns the bound).
    prefix_cache:
        Share prompt KV across requests through the arena's content-keyed
        prefix index: completed prefills register their prompt pages, later
        sessions with a matching prompt head map those pages read-only and
        skip the matched rows' prefill compute (copy-on-write protects
        shared pages; see :class:`~repro.serve.kv_arena.PagedKVArena`).
        Tokens and per-request metrics are bit-identical to a cold run;
        requires an arena (``ValueError`` otherwise).
    kv_dtype:
        Storage dtype of the self-built arena's KV pool:
        :class:`~repro.serve.kv_arena.KVDtype` (or its string value).
        ``"int8"`` stores rows quantised with per-page per-layer scales
        (~8x smaller pool and snapshots) and dequantises on every read;
        ``None`` (the default) keeps full-precision rows, byte-identical
        to an engine without the knob.  Requires the engine to resolve to
        an arena, and conflicts with an externally built ``PagedKVArena``
        (whose own constructor owns the dtype) -- ``ValueError`` either
        way.
    kv_snapshots:
        Preempt and (trusted-)retry arena-backed sessions by **snapshot**:
        the victim's KV pages are copied off-arena
        (:meth:`~repro.serve.kv_arena.PagedKVArena.snapshot_session`,
        shared prefix pages pinned by reference) and faulted back in on
        resume with *zero* re-prefill forward passes, bit-identical in
        tokens and metrics to an uninterrupted run.  Untrusted KV --
        fault sites at or after the forward pass (``session.compute``,
        ``session.append`` corruption) -- always falls back to the
        re-prefill path.  Requires an arena (``ValueError`` otherwise);
        off (the default) keeps the release-and-re-prefill behaviour
        byte-identical to before the knob existed.
    speculative:
        Draft-then-verify multi-token decode
        (:mod:`repro.serve.speculative`).  An ``int`` is shorthand for
        ``SpeculationConfig(k=...)``; a full
        :class:`~repro.serve.speculative.SpeculationConfig` picks the
        drafter (:class:`~repro.serve.speculative.NGramDrafter` by
        default) and the adaptive throttle.  Each step, every decoding
        session's chunk grows from one committed token to ``1 + k_draft``
        rows verified in the *same* fused batched pass; the greedy accept
        rule commits the longest matching draft prefix (plus the
        verifier's own next token) and
        :meth:`~repro.serve.kv_arena.PagedKVArena.truncate_session` rolls
        the rejected KV rows back, so the committed token stream is
        **bit-identical** to one-token decode for any drafter and any
        ``k``.  Requires the chunked batched prefill pipeline and a KV
        arena (``ValueError`` otherwise); ``None`` (the default) keeps
        plain one-token decode, byte-identical to an engine without the
        knob.
    admission:
        :class:`~repro.serve.policies.AdmissionPolicy` ordering and gating
        the ready queue; defaults to FIFO.
    scheduling:
        :class:`~repro.serve.policies.SchedulingPolicy` deciding preemption;
        defaults to FCFS (never preempts).
    prefill_token_budget:
        Maximum prompt rows the chunked prefill pipeline feeds into each
        step's fused pass, summed over every ``PREFILLING`` session (the
        TTFT-vs-decode-throughput knob; the admission policy can override it
        per step via
        :meth:`~repro.serve.policies.AdmissionPolicy.prefill_token_budget`).
        ``None`` (the default) completes every admitted prompt in its
        admission step, preserving the serial path's step-domain schedule
        exactly while still batching the work into one pass.
    batched_prefill:
        ``None`` (auto, the default) enables the chunked batched prefill
        pipeline whenever the fused path is on and the model exposes
        ``prefill_batch``; ``False`` forces one-shot serial prefill at
        admission (the benchmark baseline).  Tokens and step-domain metrics
        are bit-identical either way.
    faults:
        Optional :class:`~repro.serve.faults.FaultPlan` (or a pre-built
        :class:`~repro.serve.faults.FaultInjector`) arming the engine's
        deterministic fault-injection hooks -- schedule-time arena
        allocation probes, per-row compute/append faults at commit time,
        and callback-dispatch faults.  ``None`` (the default) leaves every
        hook point on the unguarded fast path: the fault-free engine is
        byte-identical in behaviour and measurably identical in throughput
        (gated in the serving benchmark).
    max_retries:
        How many fault-recovery re-prefills a request gets before it
        resolves ``FAILED``.  Each retry releases the (untrusted) KV and
        requeues the request with capped exponential backoff --
        ``retry_backoff_steps * 2**(retries-1)`` engine steps, capped at
        ``retry_backoff_cap`` -- then resumes through the ordinary
        preemption machinery, so a recovered request's token stream is
        bit-identical to a fault-free run.
    watchdog:
        Optional :class:`~repro.serve.faults.LoadShedWatchdog`.  When
        installed, the engine feeds it queue depth and fault quarantines
        every step; while the watchdog says the engine is overloaded, the
        lowest-priority queued requests are resolved ``SHED`` and the
        chunked-prefill budget is throttled until pressure subsides.
    """

    def __init__(
        self,
        model,
        max_active: int = 8,
        predictor: Optional[KeyPredictor] = None,
        fused: bool = True,
        arena=None,
        page_size: int = 32,
        max_pages: Optional[int] = None,
        admission: Optional[AdmissionPolicy] = None,
        scheduling: Optional[SchedulingPolicy] = None,
        prefill_token_budget: Optional[int] = None,
        batched_prefill: Optional[bool] = None,
        prefix_cache: bool = False,
        kv_dtype=None,
        kv_snapshots: bool = False,
        speculative=None,
        faults=None,
        max_retries: int = 2,
        retry_backoff_steps: int = 1,
        retry_backoff_cap: int = 8,
        watchdog: Optional[LoadShedWatchdog] = None,
    ) -> None:
        if max_active < 1:
            raise ValueError("max_active must be >= 1")
        if prefill_token_budget is not None and prefill_token_budget < 1:
            raise ValueError("prefill_token_budget must be >= 1 when given")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if retry_backoff_steps < 1:
            raise ValueError("retry_backoff_steps must be >= 1")
        if retry_backoff_cap < retry_backoff_steps:
            raise ValueError("retry_backoff_cap must be >= retry_backoff_steps")
        self.model = model
        self.max_active = max_active
        self.predictor = predictor
        self.fused = fused
        self.prefill_token_budget = prefill_token_budget
        # like arena=True on a config-less model, an explicit True quietly
        # falls back when the chunked pipeline cannot run (per-session
        # stepping or no model support) -- tokens are identical either way
        supported = fused and hasattr(model, "prefill_batch")
        self.batched_prefill = supported and (
            batched_prefill is None or bool(batched_prefill)
        )
        self.admission = admission if admission is not None else FIFOAdmission()
        self.scheduling = scheduling if scheduling is not None else FCFSPolicy()
        config = getattr(model, "config", None)
        if arena is None:
            arena = bool(fused and hasattr(model, "forward_batch"))
        if arena is True:
            if config is None:
                arena = None  # model shape unknown: standalone caches
            else:
                arena = PagedKVArena(
                    n_layers=config.n_layers,
                    hidden_size=config.hidden_size,
                    page_size=page_size,
                    initial_pages=(
                        64 if max_pages is None else min(64, max_pages)
                    ),
                    max_pages=max_pages,
                    kv_dtype=kv_dtype,
                )
        elif arena is False:
            arena = None
        elif isinstance(arena, PagedKVArena):
            if max_pages is not None:
                # the instance's own constructor set (or declined) the bound;
                # accepting a second one here would silently shadow it
                raise ValueError(
                    "max_pages conflicts with an externally built arena: "
                    "configure max_pages on the PagedKVArena instance instead"
                )
            if kv_dtype is not None:
                raise ValueError(
                    "kv_dtype conflicts with an externally built arena: "
                    "configure kv_dtype on the PagedKVArena instance instead"
                )
        if arena is None and kv_dtype is not None:
            raise ValueError(
                "kv_dtype was given but the engine resolved to no KV arena "
                "(arena=False, or the model lacks forward_batch/config "
                "support); the pool dtype would be silently unapplied -- "
                "drop kv_dtype or run an arena-capable model"
            )
        if arena is None and kv_snapshots:
            raise ValueError(
                "kv_snapshots=True requires a KV arena; the engine resolved "
                "to standalone caches (arena=False, or the model lacks "
                "forward_batch/config support)"
            )
        if arena is None and max_pages is not None:
            raise ValueError(
                "max_pages was given but the engine resolved to no KV arena "
                "(arena=False, or the model lacks forward_batch/config "
                "support); the page budget would be silently unenforced -- "
                "drop max_pages or run an arena-capable model"
            )
        if prefix_cache and arena is None:
            raise ValueError(
                "prefix_cache=True requires a KV arena; the engine resolved "
                "to standalone caches (arena=False, or the model lacks "
                "forward_batch/config support)"
            )
        self._speculative = resolve_speculation(speculative)
        if self._speculative is not None and not self.batched_prefill:
            raise ValueError(
                "speculative decode verifies draft rows through the chunked "
                "batched prefill pipeline; the engine resolved to one-shot "
                "prefill (fused=False, batched_prefill=False, or the model "
                "lacks prefill_batch) -- drop speculative or enable the "
                "fused batched path"
            )
        if self._speculative is not None and arena is None:
            raise ValueError(
                "speculative decode requires a KV arena (rejected draft "
                "rows are rolled back via truncate_session); the engine "
                "resolved to standalone caches (arena=False, or the model "
                "lacks forward_batch/config support)"
            )
        if self._speculative is not None:
            self._drafter = self._speculative.drafter or NGramDrafter()
        else:
            self._drafter = None
        # per-request adaptive k controllers, dropped at terminal resolution
        self._spec_state: Dict[str, _SessionThrottle] = {}
        self.arena = arena
        self.prefix_cache = bool(prefix_cache)
        self.kv_snapshots = bool(kv_snapshots)
        # -- failure model ----------------------------------------------------
        if faults is None:
            self._faults: Optional[FaultInjector] = None
        elif isinstance(faults, FaultInjector):
            self._faults = faults
        elif isinstance(faults, FaultPlan):
            self._faults = FaultInjector(faults)
        else:
            raise TypeError(
                f"faults must be a FaultPlan or FaultInjector, "
                f"got {type(faults).__name__}"
            )
        if self._faults is not None and self.arena is not None:
            self.arena.fault_injector = self._faults
        self.max_retries = max_retries
        self.retry_backoff_steps = retry_backoff_steps
        self.retry_backoff_cap = retry_backoff_cap
        self.watchdog = watchdog
        self.last_step_stats: Optional[Dict[str, int]] = None
        self.current_step = 0
        # arrivals still in the future: min-heap keyed by (arrival_step,
        # submission index) so each step drains exactly the arrived prefix
        # (retry backoff reuses it: a retried handle "re-arrives" later)
        self._pending: List[Tuple[int, int, RequestHandle]] = []
        # arrived but unadmitted: min-heap keyed by the admission policy's
        # key (submission index breaks exact ties deterministically)
        self._ready: List[Tuple[Tuple, int, RequestHandle]] = []
        # timeout reaper: min-heap keyed by (timeout_step, index); handles
        # are reaped at the start of the first step PAST their timeout_step
        self._timeouts: List[Tuple[int, int, RequestHandle]] = []
        self._request_ids: set = set()
        self._submitted = 0
        self._queued_count = 0  # live (non-terminal) handles across the heaps
        self._active: List[RequestHandle] = []
        self._finished: List[RequestHandle] = []
        self._cancelled: List[RequestHandle] = []
        self._withdrawn = 0
        self._failed: List[RequestHandle] = []
        self._timed_out: List[RequestHandle] = []
        self._shed: List[RequestHandle] = []
        # every non-cancelled terminal handle in resolution order -- the
        # report's per-request metrics walk this one list
        self._terminal: List[RequestHandle] = []
        self._max_concurrency = 0
        self._callback_errors = 0
        self._callback_warned = False
        self._closed = False

    # -- submission ------------------------------------------------------------

    def submit(
        self,
        request: Request,
        on_token: Optional[TokenCallback] = None,
        on_complete: Optional[CompleteCallback] = None,
    ) -> RequestHandle:
        """Queue one request; returns its :class:`RequestHandle`.

        Raises ``ValueError`` for duplicate request ids and for requests the
        admission policy rejects outright (``check_submit``), e.g. one whose
        KV lifetime could never fit the arena's ``max_pages`` budget, and
        ``RuntimeError`` once the engine is closed (:meth:`drain` /
        :meth:`shutdown` was called).
        """
        if self._closed:
            raise RuntimeError(
                f"engine is closed (drain/shutdown); cannot submit "
                f"{request.request_id!r}"
            )
        # step() keys its emitted-token dict by request_id, so ids must be
        # unique or one session's tokens would silently shadow another's
        if request.request_id in self._request_ids:
            raise ValueError(f"duplicate request_id {request.request_id!r}")
        self.admission.check_submit(request, self)
        self._request_ids.add(request.request_id)
        session = GenerationSession(
            request,
            self.model,
            predictor=self.predictor,
            arena=self.arena,
            prefix_cache=self.prefix_cache,
        )
        session.fault_injector = self._faults
        handle = RequestHandle(
            session, self._submitted, on_token=on_token, on_complete=on_complete
        )
        heapq.heappush(
            self._pending, (request.arrival_step, handle.index, handle)
        )
        if request.timeout_step is not None:
            heapq.heappush(
                self._timeouts, (request.timeout_step, handle.index, handle)
            )
        self._submitted += 1
        self._queued_count += 1
        return handle

    def submit_many(self, requests: Iterable[Request]) -> List[RequestHandle]:
        return [self.submit(r) for r in requests]

    def cancel(self, handle: RequestHandle) -> bool:
        """Abort a request; frees its KV immediately.  False once terminal.

        Queued and preempted requests are dropped lazily from their heaps;
        an active request leaves the batch before the next step.  Cancelled
        requests are excluded from :meth:`report`'s per-request metrics but
        counted in its policy block.
        """
        if handle.cancelled or handle.session.is_terminal:
            return False
        if handle in self._active:
            self._active.remove(handle)
        else:
            # queued or preempted: it sits in one of the heaps (dropped
            # lazily on pop), so it leaves the live-queue count now
            self._queued_count -= 1
        handle.session.cancel(self.current_step)
        handle.cancelled = True
        # cancellation is caller-initiated: no on_complete fires for it, and
        # the latch guarantees none ever will (exactly-once, including zero)
        handle._complete_fired = True
        self._cancelled.append(handle)
        self._spec_state.pop(handle.request_id, None)
        # whether it was active (holding a reservation) or still queued,
        # the admission policy must drop any page reservation right now --
        # a cancelled request can never consume the pages it was charged for
        self.admission.on_release(handle, self)
        return True

    def withdraw(self, handle: RequestHandle) -> bool:
        """Pull a never-admitted request back out of the queues.

        Unlike :meth:`cancel` this is *not* a terminal resolution: the
        request is simply no longer this engine's problem -- its session
        stays untouched, no callback ever fires for the handle, it appears
        in neither the per-request metrics nor the ``cancelled`` count, and
        its id is free to be resubmitted (here or on another engine).  This
        is the primitive cluster failover uses to re-route the queued
        backlog of a replica that was marked down.

        Only requests that were never admitted qualify -- ``QUEUED`` state,
        no slot, no KV, no generated tokens -- so withdrawal cannot lose
        work.  Returns ``False`` for anything else (active, preempted,
        cancelled or terminal handles).
        """
        if handle.cancelled or handle.session.is_terminal:
            return False
        if handle.session.state is not SessionState.QUEUED:
            return False
        # the heap entries drop lazily on pop, exactly like a cancel --
        # the cancelled flag is handle-level and never touched the session
        handle.cancelled = True
        handle._complete_fired = True
        self._queued_count -= 1
        self._withdrawn += 1
        self._request_ids.discard(handle.request_id)
        self.admission.on_release(handle, self)
        return True

    def release_inflight(self) -> int:
        """Preempt every admitted session, releasing its arena pages.

        ``run(max_steps)`` that truncates leaves the in-flight batch holding
        KV pages, and before this method the only public reclaim was
        :meth:`shutdown` -- which terminally sheds the work.  Each in-flight
        session (decoding *or* mid-prefill) is instead preempted exactly as
        a policy eviction would: with ``kv_snapshots`` its pages are copied
        off-arena and the resume replays no prefill, otherwise the pages are
        freed and the session re-prefills.  Either way it re-enters the
        ready queue, so a follow-up :meth:`run` resumes and finishes with
        bit-identical tokens -- the pages are merely returned to the pool in
        the meantime (an engine without a prefix cache drains to zero pages
        in use).  Returns the number of sessions released.
        """
        step = self.current_step
        released = list(self._active)
        self._active.clear()
        for handle in released:
            handle.session.preempt(step, snapshot=self.kv_snapshots)
            self._push_ready(handle)
            self._queued_count += 1
            self.admission.on_release(handle, self)
        return len(released)

    @property
    def n_queued(self) -> int:
        return self._queued_count

    @property
    def n_active(self) -> int:
        return len(self._active)

    @property
    def active_handles(self) -> Tuple[RequestHandle, ...]:
        """The handles currently holding batch slots (policies read this)."""
        return tuple(self._active)

    @property
    def n_finished(self) -> int:
        return len(self._finished)

    @property
    def n_cancelled(self) -> int:
        return len(self._cancelled)

    @property
    def n_failed(self) -> int:
        return len(self._failed)

    @property
    def n_timed_out(self) -> int:
        return len(self._timed_out)

    @property
    def n_shed(self) -> int:
        return len(self._shed)

    @property
    def n_withdrawn(self) -> int:
        """Requests pulled back out via :meth:`withdraw` (cluster re-routes)."""
        return self._withdrawn

    @property
    def queued_handles(self) -> Tuple[RequestHandle, ...]:
        """Live handles waiting in the queues (no slot held), by submit order.

        Covers both not-yet-arrived and arrived-but-unadmitted requests as
        well as preempted/backoff re-entries; the cluster failover path
        filters this for ``QUEUED`` sessions it may :meth:`withdraw`.
        """
        seen: set = set()
        out: List[RequestHandle] = []
        for heap in (self._ready, self._pending):
            for entry in heap:
                handle = entry[2]
                if self._live(handle) and id(handle) not in seen:
                    seen.add(id(handle))
                    out.append(handle)
        return tuple(sorted(out, key=lambda h: h.index))

    @property
    def fault_injector(self) -> Optional[FaultInjector]:
        """The armed injector (``None`` on a fault-free engine)."""
        return self._faults

    @property
    def has_work(self) -> bool:
        return bool(self._active) or self.n_queued > 0

    # -- stepping --------------------------------------------------------------

    def _push_ready(self, handle: RequestHandle) -> None:
        key = self.admission.admission_key_at(handle, self.current_step)
        heapq.heappush(self._ready, (key, handle.index, handle))

    # -- failure model ---------------------------------------------------------

    @staticmethod
    def _live(handle: RequestHandle) -> bool:
        """Whether a heap entry still represents schedulable work."""
        return not (handle.cancelled or handle.session.is_terminal)

    def _resolve(
        self,
        handle: RequestHandle,
        state: SessionState,
        step: int,
        failure: Optional[FailureInfo] = None,
    ) -> None:
        """Terminally resolve a live request as FAILED / TIMED_OUT / SHED.

        Handles every location the request may occupy -- a batch slot, the
        ready queue, or the pending/backoff heap -- releasing its KV pages
        and admission reservation, recording it in the outcome buckets, and
        firing its ``on_complete`` exactly once.  Heap entries are dropped
        lazily (the heaps skip terminal handles on pop).
        """
        session = handle.session
        if handle.cancelled or session.is_terminal:
            return
        if handle in self._active:
            self._active.remove(handle)
        else:
            self._queued_count -= 1
        if failure is not None:
            session.failure = failure.to_json()
        session.finalize(state, step)
        bucket = {
            SessionState.FAILED: self._failed,
            SessionState.TIMED_OUT: self._timed_out,
            SessionState.SHED: self._shed,
        }[state]
        bucket.append(handle)
        self._terminal.append(handle)
        self.admission.on_release(handle, self)
        self._spec_state.pop(handle.request_id, None)
        self._fire_complete(handle, step)

    def _quarantine(self, handle: RequestHandle, exc: Exception, step: int) -> None:
        """Route one quarantined fault: retry with backoff, or FAILED.

        The faulted session's KV is untrusted, so a retry releases it
        wholesale and requeues the request through the pending heap with
        capped exponential backoff; the eventual resume re-prefills
        ``prompt + generated`` bit-identically.  A request out of retries
        resolves ``FAILED`` with a structured post-mortem.

        With ``kv_snapshots`` on, faults from the schedule-time allocation
        probe (``arena.alloc``) are the exception: they fire *before* the
        fused forward touches any KV row, so the victim's pages are still
        trusted and are snapshotted for a re-prefill-free resume.  Every
        other site (``session.compute`` fires after the forward already
        appended the step's KV rows; ``session.append`` is corruption
        itself) keeps the discard-and-re-prefill path.
        """
        trusted = (
            self.kv_snapshots and getattr(exc, "site", None) == "arena.alloc"
        )
        session = handle.session
        if self.watchdog is not None:
            self.watchdog.record_failure(step)
        if session.retries >= self.max_retries:
            failure = FailureInfo(
                site=getattr(exc, "site", "unknown"),
                step=step,
                retries=session.retries,
                message=str(exc),
            )
            self._resolve(handle, SessionState.FAILED, step, failure=failure)
            return
        if handle in self._active:
            self._active.remove(handle)
        else:
            # quarantined before taking a slot (schedule-time arena fault on
            # a not-yet-admitted handle): it leaves the queue count now and
            # re-enters it below with its backoff arrival
            self._queued_count -= 1
        session.retry(step, snapshot=trusted)
        self.admission.on_release(handle, self)
        delay = min(
            self.retry_backoff_cap,
            self.retry_backoff_steps * (2 ** (session.retries - 1)),
        )
        heapq.heappush(self._pending, (step + delay, handle.index, handle))
        self._queued_count += 1

    def _check_arena_faults(
        self, handles: List[RequestHandle], step: int
    ) -> List[RequestHandle]:
        """Schedule-time arena-allocation probe; returns the survivors.

        Mirrors real engines, which test allocatability when *scheduling* a
        sequence, not mid-kernel: every session about to append KV rows this
        step is probed before the fused forward, and a faulted one is
        quarantined (retry/FAILED) without ever entering the batch.
        """
        survivors: List[RequestHandle] = []
        for handle in handles:
            try:
                self.arena.check_alloc(handle.request_id, step)
            except _FAULT_TYPES as exc:
                self._quarantine(handle, exc, step)
                continue
            survivors.append(handle)
        return survivors

    def _route_commit_faults(
        self, handles: List[RequestHandle], step: int
    ) -> None:
        """Collect faults the batch commit loops quarantined per-session."""
        for handle in handles:
            session = handle.session
            if session.last_fault is not None:
                exc = session.last_fault
                session.last_fault = None
                self._quarantine(handle, exc, step)

    def _reap_timeouts(self, step: int) -> None:
        """Resolve every request still live past its ``timeout_step``."""
        while self._timeouts and self._timeouts[0][0] < step:
            _, _, handle = heapq.heappop(self._timeouts)
            if self._live(handle):
                self._resolve(handle, SessionState.TIMED_OUT, step)

    def _shed_queued(self, n: int, step: int) -> None:
        """Shed ``n`` queued requests: lowest priority first, youngest first.

        Within a priority class the *youngest* submission goes first, so the
        longest-waiting work of every class survives the purge.
        """
        candidates = [h for _, _, h in self._ready if self._live(h)]
        candidates.sort(key=lambda h: (h.request.priority, -h.index))
        for handle in candidates[:n]:
            self._resolve(handle, SessionState.SHED, step)

    def _contain_callback(self, handle: RequestHandle, which: str) -> None:
        """A user callback raised mid-dispatch: warn once, detach, move on.

        The engine's step must stay atomic no matter what user code does, so
        the offending callback is detached (it will never fire again for
        this handle) and the first containment emits one ``RuntimeWarning``
        per engine; ``callback_errors`` in the report counts them all.
        """
        self._callback_errors += 1
        setattr(handle, which, None)
        if not self._callback_warned:
            self._callback_warned = True
            warnings.warn(
                f"user {which} callback for request {handle.request_id!r} "
                f"raised; detached it and continuing (this warning fires "
                f"once per engine -- see report policy['callback_errors'] "
                f"for the total)",
                RuntimeWarning,
                stacklevel=3,
            )

    def _dispatch_token(self, handle: RequestHandle, token: int, step: int) -> None:
        cb = handle.on_token
        if cb is None:
            return
        try:
            if self._faults is not None and self._faults.fires(
                "callback.on_token", handle.request_id, step
            ):
                raise InjectedCallbackError(
                    f"injected on_token failure for {handle.request_id!r}"
                )
            cb(handle, token, step)
        except Exception:
            self._contain_callback(handle, "on_token")

    def _fire_complete(self, handle: RequestHandle, step: int) -> None:
        """Dispatch ``on_complete`` exactly once per handle, contained."""
        if handle._complete_fired:
            return
        handle._complete_fired = True
        cb = handle.on_complete
        if cb is None:
            return
        try:
            if self._faults is not None and self._faults.fires(
                "callback.on_complete", handle.request_id, step
            ):
                raise InjectedCallbackError(
                    f"injected on_complete failure for {handle.request_id!r}"
                )
            cb(handle, handle.session.to_metrics())
        except Exception:
            self._contain_callback(handle, "on_complete")

    def _build_drafts(self, decoding: List[RequestHandle]) -> List[List[int]]:
        """One draft proposal list per decoding handle (throttled, clamped).

        Each session's adaptive :class:`_SessionThrottle` sets this step's
        draft budget (created on first decode step, ticked every step so
        cooldowns expire deterministically), clamped so drafts never extend
        past the request's remaining decode budget -- the committed row
        already emits one token, so at most ``remaining - 1`` drafts could
        ever be accepted.  ``last_spec_outcome`` is cleared here so the
        post-step observe loop only folds in *this* step's accept outcome
        (a quarantined commit leaves it ``None`` and the window untouched).
        """
        drafts: List[List[int]] = []
        for handle in decoding:
            session = handle.session
            throttle = self._spec_state.get(handle.request_id)
            if throttle is None:
                throttle = _SessionThrottle(self._speculative)
                self._spec_state[handle.request_id] = throttle
            room = (
                session.request.max_new_tokens
                - len(session.generated_tokens)
                - 1
            )
            k = min(throttle.next_k(), max(0, room))
            if k <= 0:
                proposal: List[int] = []
            else:
                history = (
                    [int(t) for t in session.request.prompt_tokens]
                    + session.generated_tokens
                )
                proposal = [int(t) for t in self._drafter.propose(history, k)][:k]
            session.last_spec_outcome = None
            drafts.append(proposal)
        return drafts

    def step(self) -> Dict[str, int]:
        """Advance one engine step; returns the tokens emitted per request.

        With speculation off every value is the single ``int`` token the
        request emitted this step; with ``speculative`` on, a decoding
        session's value is the *list* of tokens its verified chunk committed
        (prefilling sessions still emit a single ``int`` first token).
        """
        emitted: Dict[str, object] = {}
        step = self.current_step

        # timeout reaper first: a request past its hard bound must not take
        # (or keep) a batch slot this step
        if self._timeouts:
            self._reap_timeouts(step)

        # dynamic admission policies (aging) re-key the whole ready queue
        # each step -- their ordering depends on how long requests waited
        if self.admission.dynamic and self._ready:
            self._ready = [
                (self.admission.admission_key_at(handle, step), index, handle)
                for _, index, handle in self._ready
                if self._live(handle)
            ]
            heapq.heapify(self._ready)

        # arrivals: everything due this step joins the ready queue in the
        # admission policy's order (terminal handles are dropped lazily)
        while self._pending and self._pending[0][0] <= step:
            _, _, handle = heapq.heappop(self._pending)
            if not self._live(handle):
                continue
            self._push_ready(handle)

        # overload watchdog: with arrivals counted, advance the hysteresis
        # state machine and shed the lowest-priority queued excess
        if self.watchdog is not None:
            self.watchdog.update(self.n_queued, step)
            excess = self.watchdog.shed_excess(self.n_queued)
            if excess > 0:
                self._shed_queued(excess, step)

        # preemption (tentative): the scheduling policy may evict active
        # sessions for strictly more urgent ready requests.  Victims leave
        # the batch *before* admission runs so the gate sees their slots and
        # arena reservations as free, but they are only preempted for real
        # (KV released, re-queued) once an admission actually consumes the
        # evicted capacity -- a refused candidate must never cost a victim
        # its prefill/decode progress
        pre_active = list(self._active)
        victims: List[RequestHandle] = []
        if self.scheduling.preemptive and self._ready:
            ready_handles = [h for *_, h in self._ready if self._live(h)]
            victims = self.scheduling.select_preemptions(
                ready_handles, pre_active, self.max_active - len(pre_active), step
            )
            for victim in victims:
                self._active.remove(victim)

        # admission into free slots, best admission key first; head-of-line:
        # a refused head (e.g. arena budget) stops admission for this step
        free = self.max_active - len(self._active)
        admitted: List[RequestHandle] = []
        while free > 0 and self._ready:
            _, _, handle = self._ready[0]
            if not self._live(handle):
                heapq.heappop(self._ready)  # counted out when it went terminal
                continue
            if not self.admission.may_admit(handle, self):
                break
            heapq.heappop(self._ready)
            self._active.append(handle)
            admitted.append(handle)
            self._queued_count -= 1
            free -= 1
            # pin the reservation now so later candidates in this same loop
            # are gated against it (admissions are never rolled back)
            self.admission.on_admit(handle, self)

        # commit or roll back the evictions: only as many victims stay
        # preempted as the admissions actually needed beyond the slots that
        # were already free; the rest rejoin the batch untouched
        if victims:
            used = max(0, len(admitted) - (self.max_active - len(pre_active)))
            restored, victims = victims[used:], victims[:used]
            if restored:
                victim_ids = set(map(id, victims))
                self._active = [
                    h for h in pre_active if id(h) not in victim_ids
                ] + admitted
            for victim in victims:
                # a policy eviction leaves trusted KV behind: with snapshots
                # on, the pages are copied off-arena instead of discarded and
                # the eventual resume skips re-prefill entirely
                victim.session.preempt(step, snapshot=self.kv_snapshots)
                self._push_ready(victim)
                self._queued_count += 1
                # realized eviction: its KV is gone, so its reservation is
                # too (restored victims above keep theirs untouched)
                self.admission.on_release(victim, self)

        # the sessions that kept their slots decode this step; prefilling
        # survivors rejoin the chunk budget below (continuous batching: old
        # and new requests share the same fused pass)
        evicted_ids = set(map(id, victims))
        survivors = [h for h in pre_active if id(h) not in evicted_ids]
        decoding = [
            h for h in survivors if h.session.state is SessionState.ACTIVE
        ]

        self._max_concurrency = max(self._max_concurrency, len(self._active))

        prefill_rows = 0
        if self.batched_prefill:
            # admissions enter the chunked pipeline; older PREFILLING
            # sessions come first so the queue head always finishes first
            for handle in admitted:
                session = handle.session
                if session.state is SessionState.PREEMPTED:
                    if session.has_snapshot:
                        # page restore, zero re-prefill passes: an ACTIVE
                        # session rejoins the decode batch this very step, a
                        # mid-prefill one rejoins the chunk scan below with
                        # its progress intact
                        if session.resume_from_snapshot(step) is (
                            SessionState.ACTIVE
                        ):
                            decoding.append(handle)
                    else:
                        session.begin_resume(step)
                else:
                    session.begin_admit(step)
            prefilling = [
                h for h in self._active
                if h.session.state is SessionState.PREFILLING
            ]
            # schedule-time arena probe: every session about to append KV
            # rows this step (prefill chunks and decode rows alike) is
            # tested before the fused forward; faulted ones never enter it
            if self._faults is not None and self.arena is not None:
                prefilling = self._check_arena_faults(prefilling, step)
                decoding = self._check_arena_faults(decoding, step)
            # spend the step's prefill-row budget in admission order: the
            # head always progresses (its chunk is clamped to >= 1 row even
            # under a zero-returning policy override, so the engine cannot
            # livelock), long prompts split across steps, later sessions may
            # wait a step entirely
            budget = self.admission.prefill_token_budget(self)
            if self.watchdog is not None:
                budget = self.watchdog.throttle(budget)
            chunked: List[RequestHandle] = []
            chunk_sizes: List[int] = []
            for handle in prefilling:
                remaining = handle.session.decoder.prefill_remaining
                if budget is None:
                    take = remaining
                else:
                    cap = budget if chunked else max(budget, 1)
                    take = min(remaining, cap)
                if take <= 0:
                    continue
                chunked.append(handle)
                chunk_sizes.append(take)
                if budget is not None:
                    budget -= take
            prefill_rows = sum(chunk_sizes)
            draft_lists: Optional[List[List[int]]] = None
            if self._speculative is not None and decoding:
                draft_lists = self._build_drafts(decoding)
                if not any(draft_lists):
                    # nothing proposed anywhere: plain one-token decode --
                    # identical rows, no verify overhead, and pure-decode
                    # steps keep the dedicated gather fast path below
                    draft_lists = None
            if chunked or draft_lists is not None:
                emitted.update(
                    GenerationSession.prefill_step_batch(
                        [h.session for h in chunked],
                        chunk_sizes,
                        [h.session for h in decoding],
                        step,
                        draft_tokens=draft_lists,
                    )
                )
            elif decoding:
                # no prefill rows this step: keep the dedicated decode path
                # (and its incrementally maintained arena gather view)
                emitted.update(
                    GenerationSession.decode_step_batch(
                        [h.session for h in decoding], step
                    )
                )
            # fold this step's accept outcomes into the per-session
            # throttles (quarantined commits left no outcome: a faulted
            # step must not skew the acceptance window)
            spec_proposed = spec_accepted = 0
            if self._speculative is not None:
                for handle in decoding:
                    outcome = handle.session.last_spec_outcome
                    if outcome is None:
                        continue
                    handle.session.last_spec_outcome = None
                    proposed, accepted = outcome
                    spec_proposed += proposed
                    spec_accepted += accepted
                    throttle = self._spec_state.get(handle.request_id)
                    if throttle is not None:
                        throttle.observe(proposed, accepted)
            recipients = chunked + decoding
        else:
            if self._faults is not None and self.arena is not None:
                admitted = self._check_arena_faults(admitted, step)
                decoding = self._check_arena_faults(decoding, step)
            for handle in admitted:
                session = handle.session
                try:
                    if session.state is SessionState.PREEMPTED:
                        if session.has_snapshot:
                            # restore emits no token (pure page traffic);
                            # the decode pass below produces this step's
                            # token, matching the step-domain schedule of
                            # the serial resume() it replaces
                            session.resume_from_snapshot(step)
                            decoding.append(handle)
                            continue
                        token = session.resume(step)
                    else:
                        token = session.admit(step)
                except _FAULT_TYPES as exc:
                    self._quarantine(handle, exc, step)
                    continue
                emitted[handle.request_id] = token
            if decoding:
                if self.fused:
                    emitted.update(
                        GenerationSession.decode_step_batch(
                            [h.session for h in decoding], step
                        )
                    )
                else:
                    for handle in decoding:
                        try:
                            emitted[handle.request_id] = handle.session.decode_step(
                                step
                            )
                        except _FAULT_TYPES as exc:
                            self._quarantine(handle, exc, step)
            admitted_ids = set(map(id, admitted))
            recipients = admitted + [
                h for h in decoding if id(h) not in admitted_ids
            ]

        # commit-time faults the batch loops quarantined per-session: route
        # each to retry-with-backoff or FAILED before callbacks/retirement,
        # so the surviving rows' commits stand and the step stays atomic
        if self._faults is not None:
            self._route_commit_faults(recipients, step)

        for handle in recipients:
            value = emitted.get(handle.request_id)
            if value is None:
                continue
            # speculative decode commits a list per chunk; on_token still
            # fires once per token, in commit order, same step timestamp
            for token in value if isinstance(value, list) else (value,):
                self._dispatch_token(handle, token, step)

        retired = 0
        for handle in list(self._active):
            if handle.session.is_finished:
                self._active.remove(handle)
                handle.session.release_kv()  # pages return to the pool now
                self._finished.append(handle)
                self._terminal.append(handle)
                self.admission.on_release(handle, self)
                self._spec_state.pop(handle.request_id, None)
                retired += 1
                self._fire_complete(handle, step)

        stats: Dict[str, int] = {
            "step": step,
            "emitted": sum(
                len(v) if isinstance(v, list) else 1 for v in emitted.values()
            ),
            "admitted": len(admitted),
            "preempted": len(victims),
            "decoded": len(decoding),
            "prefill_rows": prefill_rows,
            "retired": retired,
            "active": len(self._active),
            "queued": self.n_queued,
        }
        if self._speculative is not None:
            stats["draft_proposed"] = spec_proposed
            stats["draft_accepted"] = spec_accepted
        if self.arena is not None:
            a = self.arena.stats
            stats["arena_pages_in_use"] = a.pages_in_use
            stats["arena_page_faults"] = a.page_faults
            stats["arena_gather_bytes_copied"] = a.gather_bytes_copied
        self.last_step_stats = stats

        self.current_step += 1
        return emitted

    def run(self, max_steps: int = 100_000) -> ServingReport:
        """Step until every submitted request resolves (or ``max_steps``).

        Hitting ``max_steps`` with work still queued/active no longer
        raises: the returned report carries ``truncated=True`` plus the
        leftover queue/batch counts, so partial results stay inspectable
        (and a caller that wants the old behaviour can assert on it).
        """
        while self.has_work and self.current_step < max_steps:
            self.step()
        return self.report()

    def drain(self, max_steps: int = 100_000) -> ServingReport:
        """Graceful stop: refuse new work, run the backlog dry, report.

        Every already-submitted request is served to its natural terminal
        state (further :meth:`submit` calls raise), so the arena's books
        balance in the final report -- zero pages in use, every fault freed.
        """
        self._closed = True
        return self.run(max_steps)

    def shutdown(self) -> ServingReport:
        """Immediate stop: resolve all outstanding work as ``SHED``, report.

        No further forward passes run; queued and active requests alike are
        terminally resolved (with their KV released and ``on_complete``
        fired) at the current step, so the engine still exits with balanced
        arena books -- just without serving the backlog.
        """
        self._closed = True
        step = self.current_step
        for handle in list(self._active):
            self._resolve(handle, SessionState.SHED, step)
        for heap in (self._pending, self._ready):
            for entry in heap:
                handle = entry[2]
                if self._live(handle):
                    self._resolve(handle, SessionState.SHED, step)
        self._pending.clear()
        self._ready.clear()
        self._timeouts.clear()
        return self.report()

    def report(self) -> ServingReport:
        """Snapshot of the terminally-resolved requests so far.

        Queued, still-active and cancelled sessions are excluded from the
        per-request metrics, so a mid-run call (while :attr:`has_work` is
        true) understates total tokens, throughput and the latency
        aggregates -- and is marked ``truncated`` with the leftover counts;
        :meth:`run` reports after draining (or marks the truncation).
        """
        metrics = [h.session.to_metrics() for h in self._terminal]
        policy = {
            "admission": self.admission.name,
            "scheduling": self.scheduling.name,
            "preemptions": sum(m.preemptions for m in metrics),
            "deadline_misses": sum(m.deadline_misses for m in metrics),
            "cancelled": len(self._cancelled),
            "failed": len(self._failed),
            "timed_out": len(self._timed_out),
            "shed": len(self._shed),
            "retries": sum(m.retries for m in metrics),
            "callback_errors": self._callback_errors,
        }
        if self._speculative is not None:
            # keys appear only when speculation is on, so a spec-off
            # engine's policy block stays byte-identical to older readers
            # (and the pinned golden); from_json tolerates both shapes
            draft_proposed = sum(m.draft_proposed for m in metrics)
            draft_accepted = sum(m.draft_accepted for m in metrics)
            spec_steps = sum(m.spec_steps for m in metrics)
            policy["draft_proposed"] = draft_proposed
            policy["draft_accepted"] = draft_accepted
            policy["mean_accepted_len"] = (
                draft_accepted / spec_steps if spec_steps else 0.0
            )
        return ServingReport(
            steps=self.current_step,
            max_concurrency=self._max_concurrency,
            requests=metrics,
            arena=self.arena.stats.to_json() if self.arena is not None else None,
            policy=policy,
            truncated=self.has_work,
            leftover_queued=self.n_queued,
            leftover_active=self.n_active,
        )


# the shim's DeprecationWarning fires once per process, not once per
# instantiation -- fuzz/golden suites build hundreds of shims and a warning
# per construction drowns real diagnostics (tests reset this to re-observe)
_shim_deprecation_warned = False


class ContinuousBatchingScheduler(ServingEngine):
    """Deprecated pre-policy front end; use :class:`ServingEngine`.

    A :class:`ServingEngine` pinned to its defaults (FIFO admission, FCFS
    scheduling, no preemption), which reproduces the original scheduler
    bit-exactly -- tokens, :class:`RequestMetrics` and arena counters -- as
    the golden and fuzz suites pin.  The only API difference is that
    :meth:`submit` returns the raw :class:`GenerationSession` (the old
    contract) instead of a :class:`RequestHandle`.  The deprecation warning
    is emitted exactly once per process.
    """

    def __init__(
        self,
        model,
        max_active: int = 8,
        predictor: Optional[KeyPredictor] = None,
        fused: bool = True,
        arena=None,
        page_size: int = 32,
    ) -> None:
        global _shim_deprecation_warned
        if not _shim_deprecation_warned:
            _shim_deprecation_warned = True
            warnings.warn(
                "ContinuousBatchingScheduler is deprecated; use ServingEngine "
                "(policies: FIFOAdmission + FCFSPolicy reproduce it exactly)",
                DeprecationWarning,
                stacklevel=2,
            )
        super().__init__(
            model,
            max_active=max_active,
            predictor=predictor,
            fused=fused,
            arena=arena,
            page_size=page_size,
        )

    def submit(self, request: Request) -> GenerationSession:  # type: ignore[override]
        return super().submit(request).session

    def submit_many(self, requests: Iterable[Request]) -> List[GenerationSession]:  # type: ignore[override]
        return [self.submit(r) for r in requests]
