"""Policy-driven serving engine: batched execution core + request lifecycle.

:class:`ServingEngine` owns the request lifecycle -- ``submit() ->``
:class:`RequestHandle` (with per-request streaming/completion callbacks),
``cancel()``, ``step()``/``run()`` -- and the batched execution core, while
delegating every *decision* to two pluggable interfaces from
:mod:`repro.serve.policies`: an
:class:`~repro.serve.policies.AdmissionPolicy` (which arrived request takes a
free slot, and whether the KV arena can afford it) and a
:class:`~repro.serve.policies.SchedulingPolicy` (which active sessions to
preempt for more urgent work).

Each engine step:

1. moves arrived requests into the ready queue (ordered by the admission
   policy's key; *dynamic* policies such as
   :class:`~repro.serve.policies.AgingPriorityAdmission` are re-keyed every
   step);
2. asks the scheduling policy for **preemptions**: each victim -- decoding
   *or* mid-prefill -- releases its arena pages immediately and re-enters
   the ready queue with only its generated-token snapshot (resume
   re-prefills through the same chunked pipeline, bit-identical to an
   unpreempted run);
3. admits ready requests into free slots, earliest admission-key first,
   gated per-handle by the admission policy -- an admission enters the
   **chunked prefill pipeline** (state ``PREFILLING``) rather than running
   its whole prompt serially;
4. builds one **mixed batch**: every decoding session's current token plus
   up to ``prefill_token_budget`` prompt rows from the prefilling sessions
   (head of the admission order first, long prompts split across steps), and
   runs it as a **single fused forward** through
   :meth:`~repro.model.transformer.QuantizedTransformer.prefill_batch` --
   one GEMM per weight matrix for the whole step, one ragged chunked
   attention per layer.  Sessions whose last chunk landed emit their first
   token; pure-decode steps keep the dedicated ``forward_batch`` path, and
   models without batched prefill fall back to one-shot serial prefill at
   admission with identical tokens;
5. retires finished sessions, freeing their slots -- and their KV arena
   pages -- for the next step.

Because every session shares one model -- and, when the model is bound to an
:class:`repro.core.engine.MCBPEngine`, one decoded-plane cache -- each
layer's BSTC decode *and* its GEMM launch are paid once per step instead of
once per session.  Session KV lives in a shared
:class:`~repro.serve.kv_arena.PagedKVArena` by default, so each decode
step's batched attention reads the paged pool through an incrementally
maintained view (O(B) copy bytes per step) instead of re-stacking every
session's full context.

The result of a run is a :class:`ServingReport` with per-request queueing
delay, time-to-first-token, end-to-end latency, preemption and deadline-miss
counts, plus aggregate throughput and a per-policy metrics block;
:meth:`ServingReport.to_json` / :meth:`ServingReport.from_json` round-trip
the report through the JSON format shared with the serving benchmarks.

:class:`ContinuousBatchingScheduler` remains as a deprecated shim: it is a
``ServingEngine`` pinned to FIFO admission + FCFS scheduling (bit-identical
to the pre-policy scheduler) whose ``submit`` returns the raw
:class:`~repro.serve.session.GenerationSession` for source compatibility.
"""

from __future__ import annotations

import heapq
import warnings
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..model.generation import KeyPredictor
from .kv_arena import PagedKVArena
from .policies import (
    AdmissionPolicy,
    FCFSPolicy,
    FIFOAdmission,
    SchedulingPolicy,
)
from .session import GenerationSession, Request, RequestMetrics, SessionState

__all__ = [
    "RequestMetrics",
    "RequestHandle",
    "ServingReport",
    "ServingEngine",
    "ContinuousBatchingScheduler",
]

TokenCallback = Callable[["RequestHandle", int, int], None]
CompleteCallback = Callable[["RequestHandle", RequestMetrics], None]


@dataclass
class ServingReport:
    """Aggregate outcome of an engine run.

    ``arena`` carries the KV arena's occupancy / paging / copy-traffic
    counters (:meth:`repro.serve.kv_arena.ArenaStats.to_json`) when the run
    used one, ``None`` otherwise.  ``policy`` is the per-policy metrics
    block: which admission/scheduling policies ran plus their aggregate
    preemption / deadline-miss / cancellation counts.
    """

    steps: int
    requests: List[RequestMetrics] = field(default_factory=list)
    max_concurrency: int = 0
    arena: Optional[dict] = None
    policy: Optional[dict] = None

    @property
    def total_tokens(self) -> int:
        return sum(r.n_generated for r in self.requests)

    @property
    def throughput_tokens_per_step(self) -> float:
        return self.total_tokens / self.steps if self.steps else 0.0

    def latency_percentile(self, q: float, priority: Optional[int] = None) -> float:
        """Latency percentile over all requests, or one priority class."""
        pool = self.requests
        if priority is not None:
            pool = [r for r in pool if r.priority == priority]
        if not pool:
            return 0.0
        return float(np.percentile([r.latency_steps for r in pool], q))

    @property
    def mean_latency_steps(self) -> float:
        if not self.requests:
            return 0.0
        return float(np.mean([r.latency_steps for r in self.requests]))

    @property
    def mean_queue_delay_steps(self) -> float:
        if not self.requests:
            return 0.0
        return float(np.mean([r.queue_delay_steps for r in self.requests]))

    @property
    def total_preemptions(self) -> int:
        return sum(r.preemptions for r in self.requests)

    @property
    def total_deadline_misses(self) -> int:
        return sum(r.deadline_misses for r in self.requests)

    def to_json(self) -> dict:
        """JSON-serialisable dict: stored fields plus derived aggregates.

        The same schema is emitted by ``examples/serving_simulation.py
        --json`` and embedded in ``BENCH_serving.json`` by the serving
        benchmark, so every serving artefact shares one report format.
        Derived aggregates are included for human consumption;
        :meth:`from_json` ignores them and recomputes from the stored fields.
        """
        return {
            "steps": self.steps,
            "max_concurrency": self.max_concurrency,
            "total_tokens": self.total_tokens,
            "throughput_tokens_per_step": self.throughput_tokens_per_step,
            "mean_latency_steps": self.mean_latency_steps,
            "p95_latency_steps": self.latency_percentile(95),
            "mean_queue_delay_steps": self.mean_queue_delay_steps,
            "arena": self.arena,
            "policy": self.policy,
            "requests": [asdict(r) for r in self.requests],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "ServingReport":
        """Rebuild a report from :meth:`to_json` output.

        Unknown keys are ignored at both the top level and inside each
        request entry, and stored fields absent from the payload fall back
        to their defaults -- so reports written by newer code (additional
        per-policy metrics blocks, new per-request counters) and by older
        code (pre-arena, pre-policy payloads) both load cleanly.
        """
        stored = {f for f in RequestMetrics.__dataclass_fields__}
        requests = [
            RequestMetrics(**{k: v for k, v in entry.items() if k in stored})
            for entry in payload.get("requests", [])
        ]
        return cls(
            steps=int(payload.get("steps", 0)),
            max_concurrency=int(payload.get("max_concurrency", 0)),
            requests=requests,
            arena=payload.get("arena"),
            policy=payload.get("policy"),
        )

    def summary(self) -> str:
        """Human-readable per-request table plus aggregate lines."""
        lines = [
            f"{'request':>12} {'arrive':>7} {'admit':>6} {'first':>6} "
            f"{'finish':>7} {'tokens':>7} {'latency':>8} {'attn%':>6}"
        ]
        for r in sorted(self.requests, key=lambda r: r.arrival_step):
            lines.append(
                f"{r.request_id:>12} {r.arrival_step:>7} {r.admitted_step:>6} "
                f"{r.first_token_step:>6} {r.finished_step:>7} {r.n_generated:>7} "
                f"{r.latency_steps:>8} {100.0 * r.attention_density:>5.1f}%"
            )
        lines.append(
            f"steps={self.steps} tokens={self.total_tokens} "
            f"throughput={self.throughput_tokens_per_step:.2f} tok/step "
            f"mean_latency={self.mean_latency_steps:.1f} "
            f"p95_latency={self.latency_percentile(95):.1f} "
            f"peak_concurrency={self.max_concurrency}"
        )
        if self.policy is not None:
            # .get(): from_json accepts partial policy blocks from other
            # writers, so summary() must not hard-require every key
            p = self.policy
            lines.append(
                f"policy: admission={p.get('admission', '?')} "
                f"scheduling={p.get('scheduling', '?')} "
                f"preemptions={p.get('preemptions', 0)} "
                f"deadline_misses={p.get('deadline_misses', 0)} "
                f"cancelled={p.get('cancelled', 0)}"
            )
        if self.arena is not None:
            a = self.arena
            lines.append(
                f"arena: {a['page_size']}-token pages, "
                f"peak {a['peak_pages_in_use']}/{a['n_pages']} in use, "
                f"{a['page_faults']} faults, {a['pages_freed']} freed, "
                f"gather {a['gather_bytes_copied'] / 1024.0:.1f} KiB "
                f"({a['gather_incremental']} incremental / "
                f"{a['gather_rebuilds']} rebuilds)"
            )
        return "\n".join(lines)


class RequestHandle:
    """The caller's view of one submitted request.

    Returned by :meth:`ServingEngine.submit`; exposes the immutable request,
    live state and generated tokens, and carries the optional per-request
    callbacks (``on_token`` fires for every emitted token, ``on_complete``
    once with the final :class:`RequestMetrics`).  ``index`` is the
    submission sequence number policies use as a deterministic tie-breaker.
    """

    __slots__ = (
        "session",
        "index",
        "on_token",
        "on_complete",
        "cancelled",
        "reserved_pages",
    )

    def __init__(
        self,
        session: GenerationSession,
        index: int,
        on_token: Optional[TokenCallback] = None,
        on_complete: Optional[CompleteCallback] = None,
    ) -> None:
        self.session = session
        self.index = index
        self.on_token = on_token
        self.on_complete = on_complete
        self.cancelled = False
        # page reservation pinned by the admission policy while the handle
        # is active (None when unadmitted, released, or policy-unmanaged)
        self.reserved_pages: Optional[int] = None

    @property
    def request(self) -> Request:
        return self.session.request

    @property
    def request_id(self) -> str:
        return self.session.request.request_id

    @property
    def state(self) -> SessionState:
        return self.session.state

    @property
    def generated_tokens(self) -> List[int]:
        return self.session.generated_tokens

    @property
    def preemptions(self) -> int:
        return self.session.preemptions

    @property
    def done(self) -> bool:
        """Terminal: the request finished or was cancelled."""
        return self.session.is_finished or self.cancelled

    def metrics(self) -> RequestMetrics:
        """Final metrics of the finished request (raises until then)."""
        return self.session.to_metrics()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RequestHandle({self.request_id!r}, state={self.state.value}, "
            f"tokens={len(self.generated_tokens)})"
        )


class ServingEngine:
    """Multiplexes many generation sessions through one shared model.

    Parameters
    ----------
    model:
        Shared inference substrate (``forward``/``new_cache``), typically a
        :class:`~repro.model.transformer.TransformerModel` or
        :class:`~repro.model.transformer.QuantizedTransformer`.
    max_active:
        Maximum number of concurrently decoding sessions (batch slots).
    predictor:
        Optional BGPP/top-k key predictor shared by all sessions.
    fused:
        Step all decoding sessions through one batched forward pass per
        engine step (the default).  Models without ``forward_batch`` fall
        back to per-session stepping automatically; ``fused=False`` forces
        the per-session loop, which the benchmarks use as the baseline.
    arena:
        KV storage policy.  ``None`` (the default) auto-enables a shared
        :class:`~repro.serve.kv_arena.PagedKVArena` sized from
        ``model.config`` whenever the fused batched path can consume it
        (``fused=True`` and the model exposes ``forward_batch``) -- every
        session's KV then lives in one paged pool, finished sessions return
        their pages, and batched attention reads the pool zero-copy instead
        of re-stacking per-session caches each step.  Per-session stepping
        cannot read the pool in place (it would pay a full-context
        materialisation per step), so auto mode keeps standalone caches
        there.  ``True`` forces the arena (models without a ``config`` still
        fall back), ``False`` disables it, and passing a
        :class:`PagedKVArena` instance uses it directly (sharing one pool
        across several engines is allowed).
    page_size:
        Tokens per arena page when the engine builds the arena itself.
    max_pages:
        Hard page budget of the self-built arena (``None`` = unbounded,
        geometric growth).  Set it when pairing the engine with
        :class:`~repro.serve.policies.ArenaBudgetAdmission`, whose watermark
        gate is relative to this bound -- with an unbounded arena the gate
        has nothing to enforce and admits everything.  An explicit
        ``max_pages`` on an engine that resolves to *no* arena raises
        ``ValueError`` (the budget would be silently unenforced), as does
        combining it with an externally built ``PagedKVArena`` instance
        (whose own constructor owns the bound).
    prefix_cache:
        Share prompt KV across requests through the arena's content-keyed
        prefix index: completed prefills register their prompt pages, later
        sessions with a matching prompt head map those pages read-only and
        skip the matched rows' prefill compute (copy-on-write protects
        shared pages; see :class:`~repro.serve.kv_arena.PagedKVArena`).
        Tokens and per-request metrics are bit-identical to a cold run;
        requires an arena (``ValueError`` otherwise).
    admission:
        :class:`~repro.serve.policies.AdmissionPolicy` ordering and gating
        the ready queue; defaults to FIFO.
    scheduling:
        :class:`~repro.serve.policies.SchedulingPolicy` deciding preemption;
        defaults to FCFS (never preempts).
    prefill_token_budget:
        Maximum prompt rows the chunked prefill pipeline feeds into each
        step's fused pass, summed over every ``PREFILLING`` session (the
        TTFT-vs-decode-throughput knob; the admission policy can override it
        per step via
        :meth:`~repro.serve.policies.AdmissionPolicy.prefill_token_budget`).
        ``None`` (the default) completes every admitted prompt in its
        admission step, preserving the serial path's step-domain schedule
        exactly while still batching the work into one pass.
    batched_prefill:
        ``None`` (auto, the default) enables the chunked batched prefill
        pipeline whenever the fused path is on and the model exposes
        ``prefill_batch``; ``False`` forces one-shot serial prefill at
        admission (the benchmark baseline).  Tokens and step-domain metrics
        are bit-identical either way.
    """

    def __init__(
        self,
        model,
        max_active: int = 8,
        predictor: Optional[KeyPredictor] = None,
        fused: bool = True,
        arena=None,
        page_size: int = 32,
        max_pages: Optional[int] = None,
        admission: Optional[AdmissionPolicy] = None,
        scheduling: Optional[SchedulingPolicy] = None,
        prefill_token_budget: Optional[int] = None,
        batched_prefill: Optional[bool] = None,
        prefix_cache: bool = False,
    ) -> None:
        if max_active < 1:
            raise ValueError("max_active must be >= 1")
        if prefill_token_budget is not None and prefill_token_budget < 1:
            raise ValueError("prefill_token_budget must be >= 1 when given")
        self.model = model
        self.max_active = max_active
        self.predictor = predictor
        self.fused = fused
        self.prefill_token_budget = prefill_token_budget
        # like arena=True on a config-less model, an explicit True quietly
        # falls back when the chunked pipeline cannot run (per-session
        # stepping or no model support) -- tokens are identical either way
        supported = fused and hasattr(model, "prefill_batch")
        self.batched_prefill = supported and (
            batched_prefill is None or bool(batched_prefill)
        )
        self.admission = admission if admission is not None else FIFOAdmission()
        self.scheduling = scheduling if scheduling is not None else FCFSPolicy()
        config = getattr(model, "config", None)
        if arena is None:
            arena = bool(fused and hasattr(model, "forward_batch"))
        if arena is True:
            if config is None:
                arena = None  # model shape unknown: standalone caches
            else:
                arena = PagedKVArena(
                    n_layers=config.n_layers,
                    hidden_size=config.hidden_size,
                    page_size=page_size,
                    initial_pages=(
                        64 if max_pages is None else min(64, max_pages)
                    ),
                    max_pages=max_pages,
                )
        elif arena is False:
            arena = None
        elif isinstance(arena, PagedKVArena) and max_pages is not None:
            # the instance's own constructor set (or declined) the bound;
            # accepting a second one here would silently shadow it
            raise ValueError(
                "max_pages conflicts with an externally built arena: "
                "configure max_pages on the PagedKVArena instance instead"
            )
        if arena is None and max_pages is not None:
            raise ValueError(
                "max_pages was given but the engine resolved to no KV arena "
                "(arena=False, or the model lacks forward_batch/config "
                "support); the page budget would be silently unenforced -- "
                "drop max_pages or run an arena-capable model"
            )
        if prefix_cache and arena is None:
            raise ValueError(
                "prefix_cache=True requires a KV arena; the engine resolved "
                "to standalone caches (arena=False, or the model lacks "
                "forward_batch/config support)"
            )
        self.arena = arena
        self.prefix_cache = bool(prefix_cache)
        self.last_step_stats: Optional[Dict[str, int]] = None
        self.current_step = 0
        # arrivals still in the future: min-heap keyed by (arrival_step,
        # submission index) so each step drains exactly the arrived prefix
        self._pending: List[Tuple[int, int, RequestHandle]] = []
        # arrived but unadmitted: min-heap keyed by the admission policy's
        # key (submission index breaks exact ties deterministically)
        self._ready: List[Tuple[Tuple, int, RequestHandle]] = []
        self._request_ids: set = set()
        self._submitted = 0
        self._queued_count = 0  # non-cancelled handles across both heaps
        self._active: List[RequestHandle] = []
        self._finished: List[RequestHandle] = []
        self._cancelled: List[RequestHandle] = []
        self._max_concurrency = 0

    # -- submission ------------------------------------------------------------

    def submit(
        self,
        request: Request,
        on_token: Optional[TokenCallback] = None,
        on_complete: Optional[CompleteCallback] = None,
    ) -> RequestHandle:
        """Queue one request; returns its :class:`RequestHandle`.

        Raises ``ValueError`` for duplicate request ids and for requests the
        admission policy rejects outright (``check_submit``), e.g. one whose
        KV lifetime could never fit the arena's ``max_pages`` budget.
        """
        # step() keys its emitted-token dict by request_id, so ids must be
        # unique or one session's tokens would silently shadow another's
        if request.request_id in self._request_ids:
            raise ValueError(f"duplicate request_id {request.request_id!r}")
        self.admission.check_submit(request, self)
        self._request_ids.add(request.request_id)
        session = GenerationSession(
            request,
            self.model,
            predictor=self.predictor,
            arena=self.arena,
            prefix_cache=self.prefix_cache,
        )
        handle = RequestHandle(
            session, self._submitted, on_token=on_token, on_complete=on_complete
        )
        heapq.heappush(
            self._pending, (request.arrival_step, handle.index, handle)
        )
        self._submitted += 1
        self._queued_count += 1
        return handle

    def submit_many(self, requests: Iterable[Request]) -> List[RequestHandle]:
        return [self.submit(r) for r in requests]

    def cancel(self, handle: RequestHandle) -> bool:
        """Abort a request; frees its KV immediately.  False once terminal.

        Queued and preempted requests are dropped lazily from their heaps;
        an active request leaves the batch before the next step.  Cancelled
        requests are excluded from :meth:`report`'s per-request metrics but
        counted in its policy block.
        """
        if handle.cancelled or handle.session.is_finished:
            return False
        if handle in self._active:
            self._active.remove(handle)
        else:
            # queued or preempted: it sits in one of the heaps (dropped
            # lazily on pop), so it leaves the live-queue count now
            self._queued_count -= 1
        handle.session.cancel()
        handle.cancelled = True
        self._cancelled.append(handle)
        # whether it was active (holding a reservation) or still queued,
        # the admission policy must drop any page reservation right now --
        # a cancelled request can never consume the pages it was charged for
        self.admission.on_release(handle, self)
        return True

    @property
    def n_queued(self) -> int:
        return self._queued_count

    @property
    def n_active(self) -> int:
        return len(self._active)

    @property
    def active_handles(self) -> Tuple[RequestHandle, ...]:
        """The handles currently holding batch slots (policies read this)."""
        return tuple(self._active)

    @property
    def n_finished(self) -> int:
        return len(self._finished)

    @property
    def n_cancelled(self) -> int:
        return len(self._cancelled)

    @property
    def has_work(self) -> bool:
        return bool(self._active) or self.n_queued > 0

    # -- stepping --------------------------------------------------------------

    def _push_ready(self, handle: RequestHandle) -> None:
        key = self.admission.admission_key_at(handle, self.current_step)
        heapq.heappush(self._ready, (key, handle.index, handle))

    def step(self) -> Dict[str, int]:
        """Advance one engine step; returns ``{request_id: emitted_token}``."""
        emitted: Dict[str, int] = {}
        step = self.current_step

        # dynamic admission policies (aging) re-key the whole ready queue
        # each step -- their ordering depends on how long requests waited
        if self.admission.dynamic and self._ready:
            self._ready = [
                (self.admission.admission_key_at(handle, step), index, handle)
                for _, index, handle in self._ready
            ]
            heapq.heapify(self._ready)

        # arrivals: everything due this step joins the ready queue in the
        # admission policy's order (cancelled handles are dropped lazily)
        while self._pending and self._pending[0][0] <= step:
            _, _, handle = heapq.heappop(self._pending)
            if handle.cancelled:
                continue
            self._push_ready(handle)

        # preemption (tentative): the scheduling policy may evict active
        # sessions for strictly more urgent ready requests.  Victims leave
        # the batch *before* admission runs so the gate sees their slots and
        # arena reservations as free, but they are only preempted for real
        # (KV released, re-queued) once an admission actually consumes the
        # evicted capacity -- a refused candidate must never cost a victim
        # its prefill/decode progress
        pre_active = list(self._active)
        victims: List[RequestHandle] = []
        if self.scheduling.preemptive and self._ready:
            ready_handles = [h for *_, h in self._ready if not h.cancelled]
            victims = self.scheduling.select_preemptions(
                ready_handles, pre_active, self.max_active - len(pre_active), step
            )
            for victim in victims:
                self._active.remove(victim)

        # admission into free slots, best admission key first; head-of-line:
        # a refused head (e.g. arena budget) stops admission for this step
        free = self.max_active - len(self._active)
        admitted: List[RequestHandle] = []
        while free > 0 and self._ready:
            _, _, handle = self._ready[0]
            if handle.cancelled:
                heapq.heappop(self._ready)  # counted out when cancelled
                continue
            if not self.admission.may_admit(handle, self):
                break
            heapq.heappop(self._ready)
            self._active.append(handle)
            admitted.append(handle)
            self._queued_count -= 1
            free -= 1
            # pin the reservation now so later candidates in this same loop
            # are gated against it (admissions are never rolled back)
            self.admission.on_admit(handle, self)

        # commit or roll back the evictions: only as many victims stay
        # preempted as the admissions actually needed beyond the slots that
        # were already free; the rest rejoin the batch untouched
        if victims:
            used = max(0, len(admitted) - (self.max_active - len(pre_active)))
            restored, victims = victims[used:], victims[:used]
            if restored:
                victim_ids = set(map(id, victims))
                self._active = [
                    h for h in pre_active if id(h) not in victim_ids
                ] + admitted
            for victim in victims:
                victim.session.preempt(step)
                self._push_ready(victim)
                self._queued_count += 1
                # realized eviction: its KV is gone, so its reservation is
                # too (restored victims above keep theirs untouched)
                self.admission.on_release(victim, self)

        # the sessions that kept their slots decode this step; prefilling
        # survivors rejoin the chunk budget below (continuous batching: old
        # and new requests share the same fused pass)
        evicted_ids = set(map(id, victims))
        survivors = [h for h in pre_active if id(h) not in evicted_ids]
        decoding = [
            h for h in survivors if h.session.state is SessionState.ACTIVE
        ]

        self._max_concurrency = max(self._max_concurrency, len(self._active))

        prefill_rows = 0
        if self.batched_prefill:
            # admissions enter the chunked pipeline; older PREFILLING
            # sessions come first so the queue head always finishes first
            for handle in admitted:
                session = handle.session
                if session.state is SessionState.PREEMPTED:
                    session.begin_resume(step)
                else:
                    session.begin_admit(step)
            prefilling = [
                h for h in self._active
                if h.session.state is SessionState.PREFILLING
            ]
            # spend the step's prefill-row budget in admission order: the
            # head always progresses (its chunk is clamped to >= 1 row even
            # under a zero-returning policy override, so the engine cannot
            # livelock), long prompts split across steps, later sessions may
            # wait a step entirely
            budget = self.admission.prefill_token_budget(self)
            chunked: List[RequestHandle] = []
            chunk_sizes: List[int] = []
            for handle in prefilling:
                remaining = handle.session.decoder.prefill_remaining
                if budget is None:
                    take = remaining
                else:
                    cap = budget if chunked else max(budget, 1)
                    take = min(remaining, cap)
                if take <= 0:
                    continue
                chunked.append(handle)
                chunk_sizes.append(take)
                if budget is not None:
                    budget -= take
            prefill_rows = sum(chunk_sizes)
            if chunked:
                emitted.update(
                    GenerationSession.prefill_step_batch(
                        [h.session for h in chunked],
                        chunk_sizes,
                        [h.session for h in decoding],
                        step,
                    )
                )
            elif decoding:
                # no prefill rows this step: keep the dedicated decode path
                # (and its incrementally maintained arena gather view)
                emitted.update(
                    GenerationSession.decode_step_batch(
                        [h.session for h in decoding], step
                    )
                )
            recipients = chunked + decoding
        else:
            for handle in admitted:
                session = handle.session
                if session.state is SessionState.PREEMPTED:
                    token = session.resume(step)
                else:
                    token = session.admit(step)
                emitted[handle.request_id] = token
            if decoding:
                if self.fused:
                    emitted.update(
                        GenerationSession.decode_step_batch(
                            [h.session for h in decoding], step
                        )
                    )
                else:
                    for handle in decoding:
                        emitted[handle.request_id] = handle.session.decode_step(step)
            recipients = admitted + decoding

        for handle in recipients:
            if handle.on_token is not None and handle.request_id in emitted:
                handle.on_token(handle, emitted[handle.request_id], step)

        retired = 0
        for handle in list(self._active):
            if handle.session.is_finished:
                self._active.remove(handle)
                handle.session.release_kv()  # pages return to the pool now
                self._finished.append(handle)
                self.admission.on_release(handle, self)
                retired += 1
                if handle.on_complete is not None:
                    handle.on_complete(handle, handle.session.to_metrics())

        stats: Dict[str, int] = {
            "step": step,
            "emitted": len(emitted),
            "admitted": len(admitted),
            "preempted": len(victims),
            "decoded": len(decoding),
            "prefill_rows": prefill_rows,
            "retired": retired,
            "active": len(self._active),
            "queued": self.n_queued,
        }
        if self.arena is not None:
            a = self.arena.stats
            stats["arena_pages_in_use"] = a.pages_in_use
            stats["arena_page_faults"] = a.page_faults
            stats["arena_gather_bytes_copied"] = a.gather_bytes_copied
        self.last_step_stats = stats

        self.current_step += 1
        return emitted

    def run(self, max_steps: int = 100_000) -> ServingReport:
        """Step until every submitted request finishes (or ``max_steps``)."""
        while self.has_work and self.current_step < max_steps:
            self.step()
        if self.has_work:
            raise RuntimeError(
                f"engine did not drain within {max_steps} steps "
                f"({self.n_queued} queued, {self.n_active} active)"
            )
        return self.report()

    def report(self) -> ServingReport:
        """Snapshot of the *completed* requests so far.

        Queued, still-active and cancelled sessions are excluded from the
        per-request metrics, so a mid-run call (while :attr:`has_work` is
        true) understates total tokens, throughput and the latency
        aggregates; :meth:`run` only reports after draining.
        """
        metrics = [h.session.to_metrics() for h in self._finished]
        policy = {
            "admission": self.admission.name,
            "scheduling": self.scheduling.name,
            "preemptions": sum(m.preemptions for m in metrics),
            "deadline_misses": sum(m.deadline_misses for m in metrics),
            "cancelled": len(self._cancelled),
        }
        return ServingReport(
            steps=self.current_step,
            max_concurrency=self._max_concurrency,
            requests=metrics,
            arena=self.arena.stats.to_json() if self.arena is not None else None,
            policy=policy,
        )


# the shim's DeprecationWarning fires once per process, not once per
# instantiation -- fuzz/golden suites build hundreds of shims and a warning
# per construction drowns real diagnostics (tests reset this to re-observe)
_shim_deprecation_warned = False


class ContinuousBatchingScheduler(ServingEngine):
    """Deprecated pre-policy front end; use :class:`ServingEngine`.

    A :class:`ServingEngine` pinned to its defaults (FIFO admission, FCFS
    scheduling, no preemption), which reproduces the original scheduler
    bit-exactly -- tokens, :class:`RequestMetrics` and arena counters -- as
    the golden and fuzz suites pin.  The only API difference is that
    :meth:`submit` returns the raw :class:`GenerationSession` (the old
    contract) instead of a :class:`RequestHandle`.  The deprecation warning
    is emitted exactly once per process.
    """

    def __init__(
        self,
        model,
        max_active: int = 8,
        predictor: Optional[KeyPredictor] = None,
        fused: bool = True,
        arena=None,
        page_size: int = 32,
    ) -> None:
        global _shim_deprecation_warned
        if not _shim_deprecation_warned:
            _shim_deprecation_warned = True
            warnings.warn(
                "ContinuousBatchingScheduler is deprecated; use ServingEngine "
                "(policies: FIFOAdmission + FCFSPolicy reproduce it exactly)",
                DeprecationWarning,
                stacklevel=2,
            )
        super().__init__(
            model,
            max_active=max_active,
            predictor=predictor,
            fused=fused,
            arena=arena,
            page_size=page_size,
        )

    def submit(self, request: Request) -> GenerationSession:  # type: ignore[override]
        return super().submit(request).session

    def submit_many(self, requests: Iterable[Request]) -> List[GenerationSession]:  # type: ignore[override]
        return [self.submit(r) for r in requests]
