"""Paged KV arena: shared page pools + per-session page tables.

The PR-2 fused decode path re-stacked every session's KV cache into a fresh
``(B, max_len, hidden)`` padded tensor each scheduler step, so per-step copy
traffic grew with total context length even though only one token per stream
was new.  :class:`PagedKVArena` is the vLLM-style answer scaled to the NumPy
simulator:

* K/V rows live in preallocated per-layer **page pools** -- one
  ``(n_pages, page_size, hidden)`` array per layer for keys and one for
  values, grown geometrically when the free list runs dry;
* each session owns a **page table** (a list of page ids shared by all
  layers, since every layer appends the same number of tokens per step) plus
  per-layer write cursors;
* :meth:`free` returns a finished session's pages to the free list, so arena
  occupancy tracks *live* tokens rather than peak concurrency, and reused
  pages never grow the pool;
* :meth:`gather_batch` materialises the padded batch for attention via **one
  fancy-index gather per layer** (no per-session stacking loop) and keeps the
  result as a per-layer cache: while the batch composition is stable, each
  subsequent step copies only the newly appended rows -- ``O(B * hidden)``
  bytes per step, independent of context length;
* a **prefix cache** shares prompt pages across requests: completed prefills
  :meth:`register_prefix` their full prompt pages under content keys (the
  token prefix at each page boundary), new sessions :meth:`acquire_prefix`
  matching pages read-only with per-page refcounts, and
  :meth:`~PagedKVArena.append` copies a page on write
  (:meth:`_ensure_writable`) the moment a session would scribble into a page
  someone else -- another session or the cache index -- still reads.
  Refcount-0 cached pages stay *idle* (materialised, off the free list) and
  are evicted LRU only under ``max_pages`` pressure.

Two capacity multipliers layer on top of the paging machinery:

* **KV dtype** (:class:`KVDtype`): with ``kv_dtype="int8"`` the page pools
  hold int8 rows plus one per-row float scale per page
  (``(n_layers, n_pages, page_size)``), quantised symmetrically on append
  and dequantised on every read (:meth:`~PagedKVArena.gather_batch` and the
  single-stream views) -- ~8x less pool memory per page.  Scales are
  per-row, not per-page, so a row's dequantised value is a pure function of
  the float row that was appended: bit-identical no matter how appends were
  chunked, which pages a row shares, or whether it travelled through a
  snapshot.  The default ``KVDtype.FP`` keeps the float pools byte-identical
  to the pre-quantisation arena.
* **Snapshots** (:meth:`~PagedKVArena.snapshot_session` /
  :meth:`~PagedKVArena.restore_session`): a preempted session's rows are
  copied into a compact off-arena :class:`KVSnapshot` and its live pages
  freed; restore faults fresh pages back in and copies the rows in place,
  so the resumed stream skips re-prefill entirely.  Pages someone else also
  reads (shared prefix mappings, registered index pages) are recorded *by
  reference* -- the session's refcount transfers to the snapshot, pinning
  the page -- so shared heads cost nothing to snapshot.  Snapshots store
  rows in the pool dtype, so int8 mode shrinks them ~8x too.

Every counter the serving report exposes (page faults, occupancy, gather
traffic, prefix-cache hits, snapshot/dequant traffic) lives in
:class:`ArenaStats`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["ArenaStats", "KVDtype", "KVSnapshot", "PagedKVArena"]


class KVDtype(Enum):
    """Storage dtype of the arena's KV page pools.

    ``FP`` stores rows as-is in the constructor's ``dtype`` (float64 by
    default) -- byte-identical to the pre-quantisation arena.  ``INT8``
    stores symmetric per-row int8 quantised rows plus a float scale per row
    (grouped per page), trading exactness of the stored rows for ~8x
    capacity; reads dequantise transparently.
    """

    FP = "fp"
    INT8 = "int8"


def _resolve_kv_dtype(kv_dtype) -> KVDtype:
    if kv_dtype is None:
        return KVDtype.FP
    if isinstance(kv_dtype, KVDtype):
        return kv_dtype
    if isinstance(kv_dtype, str):
        try:
            return KVDtype(kv_dtype.lower())
        except ValueError:
            raise ValueError(
                f"unknown kv_dtype {kv_dtype!r}; available: "
                f"{sorted(d.value for d in KVDtype)}"
            ) from None
    raise TypeError(
        f"kv_dtype must be a KVDtype, its string value, or None; "
        f"got {type(kv_dtype).__name__}"
    )


@dataclass
class KVSnapshot:
    """Off-arena copy of one session's KV state (all layers).

    ``entries`` holds one tuple per page-table slot, in table order:
    ``("ref", page_id)`` for a page someone else also reads (the session's
    refcount was *transferred* to the snapshot, pinning the page in the
    arena until restore or discard) and
    ``("data", k, v, k_scale, v_scale)`` for an exclusively-owned page whose
    rows were copied out in pool dtype and the page freed (scales are
    ``None`` in fp mode).  ``lengths`` is the per-layer write-cursor array at
    snapshot time.  Restoring re-attaches the references and faults fresh
    pages for the data entries, reproducing the session's KV bit-identically.
    """

    lengths: np.ndarray
    entries: List[tuple] = field(default_factory=list)

    @property
    def n_pages(self) -> int:
        return len(self.entries)

    @property
    def pages_referenced(self) -> int:
        """Pages recorded by reference (still resident, pinned in the arena)."""
        return sum(1 for e in self.entries if e[0] == "ref")

    @property
    def pages_copied(self) -> int:
        """Pages copied off-arena (their arena pages were freed)."""
        return self.n_pages - self.pages_referenced

    @property
    def nbytes(self) -> int:
        """Bytes of off-arena row/scale storage this snapshot holds."""
        total = 0
        for e in self.entries:
            if e[0] == "data":
                total += sum(a.nbytes for a in e[1:] if a is not None)
        return total

    def referenced_full_pages(self, page_size: int) -> int:
        """Referenced pages that are *full* at the snapshot's row count.

        The admission-control discount: a referenced partial tail page is
        copy-on-written the moment the restored session appends, so only
        fully-shared pages are guaranteed never to cost a fresh allocation
        (mirroring the prefix cache's novel-suffix accounting).
        """
        full = int(self.lengths.min()) // int(page_size)
        return sum(1 for e in self.entries[:full] if e[0] == "ref")


@dataclass
class ArenaStats:
    """Occupancy and copy-traffic counters of one :class:`PagedKVArena`.

    ``page_faults`` counts pages handed out (cumulative allocations, the
    paging analogue of a fault); ``gather_bytes_copied`` is the number of KV
    bytes materialised by :meth:`PagedKVArena.gather_batch` -- the arena-side
    counterpart of the stacking path's
    :attr:`repro.model.attention.MultiHeadAttention.stack_copy_bytes`.
    ``view_bytes_copied`` tracks the single-stream materialisations used by
    the non-fused path (:meth:`PagedKVArena.session_keys` / ``session_values``).

    Prefix-cache accounting: ``prefix_hits`` / ``prefix_misses`` count
    :meth:`PagedKVArena.acquire_prefix` outcomes, ``prefix_tokens_reused`` the
    prompt rows whose prefill compute was skipped, ``prefix_pages_shared`` the
    page attachments that mapped an existing page instead of faulting a new
    one, ``cow_copies`` the copy-on-write page duplications, and
    ``cached_idle_pages`` / ``prefix_evictions`` the refcount-0 pages held by
    the index right now and those reclaimed LRU under ``max_pages`` pressure.
    Conservation: ``page_faults - pages_freed == pages_in_use +
    cached_idle_pages`` at every point in time (with the cache off the last
    term is zero and the PR-3 drain identity ``page_faults == pages_freed``
    is unchanged).

    Snapshot/quantisation accounting: ``snapshots_taken`` /
    ``snapshots_restored`` count :meth:`PagedKVArena.snapshot_session` /
    ``restore_session`` calls, ``snapshot_bytes`` the off-arena bytes copied
    out by snapshots (in pool dtype: int8 mode shrinks it ~8x), and
    ``dequant_bytes`` the float bytes produced by int8 dequantisation on the
    read paths (0 in fp mode).  A page a snapshot holds by reference still
    counts in ``pages_in_use`` (it is pinned, not freed); the conservation
    law above is unchanged by snapshot/restore cycles.

    Speculative-decode accounting: ``draft_rows_appended`` counts KV token
    rows appended for *draft* (not-yet-verified) positions and
    ``rows_rolled_back`` the token rows popped by
    :meth:`PagedKVArena.truncate_session` when verification rejects drafts.
    On a fault-free run ``draft_rows_appended - rows_rolled_back`` equals the
    total number of accepted draft tokens; both are zero with speculation
    off.
    """

    page_size: int
    n_pages: int
    pages_in_use: int = 0
    peak_pages_in_use: int = 0
    page_faults: int = 0
    pages_freed: int = 0
    pool_grows: int = 0
    tokens_appended: int = 0
    sessions_opened: int = 0
    sessions_freed: int = 0
    gather_rebuilds: int = 0
    gather_incremental: int = 0
    gather_bytes_copied: int = 0
    view_bytes_copied: int = 0
    prefix_hits: int = 0
    prefix_misses: int = 0
    prefix_tokens_reused: int = 0
    prefix_pages_shared: int = 0
    cow_copies: int = 0
    cached_idle_pages: int = 0
    prefix_evictions: int = 0
    snapshots_taken: int = 0
    snapshots_restored: int = 0
    snapshot_bytes: int = 0
    dequant_bytes: int = 0
    rows_rolled_back: int = 0
    draft_rows_appended: int = 0
    kv_dtype: str = KVDtype.FP.value

    @property
    def occupancy(self) -> float:
        """Fraction of the pool currently holding live pages."""
        return self.pages_in_use / self.n_pages if self.n_pages else 0.0

    def to_json(self) -> dict:
        payload = asdict(self)
        payload["occupancy"] = self.occupancy
        return payload


class _Session:
    """Page table plus per-layer write cursors of one live session."""

    __slots__ = ("pages", "lengths")

    def __init__(self, n_layers: int) -> None:
        self.pages: List[int] = []
        self.lengths = np.zeros(n_layers, dtype=np.int64)


class _PrefixNode:
    """One cached full page of prompt KV, keyed by its token prefix.

    ``row_attended`` / ``row_total`` record the per-row attention counts
    (summed over layers) the registering prefill computed for this page's
    rows, so a cache-hit session can credit the skipped rows' metrics
    bit-exactly.  ``tick`` is the LRU clock for idle-page eviction.
    """

    __slots__ = ("page", "row_attended", "row_total", "tick")

    def __init__(
        self,
        page: int,
        row_attended: np.ndarray,
        row_total: np.ndarray,
        tick: int,
    ) -> None:
        self.page = page
        self.row_attended = row_attended
        self.row_total = row_total
        self.tick = tick


class PagedKVArena:
    """Shared paged KV storage for many concurrent generation sessions.

    Parameters
    ----------
    n_layers, hidden_size:
        Shape of the KV rows (one K row and one V row of width
        ``hidden_size`` per layer per token).
    page_size:
        Tokens per page.  Small pages waste less tail space per session;
        large pages mean fewer allocations.
    initial_pages:
        Pool capacity to preallocate; the pool doubles (bounded by
        ``max_pages``) whenever the free list runs dry.
    max_pages:
        Hard capacity bound; exhausting it raises ``RuntimeError`` instead of
        growing, modelling a fixed HBM budget.
    dtype:
        Logical (dequantised) dtype of KV rows -- what appends accept and
        reads return.  In fp mode it is also the pool storage dtype.
    kv_dtype:
        Pool storage mode (:class:`KVDtype`, its string value, or ``None``
        for the default ``FP``).  ``"int8"`` stores symmetric per-row int8
        rows plus one float scale per row (kept per page in
        ``(n_layers, n_pages, page_size)`` arrays), quantising on append and
        dequantising on every read -- ~8x pool memory per page at the cost
        of quantisation error in the stored rows.  Reads are deterministic
        pure functions of the int8 rows + scales, so batched/serial/
        snapshot-restored compositions stay bit-identical to each other.
    """

    def __init__(
        self,
        n_layers: int,
        hidden_size: int,
        page_size: int = 32,
        initial_pages: int = 64,
        max_pages: Optional[int] = None,
        dtype=np.float64,
        kv_dtype=None,
    ) -> None:
        if n_layers < 1 or hidden_size < 1:
            raise ValueError("n_layers and hidden_size must be >= 1")
        if page_size < 1:
            raise ValueError("page_size must be >= 1")
        if initial_pages < 1:
            raise ValueError("initial_pages must be >= 1")
        if max_pages is not None and max_pages < initial_pages:
            raise ValueError("max_pages must be >= initial_pages")
        self.n_layers = n_layers
        self.hidden_size = hidden_size
        self.page_size = page_size
        self.max_pages = max_pages
        self.kv_dtype = _resolve_kv_dtype(kv_dtype)
        # the logical row dtype (what callers append and read back); the
        # pools store it directly in fp mode, int8 + per-row scales otherwise
        self._fp_dtype = np.dtype(dtype)
        pool_dtype = np.int8 if self.kv_dtype is KVDtype.INT8 else self._fp_dtype
        self._k = np.zeros(
            (n_layers, initial_pages, page_size, hidden_size), pool_dtype
        )
        self._v = np.zeros_like(self._k)
        if self.kv_dtype is KVDtype.INT8:
            self._k_scale = np.zeros(
                (n_layers, initial_pages, page_size), self._fp_dtype
            )
            self._v_scale = np.zeros_like(self._k_scale)
        else:
            self._k_scale = None
            self._v_scale = None
        # LIFO free list, lowest page id on top so allocation order is stable
        self._free: List[int] = list(range(initial_pages - 1, -1, -1))
        self._sessions: Dict[int, _Session] = {}
        self._next_sid = 0
        self.stats = ArenaStats(
            page_size=page_size,
            n_pages=initial_pages,
            kv_dtype=self.kv_dtype.value,
        )
        # fault-injection hook (see check_alloc); None keeps every allocation
        # path untouched -- the serving engine installs its injector here
        self.fault_injector = None
        # per-layer gather caches: {"sids", "lengths", "k", "v", "cap"}
        self._gather: List[Optional[dict]] = [None] * n_layers
        # prefix cache: content key (token prefix at a page boundary) -> node,
        # plus the reverse page -> key map (1:1) and per-page refcounts.
        # Pages with a _ref entry are live; indexed pages without one are
        # idle-cached (materialised, off the free list, evictable LRU).
        self._prefix: Dict[Tuple[int, ...], _PrefixNode] = {}
        self._page_key: Dict[int, Tuple[int, ...]] = {}
        self._ref: Dict[int, int] = {}
        self._tick = 0

    # -- session lifecycle -----------------------------------------------------

    @property
    def n_pages(self) -> int:
        return self._k.shape[1]

    @property
    def n_sessions(self) -> int:
        return len(self._sessions)

    def has_session(self, session_id: int) -> bool:
        return session_id in self._sessions

    def create_session(self) -> int:
        """Open a new session; returns its id (ids are never reused)."""
        sid = self._next_sid
        self._next_sid += 1
        self._sessions[sid] = _Session(self.n_layers)
        self.stats.sessions_opened += 1
        return sid

    def new_session_caches(self) -> List["KVCache"]:
        """One arena-backed :class:`~repro.model.attention.KVCache` per layer.

        All returned handles share one session id (and therefore one page
        table); releasing any of them frees the whole session.
        """
        from ..model.attention import KVCache

        sid = self.create_session()
        return [
            KVCache(arena=self, session_id=sid, layer=layer)
            for layer in range(self.n_layers)
        ]

    def free(self, session_id: int) -> None:
        """Return the session's pages to the free list.

        Called both when a session finishes and when the scheduling policy
        *preempts* it -- a preempted request holds no pages while it waits,
        and re-acquires fresh ones (through a new session) when it resumes.
        """
        entry = self._sessions.pop(session_id)
        self._release_pages(entry)
        self.stats.sessions_freed += 1
        self._invalidate(session_id)

    def _release_pages(self, entry: _Session) -> None:
        # reversed keeps the pre-sharing LIFO discipline: the session's first
        # page lands on top of the free list, so allocation order is stable
        for page in reversed(entry.pages):
            self._release_page(page)
        entry.pages = []

    def _release_page(self, page: int) -> None:
        """Drop one reference; the last one parks or frees the page."""
        ref = self._ref.get(page, 1) - 1
        if ref > 0:
            self._ref[page] = ref
            return
        self._ref.pop(page, None)
        self.stats.pages_in_use -= 1
        if page in self._page_key:
            # the prefix index still reads it: park as idle-cached instead of
            # freeing, so a future identical prompt can map it back in
            self.stats.cached_idle_pages += 1
        else:
            self._free.append(page)
            self.stats.pages_freed += 1

    def _invalidate(self, session_id: int) -> None:
        """Drop gather caches whose buffers hold rows of ``session_id``.

        Needed because a truncated-then-refilled session could otherwise pass
        the monotone-length freshness check while its cached prefix is stale.
        """
        self._gather = [
            None if (c is not None and session_id in c["sids"]) else c
            for c in self._gather
        ]

    # -- occupancy / admission-control helpers ---------------------------------

    def pages_needed(self, n_tokens: int) -> int:
        """Pages required to hold ``n_tokens`` KV rows of one session."""
        if n_tokens <= 0:
            return 0
        return -(-int(n_tokens) // self.page_size)

    def within_watermark(self, n_pages: int, watermark: float = 1.0) -> bool:
        """Whether ``n_pages`` committed pages stay inside a capacity fraction.

        ``n_pages`` should be the caller's *reservation total* (e.g. the sum
        of every admitted session's full-lifetime page count, as
        :class:`~repro.serve.policies.ArenaBudgetAdmission` tracks) -- not
        current occupancy, which lags reality because pages only materialise
        as prefill/decode appends rows.  ``watermark`` is a fraction of the
        ``max_pages`` budget; unbounded arenas always fit (growth is their
        policy).
        """
        if self.max_pages is None:
            return True
        return int(n_pages) <= int(self.max_pages * watermark)

    # -- fault injection -------------------------------------------------------

    def check_alloc(self, request_id: Optional[str], step: int) -> None:
        """Schedule-time allocation probe for the fault-injection harness.

        The serving engine calls this for every session about to append KV
        rows in the coming fused pass (prefill chunks and decode rows alike),
        *before* any forward runs -- the step-scheduling moment real engines
        use to check allocatability.  When an installed
        :class:`~repro.serve.faults.FaultInjector` arms the ``arena.alloc``
        site for this ``(request, step)``, the probe raises
        :class:`~repro.serve.faults.TransientArenaFault` and the engine
        quarantines just that session (no page was touched, no row appended,
        so the arena books stay balanced).  Copy-on-write and mid-forward
        page allocations are deliberately *not* injection points: a fault
        there could not be isolated to one batch row.  With no injector the
        probe is never called, so the allocation fast path pays nothing.
        """
        injector = self.fault_injector
        if injector is not None and injector.fires("arena.alloc", request_id, step):
            from .faults import TransientArenaFault

            raise TransientArenaFault(
                f"injected transient page-allocation failure for request "
                f"{request_id!r} at step {step}"
            )

    # -- prefix cache ----------------------------------------------------------

    def _touch(self) -> int:
        self._tick += 1
        return self._tick

    def _walk_prefix(self, tokens: Tuple[int, ...]) -> List[_PrefixNode]:
        """Longest chain of cached full pages covering a prompt's head."""
        ps = self.page_size
        nodes: List[_PrefixNode] = []
        k = 1
        while k * ps <= len(tokens):
            node = self._prefix.get(tokens[: k * ps])
            if node is None:
                break
            nodes.append(node)
            k += 1
        return nodes

    def probe_prefix(self, tokens: Sequence[int]) -> int:
        """Reusable-row count a session with this prompt would get on a hit.

        Read-only (no refcounts move, no LRU ticks): admission control uses it
        to charge only the *novel* suffix of a prompt against the page budget.
        Capped at ``len(tokens) - 1`` because the last prompt row's logits must
        always be computed live to sample the first token.
        """
        tokens = tuple(int(t) for t in tokens)
        matched = len(self._walk_prefix(tokens)) * self.page_size
        return max(0, min(matched, len(tokens) - 1))

    def acquire_prefix(
        self, session_id: int, tokens: Sequence[int]
    ) -> Tuple[int, Optional[np.ndarray], Optional[np.ndarray]]:
        """Map cached prompt pages into an empty session's page table.

        Returns ``(n_reused, row_attended, row_total)``: the number of prompt
        rows whose KV is now mapped (prefill may skip computing them) and the
        per-row attention counts the registering prefill recorded for exactly
        those rows (for bit-exact metrics).  ``(0, None, None)`` on a miss.
        Attached pages are shared read-only -- refcounts go up, and the first
        append into a partially-consumed tail page copies it
        (:meth:`_ensure_writable`).
        """
        entry = self._sessions[session_id]
        if entry.pages or entry.lengths.any():
            raise RuntimeError("acquire_prefix requires an empty session")
        tokens = tuple(int(t) for t in tokens)
        nodes = self._walk_prefix(tokens)
        n_reused = max(0, min(len(nodes) * self.page_size, len(tokens) - 1))
        if n_reused <= 0:
            self.stats.prefix_misses += 1
            return 0, None, None
        n_attach = -(-n_reused // self.page_size)
        for node in nodes[:n_attach]:
            page = node.page
            if page in self._ref:
                self._ref[page] += 1  # shared with another live session
            else:
                # revive an idle cached page: back in use without a fault
                self._ref[page] = 1
                self.stats.cached_idle_pages -= 1
                self.stats.pages_in_use += 1
                self.stats.peak_pages_in_use = max(
                    self.stats.peak_pages_in_use, self.stats.pages_in_use
                )
            node.tick = self._touch()
            entry.pages.append(page)
        entry.lengths[:] = n_reused
        self.stats.prefix_hits += 1
        self.stats.prefix_tokens_reused += n_reused
        self.stats.prefix_pages_shared += n_attach
        row_attended = np.concatenate(
            [node.row_attended for node in nodes[:n_attach]]
        )[:n_reused]
        row_total = np.concatenate(
            [node.row_total for node in nodes[:n_attach]]
        )[:n_reused]
        return n_reused, row_attended, row_total

    def register_prefix(
        self,
        session_id: int,
        tokens: Sequence[int],
        row_attended: Optional[np.ndarray] = None,
        row_total: Optional[np.ndarray] = None,
    ) -> int:
        """Index a fully-prefilled session's prompt pages under content keys.

        Every *full* page of the prompt becomes reusable by later sessions
        whose prompt starts with the same tokens.  ``row_attended`` /
        ``row_total`` must give the per-row attention counts (summed over
        layers) of the prompt rows; without them nothing is registered, since
        a later hit could not credit the skipped rows' metrics exactly.
        Already-known prefixes (e.g. this session itself was a cache hit)
        just refresh their LRU tick.  Returns the number of pages newly
        indexed.
        """
        if row_attended is None or row_total is None:
            return 0
        entry = self._sessions[session_id]
        tokens = tuple(int(t) for t in tokens)
        n_tokens = len(tokens)
        ps = self.page_size
        if int(entry.lengths.min()) < n_tokens:
            return 0  # prompt rows not fully materialised: nothing to share
        row_attended = np.asarray(row_attended, dtype=np.int64)
        row_total = np.asarray(row_total, dtype=np.int64)
        if row_attended.shape[0] < n_tokens or row_total.shape[0] < n_tokens:
            return 0
        added = 0
        for k in range(1, n_tokens // ps + 1):
            key = tokens[: k * ps]
            node = self._prefix.get(key)
            if node is not None:
                node.tick = self._touch()
                continue
            page = entry.pages[k - 1]
            if page in self._page_key:
                continue  # already backs another key; never corrupt the 1:1 map
            self._prefix[key] = _PrefixNode(
                page,
                row_attended[(k - 1) * ps : k * ps].copy(),
                row_total[(k - 1) * ps : k * ps].copy(),
                self._touch(),
            )
            self._page_key[page] = key
            added += 1
        return added

    # -- appends ---------------------------------------------------------------

    def seq_len(self, session_id: int, layer: int = 0) -> int:
        return int(self._sessions[session_id].lengths[layer])

    def append(
        self, session_id: int, layer: int, keys: np.ndarray, values: np.ndarray
    ) -> None:
        """Append K/V rows for one layer of one session (allocating pages)."""
        entry = self._sessions[session_id]
        keys = np.atleast_2d(np.asarray(keys, dtype=self._fp_dtype))
        values = np.atleast_2d(np.asarray(values, dtype=self._fp_dtype))
        if keys.shape != values.shape:
            raise ValueError("keys and values must have identical shapes")
        if keys.shape[1] != self.hidden_size:
            raise ValueError(
                f"expected rows of width {self.hidden_size}, got {keys.shape[1]}"
            )
        int8 = self._k_scale is not None
        if int8:
            # quantise per row *before* placement: the stored bits depend
            # only on the float row itself, never on its page neighbours
            keys, k_scales = self._quantise_rows(keys)
            values, v_scales = self._quantise_rows(values)
        n_new = keys.shape[0]
        ps = self.page_size
        old = int(entry.lengths[layer])
        new = old + n_new
        needed_pages = -(-new // ps)
        while len(entry.pages) < needed_pages:
            entry.pages.append(self._take_page())
        pos, row = old, 0
        while row < n_new:
            idx = pos // ps
            self._ensure_writable(entry, idx)
            page = entry.pages[idx]
            slot = pos % ps
            n = min(ps - slot, n_new - row)
            self._k[layer, page, slot : slot + n] = keys[row : row + n]
            self._v[layer, page, slot : slot + n] = values[row : row + n]
            if int8:
                self._k_scale[layer, page, slot : slot + n] = k_scales[
                    row : row + n
                ]
                self._v_scale[layer, page, slot : slot + n] = v_scales[
                    row : row + n
                ]
            pos += n
            row += n
        entry.lengths[layer] = new
        self.stats.tokens_appended += n_new

    def _quantise_rows(self, rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Symmetric per-row int8 quantisation: ``(q_rows, scales)``.

        ``scale = max|row| / 127`` (1.0 for an all-zero row, so dequantising
        reproduces it exactly); rounding is banker's ``np.rint``.  Per-row
        scales make each stored row independent of append chunking and page
        placement, which is what keeps the fused/serial/snapshot paths
        bit-identical to each other in int8 mode.
        """
        amax = np.abs(rows).max(axis=1)
        scales = np.where(amax > 0.0, amax / 127.0, 1.0).astype(self._fp_dtype)
        q = np.clip(np.rint(rows / scales[:, None]), -127, 127).astype(np.int8)
        return q, scales

    def _dequant(self, q: np.ndarray, scales: np.ndarray) -> np.ndarray:
        """Dequantise int8 rows back to the logical float dtype."""
        out = q.astype(self._fp_dtype) * scales[..., None]
        self.stats.dequant_bytes += out.nbytes
        return out

    def _ensure_writable(self, entry: _Session, idx: int) -> None:
        """Copy-on-write guard: give the session a private copy of page ``idx``.

        A page must not be written while anyone else reads it -- another
        session (refcount > 1) or the prefix index itself (the page backs a
        registered prefix, so its rows must stay exactly the registered
        content).  All layers are copied at once because page tables are
        shared across layers: the first layer's append re-points the table and
        every later layer writes the (already writable) copy in place.  The
        copied rows are bit-identical, so live gather caches stay valid.
        """
        page = entry.pages[idx]
        if self._ref.get(page, 1) <= 1 and page not in self._page_key:
            return
        new_page = self._take_page()
        self._k[:, new_page] = self._k[:, page]
        self._v[:, new_page] = self._v[:, page]
        if self._k_scale is not None:
            self._k_scale[:, new_page] = self._k_scale[:, page]
            self._v_scale[:, new_page] = self._v_scale[:, page]
        entry.pages[idx] = new_page
        self.stats.cow_copies += 1
        self._release_page(page)

    def append_batch(
        self,
        layer: int,
        session_ids: Sequence[int],
        keys_list: Sequence[np.ndarray],
        values_list: Sequence[np.ndarray],
    ) -> None:
        """Append ragged K/V row blocks to many sessions' one layer at once.

        The batched-prefill entry point: chunk rows for the whole mixed batch
        land in the pool through one call per layer instead of ``B`` separate
        :meth:`KVCache.append` hops, and each session's page faults for the
        whole chunk are taken in a single allocation pass (the multi-row
        analogue of the one-token decode append).  Equivalent to calling
        :meth:`append` per session in order.
        """
        if not (len(session_ids) == len(keys_list) == len(values_list)):
            raise ValueError("session_ids, keys and values must align")
        for sid, keys, values in zip(session_ids, keys_list, values_list):
            self.append(sid, layer, keys, values)

    def _take_page(self) -> int:
        if not self._free and not self._grow() and not self._evict_idle_page():
            raise RuntimeError(
                f"arena exhausted: {self.stats.pages_in_use} pages in use, "
                f"{len(self._free)} free, {self.stats.cached_idle_pages} "
                f"cached idle, max_pages={self.max_pages}"
            )
        page = self._free.pop()
        self._ref[page] = 1
        self.stats.page_faults += 1
        self.stats.pages_in_use += 1
        self.stats.peak_pages_in_use = max(
            self.stats.peak_pages_in_use, self.stats.pages_in_use
        )
        return page

    def _grow(self) -> bool:
        """Double the pool (bounded by ``max_pages``); false when capped."""
        old_n = self.n_pages
        new_n = old_n * 2
        if self.max_pages is not None:
            new_n = min(new_n, self.max_pages)
        if new_n <= old_n:
            return False
        shape = (self.n_layers, new_n, self.page_size, self.hidden_size)
        for attr in ("_k", "_v"):
            grown = np.zeros(shape, dtype=self._k.dtype)
            grown[:, :old_n] = getattr(self, attr)
            setattr(self, attr, grown)
        if self._k_scale is not None:
            scale_shape = (self.n_layers, new_n, self.page_size)
            for attr in ("_k_scale", "_v_scale"):
                grown = np.zeros(scale_shape, dtype=self._fp_dtype)
                grown[:, :old_n] = getattr(self, attr)
                setattr(self, attr, grown)
        self._free.extend(range(new_n - 1, old_n - 1, -1))
        self.stats.pool_grows += 1
        self.stats.n_pages = new_n
        return True

    def _evict_idle_page(self) -> bool:
        """Reclaim the least-recently-used idle cached page onto the free list."""
        best_key = None
        best_node = None
        for key, node in self._prefix.items():
            if node.page in self._ref:
                continue  # live: some session still maps it
            if best_node is None or node.tick < best_node.tick:
                best_key, best_node = key, node
        if best_node is None:
            return False
        del self._prefix[best_key]
        del self._page_key[best_node.page]
        self._free.append(best_node.page)
        self.stats.pages_freed += 1
        self.stats.cached_idle_pages -= 1
        self.stats.prefix_evictions += 1
        return True

    # -- snapshot preemption ---------------------------------------------------

    def snapshot_session(self, session_id: int) -> KVSnapshot:
        """Copy a session's KV off-arena and free its live pages.

        The snapshot-preemption entry point: the session stays open (its id,
        page-table slot and write cursors survive, zeroed) but holds no pages
        afterwards, so the arena capacity a preempted victim occupied is
        available to more urgent work immediately.  Pages someone else also
        reads -- shared with another session or backing a registered prefix
        -- are recorded *by reference*: the session's refcount transfers to
        the snapshot (the page stays ``pages_in_use`` and cannot be evicted),
        so shared prefix heads cost no copy at all.  Exclusively-owned pages
        are copied out in pool dtype (int8 snapshots are ~8x smaller) and
        freed.  :meth:`restore_session` reverses the whole operation
        bit-identically; a snapshot that will never be restored must be
        released through :meth:`discard_snapshot`.
        """
        entry = self._sessions[session_id]
        entries: List[tuple] = []
        copied_bytes = 0
        for page in entry.pages:
            if self._ref.get(page, 1) > 1 or page in self._page_key:
                # shared read-only page: keep it resident, move our refcount
                # onto the snapshot instead of dropping it
                entries.append(("ref", page))
                continue
            k = self._k[:, page].copy()
            v = self._v[:, page].copy()
            if self._k_scale is not None:
                k_scale = self._k_scale[:, page].copy()
                v_scale = self._v_scale[:, page].copy()
                copied_bytes += k_scale.nbytes + v_scale.nbytes
            else:
                k_scale = None
                v_scale = None
            copied_bytes += k.nbytes + v.nbytes
            entries.append(("data", k, v, k_scale, v_scale))
            self._release_page(page)
        lengths = entry.lengths.copy()
        entry.pages = []
        entry.lengths[:] = 0
        self._invalidate(session_id)
        self.stats.snapshots_taken += 1
        self.stats.snapshot_bytes += copied_bytes
        return KVSnapshot(lengths=lengths, entries=entries)

    def restore_session(self, session_id: int, snapshot: KVSnapshot) -> None:
        """Fault a snapshot's pages back into an empty session, in place.

        Referenced pages re-attach directly (the refcount the snapshot held
        transfers back to the session); copied pages fault fresh pages and
        write the rows -- and, in int8 mode, their scales -- bit-identically.
        No forward pass and no append happens: ``tokens_appended`` is
        untouched, which is exactly the re-prefill compute a snapshot resume
        saves.  The snapshot is consumed (its entries are cleared); restoring
        requires the session to hold no rows, and exhausting ``max_pages``
        raises like any other allocation.
        """
        entry = self._sessions[session_id]
        if entry.pages or entry.lengths.any():
            raise RuntimeError(
                f"restore_session requires an empty session; session "
                f"{session_id} still holds {len(entry.pages)} pages"
            )
        for e in snapshot.entries:
            if e[0] == "ref":
                entry.pages.append(e[1])
                continue
            _, k, v, k_scale, v_scale = e
            page = self._take_page()
            self._k[:, page] = k
            self._v[:, page] = v
            if k_scale is not None:
                self._k_scale[:, page] = k_scale
                self._v_scale[:, page] = v_scale
            entry.pages.append(page)
        entry.lengths[:] = snapshot.lengths
        snapshot.entries = []
        self._invalidate(session_id)
        self.stats.snapshots_restored += 1

    def discard_snapshot(self, snapshot: KVSnapshot) -> None:
        """Release a snapshot that will never be restored (cancel/fail paths).

        Drops the page references the snapshot pinned -- each page parks
        idle-cached or returns to the free list exactly as if the session had
        released it -- and clears the off-arena data.  Idempotent.
        """
        entries, snapshot.entries = snapshot.entries, []
        for e in entries:
            if e[0] == "ref":
                self._release_page(e[1])

    # -- truncation (KVCache.clear + speculative rollback support) -------------

    def truncate_session(self, session_id: int, n_rows: int) -> None:
        """Pop the last ``n_rows`` token rows from *every* layer of a session.

        The speculative-decode rollback primitive: after a fused verify pass
        rejects some draft tokens, their already-appended KV rows are
        discarded by moving every layer's write cursor back ``n_rows`` and
        releasing any page that became empty (through :meth:`_release_page`,
        so shared/registered pages park or decrement refs exactly like a
        session teardown would).  Rows inside a kept partial page are *not*
        zeroed -- lengths govern every read, and the next append overwrites
        them -- and draft rows always live in pages the session owns
        privately (copy-on-write fires before any append into a shared
        page), so truncation can never scribble on a prefix-cache page or a
        sibling session.  Requires every layer to hold at least ``n_rows``
        rows.  ``n_rows == 0`` is a no-op.
        """
        n_rows = int(n_rows)
        if n_rows < 0:
            raise ValueError(f"n_rows must be >= 0, got {n_rows}")
        if n_rows == 0:
            return
        entry = self._sessions[session_id]
        if n_rows > int(entry.lengths.min()):
            raise ValueError(
                f"cannot truncate {n_rows} rows from session {session_id}: "
                f"shortest layer holds {int(entry.lengths.min())}"
            )
        new_max = int(entry.lengths.max()) - n_rows
        keep = -(-new_max // self.page_size) if new_max > 0 else 0
        for page in reversed(entry.pages[keep:]):
            self._release_page(page)
        del entry.pages[keep:]
        entry.lengths -= n_rows
        self._invalidate(session_id)
        self.stats.rows_rolled_back += n_rows

    def clear_layer(self, session_id: int, layer: int) -> None:
        """Reset one layer's write cursor; pages free once every layer is empty."""
        entry = self._sessions[session_id]
        entry.lengths[layer] = 0
        self._invalidate(session_id)
        if not entry.lengths.any():
            self._release_pages(entry)

    # -- materialisation -------------------------------------------------------

    def _session_rows(
        self,
        pool: np.ndarray,
        scale: Optional[np.ndarray],
        session_id: int,
        layer: int,
    ) -> np.ndarray:
        entry = self._sessions[session_id]
        length = int(entry.lengths[layer])
        if length == 0:
            return np.empty((0, self.hidden_size), dtype=self._fp_dtype)
        ps = self.page_size
        pages = np.asarray(entry.pages[: -(-length // ps)], dtype=np.int64)
        rows = pool[layer, pages].reshape(-1, self.hidden_size)[:length]
        # copy traffic is counted in pool bytes (what actually moved); int8
        # dequantisation additionally reports the float bytes it produced
        self.stats.view_bytes_copied += rows.nbytes
        if scale is not None:
            rows = self._dequant(rows, scale[layer, pages].reshape(-1)[:length])
        return rows

    def session_keys(self, session_id: int, layer: int) -> np.ndarray:
        """Contiguous ``(seq_len, hidden)`` copy of one session's keys.

        Always in the logical float dtype: int8 pools dequantise on the way
        out, so attention consumers never see quantised storage.
        """
        return self._session_rows(self._k, self._k_scale, session_id, layer)

    def session_values(self, session_id: int, layer: int) -> np.ndarray:
        """Contiguous ``(seq_len, hidden)`` copy of one session's values."""
        return self._session_rows(self._v, self._v_scale, session_id, layer)

    def gather_batch(
        self, layer: int, session_ids: Sequence[int]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Padded ``(B, max_len, hidden)`` K/V views for one layer's batch.

        The returned arrays are views into a per-layer batch buffer that the
        arena maintains incrementally: while ``session_ids`` is unchanged
        since the previous call, only the rows appended in between are copied
        (one vectorised gather of ``B`` rows per decode step).  Composition
        changes, truncations or buffer exhaustion trigger a full rebuild --
        still a single fancy-index gather over the page pool rather than a
        per-session stacking loop.  Rows past each session's length are
        arbitrary (finite) padding; callers mask them exactly as the stacking
        path masks its zero padding.

        Returns ``(keys, values, lengths)``; the views stay valid until the
        next ``gather_batch`` / ``free`` / ``clear_layer`` call.
        """
        sids = tuple(session_ids)
        if not sids:
            raise ValueError("session_ids must not be empty")
        entries = [self._sessions[s] for s in sids]
        lengths = np.array([int(e.lengths[layer]) for e in entries], dtype=np.int64)
        max_len = int(lengths.max())
        ps = self.page_size
        itemsize = self._k.itemsize
        cache = self._gather[layer]

        fresh = (
            cache is not None
            and cache["sids"] == sids
            and cache["cap"] >= max_len
            and bool((lengths >= cache["lengths"]).all())
        )
        if fresh:
            delta = lengths - cache["lengths"]
            total_new = int(delta.sum())
            if total_new:
                int8 = self._k_scale is not None
                grew = np.flatnonzero(delta)
                if int(delta.max()) == 1:
                    # the decode-step fast path: one new row per grown stream
                    pos = lengths[grew] - 1
                    pages = np.array(
                        [entries[b].pages[p] for b, p in zip(grew, pos // ps)],
                        dtype=np.int64,
                    )
                    slots = pos % ps
                    if int8:
                        cache["k"][grew, pos] = self._dequant(
                            self._k[layer, pages, slots],
                            self._k_scale[layer, pages, slots],
                        )
                        cache["v"][grew, pos] = self._dequant(
                            self._v[layer, pages, slots],
                            self._v_scale[layer, pages, slots],
                        )
                    else:
                        cache["k"][grew, pos] = self._k[layer, pages, slots]
                        cache["v"][grew, pos] = self._v[layer, pages, slots]
                else:
                    for b in grew:
                        start, stop = int(cache["lengths"][b]), int(lengths[b])
                        entry = entries[b]
                        pos = start
                        while pos < stop:
                            page = entry.pages[pos // ps]
                            slot = pos % ps
                            n = min(ps - slot, stop - pos)
                            k_rows = self._k[layer, page, slot : slot + n]
                            v_rows = self._v[layer, page, slot : slot + n]
                            if int8:
                                k_rows = self._dequant(
                                    k_rows,
                                    self._k_scale[layer, page, slot : slot + n],
                                )
                                v_rows = self._dequant(
                                    v_rows,
                                    self._v_scale[layer, page, slot : slot + n],
                                )
                            cache["k"][b, pos : pos + n] = k_rows
                            cache["v"][b, pos : pos + n] = v_rows
                            pos += n
                self.stats.gather_bytes_copied += (
                    2 * total_new * self.hidden_size * itemsize
                )
            self.stats.gather_incremental += 1
            cache["lengths"] = lengths
        else:
            # full rebuild: one fancy-index gather per pool, padded to page
            # boundaries, with headroom so steady-state steps stay incremental
            n_batch_pages = max(1, -(-max_len // ps))
            cap = (n_batch_pages + 8) * ps
            table = np.zeros((len(sids), n_batch_pages), dtype=np.int64)
            for b, entry in enumerate(entries):
                used = entry.pages[: -(-int(lengths[b]) // ps)] if lengths[b] else []
                table[b, : len(used)] = used
            # batch buffers always hold logical float rows; int8 pools
            # dequantise during the gather so attention reads plain floats
            buf_k = np.zeros((len(sids), cap, self.hidden_size), dtype=self._fp_dtype)
            buf_v = np.zeros_like(buf_k)
            span = n_batch_pages * ps
            if self._k_scale is not None:
                buf_k[:, :span] = self._dequant(
                    self._k[layer, table], self._k_scale[layer, table]
                ).reshape(len(sids), span, -1)
                buf_v[:, :span] = self._dequant(
                    self._v[layer, table], self._v_scale[layer, table]
                ).reshape(len(sids), span, -1)
            else:
                buf_k[:, :span] = self._k[layer, table].reshape(len(sids), span, -1)
                buf_v[:, :span] = self._v[layer, table].reshape(len(sids), span, -1)
            cache = {
                "sids": sids,
                "lengths": lengths,
                "k": buf_k,
                "v": buf_v,
                "cap": cap,
            }
            self._gather[layer] = cache
            self.stats.gather_rebuilds += 1
            self.stats.gather_bytes_copied += (
                2 * len(sids) * span * self.hidden_size * itemsize
            )
        return cache["k"][:, :max_len], cache["v"][:, :max_len], lengths
