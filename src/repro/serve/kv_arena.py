"""Paged KV arena: shared page pools + per-session page tables.

The PR-2 fused decode path re-stacked every session's KV cache into a fresh
``(B, max_len, hidden)`` padded tensor each scheduler step, so per-step copy
traffic grew with total context length even though only one token per stream
was new.  :class:`PagedKVArena` is the vLLM-style answer scaled to the NumPy
simulator:

* K/V rows live in preallocated per-layer **page pools** -- one
  ``(n_pages, page_size, hidden)`` array per layer for keys and one for
  values, grown geometrically when the free list runs dry;
* each session owns a **page table** (a list of page ids shared by all
  layers, since every layer appends the same number of tokens per step) plus
  per-layer write cursors;
* :meth:`free` returns a finished session's pages to the free list, so arena
  occupancy tracks *live* tokens rather than peak concurrency, and reused
  pages never grow the pool;
* :meth:`gather_batch` materialises the padded batch for attention via **one
  fancy-index gather per layer** (no per-session stacking loop) and keeps the
  result as a per-layer cache: while the batch composition is stable, each
  subsequent step copies only the newly appended rows -- ``O(B * hidden)``
  bytes per step, independent of context length.

Every counter the serving report exposes (page faults, occupancy, gather
traffic) lives in :class:`ArenaStats`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["ArenaStats", "PagedKVArena"]


@dataclass
class ArenaStats:
    """Occupancy and copy-traffic counters of one :class:`PagedKVArena`.

    ``page_faults`` counts pages handed out (cumulative allocations, the
    paging analogue of a fault); ``gather_bytes_copied`` is the number of KV
    bytes materialised by :meth:`PagedKVArena.gather_batch` -- the arena-side
    counterpart of the stacking path's
    :attr:`repro.model.attention.MultiHeadAttention.stack_copy_bytes`.
    ``view_bytes_copied`` tracks the single-stream materialisations used by
    the non-fused path (:meth:`PagedKVArena.session_keys` / ``session_values``).
    """

    page_size: int
    n_pages: int
    pages_in_use: int = 0
    peak_pages_in_use: int = 0
    page_faults: int = 0
    pages_freed: int = 0
    pool_grows: int = 0
    tokens_appended: int = 0
    sessions_opened: int = 0
    sessions_freed: int = 0
    gather_rebuilds: int = 0
    gather_incremental: int = 0
    gather_bytes_copied: int = 0
    view_bytes_copied: int = 0

    @property
    def occupancy(self) -> float:
        """Fraction of the pool currently holding live pages."""
        return self.pages_in_use / self.n_pages if self.n_pages else 0.0

    def to_json(self) -> dict:
        payload = asdict(self)
        payload["occupancy"] = self.occupancy
        return payload


class _Session:
    """Page table plus per-layer write cursors of one live session."""

    __slots__ = ("pages", "lengths")

    def __init__(self, n_layers: int) -> None:
        self.pages: List[int] = []
        self.lengths = np.zeros(n_layers, dtype=np.int64)


class PagedKVArena:
    """Shared paged KV storage for many concurrent generation sessions.

    Parameters
    ----------
    n_layers, hidden_size:
        Shape of the KV rows (one K row and one V row of width
        ``hidden_size`` per layer per token).
    page_size:
        Tokens per page.  Small pages waste less tail space per session;
        large pages mean fewer allocations.
    initial_pages:
        Pool capacity to preallocate; the pool doubles (bounded by
        ``max_pages``) whenever the free list runs dry.
    max_pages:
        Hard capacity bound; exhausting it raises ``RuntimeError`` instead of
        growing, modelling a fixed HBM budget.
    """

    def __init__(
        self,
        n_layers: int,
        hidden_size: int,
        page_size: int = 32,
        initial_pages: int = 64,
        max_pages: Optional[int] = None,
        dtype=np.float64,
    ) -> None:
        if n_layers < 1 or hidden_size < 1:
            raise ValueError("n_layers and hidden_size must be >= 1")
        if page_size < 1:
            raise ValueError("page_size must be >= 1")
        if initial_pages < 1:
            raise ValueError("initial_pages must be >= 1")
        if max_pages is not None and max_pages < initial_pages:
            raise ValueError("max_pages must be >= initial_pages")
        self.n_layers = n_layers
        self.hidden_size = hidden_size
        self.page_size = page_size
        self.max_pages = max_pages
        self._k = np.zeros((n_layers, initial_pages, page_size, hidden_size), dtype)
        self._v = np.zeros_like(self._k)
        # LIFO free list, lowest page id on top so allocation order is stable
        self._free: List[int] = list(range(initial_pages - 1, -1, -1))
        self._sessions: Dict[int, _Session] = {}
        self._next_sid = 0
        self.stats = ArenaStats(page_size=page_size, n_pages=initial_pages)
        # per-layer gather caches: {"sids", "lengths", "k", "v", "cap"}
        self._gather: List[Optional[dict]] = [None] * n_layers

    # -- session lifecycle -----------------------------------------------------

    @property
    def n_pages(self) -> int:
        return self._k.shape[1]

    @property
    def n_sessions(self) -> int:
        return len(self._sessions)

    def has_session(self, session_id: int) -> bool:
        return session_id in self._sessions

    def create_session(self) -> int:
        """Open a new session; returns its id (ids are never reused)."""
        sid = self._next_sid
        self._next_sid += 1
        self._sessions[sid] = _Session(self.n_layers)
        self.stats.sessions_opened += 1
        return sid

    def new_session_caches(self) -> List["KVCache"]:
        """One arena-backed :class:`~repro.model.attention.KVCache` per layer.

        All returned handles share one session id (and therefore one page
        table); releasing any of them frees the whole session.
        """
        from ..model.attention import KVCache

        sid = self.create_session()
        return [
            KVCache(arena=self, session_id=sid, layer=layer)
            for layer in range(self.n_layers)
        ]

    def free(self, session_id: int) -> None:
        """Return the session's pages to the free list.

        Called both when a session finishes and when the scheduling policy
        *preempts* it -- a preempted request holds no pages while it waits,
        and re-acquires fresh ones (through a new session) when it resumes.
        """
        entry = self._sessions.pop(session_id)
        self._release_pages(entry)
        self.stats.sessions_freed += 1
        self._invalidate(session_id)

    def _release_pages(self, entry: _Session) -> None:
        if entry.pages:
            self._free.extend(reversed(entry.pages))
            self.stats.pages_freed += len(entry.pages)
            self.stats.pages_in_use -= len(entry.pages)
            entry.pages = []

    def _invalidate(self, session_id: int) -> None:
        """Drop gather caches whose buffers hold rows of ``session_id``.

        Needed because a truncated-then-refilled session could otherwise pass
        the monotone-length freshness check while its cached prefix is stale.
        """
        self._gather = [
            None if (c is not None and session_id in c["sids"]) else c
            for c in self._gather
        ]

    # -- occupancy / admission-control helpers ---------------------------------

    def pages_needed(self, n_tokens: int) -> int:
        """Pages required to hold ``n_tokens`` KV rows of one session."""
        if n_tokens <= 0:
            return 0
        return -(-int(n_tokens) // self.page_size)

    def within_watermark(self, n_pages: int, watermark: float = 1.0) -> bool:
        """Whether ``n_pages`` committed pages stay inside a capacity fraction.

        ``n_pages`` should be the caller's *reservation total* (e.g. the sum
        of every admitted session's full-lifetime page count, as
        :class:`~repro.serve.policies.ArenaBudgetAdmission` tracks) -- not
        current occupancy, which lags reality because pages only materialise
        as prefill/decode appends rows.  ``watermark`` is a fraction of the
        ``max_pages`` budget; unbounded arenas always fit (growth is their
        policy).
        """
        if self.max_pages is None:
            return True
        return int(n_pages) <= int(self.max_pages * watermark)

    # -- appends ---------------------------------------------------------------

    def seq_len(self, session_id: int, layer: int = 0) -> int:
        return int(self._sessions[session_id].lengths[layer])

    def append(
        self, session_id: int, layer: int, keys: np.ndarray, values: np.ndarray
    ) -> None:
        """Append K/V rows for one layer of one session (allocating pages)."""
        entry = self._sessions[session_id]
        keys = np.atleast_2d(np.asarray(keys, dtype=self._k.dtype))
        values = np.atleast_2d(np.asarray(values, dtype=self._v.dtype))
        if keys.shape != values.shape:
            raise ValueError("keys and values must have identical shapes")
        if keys.shape[1] != self.hidden_size:
            raise ValueError(
                f"expected rows of width {self.hidden_size}, got {keys.shape[1]}"
            )
        n_new = keys.shape[0]
        ps = self.page_size
        old = int(entry.lengths[layer])
        new = old + n_new
        needed_pages = -(-new // ps)
        while len(entry.pages) < needed_pages:
            entry.pages.append(self._take_page())
        pos, row = old, 0
        while row < n_new:
            page = entry.pages[pos // ps]
            slot = pos % ps
            n = min(ps - slot, n_new - row)
            self._k[layer, page, slot : slot + n] = keys[row : row + n]
            self._v[layer, page, slot : slot + n] = values[row : row + n]
            pos += n
            row += n
        entry.lengths[layer] = new
        self.stats.tokens_appended += n_new

    def append_batch(
        self,
        layer: int,
        session_ids: Sequence[int],
        keys_list: Sequence[np.ndarray],
        values_list: Sequence[np.ndarray],
    ) -> None:
        """Append ragged K/V row blocks to many sessions' one layer at once.

        The batched-prefill entry point: chunk rows for the whole mixed batch
        land in the pool through one call per layer instead of ``B`` separate
        :meth:`KVCache.append` hops, and each session's page faults for the
        whole chunk are taken in a single allocation pass (the multi-row
        analogue of the one-token decode append).  Equivalent to calling
        :meth:`append` per session in order.
        """
        if not (len(session_ids) == len(keys_list) == len(values_list)):
            raise ValueError("session_ids, keys and values must align")
        for sid, keys, values in zip(session_ids, keys_list, values_list):
            self.append(sid, layer, keys, values)

    def _take_page(self) -> int:
        if not self._free:
            self._grow()
        page = self._free.pop()
        self.stats.page_faults += 1
        self.stats.pages_in_use += 1
        self.stats.peak_pages_in_use = max(
            self.stats.peak_pages_in_use, self.stats.pages_in_use
        )
        return page

    def _grow(self) -> None:
        old_n = self.n_pages
        new_n = old_n * 2
        if self.max_pages is not None:
            new_n = min(new_n, self.max_pages)
        if new_n <= old_n:
            raise RuntimeError(
                f"arena exhausted: all {old_n} pages in use (max_pages bound)"
            )
        shape = (self.n_layers, new_n, self.page_size, self.hidden_size)
        for attr in ("_k", "_v"):
            grown = np.zeros(shape, dtype=self._k.dtype)
            grown[:, :old_n] = getattr(self, attr)
            setattr(self, attr, grown)
        self._free.extend(range(new_n - 1, old_n - 1, -1))
        self.stats.pool_grows += 1
        self.stats.n_pages = new_n

    # -- truncation (KVCache.clear support) ------------------------------------

    def clear_layer(self, session_id: int, layer: int) -> None:
        """Reset one layer's write cursor; pages free once every layer is empty."""
        entry = self._sessions[session_id]
        entry.lengths[layer] = 0
        self._invalidate(session_id)
        if not entry.lengths.any():
            self._release_pages(entry)

    # -- materialisation -------------------------------------------------------

    def _session_rows(self, pool: np.ndarray, session_id: int, layer: int) -> np.ndarray:
        entry = self._sessions[session_id]
        length = int(entry.lengths[layer])
        if length == 0:
            return np.empty((0, self.hidden_size), dtype=pool.dtype)
        ps = self.page_size
        pages = np.asarray(entry.pages[: -(-length // ps)], dtype=np.int64)
        rows = pool[layer, pages].reshape(-1, self.hidden_size)[:length]
        self.stats.view_bytes_copied += rows.nbytes
        return rows

    def session_keys(self, session_id: int, layer: int) -> np.ndarray:
        """Contiguous ``(seq_len, hidden)`` copy of one session's keys."""
        return self._session_rows(self._k, session_id, layer)

    def session_values(self, session_id: int, layer: int) -> np.ndarray:
        """Contiguous ``(seq_len, hidden)`` copy of one session's values."""
        return self._session_rows(self._v, session_id, layer)

    def gather_batch(
        self, layer: int, session_ids: Sequence[int]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Padded ``(B, max_len, hidden)`` K/V views for one layer's batch.

        The returned arrays are views into a per-layer batch buffer that the
        arena maintains incrementally: while ``session_ids`` is unchanged
        since the previous call, only the rows appended in between are copied
        (one vectorised gather of ``B`` rows per decode step).  Composition
        changes, truncations or buffer exhaustion trigger a full rebuild --
        still a single fancy-index gather over the page pool rather than a
        per-session stacking loop.  Rows past each session's length are
        arbitrary (finite) padding; callers mask them exactly as the stacking
        path masks its zero padding.

        Returns ``(keys, values, lengths)``; the views stay valid until the
        next ``gather_batch`` / ``free`` / ``clear_layer`` call.
        """
        sids = tuple(session_ids)
        if not sids:
            raise ValueError("session_ids must not be empty")
        entries = [self._sessions[s] for s in sids]
        lengths = np.array([int(e.lengths[layer]) for e in entries], dtype=np.int64)
        max_len = int(lengths.max())
        ps = self.page_size
        itemsize = self._k.itemsize
        cache = self._gather[layer]

        fresh = (
            cache is not None
            and cache["sids"] == sids
            and cache["cap"] >= max_len
            and bool((lengths >= cache["lengths"]).all())
        )
        if fresh:
            delta = lengths - cache["lengths"]
            total_new = int(delta.sum())
            if total_new:
                grew = np.flatnonzero(delta)
                if int(delta.max()) == 1:
                    # the decode-step fast path: one new row per grown stream
                    pos = lengths[grew] - 1
                    pages = np.array(
                        [entries[b].pages[p] for b, p in zip(grew, pos // ps)],
                        dtype=np.int64,
                    )
                    slots = pos % ps
                    cache["k"][grew, pos] = self._k[layer, pages, slots]
                    cache["v"][grew, pos] = self._v[layer, pages, slots]
                else:
                    for b in grew:
                        start, stop = int(cache["lengths"][b]), int(lengths[b])
                        entry = entries[b]
                        pos = start
                        while pos < stop:
                            page = entry.pages[pos // ps]
                            slot = pos % ps
                            n = min(ps - slot, stop - pos)
                            cache["k"][b, pos : pos + n] = self._k[
                                layer, page, slot : slot + n
                            ]
                            cache["v"][b, pos : pos + n] = self._v[
                                layer, page, slot : slot + n
                            ]
                            pos += n
                self.stats.gather_bytes_copied += (
                    2 * total_new * self.hidden_size * itemsize
                )
            self.stats.gather_incremental += 1
            cache["lengths"] = lengths
        else:
            # full rebuild: one fancy-index gather per pool, padded to page
            # boundaries, with headroom so steady-state steps stay incremental
            n_batch_pages = max(1, -(-max_len // ps))
            cap = (n_batch_pages + 8) * ps
            table = np.zeros((len(sids), n_batch_pages), dtype=np.int64)
            for b, entry in enumerate(entries):
                used = entry.pages[: -(-int(lengths[b]) // ps)] if lengths[b] else []
                table[b, : len(used)] = used
            buf_k = np.zeros((len(sids), cap, self.hidden_size), dtype=self._k.dtype)
            buf_v = np.zeros_like(buf_k)
            span = n_batch_pages * ps
            buf_k[:, :span] = self._k[layer, table].reshape(len(sids), span, -1)
            buf_v[:, :span] = self._v[layer, table].reshape(len(sids), span, -1)
            cache = {
                "sids": sids,
                "lengths": lengths,
                "k": buf_k,
                "v": buf_v,
                "cap": cap,
            }
            self._gather[layer] = cache
            self.stats.gather_rebuilds += 1
            self.stats.gather_bytes_copied += (
                2 * len(sids) * span * self.hidden_size * itemsize
            )
        return cache["k"][:, :max_len], cache["v"][:, :max_len], lengths
