"""Multi-replica cluster serving: router, session affinity, failover.

The fleet control plane of the "millions of users" arc.  A
:class:`ClusterEngine` owns ``D`` independent
:class:`~repro.serve.scheduler.ServingEngine` replicas -- each with its own
paged KV arena, admission/scheduling policies and (optionally) its own
seeded :class:`~repro.serve.faults.FaultInjector` stream -- behind a
pluggable :class:`~repro.serve.policies.RoutingPolicy`:

* ``rr`` -- round-robin over healthy replicas (the bit-identity anchor:
  D=1 round-robin reproduces a bare engine exactly);
* ``least-loaded`` -- emptiest replica by (queue depth, arena occupancy);
* ``affinity`` -- prompt-head hashing so shared-prefix requests land on
  the replica whose prefix cache already holds their pages.

Admission is two-level: submissions wait in one cluster-wide arrival queue
(a min-heap on ``(arrival_step, submission order)``) and are routed to a
replica *at their arrival step*; from there the replica's own admission
policy (watermarks, arena budgets) takes over.  Because dispatch preserves
the ``(arrival_step, submission index)`` order and happens before the
replica's step runs, a request observes the exact same admission schedule a
bare engine would have given it.

Failover: every replica carries a health window over its failure events
(fault-injector fires + terminal ``FAILED`` requests).  A replica whose
window trips ``failover_threshold`` is marked DOWN: it receives no new
routes, its *queued* (never-admitted) requests are withdrawn and re-routed
to healthy replicas at the same cluster step (original ``arrival_step``
preserved, so latency and timeout accounting survive the move), while its
admitted work keeps stepping to a natural terminal state -- a drain, not a
kill.  After ``failover_cooldown`` steps the replica is marked UP and
routable again.  Sessions re-routed this way update the cluster's affinity
map, so subsequent requests with the same affinity key follow them.

Everything is step-domain deterministic.  The only randomness -- per-replica
fault streams -- is derived by spawning one ``numpy`` ``SeedSequence`` per
replica from the cluster ``seed``, so any ``(routing policy, D, fault
plan)`` configuration replays bit-for-bit: same routes, same failovers,
same tokens, same :class:`ClusterReport`.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .faults import FaultInjector, FaultPlan
from .policies import (
    AdmissionPolicy,
    RoutingPolicy,
    SchedulingPolicy,
    make_policies,
    make_routing,
)
from .scheduler import RequestHandle, ServingEngine, ServingReport
from .session import Request, RequestMetrics, SessionState

__all__ = [
    "ClusterEngine",
    "ClusterHandle",
    "ClusterReport",
    "Replica",
]

ClusterTokenCallback = Callable[["ClusterHandle", int, int], None]
ClusterCompleteCallback = Callable[["ClusterHandle", RequestMetrics], None]


class Replica:
    """One engine in the fleet plus its health bookkeeping.

    Routing policies read the load views (:attr:`queue_load`,
    :attr:`pages_in_use`) and the :attr:`up` flag; the cluster drives
    :meth:`observe` once per step to maintain the failure window.
    """

    __slots__ = (
        "index",
        "engine",
        "up",
        "down_step",
        "downs",
        "_window",
        "_window_steps",
        "_last_fires",
        "_last_failed",
    )

    def __init__(self, index: int, engine: ServingEngine, window_steps: int) -> None:
        self.index = index
        self.engine = engine
        self.up = True
        self.down_step: Optional[int] = None
        self.downs = 0
        self._window: deque = deque()
        self._window_steps = window_steps
        self._last_fires = 0
        self._last_failed = 0

    @property
    def queue_load(self) -> int:
        """Requests this replica is responsible for (queued + in batch)."""
        return self.engine.n_queued + self.engine.n_active

    @property
    def pages_in_use(self) -> int:
        """Live KV pages on this replica's arena (0 when arena-less)."""
        arena = self.engine.arena
        return arena.stats.pages_in_use if arena is not None else 0

    def observe(self, step: int) -> int:
        """Record this step's failure events; return the window total.

        Failure events are the deltas of the replica's fault-injector fire
        count and its terminally-``FAILED`` request count -- both monotone,
        so deltas are cheap and exact.  The window holds the last
        ``window_steps`` cluster steps.
        """
        injector = self.engine.fault_injector
        fires = injector.total_fires if injector is not None else 0
        failed = self.engine.n_failed
        events = (fires - self._last_fires) + (failed - self._last_failed)
        self._last_fires = fires
        self._last_failed = failed
        self._window.append((step, events))
        horizon = step - self._window_steps
        while self._window and self._window[0][0] <= horizon:
            self._window.popleft()
        return sum(count for _, count in self._window)

    def reset_window(self) -> None:
        """Forget accumulated failures (called when the replica recovers)."""
        self._window.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.up else f"down@{self.down_step}"
        return f"Replica({self.index}, {state}, load={self.queue_load})"


class ClusterHandle:
    """The caller's view of one cluster-routed request.

    Stable across failover: a re-route swaps the underlying per-replica
    :class:`~repro.serve.scheduler.RequestHandle` (the withdrawn one never
    fires callbacks), while this object -- the one user callbacks receive --
    stays the same.  ``replica_index`` always names the replica currently
    responsible; ``rerouted`` counts failover moves.
    """

    __slots__ = (
        "request",
        "index",
        "affinity_key",
        "on_token",
        "on_complete",
        "handle",
        "replica_index",
        "rerouted",
    )

    def __init__(
        self,
        request: Request,
        index: int,
        affinity_key: str,
        on_token: Optional[ClusterTokenCallback] = None,
        on_complete: Optional[ClusterCompleteCallback] = None,
    ) -> None:
        self.request = request
        self.index = index
        self.affinity_key = affinity_key
        self.on_token = on_token
        self.on_complete = on_complete
        self.handle: Optional[RequestHandle] = None
        self.replica_index: Optional[int] = None
        self.rerouted = 0

    @property
    def request_id(self) -> str:
        return self.request.request_id

    @property
    def dispatched(self) -> bool:
        """Whether the request has been routed to a replica yet."""
        return self.handle is not None

    @property
    def state(self) -> SessionState:
        if self.handle is None:
            return SessionState.QUEUED
        return self.handle.state

    @property
    def generated_tokens(self) -> List[int]:
        return [] if self.handle is None else self.handle.generated_tokens

    @property
    def done(self) -> bool:
        return self.handle is not None and self.handle.session.is_terminal

    def metrics(self) -> RequestMetrics:
        if self.handle is None:
            raise ValueError(
                f"request {self.request_id!r} was never dispatched to a replica"
            )
        return self.handle.metrics()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ClusterHandle({self.request_id!r}, replica={self.replica_index}, "
            f"state={self.state.name}, rerouted={self.rerouted})"
        )


@dataclass
class ClusterReport:
    """Aggregate outcome of a cluster run: D replica reports plus fleet views.

    ``replicas`` embeds one full :class:`~repro.serve.scheduler.ServingReport`
    per replica (every request appears on exactly one of them -- withdrawn
    re-routes leave no trace on the replica they left).  The fleet-level
    aggregates are derived, never stored: percentiles pool all replicas'
    requests, :attr:`load_imbalance` is the coefficient of variation of
    per-replica served tokens (0.0 means a perfectly even fleet), and
    :attr:`prefix_hit_rate` pools the per-replica prefix-cache counters --
    the locality metric affinity routing exists to improve.
    ``failover_events`` is the step-stamped down/up history.  ``to_json`` /
    ``from_json`` follow the tolerant contract of the per-engine report:
    unknown keys are ignored, missing keys default.
    """

    steps: int
    routing: str = "rr"
    replicas: List[ServingReport] = field(default_factory=list)
    failover_events: List[dict] = field(default_factory=list)
    rerouted: int = 0
    affinity_hits: int = 0
    leftover_pending: int = 0

    @property
    def n_replicas(self) -> int:
        return len(self.replicas)

    @property
    def fleet_requests(self) -> List[RequestMetrics]:
        return [m for report in self.replicas for m in report.requests]

    @property
    def total_tokens(self) -> int:
        return sum(report.total_tokens for report in self.replicas)

    @property
    def throughput_tokens_per_step(self) -> float:
        return self.total_tokens / self.steps if self.steps else 0.0

    @property
    def tokens_by_replica(self) -> List[int]:
        return [report.total_tokens for report in self.replicas]

    def latency_percentile(self, q: float) -> float:
        """Fleet-wide latency percentile over finished requests."""
        pool = [
            m.latency_steps
            for m in self.fleet_requests
            if m.outcome == "finished" and m.latency_steps is not None
        ]
        return float(np.percentile(pool, q)) if pool else 0.0

    def ttft_percentile(self, q: float) -> float:
        """Fleet-wide time-to-first-token percentile (finished requests)."""
        pool = [
            m.time_to_first_token_steps
            for m in self.fleet_requests
            if m.outcome == "finished"
            and m.time_to_first_token_steps is not None
        ]
        return float(np.percentile(pool, q)) if pool else 0.0

    @property
    def load_imbalance(self) -> float:
        """Coefficient of variation (std/mean) of per-replica served tokens."""
        tokens = self.tokens_by_replica
        if not tokens:
            return 0.0
        mean = float(np.mean(tokens))
        if mean == 0.0:
            return 0.0
        return float(np.std(tokens) / mean)

    @property
    def prefix_hits(self) -> int:
        return sum(
            (r.arena or {}).get("prefix_hits", 0) for r in self.replicas
        )

    @property
    def prefix_hit_rate(self) -> Optional[float]:
        """Fleet prefix-cache hit rate, ``None`` without any lookups."""
        hits = self.prefix_hits
        misses = sum(
            (r.arena or {}).get("prefix_misses", 0) for r in self.replicas
        )
        total = hits + misses
        return hits / total if total else None

    def to_json(self) -> dict:
        """JSON dict: stored fields plus derived fleet aggregates.

        Like :meth:`ServingReport.to_json`, the derived block is for human
        consumption; :meth:`from_json` recomputes it from the stored fields.
        """
        return {
            "steps": self.steps,
            "routing": self.routing,
            "n_replicas": self.n_replicas,
            "rerouted": self.rerouted,
            "affinity_hits": self.affinity_hits,
            "leftover_pending": self.leftover_pending,
            "total_tokens": self.total_tokens,
            "throughput_tokens_per_step": self.throughput_tokens_per_step,
            "tokens_by_replica": self.tokens_by_replica,
            "load_imbalance": self.load_imbalance,
            "prefix_hit_rate": self.prefix_hit_rate,
            "fleet_p50_latency_steps": self.latency_percentile(50),
            "fleet_p95_latency_steps": self.latency_percentile(95),
            "fleet_p50_ttft_steps": self.ttft_percentile(50),
            "fleet_p95_ttft_steps": self.ttft_percentile(95),
            "failover_events": list(self.failover_events),
            "replicas": [report.to_json() for report in self.replicas],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "ClusterReport":
        """Tolerant inverse of :meth:`to_json` (unknown keys ignored)."""
        return cls(
            steps=int(payload.get("steps", 0)),
            routing=str(payload.get("routing", "rr")),
            replicas=[
                ServingReport.from_json(entry)
                for entry in payload.get("replicas", [])
            ],
            failover_events=list(payload.get("failover_events", [])),
            rerouted=int(payload.get("rerouted", 0)),
            affinity_hits=int(payload.get("affinity_hits", 0)),
            leftover_pending=int(payload.get("leftover_pending", 0)),
        )

    def summary(self) -> str:
        """Human-readable fleet summary with one row per replica."""
        lines = [
            f"cluster: {self.n_replicas} replica(s), routing={self.routing}, "
            f"{self.steps} steps",
            f"  fleet tokens: {self.total_tokens} "
            f"({self.throughput_tokens_per_step:.2f} tokens/step), "
            f"imbalance CV {self.load_imbalance:.3f}",
            f"  fleet latency p50/p95: {self.latency_percentile(50):.0f}/"
            f"{self.latency_percentile(95):.0f} steps, "
            f"TTFT p50/p95: {self.ttft_percentile(50):.0f}/"
            f"{self.ttft_percentile(95):.0f} steps",
        ]
        if self.prefix_hit_rate is not None:
            lines.append(
                f"  prefix locality: {self.prefix_hits} hits "
                f"(rate {self.prefix_hit_rate:.2f})"
            )
        if self.rerouted or self.failover_events:
            downs = sum(1 for e in self.failover_events if e.get("event") == "down")
            lines.append(
                f"  failover: {downs} down event(s), "
                f"{self.rerouted} request(s) re-routed"
            )
        header = f"  {'replica':>8} {'requests':>9} {'tokens':>8} {'p95 lat':>8}"
        lines.append(header)
        for idx, report in enumerate(self.replicas):
            lines.append(
                f"  {idx:>8} {len(report.requests):>9} "
                f"{report.total_tokens:>8} {report.latency_percentile(95):>8.0f}"
            )
        if self.leftover_pending:
            lines.append(f"  leftover pending (never dispatched): {self.leftover_pending}")
        return "\n".join(lines)


class ClusterEngine:
    """D data-parallel :class:`ServingEngine` replicas behind one router.

    Construction mirrors a single engine -- every extra keyword argument
    (``page_size``, ``max_pages``, ``prefix_cache``, ``kv_dtype``,
    ``kv_snapshots``, ``prefill_token_budget``, ...) is forwarded verbatim
    to each replica's constructor -- plus the fleet knobs:

    * ``n_replicas`` -- D, the data-parallel width.
    * ``routing`` -- a policy name (``"rr"``, ``"least-loaded"``,
      ``"affinity"``) or a :class:`RoutingPolicy` instance.
    * ``policies`` -- ``None`` (engine defaults), a ``make_policies`` name
      applied to every replica, or a callable ``replica_index -> (admission,
      scheduling)`` for heterogeneous fleets.
    * ``faults`` -- one :class:`FaultPlan` template; each replica gets its
      own plan with a seed spawned from ``seed`` via ``SeedSequence``, so
      fault streams are independent across replicas yet fully reproducible.
    * ``failover_threshold`` / ``failover_window`` / ``failover_cooldown``
      -- a replica accumulating ``threshold`` failure events within
      ``window`` steps is marked down for ``cooldown`` steps (``None``
      threshold disables health tracking entirely).

    The cluster steps *all* replicas every :meth:`step`, so replica step
    counters stay aligned with the cluster's -- one shared step domain.
    With ``n_replicas=1`` and round-robin routing the whole apparatus is
    transparent: tokens, metrics and the replica report are bit-identical
    to a bare engine serving the same trace.
    """

    def __init__(
        self,
        model,
        n_replicas: int = 2,
        routing: Union[str, RoutingPolicy] = "rr",
        max_active: int = 8,
        policies: Union[
            None,
            str,
            Callable[[int], Tuple[AdmissionPolicy, SchedulingPolicy]],
        ] = None,
        seed: int = 0,
        faults: Optional[FaultPlan] = None,
        failover_threshold: Optional[int] = 4,
        failover_window: int = 8,
        failover_cooldown: int = 16,
        **engine_kwargs,
    ) -> None:
        if n_replicas < 1:
            raise ValueError(f"n_replicas must be >= 1, got {n_replicas}")
        if isinstance(faults, FaultInjector):
            raise TypeError(
                "pass a FaultPlan template, not a FaultInjector: the cluster "
                "derives one independently-seeded plan per replica"
            )
        if failover_window < 1:
            raise ValueError(f"failover_window must be >= 1, got {failover_window}")
        if failover_cooldown < 1:
            raise ValueError(
                f"failover_cooldown must be >= 1, got {failover_cooldown}"
            )
        self.routing = make_routing(routing) if isinstance(routing, str) else routing
        self.seed = int(seed)
        self.failover_threshold = failover_threshold
        self.failover_window = failover_window
        self.failover_cooldown = failover_cooldown

        children = np.random.SeedSequence(self.seed).spawn(n_replicas)
        self.replicas: List[Replica] = []
        for index, child in enumerate(children):
            if policies is None:
                admission: Optional[AdmissionPolicy] = None
                scheduling: Optional[SchedulingPolicy] = None
            elif isinstance(policies, str):
                admission, scheduling = make_policies(policies)
            else:
                admission, scheduling = policies(index)
            plan = None
            if faults is not None:
                plan = replace(faults, seed=int(child.generate_state(1)[0]))
            engine = ServingEngine(
                model,
                max_active=max_active,
                admission=admission,
                scheduling=scheduling,
                faults=plan,
                **engine_kwargs,
            )
            self.replicas.append(Replica(index, engine, failover_window))

        self.current_step = 0
        self.failover_events: List[dict] = []
        self._pending: List[Tuple[int, int, ClusterHandle]] = []
        self._deferred: List[ClusterHandle] = []
        self._routed: Dict[str, ClusterHandle] = {}
        self._request_ids: set = set()
        self._affinity: Dict[str, int] = {}
        self._affinity_hits = 0
        self._rerouted = 0
        self._submitted = 0
        self._dropped_pending = 0
        self._closed = False

    # -- submission ------------------------------------------------------------

    def submit(
        self,
        request: Request,
        on_token: Optional[ClusterTokenCallback] = None,
        on_complete: Optional[ClusterCompleteCallback] = None,
        affinity_key: Optional[str] = None,
    ) -> ClusterHandle:
        """Queue one request with the fleet; returns its :class:`ClusterHandle`.

        The request waits in the cluster arrival queue until its
        ``arrival_step``, is then routed to a replica and submitted there
        with its original arrival step, so replica-side accounting (queue
        delay, TTFT, timeouts) is measured from cluster arrival.  Requests
        sharing an ``affinity_key`` ("session" stickiness) are routed to the
        same replica while it stays healthy; the default key is the request
        id, which makes retries after a failover re-route follow the moved
        request.  Callbacks receive this handle, and survive re-routing.
        """
        if self._closed:
            raise RuntimeError(
                f"cluster is closed (drain/shutdown); cannot submit "
                f"{request.request_id!r}"
            )
        if request.request_id in self._request_ids:
            raise ValueError(f"duplicate request_id {request.request_id!r}")
        self._request_ids.add(request.request_id)
        handle = ClusterHandle(
            request,
            self._submitted,
            request.request_id if affinity_key is None else affinity_key,
            on_token=on_token,
            on_complete=on_complete,
        )
        heapq.heappush(
            self._pending, (request.arrival_step, handle.index, handle)
        )
        self._submitted += 1
        return handle

    def submit_many(self, requests: Sequence[Request]) -> List[ClusterHandle]:
        return [self.submit(r) for r in requests]

    def cancel(self, handle: ClusterHandle) -> bool:
        """Abort a request anywhere in the fleet; False once terminal."""
        if handle.handle is not None:
            return self.replicas[handle.replica_index].engine.cancel(handle.handle)
        # still in the cluster arrival queue: route it nowhere, ever
        for i, (_, _, pending) in enumerate(self._pending):
            if pending is handle:
                self._pending.pop(i)
                heapq.heapify(self._pending)
                return True
        if handle in self._deferred:
            self._deferred.remove(handle)
            return True
        return False

    # -- fleet views -----------------------------------------------------------

    @property
    def n_replicas(self) -> int:
        return len(self.replicas)

    @property
    def n_healthy(self) -> int:
        return sum(1 for r in self.replicas if r.up)

    @property
    def n_pending(self) -> int:
        """Requests still waiting in the cluster queue (never dispatched)."""
        return len(self._pending) + len(self._deferred)

    @property
    def has_work(self) -> bool:
        return bool(self._pending or self._deferred) or any(
            r.engine.has_work for r in self.replicas
        )

    # -- dispatch --------------------------------------------------------------

    def _dispatch(self, chandle: ClusterHandle, step: int) -> bool:
        """Route one due request to a replica; False when none is healthy."""
        target: Optional[Replica] = None
        mapped = self._affinity.get(chandle.affinity_key)
        if mapped is not None and self.replicas[mapped].up:
            target = self.replicas[mapped]
            self._affinity_hits += 1
        if target is None:
            if not any(r.up for r in self.replicas):
                return False
            target = self.routing.route(
                chandle.request, tuple(self.replicas), step
            )
            if not target.up:
                raise RuntimeError(
                    f"routing policy {self.routing.name!r} returned down "
                    f"replica {target.index}"
                )
        self._affinity[chandle.affinity_key] = target.index

        user_on_token = chandle.on_token
        user_on_complete = chandle.on_complete
        on_token = None
        if user_on_token is not None:
            def on_token(_handle, token, at_step, _ch=chandle, _cb=user_on_token):
                _cb(_ch, token, at_step)

        on_complete = None
        if user_on_complete is not None:
            def on_complete(_handle, metrics, _ch=chandle, _cb=user_on_complete):
                _cb(_ch, metrics)

        replica_handle = target.engine.submit(
            chandle.request, on_token=on_token, on_complete=on_complete
        )
        if chandle.handle is not None:
            chandle.rerouted += 1
            self._rerouted += 1
        chandle.handle = replica_handle
        chandle.replica_index = target.index
        self._routed[chandle.request_id] = chandle
        return True

    def _reroute_queued(self, replica: Replica, step: int) -> int:
        """Withdraw a down replica's queued backlog and re-route it."""
        moved = 0
        for replica_handle in replica.engine.queued_handles:
            if replica_handle.session.state is not SessionState.QUEUED:
                continue  # preempted/backoff re-entries hold progress; drain here
            chandle = self._routed.get(replica_handle.request_id)
            if chandle is None or chandle.handle is not replica_handle:
                continue  # directly-submitted work is not cluster-owned
            if not replica.engine.withdraw(replica_handle):
                continue
            moved += 1
            if not self._dispatch(chandle, step):
                self._deferred.append(chandle)
        return moved

    # -- stepping --------------------------------------------------------------

    def step(self) -> Dict[str, int]:
        """Advance the whole fleet one step; returns all emitted tokens.

        Order within a cluster step: (1) cooled-down replicas recover,
        (2) due arrivals (and previously-undeliverable deferrals) are routed
        and submitted, (3) every replica runs one engine step, (4) health
        windows update and tripped replicas go down, re-routing their queued
        backlog.  The emitted-token dict is keyed by request id, which is
        unique fleet-wide, so replicas cannot shadow each other.
        """
        step = self.current_step

        for replica in self.replicas:
            if (
                not replica.up
                and step - replica.down_step >= self.failover_cooldown
            ):
                replica.up = True
                replica.down_step = None
                replica.reset_window()
                self.failover_events.append(
                    {"step": step, "replica": replica.index, "event": "up"}
                )

        deferred, self._deferred = self._deferred, []
        for chandle in deferred:
            if not self._dispatch(chandle, step):
                self._deferred.append(chandle)
        while self._pending and self._pending[0][0] <= step:
            _, _, chandle = heapq.heappop(self._pending)
            if not self._dispatch(chandle, step):
                self._deferred.append(chandle)

        emitted: Dict[str, int] = {}
        for replica in self.replicas:
            emitted.update(replica.engine.step())

        if self.failover_threshold is not None:
            for replica in self.replicas:
                failures = replica.observe(step)
                if replica.up and failures >= self.failover_threshold:
                    replica.up = False
                    replica.down_step = step
                    replica.downs += 1
                    moved = self._reroute_queued(replica, step)
                    self.failover_events.append(
                        {
                            "step": step,
                            "replica": replica.index,
                            "event": "down",
                            "rerouted": moved,
                        }
                    )

        self.current_step += 1
        return emitted

    def run(self, max_steps: int = 100_000) -> ClusterReport:
        """Step until every submitted request resolves (or ``max_steps``)."""
        while self.has_work and self.current_step < max_steps:
            self.step()
        return self.report()

    def drain(self, max_steps: int = 100_000) -> ClusterReport:
        """Graceful stop: refuse new work, run the backlog dry, report."""
        self._closed = True
        return self.run(max_steps)

    def shutdown(self) -> ClusterReport:
        """Immediate stop: shed all outstanding work on every replica.

        Requests still in the cluster arrival queue were never dispatched;
        they are dropped and surface as ``leftover_pending`` in the report.
        """
        self._closed = True
        self._dropped_pending += self.n_pending
        self._pending.clear()
        self._deferred.clear()
        for replica in self.replicas:
            replica.engine.shutdown()
        return self.report()

    def report(self) -> ClusterReport:
        """Aggregate the fleet's :class:`ServingReport`s into one view."""
        return ClusterReport(
            steps=self.current_step,
            routing=self.routing.name,
            replicas=[replica.engine.report() for replica in self.replicas],
            failover_events=list(self.failover_events),
            rerouted=self._rerouted,
            affinity_hits=self._affinity_hits,
            leftover_pending=self.n_pending + self._dropped_pending,
        )
