"""Per-request generation sessions for the batched serving engine.

A :class:`Request` describes one user generation job (prompt, decode budget,
arrival time); a :class:`GenerationSession` is its live server-side state: an
:class:`~repro.model.generation.IncrementalDecoder` holding the request's KV
caches plus lifecycle timestamps and traffic counters.  Sessions are the unit
the continuous-batching scheduler admits, steps and retires -- many sessions
share one model (and one decoded-plane cache) while each keeps its own cache
and statistics, mirroring how a serving accelerator multiplexes independent
streams over resident weights.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Sequence

from ..model.generation import IncrementalDecoder, KeyPredictor

__all__ = ["Request", "RequestMetrics", "SessionState", "GenerationSession"]


@dataclass(frozen=True)
class Request:
    """One generation job submitted to the serving engine."""

    request_id: str
    prompt_tokens: Sequence[int]
    max_new_tokens: int = 16
    eos_token: Optional[int] = None
    arrival_step: int = 0

    def __post_init__(self) -> None:
        if len(self.prompt_tokens) == 0:  # len(), not truthiness: arrays are welcome
            raise ValueError(f"request {self.request_id!r} has an empty prompt")
        if self.max_new_tokens < 1:
            raise ValueError("max_new_tokens must be >= 1")
        if self.arrival_step < 0:
            raise ValueError("arrival_step must be >= 0")


class SessionState(Enum):
    QUEUED = "queued"
    ACTIVE = "active"
    FINISHED = "finished"


@dataclass(frozen=True)
class RequestMetrics:
    """Lifecycle and traffic metrics of one completed request.

    The single source of truth for the derived serving metrics; live sessions
    produce one via :meth:`GenerationSession.to_metrics` once finished.
    """

    request_id: str
    arrival_step: int
    admitted_step: int
    first_token_step: int
    finished_step: int
    n_generated: int
    keys_attended: int
    keys_total: int

    @property
    def queue_delay_steps(self) -> int:
        return self.admitted_step - self.arrival_step

    @property
    def time_to_first_token_steps(self) -> int:
        return self.first_token_step - self.arrival_step

    @property
    def latency_steps(self) -> int:
        return self.finished_step - self.arrival_step

    @property
    def attention_density(self) -> float:
        return self.keys_attended / self.keys_total if self.keys_total else 1.0


class GenerationSession:
    """Server-side state of one request: KV caches, tokens and timestamps.

    The token-emission schedule matches :func:`repro.model.generation.generate`
    exactly: the first token comes out of the prefill forward pass, every later
    token out of one decode step, and no trailing forward pass runs once the
    decode budget (or EOS) is reached.  A request served through a session
    therefore produces bit-identical tokens to a solo ``generate()`` call.
    """

    def __init__(
        self,
        request: Request,
        model,
        predictor: Optional[KeyPredictor] = None,
        arena=None,
    ) -> None:
        self.request = request
        self.decoder = IncrementalDecoder(model, predictor=predictor, arena=arena)
        self.state = SessionState.QUEUED
        self.generated_tokens: List[int] = []
        self.admitted_step: Optional[int] = None
        self.first_token_step: Optional[int] = None
        self.finished_step: Optional[int] = None
        self._pending_token: Optional[int] = None

    # -- lifecycle -------------------------------------------------------------

    def admit(self, step: int) -> int:
        """Prefill the prompt and emit the request's first token."""
        if self.state is not SessionState.QUEUED:
            raise RuntimeError(f"session {self.request.request_id!r} already admitted")
        self.state = SessionState.ACTIVE
        self.admitted_step = step
        self._pending_token = self.decoder.prefill(self.request.prompt_tokens)
        return self._commit(step)

    def decode_step(self, step: int) -> int:
        """Emit one more token (running a decode forward pass when needed)."""
        if self.state is not SessionState.ACTIVE:
            raise RuntimeError(
                f"session {self.request.request_id!r} is not active ({self.state.value})"
            )
        self._pending_token = self.decoder.step(self.generated_tokens[-1])
        return self._commit(step)

    @staticmethod
    def decode_step_batch(
        sessions: Sequence["GenerationSession"], step: int
    ) -> Dict[str, int]:
        """Emit one token from every active session via a single fused step.

        All sessions advance through
        :meth:`~repro.model.generation.IncrementalDecoder.step_batch` -- one
        quantised forward pass for the whole batch when the shared model
        supports it, a per-session fallback otherwise -- and each session
        commits its token exactly as :meth:`decode_step` would, so tokens,
        lifecycle timestamps and traffic counters are bit-identical to
        stepping the sessions one at a time.
        """
        sessions = list(sessions)
        for session in sessions:
            if session.state is not SessionState.ACTIVE:
                raise RuntimeError(
                    f"session {session.request.request_id!r} is not active "
                    f"({session.state.value})"
                )
        next_tokens = IncrementalDecoder.step_batch(
            [session.decoder for session in sessions],
            [session.generated_tokens[-1] for session in sessions],
        )
        emitted: Dict[str, int] = {}
        for session, token in zip(sessions, next_tokens):
            session._pending_token = token
            emitted[session.request.request_id] = session._commit(step)
        return emitted

    def _commit(self, step: int) -> int:
        token = int(self._pending_token)
        self.generated_tokens.append(token)
        if self.first_token_step is None:
            self.first_token_step = step
        eos = self.request.eos_token
        if (eos is not None and token == eos) or (
            len(self.generated_tokens) >= self.request.max_new_tokens
        ):
            self.state = SessionState.FINISHED
            self.finished_step = step
        return token

    def release_kv(self) -> None:
        """Free the session's KV storage (arena pages or standalone buffers).

        The scheduler calls this when it retires a finished session, so arena
        occupancy tracks live tokens rather than peak concurrency.  Metrics
        and generated tokens are unaffected; only further decoding becomes
        impossible.
        """
        self.decoder.release()

    # -- metrics ---------------------------------------------------------------

    @property
    def is_finished(self) -> bool:
        return self.state is SessionState.FINISHED

    @property
    def n_generated(self) -> int:
        return len(self.generated_tokens)

    @property
    def keys_attended(self) -> int:
        return self.decoder.keys_attended

    @property
    def keys_total(self) -> int:
        return self.decoder.keys_total

    def to_metrics(self) -> RequestMetrics:
        """Snapshot the finished session as an immutable metrics record."""
        if not self.is_finished:
            raise RuntimeError(
                f"session {self.request.request_id!r} is not finished yet"
            )
        return RequestMetrics(
            request_id=self.request.request_id,
            arrival_step=self.request.arrival_step,
            admitted_step=int(self.admitted_step),
            first_token_step=int(self.first_token_step),
            finished_step=int(self.finished_step),
            n_generated=self.n_generated,
            keys_attended=self.keys_attended,
            keys_total=self.keys_total,
        )
