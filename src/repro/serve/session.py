"""Per-request generation sessions for the batched serving engine.

A :class:`Request` describes one user generation job (prompt, decode budget,
arrival time, priority, optional deadline); a :class:`GenerationSession` is
its live server-side state: an
:class:`~repro.model.generation.IncrementalDecoder` holding the request's KV
caches plus lifecycle timestamps and traffic counters.  Sessions are the unit
the serving engine admits, steps, preempts and retires -- many sessions share
one model (and one decoded-plane cache) while each keeps its own cache and
statistics, mirroring how a serving accelerator multiplexes independent
streams over resident weights.

The session lifecycle is a small state machine::

    QUEUED --begin_admit()--> PREFILLING --(last chunk)--> ACTIVE --(budget/EOS)--> FINISHED
                                  ^   |                     |
                                  |   +-- preempt()/retry()-+
                           begin_resume()     v
                                  +------ PREEMPTED

    any non-terminal state --cancel()--> CANCELLED
    any non-terminal state --finalize()--> FAILED | TIMED_OUT | SHED

``FINISHED``, ``CANCELLED``, ``FAILED``, ``TIMED_OUT`` and ``SHED`` are
terminal: the engine resolves every request into exactly one of them, and
:meth:`GenerationSession.to_metrics` works for any of them (``outcome``
names which).  :meth:`retry` is the fault-recovery twin of :meth:`preempt`:
same KV release and ``PREEMPTED`` re-entry (so a resume re-prefills
``prompt + generated`` bit-identically), but counted as a retry rather than
a policy eviction.

Admission enters the **chunked prefill pipeline**: a ``PREFILLING`` session
feeds its prompt to the model in ragged chunks (batched with every other
prefilling and decoding session, one fused pass per engine step) and emits
its first token the step the last chunk lands.  ``admit()``/``resume()``
remain as the one-shot serial path for models without a batched prefill.

Preemption is the mechanism behind priority/deadline scheduling policies: a
preempted session -- mid-decode *or* mid-prefill -- *releases its KV
storage* (arena pages return to the shared pool immediately) and snapshots
only its generated tokens; :meth:`begin_resume` / :meth:`resume` re-prefill
``prompt + generated`` through a fresh decoder (through the same chunked
batched pipeline as admissions), so the emitted token stream is identical to
an unpreempted run while the KV budget of the victim is available to more
urgent requests in between.

**Snapshot preemption** (``preempt(step, snapshot=True)``) is the cheap
alternative for arena-backed sessions whose KV is *trusted*: instead of
discarding the pages and re-prefilling O(context) rows on resume, the
arena copies the session's rows into a compact off-arena
:class:`~repro.serve.kv_arena.KVSnapshot` (shared prefix pages are pinned
by reference, not copied) and frees the live pages.  The decoder object is
*kept* -- its chunked-prefill progress, statistics and logits all survive
-- so :meth:`resume_from_snapshot` just faults the pages back in and the
stream continues with **zero** re-prefill forward passes, bit-identical in
both tokens and metrics to an uninterrupted run.  :meth:`retry` accepts the
same flag but only honours it for faults that fired *before* the forward
pass touched the KV (the engine's trusted/untrusted routing); a corrupted
or mid-compute fault always discards the pages and takes the re-prefill
path.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..model.generation import IncrementalDecoder, KeyPredictor, KVCorruptionError
from .faults import FaultError, SessionComputeFault

__all__ = [
    "Request",
    "RequestMetrics",
    "SessionState",
    "TERMINAL_STATES",
    "GenerationSession",
]

#: Exception types the per-session containment in the batch commit loops
#: catches: injected faults plus the real KV-integrity detector.  Anything
#: else is a genuine bug and must crash loudly, not be quarantined.
_FAULT_TYPES = (FaultError, KVCorruptionError)


@dataclass(frozen=True)
class Request:
    """One generation job submitted to the serving engine.

    ``priority`` orders requests under priority-aware policies (higher wins;
    the default ``0`` keeps plain FIFO streams unchanged).  ``deadline_steps``
    is an optional completion target measured in engine steps *from arrival*;
    deadline-aware policies schedule against it and
    :attr:`RequestMetrics.deadline_misses` records whether it was met.
    ``timeout_steps`` is a *hard* bound on the same clock: a request still
    unfinished after that many steps past arrival is resolved ``TIMED_OUT``
    by the engine (deadlines are advisory and merely counted as missed;
    timeouts terminate).
    """

    request_id: str
    prompt_tokens: Sequence[int]
    max_new_tokens: int = 16
    eos_token: Optional[int] = None
    arrival_step: int = 0
    priority: int = 0
    deadline_steps: Optional[int] = None
    timeout_steps: Optional[int] = None

    def __post_init__(self) -> None:
        if len(self.prompt_tokens) == 0:  # len(), not truthiness: arrays are welcome
            raise ValueError(f"request {self.request_id!r} has an empty prompt")
        if self.max_new_tokens < 1:
            raise ValueError("max_new_tokens must be >= 1")
        if self.arrival_step < 0:
            raise ValueError("arrival_step must be >= 0")
        if self.deadline_steps is not None and self.deadline_steps < 1:
            raise ValueError("deadline_steps must be >= 1 when given")
        if self.timeout_steps is not None and self.timeout_steps < 1:
            raise ValueError("timeout_steps must be >= 1 when given")

    @property
    def deadline_step(self) -> Optional[int]:
        """Absolute step by which the request should finish.

        ``None`` when the request has no deadline -- compare through a
        None-aware helper (deadline-free requests usually rank *least*
        urgent, as the shipped deadline policies treat them).
        """
        if self.deadline_steps is None:
            return None
        return self.arrival_step + self.deadline_steps

    @property
    def timeout_step(self) -> Optional[int]:
        """Last step the request may still resolve before timing out.

        ``None`` when the request has no timeout.  The engine reaps a
        non-terminal request at the start of the first step *past* this one,
        mirroring the deadline-miss convention (``finished > deadline``): a
        request finishing exactly at ``timeout_step`` made it.
        """
        if self.timeout_steps is None:
            return None
        return self.arrival_step + self.timeout_steps


class SessionState(Enum):
    QUEUED = "queued"
    PREFILLING = "prefilling"
    ACTIVE = "active"
    PREEMPTED = "preempted"
    FINISHED = "finished"
    CANCELLED = "cancelled"
    FAILED = "failed"
    TIMED_OUT = "timed_out"
    SHED = "shed"


#: The five states a request can end in; exactly one per request, ever.
TERMINAL_STATES = frozenset(
    {
        SessionState.FINISHED,
        SessionState.CANCELLED,
        SessionState.FAILED,
        SessionState.TIMED_OUT,
        SessionState.SHED,
    }
)


@dataclass(frozen=True)
class RequestMetrics:
    """Lifecycle and traffic metrics of one completed request.

    The single source of truth for the derived serving metrics; live sessions
    produce one via :meth:`GenerationSession.to_metrics` once finished.
    ``preemptions`` counts how many times the request was evicted and later
    re-prefilled; ``deadline_misses`` is 1 when the request had a deadline and
    finished after it (0 otherwise), so sums over a report count missed SLAs.

    ``queue_steps`` / ``prefill_steps`` split the time-to-first-token into
    its two components: steps spent waiting for a batch slot versus steps
    spent prefilling once admitted (0 when the whole prompt fits the
    admission step's chunk budget; grows under a tight
    ``prefill_token_budget`` or mid-prefill preemption).  They always sum to
    :attr:`time_to_first_token_steps`.  Both default to ``None`` so reports
    written before the split still load (``from_json`` tolerates the missing
    keys) and newer reports degrade cleanly in old readers (unknown keys are
    ignored).

    The failure model (PR 7) generalises the record to every terminal
    outcome: ``outcome`` is one of ``finished`` / ``failed`` / ``timed_out``
    / ``shed`` / ``cancelled``, ``retries`` counts fault-recovery
    re-prefills (the hardened twin of ``preemptions``), and ``failure``
    carries the structured :class:`~repro.serve.faults.FailureInfo` dict of
    a failed request (``None`` otherwise).  A request that never got a slot
    (e.g. shed while queued) has ``admitted_step is None`` -- the derived
    step properties return ``None`` instead of arithmetic on missing
    timestamps -- and all three new fields default to the fault-free values
    so pre-faults reports load (and old readers ignore the new keys).

    Speculative decode (PR 10) adds ``draft_proposed`` / ``draft_accepted``
    (drafter tokens verified / accepted over the request's lifetime) and
    ``spec_steps`` (decode steps that carried at least one draft);
    :attr:`mean_accepted_len` derives the request's mean accepted draft
    length per speculative step.  All three default to zero, so
    speculation-off runs and pre-speculation reports are unchanged.
    """

    request_id: str
    arrival_step: int
    admitted_step: Optional[int]
    first_token_step: Optional[int]
    finished_step: Optional[int]
    n_generated: int
    keys_attended: int
    keys_total: int
    priority: int = 0
    preemptions: int = 0
    deadline_misses: int = 0
    queue_steps: Optional[int] = None
    prefill_steps: Optional[int] = None
    outcome: str = "finished"
    retries: int = 0
    failure: Optional[dict] = None
    draft_proposed: int = 0
    draft_accepted: int = 0
    spec_steps: int = 0

    @property
    def mean_accepted_len(self) -> float:
        """Mean accepted draft tokens per speculative decode step."""
        return self.draft_accepted / self.spec_steps if self.spec_steps else 0.0

    @property
    def queue_delay_steps(self) -> Optional[int]:
        if self.admitted_step is None:
            return None
        return self.admitted_step - self.arrival_step

    @property
    def time_to_first_token_steps(self) -> Optional[int]:
        if self.first_token_step is None:
            return None
        return self.first_token_step - self.arrival_step

    @property
    def latency_steps(self) -> Optional[int]:
        if self.finished_step is None:
            return None
        return self.finished_step - self.arrival_step

    @property
    def attention_density(self) -> float:
        return self.keys_attended / self.keys_total if self.keys_total else 1.0


class GenerationSession:
    """Server-side state of one request: KV caches, tokens and timestamps.

    The token-emission schedule matches :func:`repro.model.generation.generate`
    exactly: the first token comes out of the prefill forward pass, every later
    token out of one decode step, and no trailing forward pass runs once the
    decode budget (or EOS) is reached.  A request served through a session
    therefore produces bit-identical tokens to a solo ``generate()`` call --
    including across :meth:`preempt`/:meth:`resume` cycles, whose re-prefill
    recomputes exactly the prefix an unpreempted run would hold.
    """

    def __init__(
        self,
        request: Request,
        model,
        predictor: Optional[KeyPredictor] = None,
        arena=None,
        prefix_cache: bool = False,
    ) -> None:
        self.request = request
        self.model = model
        self.predictor = predictor
        self.arena = arena
        self.prefix_cache = bool(prefix_cache and arena is not None)
        self.decoder: Optional[IncrementalDecoder] = IncrementalDecoder(
            model, predictor=predictor, arena=arena, prefix_cache=self.prefix_cache
        )
        self.state = SessionState.QUEUED
        self.generated_tokens: List[int] = []
        self.admitted_step: Optional[int] = None
        self.first_token_step: Optional[int] = None
        self.finished_step: Optional[int] = None
        self.preemptions = 0
        self.retries = 0
        # failure machinery: the engine installs its FaultInjector here (None
        # keeps every commit on the unguarded fast path), last_fault holds a
        # quarantined-but-unprocessed fault between the batch commit loop and
        # the engine's retry/fail routing, and failure the final FailureInfo
        # dict of a FAILED session
        self.fault_injector = None
        self.last_fault: Optional[Exception] = None
        self.failure: Optional[dict] = None
        self._pending_token: Optional[int] = None
        # traffic counters of decoders retired by preemption (the re-prefill
        # work of resume() is real served traffic and must stay visible)
        self._keys_attended_base = 0
        self._keys_total_base = 0
        # snapshot preemption: the off-arena KVSnapshot of a snapshot-preempted
        # session, plus the state (ACTIVE / PREFILLING) to re-enter on restore
        self.kv_snapshot = None
        self._resume_state: Optional[SessionState] = None
        # speculative decode: lifetime draft counters plus the most recent
        # successful (proposed, accepted) pair for the engine's throttle
        self.draft_proposed = 0
        self.draft_accepted = 0
        self.spec_steps = 0
        self.last_spec_outcome: Optional[tuple] = None

    # -- lifecycle -------------------------------------------------------------

    def admit(self, step: int) -> int:
        """Prefill the prompt in one serial pass and emit the first token."""
        if self.state is not SessionState.QUEUED:
            raise RuntimeError(f"session {self.request.request_id!r} already admitted")
        self.state = SessionState.ACTIVE
        self.admitted_step = step
        self._pending_token = self.decoder.prefill(self.request.prompt_tokens)
        return self._commit(step)

    def begin_admit(self, step: int) -> None:
        """Enter the chunked prefill pipeline instead of serial prefill.

        The session moves to ``PREFILLING`` and holds a batch slot, but no
        forward pass runs yet: the engine feeds its prompt through
        :meth:`prefill_step_batch` in ragged chunks (sharing every step's
        fused pass with the decoding sessions) and the first token is emitted
        the step the final chunk lands -- bit-identical to :meth:`admit`.
        """
        if self.state is not SessionState.QUEUED:
            raise RuntimeError(f"session {self.request.request_id!r} already admitted")
        self.state = SessionState.PREFILLING
        self.admitted_step = step
        self.decoder.begin_prefill(self.request.prompt_tokens)

    def begin_resume(self, step: int) -> None:
        """Re-admit a preempted session through the chunked prefill pipeline.

        A fresh decoder is registered with ``prompt + generated`` -- the
        exact prefix an unpreempted run would hold -- and the session
        re-prefills through the same batched chunk path as new admissions,
        so every token emitted after the resume matches the uninterrupted
        stream.
        """
        if self.state is not SessionState.PREEMPTED:
            raise RuntimeError(
                f"cannot resume session {self.request.request_id!r} "
                f"({self.state.value})"
            )
        self._abandon_snapshot()
        self.state = SessionState.PREFILLING
        self.decoder = IncrementalDecoder(
            self.model,
            predictor=self.predictor,
            arena=self.arena,
            prefix_cache=self.prefix_cache,
        )
        replay = [int(t) for t in self.request.prompt_tokens] + self.generated_tokens
        self.decoder.begin_prefill(replay)

    # -- snapshot preemption ---------------------------------------------------

    @property
    def has_snapshot(self) -> bool:
        """Whether the session holds an off-arena KV snapshot to restore."""
        return self.kv_snapshot is not None

    def _snapshot_kv(self) -> bool:
        """Copy the live KV off-arena, keeping the decoder; False when unable.

        Only arena-backed decoders can snapshot (standalone buffers have no
        page table to copy out); on success the decoder keeps every bit of
        its continuation state -- pending prefill chunks, statistics, logits
        -- so the restored stream is indistinguishable from an uninterrupted
        one, metrics included (no traffic is folded into the preemption
        bases: nothing is recomputed).
        """
        if self.decoder is None:
            return False
        snap = self.decoder.snapshot_kv()
        if snap is None:
            return False
        self.kv_snapshot = snap
        self._resume_state = self.state
        return True

    def _discard_snapshot(self) -> None:
        """Release a snapshot that will never be restored (idempotent)."""
        if self.kv_snapshot is not None and self.arena is not None:
            self.arena.discard_snapshot(self.kv_snapshot)
        self.kv_snapshot = None
        self._resume_state = None

    def _abandon_snapshot(self) -> None:
        """Fall back to re-prefill: drop the snapshot *and* the kept decoder.

        Defensive twin of :meth:`_discard_snapshot` for the legacy resume
        paths -- folding the kept decoder's traffic into the preemption bases
        and releasing its (empty) arena session before a fresh decoder
        replaces it, so arena books stay balanced even if a caller routes a
        snapshot-preempted session through ``begin_resume``/``resume``.
        """
        if self.kv_snapshot is None:
            return
        self._discard_snapshot()
        if self.decoder is not None:
            self._keys_attended_base += self.decoder.keys_attended
            self._keys_total_base += self.decoder.keys_total
            self.decoder.release()
            self.decoder = None

    def resume_from_snapshot(self, step: int) -> SessionState:
        """Fault the snapshot's pages back in; zero re-prefill forward passes.

        The inverse of ``preempt(step, snapshot=True)``: the arena restores
        the page table bit-identically and the session re-enters exactly the
        state it was evicted from -- ``ACTIVE`` sessions rejoin the decode
        batch this very step, ``PREFILLING`` sessions rejoin the chunked
        pipeline with their progress intact.  Returns the re-entered state
        so the engine can route the session.  Unlike :meth:`resume` no
        token is emitted here: restoring is pure page traffic, and the next
        fused pass produces the same token the uninterrupted schedule would
        have.
        """
        if self.state is not SessionState.PREEMPTED or self.kv_snapshot is None:
            raise RuntimeError(
                f"cannot snapshot-resume session {self.request.request_id!r} "
                f"({self.state.value}, snapshot={self.kv_snapshot is not None})"
            )
        snap, self.kv_snapshot = self.kv_snapshot, None
        self.decoder.restore_kv(snap)
        self.state, self._resume_state = self._resume_state, None
        return self.state

    def decode_step(self, step: int) -> int:
        """Emit one more token (running a decode forward pass when needed)."""
        if self.state is not SessionState.ACTIVE:
            raise RuntimeError(
                f"session {self.request.request_id!r} is not active ({self.state.value})"
            )
        self._pending_token = self.decoder.step(self.generated_tokens[-1])
        return self._commit(step)

    def preempt(self, step: int, snapshot: bool = False) -> None:
        """Evict the session: release its KV storage, keep only the tokens.

        The arena pages (or standalone buffers) return to the pool right away;
        the generated-token snapshot is all :meth:`resume` /
        :meth:`begin_resume` needs to rebuild the stream.  Active *and
        mid-prefill* sessions can be preempted -- a prefilling victim's
        partial chunks are discarded with its pages (the KV rows *are* the
        progress) and the resume re-prefills from scratch.

        With ``snapshot=True`` an arena-backed session instead copies its KV
        rows off-arena (:meth:`~repro.serve.kv_arena.PagedKVArena.\
snapshot_session`) and keeps its decoder, so
        :meth:`resume_from_snapshot` skips re-prefill entirely; non-arena
        sessions silently fall back to the release path.  Either way the
        pages a policy wanted back are free when this returns.
        """
        if self.state not in (SessionState.ACTIVE, SessionState.PREFILLING):
            raise RuntimeError(
                f"cannot preempt session {self.request.request_id!r} "
                f"({self.state.value})"
            )
        if snapshot and self._snapshot_kv():
            self.state = SessionState.PREEMPTED
            self.preemptions += 1
            return
        self._keys_attended_base += self.decoder.keys_attended
        self._keys_total_base += self.decoder.keys_total
        self.decoder.release()
        self.decoder = None
        self.state = SessionState.PREEMPTED
        self.preemptions += 1

    def retry(self, step: int, snapshot: bool = False) -> None:
        """Requeue the session after a fault: release KV, keep the tokens.

        The fault-recovery twin of :meth:`preempt` -- the faulted decoder's
        KV is untrusted (or was never allocated), so it is discarded
        wholesale and the session re-enters ``PREEMPTED``; the engine
        requeues it with backoff and the eventual :meth:`begin_resume` /
        :meth:`resume` re-prefills ``prompt + generated``, which is why a
        retried request's token stream is bit-identical to a fault-free run.
        Counted in :attr:`retries` (not ``preemptions``: one is a policy
        decision, the other a failure).  Unlike preemption this is also
        legal from ``QUEUED`` and ``PREEMPTED`` -- a schedule-time arena
        fault can hit a session admitted (or about to be resumed) this very
        step, before any forward ran.

        ``snapshot=True`` asserts the session's KV is still *trusted* -- the
        fault fired before any forward touched the pages (the engine only
        passes it for ``arena.alloc`` faults) -- and takes the same
        copy-out path as snapshot preemption so the requeued request resumes
        without re-prefill.  A snapshot-preempted session retried while
        waiting simply keeps its existing snapshot.  Untrusted faults
        (``snapshot=False``) discard any snapshot along with the decoder.
        """
        if self.state not in (
            SessionState.QUEUED,
            SessionState.PREFILLING,
            SessionState.ACTIVE,
            SessionState.PREEMPTED,
        ):
            raise RuntimeError(
                f"cannot retry session {self.request.request_id!r} "
                f"({self.state.value})"
            )
        if snapshot:
            if self.kv_snapshot is not None:
                # already snapshot-preempted: the pages are off-arena, keep them
                self.retries += 1
                self.state = SessionState.PREEMPTED
                return
            if self.state in (
                SessionState.PREFILLING,
                SessionState.ACTIVE,
            ) and self._snapshot_kv():
                self.state = SessionState.PREEMPTED
                self.retries += 1
                return
        self._discard_snapshot()
        if self.decoder is not None:
            self._keys_attended_base += self.decoder.keys_attended
            self._keys_total_base += self.decoder.keys_total
            self.decoder.release()
            self.decoder = None
        self.state = SessionState.PREEMPTED
        self.retries += 1

    def finalize(self, state: SessionState, step: int) -> None:
        """Terminally resolve the session as FAILED / TIMED_OUT / SHED.

        Releases any KV storage still held (queued, mid-prefill and active
        sessions alike; a preempted session holds none) and stamps
        ``finished_step`` so latency is defined for every resolved request.
        The decoder object is kept (storage-released) so traffic counters
        stay readable, mirroring :meth:`cancel`.
        """
        if state not in (
            SessionState.FAILED,
            SessionState.TIMED_OUT,
            SessionState.SHED,
        ):
            raise ValueError(f"finalize() resolves failure states, not {state}")
        if self.is_terminal:
            raise RuntimeError(
                f"cannot finalize session {self.request.request_id!r} "
                f"({self.state.value})"
            )
        self._discard_snapshot()
        if self.decoder is not None:
            self.decoder.release()
        self.state = state
        self.finished_step = step

    def resume(self, step: int) -> int:
        """Re-admit a preempted session; emits its next token.

        A fresh decoder prefills ``prompt + generated`` in one pass -- the
        same prefix an unpreempted run would hold in its KV cache -- so the
        token emitted here (and every one after it) is identical to what the
        uninterrupted stream would have produced.
        """
        if self.state is not SessionState.PREEMPTED:
            raise RuntimeError(
                f"cannot resume session {self.request.request_id!r} "
                f"({self.state.value})"
            )
        self._abandon_snapshot()
        self.state = SessionState.ACTIVE
        self.decoder = IncrementalDecoder(
            self.model,
            predictor=self.predictor,
            arena=self.arena,
            prefix_cache=self.prefix_cache,
        )
        replay = [int(t) for t in self.request.prompt_tokens] + self.generated_tokens
        self._pending_token = self.decoder.prefill(replay)
        return self._commit(step)

    def cancel(self, step: Optional[int] = None) -> None:
        """Abort the request and free its KV storage (terminal).

        ``step`` stamps ``finished_step`` so a cancelled request has a
        defined latency like every other terminal outcome (``finalize``
        always stamps; cancellation used to silently drop out of the report
        latency aggregates).  ``None`` keeps the legacy no-timestamp
        behaviour for direct callers without a step clock.
        """
        if self.is_terminal:
            raise RuntimeError(
                f"cannot cancel session {self.request.request_id!r} "
                f"({self.state.value})"
            )
        self._discard_snapshot()
        if self.decoder is not None:
            self.decoder.release()
        self.state = SessionState.CANCELLED
        if step is not None:
            self.finished_step = step

    @classmethod
    def prefill_step_batch(
        cls,
        prefilling: Sequence["GenerationSession"],
        chunk_sizes: Sequence[int],
        decoding: Sequence["GenerationSession"],
        step: int,
        draft_tokens: Optional[Sequence[Sequence[int]]] = None,
    ) -> Dict[str, object]:
        """One mixed engine step: prefill chunks plus decode rows, one pass.

        ``prefilling[i]`` (in ``PREFILLING`` state) advances by
        ``chunk_sizes[i]`` prompt rows and ``decoding[j]`` (``ACTIVE``) by
        one token, all through a single
        :meth:`~repro.model.generation.IncrementalDecoder.prefill_step_batch`
        fused forward.  Sessions whose final chunk landed move to ``ACTIVE``
        and commit their first token exactly as :meth:`admit` would; decode
        commits match :meth:`decode_step`.  Returns ``{request_id: token}``
        for every token emitted this step (mid-prefill sessions emit
        nothing).

        ``draft_tokens`` (one proposal list per decoding session, empty
        lists allowed) switches the decode rows to speculative draft-verify
        chunks: each decoding session's emitted value becomes the *list* of
        tokens the accept rule committed this step (see
        :meth:`IncrementalDecoder.prefill_step_batch`), bit-identical as a
        stream to the one-token path.
        """
        prefilling = list(prefilling)
        decoding = list(decoding)
        for session in prefilling:
            if session.state is not SessionState.PREFILLING:
                raise RuntimeError(
                    f"session {session.request.request_id!r} is not prefilling "
                    f"({session.state.value})"
                )
        for session in decoding:
            if session.state is not SessionState.ACTIVE:
                raise RuntimeError(
                    f"session {session.request.request_id!r} is not active "
                    f"({session.state.value})"
                )
        prefill_tokens, decode_tokens = IncrementalDecoder.prefill_step_batch(
            [s.decoder for s in prefilling],
            chunk_sizes,
            [s.decoder for s in decoding],
            [s.generated_tokens[-1] for s in decoding],
            draft_tokens=draft_tokens,
        )
        emitted: Dict[str, object] = {}
        for session, token in zip(prefilling, prefill_tokens):
            if token is None:
                continue  # chunks remain; the session keeps its slot
            session.state = SessionState.ACTIVE
            session._pending_token = token
            emitted.update(session._commit_contained(step))
        for j, (session, token) in enumerate(zip(decoding, decode_tokens)):
            if draft_tokens is None:
                session._pending_token = token
                emitted.update(session._commit_contained(step))
            else:
                emitted.update(
                    session._commit_spec_contained(
                        token, len(draft_tokens[j]), step
                    )
                )
        return emitted

    @staticmethod
    def decode_step_batch(
        sessions: Sequence["GenerationSession"], step: int
    ) -> Dict[str, int]:
        """Emit one token from every active session via a single fused step.

        All sessions advance through
        :meth:`~repro.model.generation.IncrementalDecoder.step_batch` -- one
        quantised forward pass for the whole batch when the shared model
        supports it, a per-session fallback otherwise -- and each session
        commits its token exactly as :meth:`decode_step` would, so tokens,
        lifecycle timestamps and traffic counters are bit-identical to
        stepping the sessions one at a time.
        """
        sessions = list(sessions)
        for session in sessions:
            if session.state is not SessionState.ACTIVE:
                raise RuntimeError(
                    f"session {session.request.request_id!r} is not active "
                    f"({session.state.value})"
                )
        next_tokens = IncrementalDecoder.step_batch(
            [session.decoder for session in sessions],
            [session.generated_tokens[-1] for session in sessions],
        )
        emitted: Dict[str, int] = {}
        for session, token in zip(sessions, next_tokens):
            session._pending_token = token
            emitted.update(session._commit_contained(step))
        return emitted

    def _commit_contained(self, step: int) -> Dict[str, int]:
        """Commit with per-session fault isolation for the batch loops.

        A fault raised by this session's commit (injected or the real KV
        integrity check) is parked on :attr:`last_fault` for the engine to
        route (retry / FAILED) instead of propagating -- one bad row must
        never abort its siblings' commits, which is what keeps an engine
        step atomic for the surviving batch.  Returns ``{request_id: token}``
        on success, ``{}`` when quarantined (the token is discarded: a
        faulted step's output is untrusted).
        """
        try:
            return {self.request.request_id: self._commit(step)}
        except _FAULT_TYPES as exc:
            self.last_fault = exc
            return {}

    def _commit_spec_contained(
        self, tokens: List[int], proposed: int, step: int
    ) -> Dict[str, List[int]]:
        """Speculative twin of :meth:`_commit_contained`.

        ``tokens`` is the verified emission list of one speculative decode
        chunk (``accepted + 1`` tokens, the accept rule's output) and
        ``proposed`` how many drafts were verified to get it.  Returns
        ``{request_id: committed_tokens}`` on success (possibly shorter than
        ``tokens`` when EOS or the decode budget lands mid-list), ``{}``
        when quarantined -- a faulted step commits *nothing*, exactly like
        the one-token path, so the retry re-prefills the fault-free prefix.
        """
        try:
            return {self.request.request_id: self._commit_spec(tokens, proposed, step)}
        except _FAULT_TYPES as exc:
            self.last_fault = exc
            return {}

    def _commit_spec(self, tokens: List[int], proposed: int, step: int) -> List[int]:
        """Commit a verified multi-token emission; returns the committed list.

        Tokens land in order with the same EOS / ``max_new_tokens`` checks
        :meth:`_commit` applies per token; the first terminal token stops the
        commit and discards the rest of the list (their KV rows are freed
        with the session at retirement).  All committed tokens carry this
        step's timestamp -- one fused pass produced them.  Draft counters
        and :attr:`last_spec_outcome` update only on success, so a
        quarantined step never skews the acceptance window.
        """
        if self.fault_injector is not None:
            self._inject_and_verify(step, extra_rows=len(tokens) - 1)
        committed: List[int] = []
        eos = self.request.eos_token
        for token in tokens:
            token = int(token)
            self.generated_tokens.append(token)
            committed.append(token)
            if self.first_token_step is None:
                self.first_token_step = step
            if (eos is not None and token == eos) or (
                len(self.generated_tokens) >= self.request.max_new_tokens
            ):
                self.state = SessionState.FINISHED
                self.finished_step = step
                break
        accepted = len(tokens) - 1
        if proposed > 0:
            self.draft_proposed += int(proposed)
            self.draft_accepted += accepted
            self.spec_steps += 1
        self.last_spec_outcome = (int(proposed), accepted)
        return committed

    def _inject_and_verify(self, step: int, extra_rows: int = 0) -> None:
        """Pre-commit fault gate (only reached with an injector installed).

        Order matters: the ``session.append`` corruption lands first (a
        garbage KV row *really* written to the layer-0 cache), then the
        *real* row-count integrity check runs -- catching both the injected
        corruption and any genuine torn append -- and finally the pure
        ``session.compute`` fault fires.  All three abort the commit before
        the pending token is accepted, so a quarantined session's
        ``generated_tokens`` stay exactly the fault-free prefix.

        ``extra_rows`` is the count of *accepted draft* rows a speculative
        commit left in the cache beyond the one-token-decode baseline
        (rejected drafts were already truncated away), so the integrity
        check stays exact under speculation.
        """
        injector = self.fault_injector
        rid = self.request.request_id
        if injector.has_site("session.append"):
            if injector.fires("session.append", rid, step):
                self._corrupt_kv_append()
            # rows every layer must hold right now: the replayed prefix
            # (prompt + generated) was appended in full by the forward that
            # produced the pending token, which itself is not yet in any
            # cache.  The check only runs when appends can be corrupted --
            # there is nothing to catch otherwise, and skipping it keeps
            # append-less armed plans inside the benchmark's overhead gate.
            self.decoder.verify_kv_rows(
                len(self.request.prompt_tokens)
                + len(self.generated_tokens)
                + int(extra_rows)
            )
        if injector.fires("session.compute", rid, step):
            raise SessionComputeFault(
                f"injected compute fault for request {rid!r} at step {step}"
            )

    def _corrupt_kv_append(self) -> None:
        """Write one garbage KV row into the layer-0 cache (injection only).

        The detection that follows is genuine machinery
        (:meth:`~repro.model.generation.IncrementalDecoder.verify_kv_rows`);
        only the corruption itself is simulated.  Cache-less stub models
        hold no rows to corrupt, so the injection is a no-op there.
        """
        caches = self.decoder.caches if self.decoder is not None else []
        if not caches:
            return
        rows = caches[0].keys
        if rows is None or rows.shape[0] == 0:
            return
        garbage = np.zeros((1, rows.shape[1]), dtype=rows.dtype)
        caches[0].append(garbage, garbage)

    def _commit(self, step: int) -> int:
        if self.fault_injector is not None:
            self._inject_and_verify(step)
        token = int(self._pending_token)
        self.generated_tokens.append(token)
        if self.first_token_step is None:
            self.first_token_step = step
        eos = self.request.eos_token
        if (eos is not None and token == eos) or (
            len(self.generated_tokens) >= self.request.max_new_tokens
        ):
            self.state = SessionState.FINISHED
            self.finished_step = step
        return token

    def release_kv(self) -> None:
        """Free the session's KV storage (arena pages or standalone buffers).

        The engine calls this when it retires a finished session, so arena
        occupancy tracks live tokens rather than peak concurrency.  Metrics
        and generated tokens are unaffected; only further decoding becomes
        impossible.
        """
        self._discard_snapshot()
        if self.decoder is not None:
            self.decoder.release()

    # -- metrics ---------------------------------------------------------------

    @property
    def is_finished(self) -> bool:
        return self.state is SessionState.FINISHED

    @property
    def is_terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def is_prefilling(self) -> bool:
        return self.state is SessionState.PREFILLING

    @property
    def is_cancelled(self) -> bool:
        return self.state is SessionState.CANCELLED

    @property
    def n_generated(self) -> int:
        return len(self.generated_tokens)

    @property
    def keys_attended(self) -> int:
        live = self.decoder.keys_attended if self.decoder is not None else 0
        return self._keys_attended_base + live

    @property
    def keys_total(self) -> int:
        live = self.decoder.keys_total if self.decoder is not None else 0
        return self._keys_total_base + live

    #: SessionState -> RequestMetrics.outcome for every terminal state.
    _OUTCOMES = {
        SessionState.FINISHED: "finished",
        SessionState.CANCELLED: "cancelled",
        SessionState.FAILED: "failed",
        SessionState.TIMED_OUT: "timed_out",
        SessionState.SHED: "shed",
    }

    def to_metrics(self) -> RequestMetrics:
        """Snapshot the terminally-resolved session as a metrics record.

        Works for every terminal state; ``outcome`` names which one.  A
        request resolved before reaching a milestone (admission, first
        token, completion) carries ``None`` for that timestamp and the
        derived step properties degrade to ``None`` rather than producing
        arithmetic on missing data.
        """
        if not self.is_terminal:
            raise RuntimeError(
                f"session {self.request.request_id!r} is not finished yet"
            )
        deadline = self.request.deadline_step
        missed = int(
            deadline is not None
            and self.finished_step is not None
            and self.finished_step > deadline
        )
        admitted = None if self.admitted_step is None else int(self.admitted_step)
        first = None if self.first_token_step is None else int(self.first_token_step)
        finished = None if self.finished_step is None else int(self.finished_step)
        queue_steps = (
            None if admitted is None else admitted - self.request.arrival_step
        )
        prefill_steps = (
            None if first is None or admitted is None else first - admitted
        )
        return RequestMetrics(
            request_id=self.request.request_id,
            arrival_step=self.request.arrival_step,
            admitted_step=admitted,
            first_token_step=first,
            finished_step=finished,
            n_generated=self.n_generated,
            keys_attended=self.keys_attended,
            keys_total=self.keys_total,
            priority=self.request.priority,
            preemptions=self.preemptions,
            deadline_misses=missed,
            queue_steps=queue_steps,
            prefill_steps=prefill_steps,
            outcome=self._OUTCOMES[self.state],
            retries=self.retries,
            failure=self.failure,
            draft_proposed=self.draft_proposed,
            draft_accepted=self.draft_accepted,
            spec_steps=self.spec_steps,
        )
