"""Per-request generation sessions for the batched serving engine.

A :class:`Request` describes one user generation job (prompt, decode budget,
arrival time, priority, optional deadline); a :class:`GenerationSession` is
its live server-side state: an
:class:`~repro.model.generation.IncrementalDecoder` holding the request's KV
caches plus lifecycle timestamps and traffic counters.  Sessions are the unit
the serving engine admits, steps, preempts and retires -- many sessions share
one model (and one decoded-plane cache) while each keeps its own cache and
statistics, mirroring how a serving accelerator multiplexes independent
streams over resident weights.

The session lifecycle is a small state machine::

    QUEUED --begin_admit()--> PREFILLING --(last chunk)--> ACTIVE --(budget/EOS)--> FINISHED
                                  ^   |                     |
                                  |   +------ preempt() ----+
                           begin_resume()     v
                                  +------ PREEMPTED

    any non-terminal state --cancel()--> CANCELLED

Admission enters the **chunked prefill pipeline**: a ``PREFILLING`` session
feeds its prompt to the model in ragged chunks (batched with every other
prefilling and decoding session, one fused pass per engine step) and emits
its first token the step the last chunk lands.  ``admit()``/``resume()``
remain as the one-shot serial path for models without a batched prefill.

Preemption is the mechanism behind priority/deadline scheduling policies: a
preempted session -- mid-decode *or* mid-prefill -- *releases its KV
storage* (arena pages return to the shared pool immediately) and snapshots
only its generated tokens; :meth:`begin_resume` / :meth:`resume` re-prefill
``prompt + generated`` through a fresh decoder (through the same chunked
batched pipeline as admissions), so the emitted token stream is identical to
an unpreempted run while the KV budget of the victim is available to more
urgent requests in between.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Sequence

from ..model.generation import IncrementalDecoder, KeyPredictor

__all__ = ["Request", "RequestMetrics", "SessionState", "GenerationSession"]


@dataclass(frozen=True)
class Request:
    """One generation job submitted to the serving engine.

    ``priority`` orders requests under priority-aware policies (higher wins;
    the default ``0`` keeps plain FIFO streams unchanged).  ``deadline_steps``
    is an optional completion target measured in engine steps *from arrival*;
    deadline-aware policies schedule against it and
    :attr:`RequestMetrics.deadline_misses` records whether it was met.
    """

    request_id: str
    prompt_tokens: Sequence[int]
    max_new_tokens: int = 16
    eos_token: Optional[int] = None
    arrival_step: int = 0
    priority: int = 0
    deadline_steps: Optional[int] = None

    def __post_init__(self) -> None:
        if len(self.prompt_tokens) == 0:  # len(), not truthiness: arrays are welcome
            raise ValueError(f"request {self.request_id!r} has an empty prompt")
        if self.max_new_tokens < 1:
            raise ValueError("max_new_tokens must be >= 1")
        if self.arrival_step < 0:
            raise ValueError("arrival_step must be >= 0")
        if self.deadline_steps is not None and self.deadline_steps < 1:
            raise ValueError("deadline_steps must be >= 1 when given")

    @property
    def deadline_step(self) -> Optional[int]:
        """Absolute step by which the request should finish.

        ``None`` when the request has no deadline -- compare through a
        None-aware helper (deadline-free requests usually rank *least*
        urgent, as the shipped deadline policies treat them).
        """
        if self.deadline_steps is None:
            return None
        return self.arrival_step + self.deadline_steps


class SessionState(Enum):
    QUEUED = "queued"
    PREFILLING = "prefilling"
    ACTIVE = "active"
    PREEMPTED = "preempted"
    FINISHED = "finished"
    CANCELLED = "cancelled"


@dataclass(frozen=True)
class RequestMetrics:
    """Lifecycle and traffic metrics of one completed request.

    The single source of truth for the derived serving metrics; live sessions
    produce one via :meth:`GenerationSession.to_metrics` once finished.
    ``preemptions`` counts how many times the request was evicted and later
    re-prefilled; ``deadline_misses`` is 1 when the request had a deadline and
    finished after it (0 otherwise), so sums over a report count missed SLAs.

    ``queue_steps`` / ``prefill_steps`` split the time-to-first-token into
    its two components: steps spent waiting for a batch slot versus steps
    spent prefilling once admitted (0 when the whole prompt fits the
    admission step's chunk budget; grows under a tight
    ``prefill_token_budget`` or mid-prefill preemption).  They always sum to
    :attr:`time_to_first_token_steps`.  Both default to ``None`` so reports
    written before the split still load (``from_json`` tolerates the missing
    keys) and newer reports degrade cleanly in old readers (unknown keys are
    ignored).
    """

    request_id: str
    arrival_step: int
    admitted_step: int
    first_token_step: int
    finished_step: int
    n_generated: int
    keys_attended: int
    keys_total: int
    priority: int = 0
    preemptions: int = 0
    deadline_misses: int = 0
    queue_steps: Optional[int] = None
    prefill_steps: Optional[int] = None

    @property
    def queue_delay_steps(self) -> int:
        return self.admitted_step - self.arrival_step

    @property
    def time_to_first_token_steps(self) -> int:
        return self.first_token_step - self.arrival_step

    @property
    def latency_steps(self) -> int:
        return self.finished_step - self.arrival_step

    @property
    def attention_density(self) -> float:
        return self.keys_attended / self.keys_total if self.keys_total else 1.0


class GenerationSession:
    """Server-side state of one request: KV caches, tokens and timestamps.

    The token-emission schedule matches :func:`repro.model.generation.generate`
    exactly: the first token comes out of the prefill forward pass, every later
    token out of one decode step, and no trailing forward pass runs once the
    decode budget (or EOS) is reached.  A request served through a session
    therefore produces bit-identical tokens to a solo ``generate()`` call --
    including across :meth:`preempt`/:meth:`resume` cycles, whose re-prefill
    recomputes exactly the prefix an unpreempted run would hold.
    """

    def __init__(
        self,
        request: Request,
        model,
        predictor: Optional[KeyPredictor] = None,
        arena=None,
        prefix_cache: bool = False,
    ) -> None:
        self.request = request
        self.model = model
        self.predictor = predictor
        self.arena = arena
        self.prefix_cache = bool(prefix_cache and arena is not None)
        self.decoder: Optional[IncrementalDecoder] = IncrementalDecoder(
            model, predictor=predictor, arena=arena, prefix_cache=self.prefix_cache
        )
        self.state = SessionState.QUEUED
        self.generated_tokens: List[int] = []
        self.admitted_step: Optional[int] = None
        self.first_token_step: Optional[int] = None
        self.finished_step: Optional[int] = None
        self.preemptions = 0
        self._pending_token: Optional[int] = None
        # traffic counters of decoders retired by preemption (the re-prefill
        # work of resume() is real served traffic and must stay visible)
        self._keys_attended_base = 0
        self._keys_total_base = 0

    # -- lifecycle -------------------------------------------------------------

    def admit(self, step: int) -> int:
        """Prefill the prompt in one serial pass and emit the first token."""
        if self.state is not SessionState.QUEUED:
            raise RuntimeError(f"session {self.request.request_id!r} already admitted")
        self.state = SessionState.ACTIVE
        self.admitted_step = step
        self._pending_token = self.decoder.prefill(self.request.prompt_tokens)
        return self._commit(step)

    def begin_admit(self, step: int) -> None:
        """Enter the chunked prefill pipeline instead of serial prefill.

        The session moves to ``PREFILLING`` and holds a batch slot, but no
        forward pass runs yet: the engine feeds its prompt through
        :meth:`prefill_step_batch` in ragged chunks (sharing every step's
        fused pass with the decoding sessions) and the first token is emitted
        the step the final chunk lands -- bit-identical to :meth:`admit`.
        """
        if self.state is not SessionState.QUEUED:
            raise RuntimeError(f"session {self.request.request_id!r} already admitted")
        self.state = SessionState.PREFILLING
        self.admitted_step = step
        self.decoder.begin_prefill(self.request.prompt_tokens)

    def begin_resume(self, step: int) -> None:
        """Re-admit a preempted session through the chunked prefill pipeline.

        A fresh decoder is registered with ``prompt + generated`` -- the
        exact prefix an unpreempted run would hold -- and the session
        re-prefills through the same batched chunk path as new admissions,
        so every token emitted after the resume matches the uninterrupted
        stream.
        """
        if self.state is not SessionState.PREEMPTED:
            raise RuntimeError(
                f"cannot resume session {self.request.request_id!r} "
                f"({self.state.value})"
            )
        self.state = SessionState.PREFILLING
        self.decoder = IncrementalDecoder(
            self.model,
            predictor=self.predictor,
            arena=self.arena,
            prefix_cache=self.prefix_cache,
        )
        replay = [int(t) for t in self.request.prompt_tokens] + self.generated_tokens
        self.decoder.begin_prefill(replay)

    def decode_step(self, step: int) -> int:
        """Emit one more token (running a decode forward pass when needed)."""
        if self.state is not SessionState.ACTIVE:
            raise RuntimeError(
                f"session {self.request.request_id!r} is not active ({self.state.value})"
            )
        self._pending_token = self.decoder.step(self.generated_tokens[-1])
        return self._commit(step)

    def preempt(self, step: int) -> None:
        """Evict the session: release its KV storage, keep only the tokens.

        The arena pages (or standalone buffers) return to the pool right away;
        the generated-token snapshot is all :meth:`resume` /
        :meth:`begin_resume` needs to rebuild the stream.  Active *and
        mid-prefill* sessions can be preempted -- a prefilling victim's
        partial chunks are discarded with its pages (the KV rows *are* the
        progress) and the resume re-prefills from scratch.
        """
        if self.state not in (SessionState.ACTIVE, SessionState.PREFILLING):
            raise RuntimeError(
                f"cannot preempt session {self.request.request_id!r} "
                f"({self.state.value})"
            )
        self._keys_attended_base += self.decoder.keys_attended
        self._keys_total_base += self.decoder.keys_total
        self.decoder.release()
        self.decoder = None
        self.state = SessionState.PREEMPTED
        self.preemptions += 1

    def resume(self, step: int) -> int:
        """Re-admit a preempted session; emits its next token.

        A fresh decoder prefills ``prompt + generated`` in one pass -- the
        same prefix an unpreempted run would hold in its KV cache -- so the
        token emitted here (and every one after it) is identical to what the
        uninterrupted stream would have produced.
        """
        if self.state is not SessionState.PREEMPTED:
            raise RuntimeError(
                f"cannot resume session {self.request.request_id!r} "
                f"({self.state.value})"
            )
        self.state = SessionState.ACTIVE
        self.decoder = IncrementalDecoder(
            self.model,
            predictor=self.predictor,
            arena=self.arena,
            prefix_cache=self.prefix_cache,
        )
        replay = [int(t) for t in self.request.prompt_tokens] + self.generated_tokens
        self._pending_token = self.decoder.prefill(replay)
        return self._commit(step)

    def cancel(self) -> None:
        """Abort the request and free its KV storage (terminal)."""
        if self.state in (SessionState.FINISHED, SessionState.CANCELLED):
            raise RuntimeError(
                f"cannot cancel session {self.request.request_id!r} "
                f"({self.state.value})"
            )
        if self.decoder is not None:
            self.decoder.release()
        self.state = SessionState.CANCELLED

    @classmethod
    def prefill_step_batch(
        cls,
        prefilling: Sequence["GenerationSession"],
        chunk_sizes: Sequence[int],
        decoding: Sequence["GenerationSession"],
        step: int,
    ) -> Dict[str, int]:
        """One mixed engine step: prefill chunks plus decode rows, one pass.

        ``prefilling[i]`` (in ``PREFILLING`` state) advances by
        ``chunk_sizes[i]`` prompt rows and ``decoding[j]`` (``ACTIVE``) by
        one token, all through a single
        :meth:`~repro.model.generation.IncrementalDecoder.prefill_step_batch`
        fused forward.  Sessions whose final chunk landed move to ``ACTIVE``
        and commit their first token exactly as :meth:`admit` would; decode
        commits match :meth:`decode_step`.  Returns ``{request_id: token}``
        for every token emitted this step (mid-prefill sessions emit
        nothing).
        """
        prefilling = list(prefilling)
        decoding = list(decoding)
        for session in prefilling:
            if session.state is not SessionState.PREFILLING:
                raise RuntimeError(
                    f"session {session.request.request_id!r} is not prefilling "
                    f"({session.state.value})"
                )
        for session in decoding:
            if session.state is not SessionState.ACTIVE:
                raise RuntimeError(
                    f"session {session.request.request_id!r} is not active "
                    f"({session.state.value})"
                )
        prefill_tokens, decode_tokens = IncrementalDecoder.prefill_step_batch(
            [s.decoder for s in prefilling],
            chunk_sizes,
            [s.decoder for s in decoding],
            [s.generated_tokens[-1] for s in decoding],
        )
        emitted: Dict[str, int] = {}
        for session, token in zip(prefilling, prefill_tokens):
            if token is None:
                continue  # chunks remain; the session keeps its slot
            session.state = SessionState.ACTIVE
            session._pending_token = token
            emitted[session.request.request_id] = session._commit(step)
        for session, token in zip(decoding, decode_tokens):
            session._pending_token = token
            emitted[session.request.request_id] = session._commit(step)
        return emitted

    @staticmethod
    def decode_step_batch(
        sessions: Sequence["GenerationSession"], step: int
    ) -> Dict[str, int]:
        """Emit one token from every active session via a single fused step.

        All sessions advance through
        :meth:`~repro.model.generation.IncrementalDecoder.step_batch` -- one
        quantised forward pass for the whole batch when the shared model
        supports it, a per-session fallback otherwise -- and each session
        commits its token exactly as :meth:`decode_step` would, so tokens,
        lifecycle timestamps and traffic counters are bit-identical to
        stepping the sessions one at a time.
        """
        sessions = list(sessions)
        for session in sessions:
            if session.state is not SessionState.ACTIVE:
                raise RuntimeError(
                    f"session {session.request.request_id!r} is not active "
                    f"({session.state.value})"
                )
        next_tokens = IncrementalDecoder.step_batch(
            [session.decoder for session in sessions],
            [session.generated_tokens[-1] for session in sessions],
        )
        emitted: Dict[str, int] = {}
        for session, token in zip(sessions, next_tokens):
            session._pending_token = token
            emitted[session.request.request_id] = session._commit(step)
        return emitted

    def _commit(self, step: int) -> int:
        token = int(self._pending_token)
        self.generated_tokens.append(token)
        if self.first_token_step is None:
            self.first_token_step = step
        eos = self.request.eos_token
        if (eos is not None and token == eos) or (
            len(self.generated_tokens) >= self.request.max_new_tokens
        ):
            self.state = SessionState.FINISHED
            self.finished_step = step
        return token

    def release_kv(self) -> None:
        """Free the session's KV storage (arena pages or standalone buffers).

        The engine calls this when it retires a finished session, so arena
        occupancy tracks live tokens rather than peak concurrency.  Metrics
        and generated tokens are unaffected; only further decoding becomes
        impossible.
        """
        if self.decoder is not None:
            self.decoder.release()

    # -- metrics ---------------------------------------------------------------

    @property
    def is_finished(self) -> bool:
        return self.state is SessionState.FINISHED

    @property
    def is_prefilling(self) -> bool:
        return self.state is SessionState.PREFILLING

    @property
    def is_cancelled(self) -> bool:
        return self.state is SessionState.CANCELLED

    @property
    def n_generated(self) -> int:
        return len(self.generated_tokens)

    @property
    def keys_attended(self) -> int:
        live = self.decoder.keys_attended if self.decoder is not None else 0
        return self._keys_attended_base + live

    @property
    def keys_total(self) -> int:
        live = self.decoder.keys_total if self.decoder is not None else 0
        return self._keys_total_base + live

    def to_metrics(self) -> RequestMetrics:
        """Snapshot the finished session as an immutable metrics record."""
        if not self.is_finished:
            raise RuntimeError(
                f"session {self.request.request_id!r} is not finished yet"
            )
        deadline = self.request.deadline_step
        missed = int(deadline is not None and self.finished_step > deadline)
        return RequestMetrics(
            request_id=self.request.request_id,
            arrival_step=self.request.arrival_step,
            admitted_step=int(self.admitted_step),
            first_token_step=int(self.first_token_step),
            finished_step=int(self.finished_step),
            n_generated=self.n_generated,
            keys_attended=self.keys_attended,
            keys_total=self.keys_total,
            priority=self.request.priority,
            preemptions=self.preemptions,
            deadline_misses=missed,
            queue_steps=int(self.admitted_step) - self.request.arrival_step,
            prefill_steps=int(self.first_token_step) - int(self.admitted_step),
        )
