"""Batched serving layer: continuous batching over one shared MCBP engine.

This package turns the single-stream functional reproduction into a
multi-tenant serving simulator:

* :mod:`repro.serve.session` -- per-request state (KV caches, lifecycle
  timestamps, traffic counters) built on
  :class:`~repro.model.generation.IncrementalDecoder`;
* :mod:`repro.serve.kv_arena` -- a shared paged KV arena
  (:class:`PagedKVArena`): preallocated per-layer page pools, per-session
  page tables, and an incrementally maintained batch view for attention;
* :mod:`repro.serve.scheduler` -- a continuous-batching scheduler that admits,
  steps and retires many sessions against one shared model, reporting
  per-request latency, aggregate throughput and arena occupancy.

Decoding is *fused*: each engine step stacks the active sessions' tokens
into one ``(B, hidden)`` batch and models exposing ``forward_batch`` (the
quantised transformer) run a single forward pass for the whole batch --
one GEMM per weight matrix and one ragged batched attention per layer --
with bit-identical tokens and statistics to per-session stepping.

KV storage is *paged*: every session's per-layer keys/values live as
fixed-size pages inside one :class:`PagedKVArena` (vLLM-style), with a
per-session page table shared by all layers.  Batched attention consumes the
arena through :meth:`PagedKVArena.gather_batch`, which keeps a per-layer
padded batch view up to date by copying only the rows appended since the
previous step -- ``O(B * hidden)`` bytes per step, independent of context
length -- instead of re-stacking every session's whole history.  Finished
sessions return their pages to the pool, so occupancy tracks live tokens,
and the page-fault / occupancy / copy-traffic counters surface in
:meth:`ServingReport.to_json`.  Combined with the engine's decoded-plane LRU
cache (:class:`repro.core.engine.MCBPEngine`), each layer's BSTC decode
*and* its GEMM launch are paid once per engine step rather than once per
request, just as a compressed tile set is decoded once and reused across a
large reconstruction.
"""

from .kv_arena import ArenaStats, PagedKVArena
from .scheduler import ContinuousBatchingScheduler, RequestMetrics, ServingReport
from .session import GenerationSession, Request, SessionState

__all__ = [
    "ArenaStats",
    "ContinuousBatchingScheduler",
    "GenerationSession",
    "PagedKVArena",
    "Request",
    "RequestMetrics",
    "ServingReport",
    "SessionState",
]
