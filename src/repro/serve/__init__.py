"""Batched serving layer: continuous batching over one shared MCBP engine.

This package turns the single-stream functional reproduction into a
multi-tenant serving simulator:

* :mod:`repro.serve.session` -- per-request state (KV caches, lifecycle
  timestamps, traffic counters) built on
  :class:`~repro.model.generation.IncrementalDecoder`;
* :mod:`repro.serve.scheduler` -- a continuous-batching scheduler that admits,
  steps and retires many sessions against one shared model, reporting
  per-request latency and aggregate throughput.

The serving-side payoff of the paper's compression stack comes from the
engine's decoded-plane LRU cache (:class:`repro.core.engine.MCBPEngine`):
with many co-resident sessions the BSTC decode of each layer is paid once per
engine step rather than once per request, just as a compressed tile set is
decoded once and reused across a large reconstruction.
"""

from .scheduler import ContinuousBatchingScheduler, RequestMetrics, ServingReport
from .session import GenerationSession, Request, SessionState

__all__ = [
    "ContinuousBatchingScheduler",
    "GenerationSession",
    "Request",
    "RequestMetrics",
    "ServingReport",
    "SessionState",
]
