"""Batched serving layer: continuous batching over one shared MCBP engine.

This package turns the single-stream functional reproduction into a
multi-tenant serving simulator:

* :mod:`repro.serve.session` -- per-request state (KV caches, lifecycle
  timestamps, traffic counters) built on
  :class:`~repro.model.generation.IncrementalDecoder`;
* :mod:`repro.serve.scheduler` -- a continuous-batching scheduler that admits,
  steps and retires many sessions against one shared model, reporting
  per-request latency and aggregate throughput.

Decoding is *fused*: each engine step stacks the active sessions' tokens
into one ``(B, hidden)`` batch and models exposing ``forward_batch`` (the
quantised transformer) run a single forward pass for the whole batch --
one GEMM per weight matrix and one ragged batched attention per layer --
with bit-identical tokens and statistics to per-session stepping.  Combined
with the engine's decoded-plane LRU cache
(:class:`repro.core.engine.MCBPEngine`), each layer's BSTC decode *and* its
GEMM launch are paid once per engine step rather than once per request, just
as a compressed tile set is decoded once and reused across a large
reconstruction.
"""

from .scheduler import ContinuousBatchingScheduler, RequestMetrics, ServingReport
from .session import GenerationSession, Request, SessionState

__all__ = [
    "ContinuousBatchingScheduler",
    "GenerationSession",
    "Request",
    "RequestMetrics",
    "ServingReport",
    "SessionState",
]
