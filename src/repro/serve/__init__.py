"""Policy-driven batched serving layer over one shared MCBP engine.

This package turns the single-stream functional reproduction into a
multi-tenant serving simulator with a pluggable control plane:

* :mod:`repro.serve.session` -- per-request state (KV caches, lifecycle
  timestamps, traffic counters) built on
  :class:`~repro.model.generation.IncrementalDecoder`, including the
  preempt/resume state machine;
* :mod:`repro.serve.kv_arena` -- a shared paged KV arena
  (:class:`PagedKVArena`): preallocated per-layer page pools, per-session
  page tables, occupancy watermarks for admission control, and an
  incrementally maintained batch view for attention;
* :mod:`repro.serve.policies` -- the pluggable
  :class:`AdmissionPolicy` / :class:`SchedulingPolicy` interfaces plus the
  shipped FIFO / priority / deadline / arena-budget implementations;
* :mod:`repro.serve.scheduler` -- the :class:`ServingEngine` facade (request
  lifecycle: ``submit() -> RequestHandle``, ``cancel``, streaming and
  completion callbacks, ``step``/``run``) wrapped around the batched
  execution core, and the deprecated :class:`ContinuousBatchingScheduler`
  shim.

Execution is *fused*: each engine step builds one mixed batch -- every
decoding session's token plus up to ``prefill_token_budget`` ragged prompt
chunk rows from the ``PREFILLING`` sessions (the chunked batched prefill
pipeline: admissions and preemption resumes alike) -- and models exposing
``forward_batch`` / ``prefill_batch`` (the quantised transformer) run a
single forward pass for the whole batch, one GEMM per weight matrix and
one ragged attention per layer, with bit-identical tokens and statistics
to per-session serial prefill and stepping.

KV storage is *paged*: every session's per-layer keys/values live as
fixed-size pages inside one :class:`PagedKVArena` (vLLM-style), read by
batched attention through an incrementally maintained view that copies only
``O(B * hidden)`` bytes per step.  Finished *and preempted* sessions return
their pages to the pool, so occupancy tracks live tokens and preemption is
how priority/deadline policies reclaim KV budget for urgent work; the
page-fault / occupancy / copy-traffic counters surface in
:meth:`ServingReport.to_json` next to the per-policy preemption and
deadline-miss counts.  Two opt-in capacity levers layer on top:
**snapshot preemption** (``ServingEngine(kv_snapshots=True)``) copies a
victim's pages off-arena and faults them back on resume -- zero re-prefill
forward passes, bit-identical tokens *and* metrics -- and **int8 KV pages**
(``kv_dtype="int8"``) store pool rows quantised with per-page scales for an
~8x smaller arena and snapshots (:class:`KVDtype`, :class:`KVSnapshot`).

The failure model lives in :mod:`repro.serve.faults`: a deterministic,
seedable :class:`FaultInjector` (driven by a :class:`FaultPlan`) threads
through the arena, the sessions and the callback dispatch; the engine
hardens the request lifecycle around it with per-request timeouts, capped
exponential-backoff retries (bit-identical recovered token streams),
failure isolation (one faulted row never aborts its batch siblings),
hysteretic load shedding (:class:`LoadShedWatchdog`) and graceful
``drain()`` / ``shutdown()``.  Every request ends in exactly one terminal
state -- ``FINISHED`` / ``CANCELLED`` / ``FAILED`` / ``TIMED_OUT`` /
``SHED`` -- recorded as :attr:`RequestMetrics.outcome`.

Decode throughput has its own opt-in lever, **speculative multi-token
decode** (:mod:`repro.serve.speculative`): a deterministic
:class:`Drafter` (:class:`NGramDrafter` prompt/history echo, or the
:class:`TruncatedBitDrafter` built from the target's own truncated
quantised LM head) proposes up to ``k`` tokens per decoding session, the
engine verifies the ``1 + k`` rows inside the *same* fused batched pass,
and the greedy accept rule plus arena rollback
(:meth:`PagedKVArena.truncate_session`) keeps committed token streams
bit-identical to one-token decode (``ServingEngine(speculative=...)``,
adaptive per-session throttling via :class:`SpeculationConfig`).

Above the single engine sits the fleet layer, :mod:`repro.serve.cluster`:
a :class:`ClusterEngine` multiplexes one traffic stream across ``D``
data-parallel :class:`ServingEngine` replicas behind a pluggable
:class:`RoutingPolicy` (round-robin, least-loaded, prefix-affinity), with
session affinity, deterministic replica failover (health-window tripping,
queued-backlog re-routing, cooldown recovery) and per-replica fault streams
split from one seed; :class:`ClusterReport` aggregates the per-replica
reports into fleet-wide percentiles, a load-imbalance coefficient and
prefix-hit locality.  ``D=1`` with round-robin is bit-identical to a bare
engine.

See ``src/repro/serve/README.md`` for the API guide, the failure model and
how to write a custom policy.
"""

from .cluster import ClusterEngine, ClusterHandle, ClusterReport, Replica
from .faults import (
    FAULT_SITES,
    FailureInfo,
    FaultError,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedCallbackError,
    LoadShedWatchdog,
    SessionComputeFault,
    TransientArenaFault,
)
from .kv_arena import ArenaStats, KVDtype, KVSnapshot, PagedKVArena
from .policies import (
    AdaptivePrefillAdmission,
    AdmissionPolicy,
    AgingPriorityAdmission,
    ArenaBudgetAdmission,
    DeadlineAdmission,
    DeadlinePolicy,
    FCFSPolicy,
    FIFOAdmission,
    LeastLoadedRouting,
    PrefixAffinityRouting,
    PriorityAdmission,
    PriorityPolicy,
    RoundRobinRouting,
    RoutingPolicy,
    SchedulingPolicy,
    make_policies,
    make_routing,
)
from .scheduler import (
    ContinuousBatchingScheduler,
    RequestHandle,
    RequestMetrics,
    ServingEngine,
    ServingReport,
)
from .session import GenerationSession, Request, SessionState, TERMINAL_STATES
from .speculative import (
    Drafter,
    NGramDrafter,
    SpeculationConfig,
    TruncatedBitDrafter,
)

__all__ = [
    "AdaptivePrefillAdmission",
    "AdmissionPolicy",
    "AgingPriorityAdmission",
    "ArenaBudgetAdmission",
    "ArenaStats",
    "ClusterEngine",
    "ClusterHandle",
    "ClusterReport",
    "ContinuousBatchingScheduler",
    "DeadlineAdmission",
    "DeadlinePolicy",
    "Drafter",
    "FAULT_SITES",
    "FCFSPolicy",
    "FIFOAdmission",
    "FailureInfo",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "GenerationSession",
    "InjectedCallbackError",
    "KVDtype",
    "KVSnapshot",
    "LeastLoadedRouting",
    "LoadShedWatchdog",
    "NGramDrafter",
    "PagedKVArena",
    "PrefixAffinityRouting",
    "PriorityAdmission",
    "PriorityPolicy",
    "Replica",
    "Request",
    "RequestHandle",
    "RequestMetrics",
    "RoundRobinRouting",
    "RoutingPolicy",
    "SchedulingPolicy",
    "ServingEngine",
    "ServingReport",
    "SessionComputeFault",
    "SessionState",
    "SpeculationConfig",
    "TERMINAL_STATES",
    "TransientArenaFault",
    "TruncatedBitDrafter",
    "make_policies",
    "make_routing",
]
