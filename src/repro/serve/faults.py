"""Deterministic fault injection + load shedding for the serving engine.

Production serving stacks are defined as much by their failure model as by
their happy path: allocators transiently fail, a row of a batch hits a bad
compute unit, user callbacks throw, and overload must shed work instead of
melting down.  This module gives the simulator that failure model in a form
chaos tests can drive **deterministically**:

* :class:`FaultSpec` / :class:`FaultPlan` describe *what* goes wrong --
  scheduled (``at_step``) or probabilistic (``probability``) faults at named
  injection sites, optionally pinned to one request;
* :class:`FaultInjector` decides *when*: each spec owns a seeded RNG that
  consumes exactly one draw per matching opportunity, so a given plan over a
  deterministic engine replays the identical fault trace every run (the
  chaos-fuzz suites rely on this);
* the :class:`FaultError` exception family is what the injection hooks raise
  -- the engine's quarantine machinery catches these (plus the *real*
  :class:`~repro.model.generation.KVCorruptionError` detector) and never
  lets them escape ``step()``;
* :class:`FailureInfo` is the structured post-mortem attached to a failed
  request's metrics;
* :class:`LoadShedWatchdog` is the overload guard: hysteretic queue-depth /
  failure-rate thresholds that flip the engine into load-shedding (``SHED``
  outcomes for the lowest-priority queued work, throttled prefill budget)
  and back out once pressure subsides.

No hook costs anything while no injector is installed: the engine guards
every injection point on ``faults is not None``, which the serving benchmark
gates (hooks-disabled throughput within 2% of the pre-faults baseline).
"""

from __future__ import annotations

from collections import deque
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "FAULT_SITES",
    "FaultError",
    "TransientArenaFault",
    "SessionComputeFault",
    "InjectedCallbackError",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "FailureInfo",
    "LoadShedWatchdog",
]


#: The named injection points the engine threads an injector through.
#:
#: ``arena.alloc``
#:     Transient page-allocation failure, raised by
#:     :meth:`~repro.serve.kv_arena.PagedKVArena.check_alloc` at *schedule
#:     time* -- before the step's fused forward runs -- for any session about
#:     to append KV rows this step (mirroring real engines, which check
#:     allocatability when scheduling, not mid-kernel).
#: ``session.compute``
#:     Per-row compute fault: the faulted session's step result is declared
#:     bad just before its token would commit; sibling rows of the same fused
#:     batch commit normally.
#: ``session.append``
#:     Corrupted KV append: one garbage row is *really* written into the
#:     session's layer-0 cache, and the session-level row-count integrity
#:     check (:meth:`~repro.model.generation.IncrementalDecoder.verify_kv_rows`)
#:     detects it before the token commits -- the detection machinery is
#:     real, only the corruption is injected.
#: ``callback.on_token`` / ``callback.on_complete``
#:     The user callback raises mid-dispatch, exercising the engine's
#:     containment path (warn once, detach, keep the step atomic).
FAULT_SITES = (
    "arena.alloc",
    "session.compute",
    "session.append",
    "callback.on_token",
    "callback.on_complete",
)


class FaultError(RuntimeError):
    """Base class of injected faults; ``site`` names the injection point."""

    site = "fault"


class TransientArenaFault(FaultError):
    """Injected transient KV-page allocation failure (``arena.alloc``)."""

    site = "arena.alloc"


class SessionComputeFault(FaultError):
    """Injected per-row compute failure (``session.compute``)."""

    site = "session.compute"


class InjectedCallbackError(FaultError):
    """Injected exception thrown from inside a user callback dispatch."""

    site = "callback"


@dataclass(frozen=True)
class FaultSpec:
    """One fault source: a site plus when (and for whom) it fires.

    ``probability`` arms the spec on every matching opportunity with an
    independent seeded draw; ``at_step`` restricts it to one engine step
    (with ``probability == 0`` the spec then fires *deterministically* at
    that step).  ``request_id`` pins the spec to one request, ``max_fires``
    caps its total activations.  At least one of ``probability`` /
    ``at_step`` must be set, otherwise the spec could never fire.
    """

    site: str
    probability: float = 0.0
    at_step: Optional[int] = None
    request_id: Optional[str] = None
    max_fires: Optional[int] = None

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; available: {FAULT_SITES}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        if self.probability == 0.0 and self.at_step is None:
            raise ValueError(
                "a spec needs probability > 0 or at_step set; this one "
                "could never fire"
            )
        if self.at_step is not None and self.at_step < 0:
            raise ValueError("at_step must be >= 0 when given")
        if self.max_fires is not None and self.max_fires < 1:
            raise ValueError("max_fires must be >= 1 when given")


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus the fault specs it drives (the unit chaos tests replay)."""

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    @classmethod
    def uniform(
        cls,
        probability: float,
        seed: int = 0,
        sites: Optional[Sequence[str]] = None,
        max_fires: Optional[int] = None,
    ) -> "FaultPlan":
        """Every site (or the given ones) fails independently per opportunity."""
        sites = tuple(sites) if sites is not None else FAULT_SITES
        return cls(
            specs=tuple(
                FaultSpec(site=s, probability=probability, max_fires=max_fires)
                for s in sites
            ),
            seed=seed,
        )


class FaultInjector:
    """Deterministic, seedable fault oracle driven by a :class:`FaultPlan`.

    Every spec owns its own ``np.random.default_rng`` stream (derived from
    the plan seed and the spec's position) and consumes **exactly one draw
    per matching armed opportunity**, so the fault trace is a pure function
    of the plan and the engine's (deterministic) sequence of
    :meth:`fires` calls -- re-running the same workload replays the same
    faults bit-for-bit.  Every spec matching the opportunity's site is
    evaluated (no short-circuit on a hit), which keeps each spec's stream
    independent of its siblings' outcomes; specs of *other* sites never
    draw for the opportunity, so the by-site dispatch is equivalent to
    scanning the full plan.

    ``fires_by_site`` / ``spec_fires`` expose the activation counts the
    chaos suites and the benchmark's faults block assert against.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.fires_by_site: Dict[str, int] = {}
        self.spec_fires: List[int] = []
        self.opportunities = 0
        self.reset()

    def reset(self) -> None:
        """Rewind every spec's RNG stream and zero the counters."""
        self._rngs = [
            np.random.default_rng(
                np.random.SeedSequence((int(self.plan.seed), i))
            )
            for i in range(len(self.plan.specs))
        ]
        # by-site index: an opportunity only ever evaluates (and draws for)
        # specs of its own site, so bucketing is behaviour-preserving while
        # letting spec-less sites bail out in O(1) -- that fast path is what
        # keeps the armed-but-idle hook overhead inside the benchmark gate
        self._specs_by_site: Dict[str, List[int]] = {
            site: [] for site in FAULT_SITES
        }
        for i, spec in enumerate(self.plan.specs):
            self._specs_by_site[spec.site].append(i)
        self.fires_by_site = {site: 0 for site in FAULT_SITES}
        self.spec_fires = [0] * len(self.plan.specs)
        self.opportunities = 0

    @property
    def total_fires(self) -> int:
        return sum(self.spec_fires)

    def has_site(self, site: str) -> bool:
        """Whether any spec targets ``site`` (hooks skip dead sites)."""
        return bool(self._specs_by_site[site])

    def fires(self, site: str, request_id: Optional[str], step: int) -> bool:
        """Whether any spec fires for this ``(site, request, step)`` opportunity."""
        self.opportunities += 1
        indices = self._specs_by_site[site]
        if not indices:
            return False
        hit = False
        specs = self.plan.specs
        for i in indices:
            spec = specs[i]
            if spec.request_id is not None and spec.request_id != request_id:
                continue
            if spec.at_step is not None and spec.at_step != step:
                continue
            if spec.max_fires is not None and self.spec_fires[i] >= spec.max_fires:
                continue
            if spec.probability > 0.0:
                # one draw per armed opportunity, fired or not: the stream
                # position depends only on the opportunity sequence
                if float(self._rngs[i].random()) >= spec.probability:
                    continue
            self.spec_fires[i] += 1
            self.fires_by_site[site] += 1
            hit = True
        return hit


@dataclass(frozen=True)
class FailureInfo:
    """Structured post-mortem of one failed request.

    Attached (as a plain dict, via :meth:`to_json`) to
    :attr:`~repro.serve.session.RequestMetrics.failure` when a request
    exhausts its retries and resolves ``FAILED`` -- ``site`` names the last
    fault that killed it, ``step`` when, ``retries`` how many recovery
    attempts were spent first.
    """

    site: str
    step: int
    retries: int
    message: str

    def to_json(self) -> dict:
        return asdict(self)


class LoadShedWatchdog:
    """Hysteretic overload guard: queue depth / failure rate -> load shedding.

    The engine calls :meth:`update` once per step with its live queue depth
    (and reports every fault quarantine through :meth:`record_failure`).
    Shedding **engages** when the queue grows past ``queue_high`` or at
    least ``failure_high`` faults landed within the trailing
    ``failure_window`` steps, and **disengages** only once the queue has
    drained to ``queue_low`` *and* the failure burst subsided to at most
    half the trigger -- the hysteresis gap keeps the engine from flapping
    between modes on a noisy boundary.

    While shedding, the engine

    * resolves the *lowest-priority* queued requests as ``SHED`` (youngest
      first within a priority class, so the longest-waiting work of each
      class survives) until the queue is back at ``queue_high``, and
    * clamps the chunked-prefill budget to ``throttled_prefill_budget`` rows
      per step (via :meth:`throttle`), spending the fused pass on finishing
      admitted work rather than starting more.
    """

    def __init__(
        self,
        queue_high: int = 64,
        queue_low: int = 16,
        failure_window: int = 16,
        failure_high: int = 8,
        throttled_prefill_budget: Optional[int] = 4,
    ) -> None:
        if queue_high < 1 or queue_low < 0:
            raise ValueError("queue_high must be >= 1 and queue_low >= 0")
        if queue_low > queue_high:
            raise ValueError("queue_low must be <= queue_high (hysteresis gap)")
        if failure_window < 1 or failure_high < 1:
            raise ValueError("failure_window and failure_high must be >= 1")
        if throttled_prefill_budget is not None and throttled_prefill_budget < 1:
            raise ValueError("throttled_prefill_budget must be >= 1 when given")
        self.queue_high = queue_high
        self.queue_low = queue_low
        self.failure_window = failure_window
        self.failure_high = failure_high
        self.throttled_prefill_budget = throttled_prefill_budget
        self.shedding = False
        self.shed_engagements = 0
        self._failure_steps: deque = deque()

    def record_failure(self, step: int) -> None:
        """Count one fault quarantine towards the failure-rate window."""
        self._failure_steps.append(int(step))

    def failures_in_window(self, step: int) -> int:
        """Faults recorded within the trailing ``failure_window`` steps."""
        horizon = step - self.failure_window
        while self._failure_steps and self._failure_steps[0] <= horizon:
            self._failure_steps.popleft()
        return len(self._failure_steps)

    def update(self, n_queued: int, step: int) -> bool:
        """Advance the hysteresis state machine; returns whether shedding."""
        fails = self.failures_in_window(step)
        if not self.shedding:
            if n_queued > self.queue_high or fails >= self.failure_high:
                self.shedding = True
                self.shed_engagements += 1
        elif n_queued <= self.queue_low and fails <= self.failure_high // 2:
            self.shedding = False
        return self.shedding

    def shed_excess(self, n_queued: int) -> int:
        """How many queued requests to shed right now (0 unless shedding)."""
        if not self.shedding:
            return 0
        return max(0, n_queued - self.queue_high)

    def throttle(self, budget: Optional[int]) -> Optional[int]:
        """Clamp a step's prefill-row budget while shedding (pass-through otherwise)."""
        if not self.shedding or self.throttled_prefill_budget is None:
            return budget
        if budget is None:
            return self.throttled_prefill_budget
        return min(budget, self.throttled_prefill_budget)
