"""Speculative multi-token decode: drafters + per-session adaptive throttle.

One scheduler step normally emits exactly one token per decoding session.
Speculative decode breaks that ceiling without changing a single output
token: a cheap, deterministic **drafter** proposes up to ``k`` continuation
tokens per session, the engine packs each session's ``1 + k`` rows (the
committed token plus the drafts) as one ragged chunk into the *existing*
fused ``prefill_batch`` pass, and the greedy accept rule keeps a draft only
while it equals the verifier's own argmax at that position.  The first
mismatch emits the corrected token and rolls the rejected rows back out of
the paged arena (:meth:`~repro.serve.kv_arena.PagedKVArena.truncate_session`),
so the committed token stream -- and the KV it leaves behind -- is
**bit-identical** to one-token decode for any drafter, any ``k`` and any
batch composition.  A good drafter turns one fused pass into several
committed tokens; a bad one costs only wasted verify rows, never
correctness.

Two drafters ship:

* :class:`NGramDrafter` -- the zero-cost baseline: match the longest
  trailing n-gram of the session's token history (prompt + generated)
  against its own earlier occurrences and echo the continuation.  Strong on
  repetitive/code-gen-like traces and on the token cycles greedy tiny
  models fall into; proposes nothing when no n-gram repeats.
* :class:`TruncatedBitDrafter` -- the paper-flavoured drafter: a one-layer
  bigram head built from the *truncated* high-order bit planes of the
  target's own quantised LM head (reusing the bound
  :class:`~repro.core.engine.MCBPEngine`'s decoded planes when available),
  iterated ``k`` times feeding its own proposals.  Models "run the same
  weights at a fraction of the bit width" -- the MCBP take on a draft
  model -- while staying deterministic and cheap (one ``(vocab, hidden)``
  product per draft token).

:class:`SpeculationConfig` carries the knobs; with ``adaptive=True`` the
engine keeps one :class:`_SessionThrottle` per request that shrinks ``k``
(down to proposing nothing, with a cooldown before re-probing) while the
trailing acceptance rate is poor, so adversarial traces pay almost no
verify overhead -- and since the committed row of every chunk always emits,
speculation can never yield *fewer* tokens per step than one-token decode.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

__all__ = [
    "Drafter",
    "NGramDrafter",
    "SpeculationConfig",
    "TruncatedBitDrafter",
]


class Drafter(ABC):
    """Proposes up to ``k`` continuation tokens for one session's history.

    ``history`` is the session's full committed token stream (prompt plus
    generated tokens, in order); the return value is the drafter's guess at
    the next tokens, most likely first, with ``len(result) <= k`` (shorter
    -- including empty -- is always legal and simply verifies fewer rows).
    Drafters must be **deterministic** pure functions of ``history``: the
    engine's bit-replay guarantee (same trace + seed => same run) extends
    through speculation only because proposals never depend on hidden
    state, wall clock or randomness.  Correctness never depends on the
    proposals at all -- the verify pass re-derives every committed token.
    """

    name = "drafter"

    @abstractmethod
    def propose(self, history: Sequence[int], k: int) -> List[int]:
        """Up to ``k`` proposed continuation tokens of ``history``."""


class NGramDrafter(Drafter):
    """Zero-cost drafter: echo the continuation of a repeated n-gram.

    Finds the longest trailing n-gram of ``history`` (``n`` down from
    ``max_n``) that occurred earlier, takes the *most recent* earlier
    occurrence, and proposes the tokens that followed it.  Repetitive
    traces (code generation, templated text, the token cycles greedy
    decoding settles into) accept nearly everything; random traces rarely
    match and the drafter proposes nothing, costing zero verify rows.
    """

    def __init__(self, max_n: int = 3) -> None:
        if max_n < 1:
            raise ValueError(f"max_n must be >= 1, got {max_n}")
        self.max_n = int(max_n)
        self.name = f"ngram({self.max_n})"

    def propose(self, history: Sequence[int], k: int) -> List[int]:
        hist = [int(t) for t in history]
        out: List[int] = []
        # re-match after appending our own proposals: a continuation that
        # runs off the end of history (e.g. the trailing period of a token
        # cycle) extends itself instead of capping the draft at one period
        while len(out) < int(k):
            cont = self._match(hist, int(k) - len(out))
            if not cont:
                break
            out.extend(cont)
            hist.extend(cont)
        return out

    def _match(self, hist: List[int], k: int) -> List[int]:
        """Continuation of the most recent earlier trailing-n-gram match."""
        n_hist = len(hist)
        if k <= 0 or n_hist < 2:
            return []
        for n in range(min(self.max_n, n_hist - 1), 0, -1):
            tail = hist[n_hist - n :]
            for start in range(n_hist - n - 1, -1, -1):
                if hist[start : start + n] == tail:
                    cont = hist[start + n : start + n + k]
                    if cont:
                        return cont
        return []


class TruncatedBitDrafter(Drafter):
    """Truncated-bit bigram head over the target's own quantised LM head.

    Keeps only the top ``bits`` of each ``weight_bits``-bit LM-head weight
    (zeroing the low-order planes -- exactly the rows a bit-serial MCBP
    engine would skip when stopping early) and predicts each next token as
    the argmax of ``scale * (W_trunc @ q(norm(embed(token))))``: embed the
    newest token, apply the model's final norm, quantise with the LM head's
    calibrated activation parameters and project through the truncated
    planes with the calibrated per-channel scales.  Iterating ``k`` times
    on its own proposals yields a deterministic draft chain whose cost is
    one ``(vocab, hidden)`` integer product per token -- no attention, no
    KV, no decoder layers.  When the model has a bound
    :class:`~repro.core.engine.MCBPEngine`, the integer planes are fetched
    from its decoded-plane cache instead of re-materialising them.
    """

    def __init__(self, model, bits: int = 4) -> None:
        weight_bits = int(getattr(model, "weight_bits", 8))
        if not 1 <= int(bits) <= weight_bits:
            raise ValueError(
                f"bits must be in [1, {weight_bits}], got {bits}"
            )
        self.bits = int(bits)
        self.name = f"truncated-bit({self.bits})"
        lm_head = model.lm_head
        engine = getattr(model, "engine", None)
        if engine is not None:
            prefix = getattr(model, "_engine_prefix", "")
            wq = np.asarray(engine._decoded_weight(prefix + "lm_head"))
        else:
            wq = np.asarray(lm_head.weight_q)
        # truncate to the high-order planes: for non-negative magnitudes a
        # plain shift pair keeps the top bits; signs are preserved by
        # truncating the magnitude
        shift = weight_bits - self.bits
        mag = np.abs(wq.astype(np.int64))
        self._w = (np.sign(wq.astype(np.int64)) * ((mag >> shift) << shift)).astype(
            np.float64
        )
        scale, _ = lm_head.folded_scale_bias()
        self._scale = np.asarray(scale, dtype=np.float64).reshape(-1)
        zero = float(np.asarray(lm_head.activation_params.zero_point))
        self._bias = -self._scale * zero * self._w.sum(axis=1)
        self._quantize = lm_head.quantize_input
        self._embedding = model.model.embedding
        self._norm = model.model.norm_fn
        self._vocab = int(self._w.shape[0])

    def _next(self, token: int) -> int:
        hidden = self._norm(self._embedding(np.array([token], dtype=np.int64)))
        xq = self._quantize(hidden.reshape(1, -1)).astype(np.float64)
        logits = self._scale * (self._w @ xq[0]) + self._bias
        return int(np.argmax(logits))

    def propose(self, history: Sequence[int], k: int) -> List[int]:
        if k <= 0 or not len(history):
            return []
        out: List[int] = []
        token = int(history[-1])
        for _ in range(int(k)):
            if not 0 <= token < self._vocab:
                break
            token = self._next(token)
            out.append(token)
        return out


@dataclass
class SpeculationConfig:
    """Knobs of the draft-then-verify decode path.

    ``k`` bounds the drafts proposed per session per step; ``drafter``
    defaults to :class:`NGramDrafter` when ``None``.  With ``adaptive=True``
    each request gets a :class:`_SessionThrottle`: whenever a trailing
    window of ``window`` speculative steps accepts less than ``low_rate``
    of its proposals, the session's working ``k`` steps down (at zero the
    session decodes plainly for ``cooldown_steps`` steps, then re-probes at
    ``k = 1``); a window accepting at least ``high_rate`` steps it back up
    toward ``k``.  All counters are integers driven only by accept
    outcomes, so throttling is exactly reproducible.
    """

    k: int = 4
    adaptive: bool = True
    drafter: Optional[Drafter] = None
    window: int = 8
    low_rate: float = 0.2
    high_rate: float = 0.6
    cooldown_steps: int = 16

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if not 0.0 <= self.low_rate <= self.high_rate <= 1.0:
            raise ValueError(
                f"need 0 <= low_rate <= high_rate <= 1, got "
                f"{self.low_rate} / {self.high_rate}"
            )
        if self.cooldown_steps < 1:
            raise ValueError(
                f"cooldown_steps must be >= 1, got {self.cooldown_steps}"
            )


class _SessionThrottle:
    """Deterministic per-session k controller (see :class:`SpeculationConfig`)."""

    __slots__ = ("config", "k_cur", "_proposed", "_accepted", "_steps", "_cooldown")

    def __init__(self, config: SpeculationConfig) -> None:
        self.config = config
        self.k_cur = config.k
        self._proposed = 0
        self._accepted = 0
        self._steps = 0
        self._cooldown = 0

    def next_k(self) -> int:
        """Draft budget for this session's next step (ticks the cooldown)."""
        if not self.config.adaptive:
            return self.config.k
        if self.k_cur == 0:
            self._cooldown -= 1
            if self._cooldown > 0:
                return 0
            self.k_cur = 1  # cooldown expired: probe again at the bottom
            self._clear_window()
        return self.k_cur

    def observe(self, proposed: int, accepted: int) -> None:
        """Fold one speculative step's accept outcome into the window."""
        if not self.config.adaptive or proposed <= 0:
            return
        self._proposed += int(proposed)
        self._accepted += int(accepted)
        self._steps += 1
        if self._steps < self.config.window:
            return
        rate = self._accepted / self._proposed
        if rate < self.config.low_rate:
            self.k_cur -= 1
            if self.k_cur == 0:
                self._cooldown = self.config.cooldown_steps
            self._clear_window()
        elif rate >= self.config.high_rate:
            if self.k_cur < self.config.k:
                self.k_cur += 1
            self._clear_window()
        else:
            self._clear_window()

    def _clear_window(self) -> None:
        self._proposed = 0
        self._accepted = 0
        self._steps = 0


def resolve_speculation(speculative) -> Optional[SpeculationConfig]:
    """Normalise the engine's ``speculative=`` argument.

    ``None`` keeps speculation off; an ``int`` is shorthand for
    ``SpeculationConfig(k=...)``; a :class:`SpeculationConfig` passes
    through.
    """
    if speculative is None:
        return None
    if isinstance(speculative, SpeculationConfig):
        return speculative
    if isinstance(speculative, (int, np.integer)) and not isinstance(
        speculative, bool
    ):
        return SpeculationConfig(k=int(speculative))
    raise TypeError(
        f"speculative must be None, an int k, or a SpeculationConfig; "
        f"got {type(speculative).__name__}"
    )
