"""Decoder-only transformer substrate (configs, layers, attention, generation)."""

from .attention import (
    AttentionOutput,
    BatchedAttentionOutput,
    ChunkedAttentionOutput,
    KVCache,
    MultiHeadAttention,
    causal_mask,
    ragged_selection_mask,
)
from .config import MODEL_CONFIGS, ModelConfig, get_model_config, scaled_down_config
from .generation import (
    GenerationResult,
    IncrementalDecoder,
    generate,
    greedy_sample,
    stage_gemm_macs,
)
from .layers import Embedding, Linear, gelu, layer_norm, relu, rms_norm, silu, softmax
from .transformer import (
    DecoderLayer,
    ForwardStats,
    QuantizedTransformer,
    TransformerModel,
)

__all__ = [
    "ModelConfig",
    "MODEL_CONFIGS",
    "get_model_config",
    "scaled_down_config",
    "Embedding",
    "Linear",
    "softmax",
    "gelu",
    "silu",
    "relu",
    "layer_norm",
    "rms_norm",
    "KVCache",
    "MultiHeadAttention",
    "AttentionOutput",
    "BatchedAttentionOutput",
    "ChunkedAttentionOutput",
    "causal_mask",
    "ragged_selection_mask",
    "DecoderLayer",
    "TransformerModel",
    "QuantizedTransformer",
    "ForwardStats",
    "GenerationResult",
    "IncrementalDecoder",
    "generate",
    "greedy_sample",
    "stage_gemm_macs",
]
